#!/usr/bin/env python3
"""Compare ajax_fanout bench JSON against the previous CI run's artifact and
maintain a rolling multi-run history.

Usage:
  bench_delta.py --previous DIR --current DIR
                 [--max-fast-p99-regression 0.5]
                 [--max-bytes-per-frame-regression 0.5]
                 [--history-out FILE] [--label SHA]

For every bench JSON present in both trees (matched by file name, searched
recursively on the previous side because artifact downloads nest a
directory per artifact), rounds are matched by (clients, adaptive,
full_resend) — plus (scenario, view_count, slow-view presence) for the
sharded rounds that carry them — and a delta summary is printed to the job
log. The job fails (exit 1) when a matched round's fast-client p99 (round
level, and per fast view for sharded rounds) — or, for the tile-delta
scenario, its steady-state bytes/frame — regresses by more than the allowed
fraction; a missing or unreadable previous side is a note, not a failure —
the first run on a branch has nothing to compare against.

History: the previous artifact may carry a bench_history.json (also searched
recursively); this run's summary is appended to it and written to
--history-out, capped to the most recent MAX_HISTORY_RUNS entries, so the
uploaded artifact accumulates a rolling window of per-run numbers (fast p99,
deliveries/s, bytes/frame) instead of only the immediately previous run. A
short trend over the retained runs is printed for each round.

Tiny baselines are noise: regressions are only enforced when the previous
p99 is at least MIN_PREV_MS and the absolute slip exceeds MIN_DELTA_MS (and,
for bytes/frame, when the previous value is at least MIN_PREV_BYTES).
"""

import argparse
import json
import pathlib
import sys

BENCH_FILES = ["ajax_fanout.json", "ajax_fanout_mixed.json",
               "ajax_fanout_fanout.json", "ajax_fanout_delta.json",
               "ajax_fanout_shard.json", "ajax_fanout_transport.json",
               "ajax_fanout_multireactor.json", "ajax_fanout_relay.json",
               "ajax_fanout_congestion.json"]
HISTORY_FILE = "bench_history.json"
MAX_HISTORY_RUNS = 50
MIN_PREV_MS = 1.0
MIN_DELTA_MS = 5.0
MIN_PREV_BYTES = 1024.0
# Congestion A/B gate: the delay-gradient controller may cost at most this
# fraction of fast-client p99 relative to RMSA in the same run.
CONGESTION_P99_TOLERANCE = 0.10
# Compression gate: the tile-delta scenario's encoder must keep at least
# this raw-bytes-in / png-bytes-out ratio. The orbiting-isosurface frames
# compress far better than this in practice; the floor catches the encoder
# silently degrading to stored blocks, not normal workload variance.
COMPRESSION_RATIO_FLOOR = 1.5


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"[bench-delta] could not read {path}: {err}")
        return None


def fast_p99(round_json):
    latency = round_json.get("delivery_latency_fast_clients") or \
        round_json.get("delivery_latency") or {}
    return latency.get("p99_ms")


def round_key(round_json):
    # Sharded rounds additionally carry (scenario, view_count, slow_view):
    # an all-fast round and a slow-view round of the same client count are
    # different workloads and must never be compared against each other.
    # Transport rounds carry "transport" ("long-poll" vs "sse") for the
    # same reason, and multireactor rounds carry "reactors" (the 4-reactor
    # round and the 1-reactor baseline share a client count). Relay rounds
    # carry "relay_depth"/"relay_fanout": the depth-1 direct baseline and
    # the depth-2 relayed round share a client count. Congestion rounds
    # carry "controller" (the same emulated WAN run once per pacing law) —
    # keying on it gates each law's fast p99 against its own history.
    # Rounds additionally carry "codec" once the PNG encoder does real
    # compression: a stored-block round and a deflate round have wildly
    # different bytes/frame and must not gate each other. Rounds without
    # those fields (every earlier scenario, and pre-codec artifacts) get
    # None for them, so existing artifacts stay comparable.
    return (round_json.get("clients"), bool(round_json.get("adaptive")),
            bool(round_json.get("full_resend")),
            round_json.get("scenario"), round_json.get("view_count"),
            bool(round_json.get("slow_view")),
            round_json.get("transport"),
            round_json.get("reactors"),
            round_json.get("relay_depth"),
            round_json.get("relay_fanout"),
            round_json.get("controller"),
            round_json.get("codec"))


def key_str(key):
    parts = [f"clients={key[0]}"]
    if key[1]:
        parts.append("adaptive")
    if key[2]:
        parts.append("full-resend")
    if key[3]:
        parts.append(f"{key[3]}/views={key[4]}")
    if key[5]:
        parts.append("slow-view")
    if key[6]:
        parts.append(key[6])
    if len(key) > 7 and key[7] is not None:
        parts.append(f"reactors={key[7]}")
    if len(key) > 8 and key[8] is not None:
        parts.append(f"depth={key[8]}")
    if len(key) > 9 and key[9]:
        parts.append(f"relays={key[9]}")
    if len(key) > 10 and key[10]:
        parts.append(f"controller={key[10]}")
    if len(key) > 11 and key[11]:
        parts.append(f"codec={key[11]}")
    return " ".join(parts)


def round_record(round_json):
    """The per-round numbers worth keeping across runs."""
    record = {
        "fast_p99_ms": fast_p99(round_json),
        "deliveries_per_sec": round_json.get("deliveries_per_sec"),
        "gaps": round_json.get("gaps"),
        "errors": round_json.get("errors"),
    }
    if "bytes_per_frame" in round_json:
        record["bytes_per_frame"] = round_json.get("bytes_per_frame")
    if "overhead_bytes_per_frame" in round_json:
        record["overhead_bytes_per_frame"] = \
            round_json.get("overhead_bytes_per_frame")
    if "tier_flaps" in round_json:
        record["tier_flaps"] = round_json.get("tier_flaps")
        record["slow_goodput_Bps"] = round_json.get("slow_goodput_Bps")
    compression = round_json.get("compression")
    if compression:
        record["compression_ratio"] = compression.get("compression_ratio")
    views = round_json.get("views")
    if views:
        record["views"] = {
            name: (view.get("delivery_latency") or {}).get("p99_ms")
            for name, view in views.items()}
    return record


def view_regressions(name, key, prev_round, cur_round, max_p99_regression):
    """Per-view fast-client p99 gate for sharded rounds: every view whose
    clients are all prompt is compared against the same view in the
    previous run's matching round, with the usual noise floors."""
    out = []
    prev_views = prev_round.get("views") or {}
    for view, cur in (cur_round.get("views") or {}).items():
        if cur.get("slow"):
            continue  # slow-consumer views measure think time, not the hub
        prev = prev_views.get(view)
        if prev is None or prev.get("slow"):
            continue
        cur_p99 = (cur.get("delivery_latency") or {}).get("p99_ms")
        prev_p99 = (prev.get("delivery_latency") or {}).get("p99_ms")
        if cur_p99 is None or prev_p99 is None:
            continue
        delta = cur_p99 - prev_p99
        if (prev_p99 >= MIN_PREV_MS and delta > MIN_DELTA_MS and
                cur_p99 > prev_p99 * (1.0 + max_p99_regression)):
            out.append(f"{name} {key_str(key)} view={view}: "
                       f"p99 {prev_p99:.1f} -> {cur_p99:.1f} ms")
    return out


def compare(name, previous, current, max_p99_regression,
            max_bpf_regression):
    # bytes/frame is a *gate* only for the tile-delta scenario, whose
    # workload is deterministic enough to hold a budget; other scenarios'
    # byte counts swing with adaptive pacing and are reported, not enforced.
    enforce_bpf = name == "ajax_fanout_delta.json"
    regressions = []
    prev_rounds = {round_key(r): r for r in previous.get("rounds", [])}
    for cur in current.get("rounds", []):
        key = round_key(cur)
        prev = prev_rounds.get(key)
        if prev is None:
            print(f"[bench-delta] {name} {key_str(key)}: no previous round")
            continue
        cur_p99, prev_p99 = fast_p99(cur), fast_p99(prev)
        cur_dps = cur.get("deliveries_per_sec", 0.0)
        prev_dps = prev.get("deliveries_per_sec", 0.0)
        parts = [f"deliveries/s {prev_dps:.0f} -> {cur_dps:.0f}"]
        verdict = "ok"
        if cur_p99 is not None and prev_p99 is not None:
            delta = cur_p99 - prev_p99
            pct = (delta / prev_p99 * 100.0) if prev_p99 > 0 else 0.0
            parts.append(
                f"fast p99 {prev_p99:.1f} -> {cur_p99:.1f} ms ({pct:+.0f}%)")
            if (prev_p99 >= MIN_PREV_MS and delta > MIN_DELTA_MS and
                    cur_p99 > prev_p99 * (1.0 + max_p99_regression)):
                verdict = "REGRESSION"
                regressions.append(
                    f"{name} {key_str(key)}: "
                    f"fast p99 {prev_p99:.1f} -> {cur_p99:.1f} ms")
        # Tile-delta bandwidth: a non-full-resend round whose bytes/frame
        # grows past the budget means the dirty-rect encoding degraded.
        cur_bpf = cur.get("bytes_per_frame")
        prev_bpf = prev.get("bytes_per_frame")
        if cur_bpf is not None and prev_bpf is not None:
            bpct = ((cur_bpf - prev_bpf) / prev_bpf * 100.0) if prev_bpf > 0 \
                else 0.0
            parts.append(
                f"bytes/frame {prev_bpf:.0f} -> {cur_bpf:.0f} ({bpct:+.0f}%)")
            if (enforce_bpf and not key[2] and prev_bpf >= MIN_PREV_BYTES and
                    cur_bpf > prev_bpf * (1.0 + max_bpf_regression)):
                verdict = "REGRESSION"
                regressions.append(
                    f"{name} {key_str(key)}: "
                    f"bytes/frame {prev_bpf:.0f} -> {cur_bpf:.0f}")
        per_view = view_regressions(name, key, prev, cur,
                                    max_p99_regression)
        if per_view:
            verdict = "REGRESSION"
            regressions += per_view
        errors = cur.get("errors", 0)
        gaps = cur.get("gaps", 0)
        parts.append(f"gaps {gaps:.0f} errors {errors:.0f}")
        print(f"[bench-delta] {name} {key_str(key)}: "
              f"{', '.join(parts)} [{verdict}]")
    return regressions


def congestion_gate(cur_root):
    """Absolute A/B gate on the congestion scenario, previous artifact or
    not: the delay-gradient controller exists to remove tier flaps, so a
    run where it flaps at least as much as RMSA — or buys its stability
    with a slower fast-client p99 — failed at its one job."""
    path = cur_root / "ajax_fanout_congestion.json"
    if not path.is_file():
        return []
    data = load(path)
    if data is None:
        return []
    failures = []
    for cmp_json in data.get("comparisons", []):
        rmsa_flaps = cmp_json.get("tier_flaps_rmsa")
        grad_flaps = cmp_json.get("tier_flaps_gradient")
        if rmsa_flaps is None or grad_flaps is None:
            continue
        label = f"congestion clients={cmp_json.get('clients')}"
        verdict = "ok"
        if grad_flaps >= rmsa_flaps:
            verdict = "REGRESSION"
            failures.append(
                f"{label}: gradient tier flaps {grad_flaps} not below "
                f"rmsa {rmsa_flaps}")
        rmsa_p99 = cmp_json.get("fast_p99_ms_rmsa")
        grad_p99 = cmp_json.get("fast_p99_ms_gradient")
        if (rmsa_p99 is not None and grad_p99 is not None and
                rmsa_p99 >= MIN_PREV_MS and
                grad_p99 > rmsa_p99 * (1.0 + CONGESTION_P99_TOLERANCE)):
            verdict = "REGRESSION"
            failures.append(
                f"{label}: gradient fast p99 {grad_p99:.1f} ms exceeds "
                f"rmsa {rmsa_p99:.1f} ms by more than "
                f"{CONGESTION_P99_TOLERANCE * 100:.0f}%")
        print(f"[bench-delta] {label}: flaps rmsa={rmsa_flaps} "
              f"gradient={grad_flaps} "
              f"trendline={cmp_json.get('tier_flaps_trendline')}, "
              f"fast p99 rmsa={rmsa_p99} gradient={grad_p99} ms [{verdict}]")
    return failures


def compression_gate(cur_root):
    """Absolute gate on the tile-delta scenario, previous artifact or not:
    every tiled round must report the deflate codec holding at least
    COMPRESSION_RATIO_FLOOR over the raw framebuffer bytes it encoded, and
    a clean protocol run (no gaps, errors, or delta breaks). A ratio at
    ~1.0 means the encoder fell back to stored blocks across the board."""
    path = cur_root / "ajax_fanout_delta.json"
    if not path.is_file():
        return []
    data = load(path)
    if data is None:
        return []
    failures = []
    for cmp_json in data.get("comparisons", []):
        ratio = cmp_json.get("compression_ratio")
        if ratio is None:
            continue  # pre-codec bench binary
        label = f"delta clients={cmp_json.get('clients')}"
        verdict = "ok"
        if ratio < COMPRESSION_RATIO_FLOOR:
            verdict = "REGRESSION"
            failures.append(
                f"{label}: compression ratio {ratio:.2f} below floor "
                f"{COMPRESSION_RATIO_FLOOR:.2f}")
        for field in ("gaps", "errors", "delta_breaks"):
            count = cmp_json.get(field)
            if count:
                verdict = "REGRESSION"
                failures.append(f"{label}: {count:.0f} {field} in the tiled "
                                "round")
        print(f"[bench-delta] {label}: codec={cmp_json.get('codec')} "
              f"ratio={ratio:.2f} saved="
              f"{cmp_json.get('bytes_saved_fraction', 0.0) * 100:.0f}% "
              f"[{verdict}]")
    return failures


def summarize_run(cur_root, label):
    """This run's compact history record, one entry per bench file/round."""
    record = {"label": label, "benches": {}}
    for name in BENCH_FILES:
        data = load(cur_root / name) if (cur_root / name).is_file() else None
        if data is None:
            continue
        rounds = {}
        for r in data.get("rounds", []):
            rounds["/".join(str(k) for k in round_key(r))] = round_record(r)
        comparisons = data.get("comparisons")
        bench = {"rounds": rounds}
        if comparisons:
            bench["comparisons"] = comparisons
        record["benches"][name] = bench
    return record


def print_trends(history):
    """Per-round trend lines over the retained history window."""
    runs = history.get("runs", [])
    if len(runs) < 2:
        return
    print(f"[bench-delta] history: {len(runs)} runs retained")
    series = {}
    for run in runs:
        for name, bench in run.get("benches", {}).items():
            for key, rec in bench.get("rounds", {}).items():
                series.setdefault((name, key), []).append(rec)
    for (name, key), recs in sorted(series.items()):
        tail = recs[-5:]
        p99s = [r.get("fast_p99_ms") for r in tail
                if r.get("fast_p99_ms") is not None]
        bpfs = [r.get("bytes_per_frame") for r in tail
                if r.get("bytes_per_frame") is not None]
        parts = []
        if p99s:
            parts.append("p99 " + " -> ".join(f"{x:.1f}" for x in p99s) + " ms")
        if bpfs:
            parts.append("B/frame " + " -> ".join(f"{x:.0f}" for x in bpfs))
        if parts:
            print(f"[bench-delta]   {name} {key}: {'; '.join(parts)}")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--previous", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--max-fast-p99-regression", type=float, default=0.5)
    parser.add_argument("--max-bytes-per-frame-regression", type=float,
                        default=0.5)
    parser.add_argument("--history-out", default=None,
                        help="write the merged rolling history here")
    parser.add_argument("--label", default="",
                        help="identifier for this run (e.g. the commit sha)")
    args = parser.parse_args()

    prev_root = pathlib.Path(args.previous)
    cur_root = pathlib.Path(args.current)

    # Merge the rolling history first: it survives even when the regression
    # gate below fails the job, because it is written before the exit.
    history = {"runs": []}
    if prev_root.is_dir():
        prev_history = sorted(prev_root.rglob(HISTORY_FILE))
        if prev_history:
            loaded = load(prev_history[0])
            if loaded and isinstance(loaded.get("runs"), list):
                history = loaded
    history["runs"].append(summarize_run(cur_root, args.label))
    history["runs"] = history["runs"][-MAX_HISTORY_RUNS:]
    if args.history_out:
        with open(args.history_out, "w") as f:
            json.dump(history, f, indent=1)
        print(f"[bench-delta] rolling history ({len(history['runs'])} runs) "
              f"-> {args.history_out}")
    print_trends(history)

    # The congestion A/B and the compression floor are self-contained in
    # the current run, so those gates apply even on a first run with no
    # previous artifact.
    regressions = list(congestion_gate(cur_root))
    regressions += compression_gate(cur_root)

    if not prev_root.is_dir():
        print(f"[bench-delta] no previous artifact at {prev_root}; "
              "nothing to compare (first run?)")
        if regressions:
            print("[bench-delta] FAILING: self-contained gates:")
            for line in regressions:
                print(f"  - {line}")
            return 1
        return 0

    compared = 0
    for name in BENCH_FILES:
        cur_path = cur_root / name
        if not cur_path.is_file():
            continue
        prev_matches = sorted(prev_root.rglob(name))
        if not prev_matches:
            print(f"[bench-delta] {name}: not in previous artifact")
            continue
        current = load(cur_path)
        previous = load(prev_matches[0])
        if current is None or previous is None:
            continue
        compared += 1
        regressions += compare(name, previous, current,
                               args.max_fast_p99_regression,
                               args.max_bytes_per_frame_regression)

    if compared == 0:
        print("[bench-delta] no comparable bench files found")
        return 0
    if regressions:
        print("[bench-delta] FAILING: regression beyond budget "
              f"(p99 {args.max_fast_p99_regression * 100:.0f}%, bytes/frame "
              f"{args.max_bytes_per_frame_regression * 100:.0f}%):")
        for line in regressions:
            print(f"  - {line}")
        return 1
    print("[bench-delta] all compared rounds within the regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
