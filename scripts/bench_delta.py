#!/usr/bin/env python3
"""Compare ajax_fanout bench JSON against the previous CI run's artifact.

Usage:
  bench_delta.py --previous DIR --current DIR [--max-fast-p99-regression 0.5]

For every bench JSON present in both trees (matched by file name, searched
recursively on the previous side because artifact downloads nest a
directory per artifact), rounds are matched by (clients, adaptive) and a
delta summary is printed to the job log. The job fails (exit 1) when a
matched round's fast-client p99 regresses by more than the allowed
fraction; a missing or unreadable previous side is a note, not a failure —
the first run on a branch has nothing to compare against.

Tiny baselines are noise: regressions are only enforced when the previous
p99 is at least MIN_PREV_MS and the absolute slip exceeds MIN_DELTA_MS.
"""

import argparse
import json
import pathlib
import sys

BENCH_FILES = ["ajax_fanout.json", "ajax_fanout_mixed.json",
               "ajax_fanout_fanout.json"]
MIN_PREV_MS = 1.0
MIN_DELTA_MS = 5.0


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"[bench-delta] could not read {path}: {err}")
        return None


def fast_p99(round_json):
    latency = round_json.get("delivery_latency_fast_clients") or \
        round_json.get("delivery_latency") or {}
    return latency.get("p99_ms")


def round_key(round_json):
    return (round_json.get("clients"), bool(round_json.get("adaptive")))


def compare(name, previous, current, max_regression):
    regressions = []
    prev_rounds = {round_key(r): r for r in previous.get("rounds", [])}
    for cur in current.get("rounds", []):
        key = round_key(cur)
        prev = prev_rounds.get(key)
        if prev is None:
            print(f"[bench-delta] {name} {key}: no previous round")
            continue
        cur_p99, prev_p99 = fast_p99(cur), fast_p99(prev)
        cur_dps = cur.get("deliveries_per_sec", 0.0)
        prev_dps = prev.get("deliveries_per_sec", 0.0)
        parts = [f"deliveries/s {prev_dps:.0f} -> {cur_dps:.0f}"]
        verdict = "ok"
        if cur_p99 is not None and prev_p99 is not None:
            delta = cur_p99 - prev_p99
            pct = (delta / prev_p99 * 100.0) if prev_p99 > 0 else 0.0
            parts.append(
                f"fast p99 {prev_p99:.1f} -> {cur_p99:.1f} ms ({pct:+.0f}%)")
            if (prev_p99 >= MIN_PREV_MS and delta > MIN_DELTA_MS and
                    cur_p99 > prev_p99 * (1.0 + max_regression)):
                verdict = "REGRESSION"
                regressions.append(
                    f"{name} clients={key[0]} adaptive={key[1]}: "
                    f"fast p99 {prev_p99:.1f} -> {cur_p99:.1f} ms")
        errors = cur.get("errors", 0)
        gaps = cur.get("gaps", 0)
        parts.append(f"gaps {gaps:.0f} errors {errors:.0f}")
        print(f"[bench-delta] {name} clients={key[0]} adaptive={key[1]}: "
              f"{', '.join(parts)} [{verdict}]")
    return regressions


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--previous", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--max-fast-p99-regression", type=float, default=0.5)
    args = parser.parse_args()

    prev_root = pathlib.Path(args.previous)
    cur_root = pathlib.Path(args.current)
    if not prev_root.is_dir():
        print(f"[bench-delta] no previous artifact at {prev_root}; "
              "nothing to compare (first run?)")
        return 0

    regressions = []
    compared = 0
    for name in BENCH_FILES:
        cur_path = cur_root / name
        if not cur_path.is_file():
            continue
        prev_matches = sorted(prev_root.rglob(name))
        if not prev_matches:
            print(f"[bench-delta] {name}: not in previous artifact")
            continue
        current = load(cur_path)
        previous = load(prev_matches[0])
        if current is None or previous is None:
            continue
        compared += 1
        regressions += compare(name, previous, current,
                               args.max_fast_p99_regression)

    if compared == 0:
        print("[bench-delta] no comparable bench files found")
        return 0
    if regressions:
        print("[bench-delta] FAILING: fast-client p99 regressed beyond "
              f"{args.max_fast_p99_regression * 100:.0f}%:")
        for line in regressions:
            print(f"  - {line}")
        return 1
    print("[bench-delta] all compared rounds within the regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
