// Procedural dataset generators.
//
// The paper's experiments use three pre-generated datasets — Jet (16 MB),
// Rage (64 MB) and Visible Woman (108 MB, downsampled) — none of which are
// redistributable. These generators produce volumes of the same byte sizes
// with qualitatively similar structure (DESIGN.md, substitution table):
//   jet      — turbulent plume: Gaussian core widening with height, swirl,
//              value-noise turbulence (combustion-jet-like isosurfaces);
//   rage     — radiative blast wave: dense spherical shell over an ambient
//              gradient (Rage is LANL's radiation hydrodynamics code);
//   viswoman — nested anatomical shells: skin/tissue/bone density bands of
//              an ellipsoidal "body" with limbs (CT-like value histogram).
// Plus analytic fields (sphere, torus, ramp) whose isosurfaces are known in
// closed form — used by correctness tests — and vector fields for
// streamlines.
#pragma once

#include <cstdint>
#include <string>

#include "data/volume.hpp"

namespace ricsa::data {

ScalarVolume make_jet(int nx, int ny, int nz, std::uint64_t seed = 1);
ScalarVolume make_rage(int nx, int ny, int nz, std::uint64_t seed = 2);
ScalarVolume make_viswoman(int nx, int ny, int nz, std::uint64_t seed = 3);

/// f = R - |p - c|: isosurface at 0 is a sphere of radius R (voxel units),
/// centred in the volume. Positive inside.
ScalarVolume make_sphere(int n, float radius);

/// Torus with major radius R, minor radius r, axis z, centred; isosurface of
/// value 0 is the torus surface. Positive inside.
ScalarVolume make_torus(int n, float major_radius, float minor_radius);

/// Linear ramp along x (value = x index): every isosurface is a plane.
ScalarVolume make_ramp(int nx, int ny, int nz);

/// Swirling "tornado" vector field (classic streamline test data).
VectorVolume make_tornado(int n, std::uint64_t seed = 4);

/// Uniform flow along +x with magnitude 1.
VectorVolume make_uniform_flow(int n);

/// Solid-body rotation about the z axis through the volume centre.
VectorVolume make_rotation(int n);

struct DatasetSpec {
  std::string name;
  int nx = 0, ny = 0, nz = 0;
  /// Total float32 payload, bytes (matches the sizes quoted in Section 5.3).
  std::size_t bytes = 0;
  /// A "interesting" isovalue within the data range, for benchmarks.
  float default_isovalue = 0.5f;
};

/// Paper-scale specs: jet = 16 MB, rage = 64 MB, viswoman = 108 MB.
DatasetSpec dataset_spec(const std::string& name);

/// Generate the named dataset at a fraction of its paper-scale linear
/// resolution (scale = 1 reproduces the full byte size; tests use ~0.25).
ScalarVolume make_dataset(const std::string& name, double scale = 1.0,
                          std::uint64_t seed = 7);

}  // namespace ricsa::data
