#include "data/volume.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ricsa::data {

float Vec3::norm() const { return std::sqrt(x * x + y * y + z * z); }

Vec3 Vec3::normalized() const {
  const float n = norm();
  return n > 0 ? Vec3{x / n, y / n, z / n} : Vec3{};
}

ScalarVolume::ScalarVolume(int nx, int ny, int nz, std::string variable)
    : nx_(nx), ny_(ny), nz_(nz), variable_(std::move(variable)) {
  if (nx <= 0 || ny <= 0 || nz <= 0) {
    throw std::invalid_argument("ScalarVolume: dimensions must be positive");
  }
  data_.assign(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
                   static_cast<std::size_t>(nz),
               0.0f);
}

namespace {
struct TrilinearWeights {
  int x0, y0, z0, x1, y1, z1;
  float fx, fy, fz;
};

TrilinearWeights clamp_weights(float x, float y, float z, int nx, int ny,
                               int nz) {
  const auto clampf = [](float v, float lo, float hi) {
    return v < lo ? lo : (v > hi ? hi : v);
  };
  x = clampf(x, 0.0f, static_cast<float>(nx - 1));
  y = clampf(y, 0.0f, static_cast<float>(ny - 1));
  z = clampf(z, 0.0f, static_cast<float>(nz - 1));
  TrilinearWeights w;
  w.x0 = static_cast<int>(x);
  w.y0 = static_cast<int>(y);
  w.z0 = static_cast<int>(z);
  w.x1 = std::min(w.x0 + 1, nx - 1);
  w.y1 = std::min(w.y0 + 1, ny - 1);
  w.z1 = std::min(w.z0 + 1, nz - 1);
  w.fx = x - static_cast<float>(w.x0);
  w.fy = y - static_cast<float>(w.y0);
  w.fz = z - static_cast<float>(w.z0);
  return w;
}
}  // namespace

float ScalarVolume::sample(float x, float y, float z) const {
  const TrilinearWeights w = clamp_weights(x, y, z, nx_, ny_, nz_);
  const float c000 = at(w.x0, w.y0, w.z0), c100 = at(w.x1, w.y0, w.z0);
  const float c010 = at(w.x0, w.y1, w.z0), c110 = at(w.x1, w.y1, w.z0);
  const float c001 = at(w.x0, w.y0, w.z1), c101 = at(w.x1, w.y0, w.z1);
  const float c011 = at(w.x0, w.y1, w.z1), c111 = at(w.x1, w.y1, w.z1);
  const float c00 = c000 + (c100 - c000) * w.fx;
  const float c10 = c010 + (c110 - c010) * w.fx;
  const float c01 = c001 + (c101 - c001) * w.fx;
  const float c11 = c011 + (c111 - c011) * w.fx;
  const float c0 = c00 + (c10 - c00) * w.fy;
  const float c1 = c01 + (c11 - c01) * w.fy;
  return c0 + (c1 - c0) * w.fz;
}

Vec3 ScalarVolume::gradient(float x, float y, float z) const {
  const float h = 1.0f;
  return Vec3{(sample(x + h, y, z) - sample(x - h, y, z)) * 0.5f,
              (sample(x, y + h, z) - sample(x, y - h, z)) * 0.5f,
              (sample(x, y, z + h) - sample(x, y, z - h)) * 0.5f};
}

std::pair<float, float> ScalarVolume::min_max() const {
  float lo = std::numeric_limits<float>::max();
  float hi = std::numeric_limits<float>::lowest();
  for (const float v : data_) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return {lo, hi};
}

VectorVolume::VectorVolume(int nx, int ny, int nz)
    : nx_(nx), ny_(ny), nz_(nz) {
  if (nx <= 0 || ny <= 0 || nz <= 0) {
    throw std::invalid_argument("VectorVolume: dimensions must be positive");
  }
  data_.assign(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
                   static_cast<std::size_t>(nz),
               Vec3{});
}

Vec3 VectorVolume::sample(float x, float y, float z) const {
  const TrilinearWeights w = clamp_weights(x, y, z, nx_, ny_, nz_);
  const auto lerp = [](const Vec3& a, const Vec3& b, float t) {
    return a + (b - a) * t;
  };
  const Vec3 c00 = lerp(at(w.x0, w.y0, w.z0), at(w.x1, w.y0, w.z0), w.fx);
  const Vec3 c10 = lerp(at(w.x0, w.y1, w.z0), at(w.x1, w.y1, w.z0), w.fx);
  const Vec3 c01 = lerp(at(w.x0, w.y0, w.z1), at(w.x1, w.y0, w.z1), w.fx);
  const Vec3 c11 = lerp(at(w.x0, w.y1, w.z1), at(w.x1, w.y1, w.z1), w.fx);
  const Vec3 c0 = lerp(c00, c10, w.fy);
  const Vec3 c1 = lerp(c01, c11, w.fy);
  return lerp(c0, c1, w.fz);
}

}  // namespace ricsa::data
