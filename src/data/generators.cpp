#include "data/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/prng.hpp"

namespace ricsa::data {

namespace {

/// Hash-based lattice value noise in [0,1], trilinearly interpolated —
/// deterministic in (coordinates, seed).
float lattice(std::int64_t x, std::int64_t y, std::int64_t z,
              std::uint64_t seed) {
  std::uint64_t h = seed;
  h ^= static_cast<std::uint64_t>(x) * 0x9E3779B185EBCA87ULL;
  h = (h << 31) | (h >> 33);
  h ^= static_cast<std::uint64_t>(y) * 0xC2B2AE3D27D4EB4FULL;
  h = (h << 27) | (h >> 37);
  h ^= static_cast<std::uint64_t>(z) * 0x165667B19E3779F9ULL;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  return static_cast<float>(h >> 11) * 0x1.0p-53f;
}

float value_noise(float x, float y, float z, std::uint64_t seed) {
  const auto fx = std::floor(x), fy = std::floor(y), fz = std::floor(z);
  const auto ix = static_cast<std::int64_t>(fx);
  const auto iy = static_cast<std::int64_t>(fy);
  const auto iz = static_cast<std::int64_t>(fz);
  const float tx = x - static_cast<float>(fx);
  const float ty = y - static_cast<float>(fy);
  const float tz = z - static_cast<float>(fz);
  const auto lerp = [](float a, float b, float t) { return a + (b - a) * t; };
  const float c00 = lerp(lattice(ix, iy, iz, seed), lattice(ix + 1, iy, iz, seed), tx);
  const float c10 = lerp(lattice(ix, iy + 1, iz, seed), lattice(ix + 1, iy + 1, iz, seed), tx);
  const float c01 = lerp(lattice(ix, iy, iz + 1, seed), lattice(ix + 1, iy, iz + 1, seed), tx);
  const float c11 = lerp(lattice(ix, iy + 1, iz + 1, seed), lattice(ix + 1, iy + 1, iz + 1, seed), tx);
  return lerp(lerp(c00, c10, ty), lerp(c01, c11, ty), tz);
}

/// Two-octave fractal noise in [0,1].
float turbulence(float x, float y, float z, std::uint64_t seed) {
  return 0.67f * value_noise(x, y, z, seed) +
         0.33f * value_noise(2.1f * x, 2.1f * y, 2.1f * z, seed ^ 0xABCD);
}

}  // namespace

ScalarVolume make_jet(int nx, int ny, int nz, std::uint64_t seed) {
  ScalarVolume v(nx, ny, nz, "jet_mixture");
  const float cx = static_cast<float>(nx) / 2.0f;
  const float cy = static_cast<float>(ny) / 2.0f;
  for (int z = 0; z < nz; ++z) {
    const float h = static_cast<float>(z) / static_cast<float>(nz);
    // Plume widens with height; swirl displaces the core.
    const float width = 0.08f + 0.25f * h;
    const float swirl_angle = 6.0f * h;
    const float ox = 0.12f * h * std::cos(swirl_angle);
    const float oy = 0.12f * h * std::sin(swirl_angle);
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        const float dx = (static_cast<float>(x) - cx) / static_cast<float>(nx) - ox;
        const float dy = (static_cast<float>(y) - cy) / static_cast<float>(ny) - oy;
        const float r2 = dx * dx + dy * dy;
        const float core = std::exp(-r2 / (2.0f * width * width));
        const float turb = turbulence(static_cast<float>(x) * 0.07f,
                                      static_cast<float>(y) * 0.07f,
                                      static_cast<float>(z) * 0.07f, seed);
        v.at(x, y, z) = core * (0.75f + 0.5f * turb);
      }
    }
  }
  return v;
}

ScalarVolume make_rage(int nx, int ny, int nz, std::uint64_t seed) {
  ScalarVolume v(nx, ny, nz, "rage_density");
  const float cx = static_cast<float>(nx - 1) / 2.0f;
  const float cy = static_cast<float>(ny - 1) / 2.0f;
  const float cz = static_cast<float>(nz - 1) / 2.0f;
  const float rmax = 0.5f * static_cast<float>(std::min({nx, ny, nz}));
  const float shock_r = 0.62f * rmax;   // blast front position
  const float shell_w = 0.06f * rmax;   // shock thickness
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        const float dx = static_cast<float>(x) - cx;
        const float dy = static_cast<float>(y) - cy;
        const float dz = static_cast<float>(z) - cz;
        const float r = std::sqrt(dx * dx + dy * dy + dz * dz);
        // Hot rarefied interior, dense shell at the front, ambient outside.
        const float interior = 0.15f * std::exp(-r / (0.4f * rmax));
        const float dshell = (r - shock_r) / shell_w;
        const float shell = 0.85f * std::exp(-0.5f * dshell * dshell);
        const float ambient = 0.08f;
        const float ripple =
            0.08f * turbulence(static_cast<float>(x) * 0.11f,
                               static_cast<float>(y) * 0.11f,
                               static_cast<float>(z) * 0.11f, seed);
        v.at(x, y, z) = interior + shell + ambient + ripple;
      }
    }
  }
  return v;
}

ScalarVolume make_viswoman(int nx, int ny, int nz, std::uint64_t seed) {
  ScalarVolume v(nx, ny, nz, "ct_density");
  const float cx = static_cast<float>(nx - 1) / 2.0f;
  const float cy = static_cast<float>(ny - 1) / 2.0f;
  for (int z = 0; z < nz; ++z) {
    const float axial = static_cast<float>(z) / static_cast<float>(nz);
    // Torso cross-section radius varies along the body axis.
    const float body_r = (0.28f + 0.10f * std::sin(3.1415927f * axial)) *
                         static_cast<float>(std::min(nx, ny));
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        const float dx = static_cast<float>(x) - cx;
        const float dy = (static_cast<float>(y) - cy) * 1.25f;  // elliptical
        const float r = std::sqrt(dx * dx + dy * dy);
        const float bump = 0.04f * static_cast<float>(std::min(nx, ny)) *
                           turbulence(static_cast<float>(x) * 0.05f,
                                      static_cast<float>(y) * 0.05f,
                                      static_cast<float>(z) * 0.05f, seed);
        const float rr = r + bump;
        float value = 0.02f;                    // air
        if (rr < body_r) value = 0.35f;         // skin / soft tissue
        if (rr < 0.75f * body_r) value = 0.5f;  // muscle / organs
        // "Spine" bone column and two "rib" lobes.
        const float spine = std::sqrt(dx * dx + (dy + 0.35f * body_r) *
                                                    (dy + 0.35f * body_r));
        if (spine < 0.12f * body_r) value = 0.9f;
        const float lung_l = std::sqrt((dx - 0.3f * body_r) * (dx - 0.3f * body_r) + dy * dy);
        const float lung_r = std::sqrt((dx + 0.3f * body_r) * (dx + 0.3f * body_r) + dy * dy);
        if (axial > 0.55f && axial < 0.85f &&
            (lung_l < 0.22f * body_r || lung_r < 0.22f * body_r)) {
          value = 0.12f;  // air-filled lungs
        }
        v.at(x, y, z) = value;
      }
    }
  }
  return v;
}

ScalarVolume make_sphere(int n, float radius) {
  ScalarVolume v(n, n, n, "sphere_sdf");
  const float c = static_cast<float>(n - 1) / 2.0f;
  for (int z = 0; z < n; ++z) {
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        const float dx = static_cast<float>(x) - c;
        const float dy = static_cast<float>(y) - c;
        const float dz = static_cast<float>(z) - c;
        v.at(x, y, z) = radius - std::sqrt(dx * dx + dy * dy + dz * dz);
      }
    }
  }
  return v;
}

ScalarVolume make_torus(int n, float major_radius, float minor_radius) {
  ScalarVolume v(n, n, n, "torus_sdf");
  const float c = static_cast<float>(n - 1) / 2.0f;
  for (int z = 0; z < n; ++z) {
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        const float dx = static_cast<float>(x) - c;
        const float dy = static_cast<float>(y) - c;
        const float dz = static_cast<float>(z) - c;
        const float q = std::sqrt(dx * dx + dy * dy) - major_radius;
        v.at(x, y, z) = minor_radius - std::sqrt(q * q + dz * dz);
      }
    }
  }
  return v;
}

ScalarVolume make_ramp(int nx, int ny, int nz) {
  ScalarVolume v(nx, ny, nz, "ramp");
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        v.at(x, y, z) = static_cast<float>(x);
      }
    }
  }
  return v;
}

VectorVolume make_tornado(int n, std::uint64_t seed) {
  VectorVolume v(n, n, n);
  const float c = static_cast<float>(n - 1) / 2.0f;
  util::Xoshiro256 rng(seed);
  const float wobble_phase = static_cast<float>(rng.uniform(0, 6.28));
  for (int z = 0; z < n; ++z) {
    const float h = static_cast<float>(z) / static_cast<float>(n);
    const float axis_x = c + 0.12f * static_cast<float>(n) *
                                 std::sin(4.0f * h + wobble_phase);
    const float axis_y = c + 0.12f * static_cast<float>(n) *
                                 std::cos(4.0f * h + wobble_phase);
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        const float dx = static_cast<float>(x) - axis_x;
        const float dy = static_cast<float>(y) - axis_y;
        const float r = std::sqrt(dx * dx + dy * dy) + 1e-3f;
        const float swirl = 1.0f / (1.0f + 0.05f * r);
        // Tangential swirl + inward pull + updraft.
        v.at(x, y, z) = Vec3{-dy * swirl / r - 0.15f * dx / r,
                             dx * swirl / r - 0.15f * dy / r,
                             0.35f + 0.1f * swirl};
      }
    }
  }
  return v;
}

VectorVolume make_uniform_flow(int n) {
  VectorVolume v(n, n, n);
  for (int z = 0; z < n; ++z) {
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        v.at(x, y, z) = Vec3{1.0f, 0.0f, 0.0f};
      }
    }
  }
  return v;
}

VectorVolume make_rotation(int n) {
  VectorVolume v(n, n, n);
  const float c = static_cast<float>(n - 1) / 2.0f;
  for (int z = 0; z < n; ++z) {
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        const float dx = static_cast<float>(x) - c;
        const float dy = static_cast<float>(y) - c;
        v.at(x, y, z) = Vec3{-dy, dx, 0.0f};
      }
    }
  }
  return v;
}

DatasetSpec dataset_spec(const std::string& name) {
  // Linear dimensions chosen so nx*ny*nz*4 matches the paper's quoted sizes.
  if (name == "jet") {
    // Isovalue picks the dense plume core (a compact surface in mostly
    // quiescent surroundings, like the combustion jet mixture fraction).
    return {"jet", 160, 160, 160, 160u * 160u * 160u * 4u, 0.9f};
  }
  if (name == "rage") {
    return {"rage", 252, 252, 252, 252u * 252u * 252u * 4u, 0.6f};
  }
  if (name == "viswoman") {
    return {"viswoman", 300, 300, 300, 300u * 300u * 300u * 4u, 0.45f};
  }
  throw std::invalid_argument("unknown dataset: " + name);
}

ScalarVolume make_dataset(const std::string& name, double scale,
                          std::uint64_t seed) {
  const DatasetSpec spec = dataset_spec(name);
  const auto dim = [scale](int n) {
    return std::max(8, static_cast<int>(std::lround(n * scale)));
  };
  if (name == "jet") return make_jet(dim(spec.nx), dim(spec.ny), dim(spec.nz), seed);
  if (name == "rage") return make_rage(dim(spec.nx), dim(spec.ny), dim(spec.nz), seed);
  return make_viswoman(dim(spec.nx), dim(spec.ny), dim(spec.nz), seed);
}

}  // namespace ricsa::data
