#include "data/rdf_io.hpp"

#include <fstream>
#include <stdexcept>

#include "util/bytes.hpp"

namespace ricsa::data {

namespace {
constexpr std::uint32_t kMagic = 0x52444631;  // "RDF1"
constexpr std::uint32_t kVersion = 1;
}  // namespace

std::vector<std::uint8_t> rdf_serialize(const ScalarVolume& volume) {
  util::ByteWriter w(volume.bytes() + 64);
  w.u32(kMagic);
  w.u32(kVersion);
  w.i32(volume.nx());
  w.i32(volume.ny());
  w.i32(volume.nz());
  w.str(volume.variable());
  for (const float v : volume.raw()) w.f32(v);
  return w.take();
}

ScalarVolume rdf_deserialize(const std::vector<std::uint8_t>& bytes) {
  util::ByteReader r(bytes);
  try {
    if (r.u32() != kMagic) throw std::runtime_error("rdf: bad magic");
    if (r.u32() != kVersion) throw std::runtime_error("rdf: bad version");
    const int nx = r.i32();
    const int ny = r.i32();
    const int nz = r.i32();
    if (nx <= 0 || ny <= 0 || nz <= 0 || static_cast<std::int64_t>(nx) * ny * nz > (1LL << 32)) {
      throw std::runtime_error("rdf: implausible dimensions");
    }
    const std::string variable = r.str();
    ScalarVolume volume(nx, ny, nz, variable);
    for (float& v : volume.raw()) v = r.f32();
    return volume;
  } catch (const std::out_of_range&) {
    throw std::runtime_error("rdf: truncated file");
  }
}

void rdf_write(const std::string& path, const ScalarVolume& volume) {
  const auto bytes = rdf_serialize(volume);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("rdf: cannot open for write: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("rdf: write failed: " + path);
}

ScalarVolume rdf_read(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("rdf: cannot open for read: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw std::runtime_error("rdf: read failed: " + path);
  return rdf_deserialize(bytes);
}

}  // namespace ricsa::data
