// RDF ("RICSA data format") — a minimal binary container standing in for the
// CDF/HDF/NetCDF files the paper's data sources serve (Section 4.1). One
// scalar variable per file: magic, version, dims, variable name, float32
// payload (little-endian). The DS node reads/writes these when caching
// simulation timesteps (Section 2: "periodically cached on a local storage
// device, which serves as a data source").
#pragma once

#include <string>

#include "data/volume.hpp"

namespace ricsa::data {

/// Serialize to an in-memory byte buffer (the exact on-disk format).
std::vector<std::uint8_t> rdf_serialize(const ScalarVolume& volume);

/// Parse; throws std::runtime_error on bad magic/version/truncation.
ScalarVolume rdf_deserialize(const std::vector<std::uint8_t>& bytes);

/// File variants.
void rdf_write(const std::string& path, const ScalarVolume& volume);
ScalarVolume rdf_read(const std::string& path);

}  // namespace ricsa::data
