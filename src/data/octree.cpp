#include "data/octree.hpp"

#include <algorithm>
#include <stdexcept>

namespace ricsa::data {

BlockDecomposition::BlockDecomposition(const ScalarVolume& volume,
                                       int block_size)
    : block_size_(block_size),
      nx_cells_(volume.nx() - 1),
      ny_cells_(volume.ny() - 1),
      nz_cells_(volume.nz() - 1) {
  if (block_size <= 0) {
    throw std::invalid_argument("BlockDecomposition: block_size must be > 0");
  }
  if (nx_cells_ <= 0 || ny_cells_ <= 0 || nz_cells_ <= 0) {
    throw std::invalid_argument(
        "BlockDecomposition: volume needs at least 2 voxels per axis");
  }
  for (int z = 0; z < nz_cells_; z += block_size) {
    for (int y = 0; y < ny_cells_; y += block_size) {
      for (int x = 0; x < nx_cells_; x += block_size) {
        Block b;
        b.x0 = x;
        b.y0 = y;
        b.z0 = z;
        b.x1 = std::min(x + block_size, nx_cells_);
        b.y1 = std::min(y + block_size, ny_cells_);
        b.z1 = std::min(z + block_size, nz_cells_);
        float lo = volume.at(b.x0, b.y0, b.z0);
        float hi = lo;
        for (int bz = b.z0; bz <= b.z1; ++bz) {
          for (int by = b.y0; by <= b.y1; ++by) {
            for (int bx = b.x0; bx <= b.x1; ++bx) {
              const float v = volume.at(bx, by, bz);
              lo = std::min(lo, v);
              hi = std::max(hi, v);
            }
          }
        }
        b.min = lo;
        b.max = hi;
        blocks_.push_back(b);
      }
    }
  }
}

std::size_t BlockDecomposition::active_blocks(float isovalue) const {
  std::size_t n = 0;
  for (const Block& b : blocks_) n += b.spans(isovalue);
  return n;
}

std::vector<std::size_t> BlockDecomposition::octant_blocks(int octant) const {
  if (octant < 0 || octant > 7) {
    throw std::invalid_argument("octant must be in [0, 7]");
  }
  const int mx = nx_cells_ / 2, my = ny_cells_ / 2, mz = nz_cells_ / 2;
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    const Block& b = blocks_[i];
    const int ox = b.x0 >= mx ? 1 : 0;
    const int oy = b.y0 >= my ? 1 : 0;
    const int oz = b.z0 >= mz ? 1 : 0;
    if ((ox | (oy << 1) | (oz << 2)) == octant) out.push_back(i);
  }
  return out;
}

ScalarVolume BlockDecomposition::octant_volume(const ScalarVolume& volume,
                                               int octant) {
  if (octant < 0 || octant > 7) {
    throw std::invalid_argument("octant must be in [0, 7]");
  }
  const int mx = volume.nx() / 2, my = volume.ny() / 2, mz = volume.nz() / 2;
  const int x0 = (octant & 1) ? mx : 0;
  const int y0 = (octant & 2) ? my : 0;
  const int z0 = (octant & 4) ? mz : 0;
  const int x1 = (octant & 1) ? volume.nx() : mx + 1;  // +1: share midplane
  const int y1 = (octant & 2) ? volume.ny() : my + 1;
  const int z1 = (octant & 4) ? volume.nz() : mz + 1;
  ScalarVolume out(x1 - x0, y1 - y0, z1 - z0, volume.variable());
  for (int z = z0; z < z1; ++z) {
    for (int y = y0; y < y1; ++y) {
      for (int x = x0; x < x1; ++x) {
        out.at(x - x0, y - y0, z - z0) = volume.at(x, y, z);
      }
    }
  }
  return out;
}

}  // namespace ricsa::data
