// Block decomposition with per-block value ranges.
//
// Section 4.4.1: "to speed up the search process, one typically traverses an
// octree to identify data blocks containing isosurfaces. In this case, the
// extraction is performed at the block level." Blocks whose [min, max] range
// excludes the isovalue are skipped entirely; n_blocks and S_block feed the
// isosurface cost model (Eq. 4). The top-level octants also back the GUI's
// "one of the eight octree subsets" selector (Section 5.1).
#pragma once

#include <cstdint>
#include <vector>

#include "data/volume.hpp"

namespace ricsa::data {

struct Block {
  /// Cell-index bounds [x0, x1) etc.; cells span (x, x+1) voxel pairs.
  int x0 = 0, y0 = 0, z0 = 0;
  int x1 = 0, y1 = 0, z1 = 0;
  float min = 0, max = 0;

  std::int64_t cells() const noexcept {
    return static_cast<std::int64_t>(x1 - x0) * (y1 - y0) * (z1 - z0);
  }
  bool spans(float isovalue) const noexcept {
    return min <= isovalue && isovalue <= max;
  }
};

class BlockDecomposition {
 public:
  /// Partition the volume's cell grid into blocks of at most block_size^3
  /// cells and compute each block's value range (over the block's voxel
  /// corners, so `spans` is conservative for cells on block borders).
  BlockDecomposition(const ScalarVolume& volume, int block_size);

  const std::vector<Block>& blocks() const noexcept { return blocks_; }
  int block_size() const noexcept { return block_size_; }

  /// Number of blocks whose value range spans the isovalue (the n_blocks of
  /// Eq. 4 for that isovalue).
  std::size_t active_blocks(float isovalue) const;

  /// Indices of blocks belonging to top-level octant o (0..7; bit 0 = upper
  /// half in x, bit 1 = y, bit 2 = z). Blocks straddling the midplane are
  /// assigned by their lower corner.
  std::vector<std::size_t> octant_blocks(int octant) const;

  /// Extract the sub-volume covered by octant o (voxel-aligned copy).
  static ScalarVolume octant_volume(const ScalarVolume& volume, int octant);

 private:
  int block_size_;
  int nx_cells_, ny_cells_, nz_cells_;
  std::vector<Block> blocks_;
};

}  // namespace ricsa::data
