// Regular-grid scalar and vector fields — the "raw data" of the paper's
// visualization pipeline (Section 4.1): multivariate simulation output
// organized in CDF/HDF/NetCDF-like structures, here a dense float32 grid.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace ricsa::data {

struct Vec3 {
  float x = 0, y = 0, z = 0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
  float dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  float norm() const;
  Vec3 normalized() const;
};

/// Dense 3D scalar field, x-fastest layout.
class ScalarVolume {
 public:
  ScalarVolume() = default;
  ScalarVolume(int nx, int ny, int nz, std::string variable = "value");

  int nx() const noexcept { return nx_; }
  int ny() const noexcept { return ny_; }
  int nz() const noexcept { return nz_; }
  std::size_t voxels() const noexcept { return data_.size(); }
  std::size_t bytes() const noexcept { return data_.size() * sizeof(float); }
  const std::string& variable() const noexcept { return variable_; }
  void set_variable(std::string name) { variable_ = std::move(name); }

  float& at(int x, int y, int z) { return data_[index(x, y, z)]; }
  float at(int x, int y, int z) const { return data_[index(x, y, z)]; }

  /// Trilinear sample at continuous coordinates (voxel units, clamped).
  float sample(float x, float y, float z) const;

  /// Central-difference gradient at continuous coordinates (voxel units).
  Vec3 gradient(float x, float y, float z) const;

  std::pair<float, float> min_max() const;

  const std::vector<float>& raw() const noexcept { return data_; }
  std::vector<float>& raw() noexcept { return data_; }

  bool same_shape(const ScalarVolume& o) const noexcept {
    return nx_ == o.nx_ && ny_ == o.ny_ && nz_ == o.nz_;
  }

  std::size_t index(int x, int y, int z) const {
    if (x < 0 || y < 0 || z < 0 || x >= nx_ || y >= ny_ || z >= nz_) {
      throw std::out_of_range("ScalarVolume::index out of range");
    }
    return static_cast<std::size_t>(x) +
           static_cast<std::size_t>(nx_) *
               (static_cast<std::size_t>(y) +
                static_cast<std::size_t>(ny_) * static_cast<std::size_t>(z));
  }

 private:
  int nx_ = 0, ny_ = 0, nz_ = 0;
  std::string variable_ = "value";
  std::vector<float> data_;
};

/// Dense 3D vector field (for streamline advection).
class VectorVolume {
 public:
  VectorVolume() = default;
  VectorVolume(int nx, int ny, int nz);

  int nx() const noexcept { return nx_; }
  int ny() const noexcept { return ny_; }
  int nz() const noexcept { return nz_; }
  std::size_t bytes() const noexcept { return data_.size() * sizeof(Vec3); }

  Vec3& at(int x, int y, int z) { return data_[index(x, y, z)]; }
  const Vec3& at(int x, int y, int z) const { return data_[index(x, y, z)]; }

  /// Trilinear sample at continuous coordinates (voxel units, clamped).
  Vec3 sample(float x, float y, float z) const;

  bool inside(float x, float y, float z) const noexcept {
    return x >= 0 && y >= 0 && z >= 0 && x <= static_cast<float>(nx_ - 1) &&
           y <= static_cast<float>(ny_ - 1) && z <= static_cast<float>(nz_ - 1);
  }

 private:
  std::size_t index(int x, int y, int z) const {
    if (x < 0 || y < 0 || z < 0 || x >= nx_ || y >= ny_ || z >= nz_) {
      throw std::out_of_range("VectorVolume::index out of range");
    }
    return static_cast<std::size_t>(x) +
           static_cast<std::size_t>(nx_) *
               (static_cast<std::size_t>(y) +
                static_cast<std::size_t>(ny_) * static_cast<std::size_t>(z));
  }

  int nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<Vec3> data_;
};

}  // namespace ricsa::data
