#include "core/mapper.hpp"

#include <stdexcept>

namespace ricsa::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

MappingProblem MappingProblem::from_pipeline(
    const pipeline::PipelineSpec& spec, const cost::NetworkProfile& profile,
    int source, int destination) {
  MappingProblem problem;
  problem.source = source;
  problem.destination = destination;
  problem.unit_compute = spec.unit_compute_seconds();
  problem.messages = spec.message_bytes();

  const int nodes = profile.node_count();
  problem.allowed.assign(spec.module_count(),
                         std::vector<bool>(static_cast<std::size_t>(nodes), true));
  for (std::size_t m = 0; m < spec.module_count(); ++m) {
    const pipeline::ModuleSpec& mod = spec.modules()[m];
    for (int v = 0; v < nodes; ++v) {
      bool ok = true;
      if (m == 0) ok = (v == source);                       // source pinned
      if (m + 1 == spec.module_count()) ok = (v == destination);  // display
      if (mod.requires_gpu && !profile.has_gpu(v)) ok = false;
      problem.allowed[m][static_cast<std::size_t>(v)] = ok;
    }
  }
  return problem;
}

double predict_delay(const cost::NetworkProfile& profile,
                     const MappingProblem& problem,
                     const std::vector<int>& node_of_module) {
  if (node_of_module.size() != problem.module_count()) return kInf;
  if (node_of_module.front() != problem.source ||
      node_of_module.back() != problem.destination) {
    return kInf;
  }
  double total = 0.0;
  for (std::size_t m = 0; m < node_of_module.size(); ++m) {
    const int v = node_of_module[m];
    if (v < 0 || v >= profile.node_count()) return kInf;
    if (!problem.allowed[m][static_cast<std::size_t>(v)]) return kInf;
    total += problem.unit_compute[m] / profile.power(v);
    if (m > 0) {
      const int u = node_of_module[m - 1];
      if (u != v) {
        if (!profile.has_link(u, v)) return kInf;
        total += profile.transfer_seconds(u, v, problem.messages[m - 1]);
        // Opening a new group on a cluster node pays its data-distribution
        // overhead once (Section 5.3.1).
        total += profile.activation_overhead(v);
      }
    }
  }
  return total;
}

Mapping DpMapper::solve(const cost::NetworkProfile& profile,
                        const MappingProblem& problem) const {
  const int nodes = profile.node_count();
  const std::size_t n_mod = problem.module_count();
  if (n_mod == 0 || nodes == 0) return {};

  // In-neighbor adjacency for the "cross one link" sub-case of Eq. 9.
  std::vector<std::vector<int>> in_neighbors(static_cast<std::size_t>(nodes));
  for (const auto& [edge, est] : profile.links()) {
    in_neighbors[static_cast<std::size_t>(edge.second)].push_back(edge.first);
  }

  // T[m][v] and backpointers. T[0][v]: module 0 (the source) placed at v —
  // only the source node is feasible and costs nothing (Eq. 10's base case
  // is T[1] derived from here).
  std::vector<std::vector<double>> T(
      n_mod, std::vector<double>(static_cast<std::size_t>(nodes), kInf));
  std::vector<std::vector<int>> prev(
      n_mod, std::vector<int>(static_cast<std::size_t>(nodes), -1));
  if (!problem.allowed[0][static_cast<std::size_t>(problem.source)]) return {};
  T[0][static_cast<std::size_t>(problem.source)] = 0.0;

  for (std::size_t m = 1; m < n_mod; ++m) {
    const double msg = static_cast<double>(problem.messages[m - 1]);
    (void)msg;
    for (int v = 0; v < nodes; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (!problem.allowed[m][vi]) continue;  // feasibility check (Sec. 4.5)
      const double compute = problem.unit_compute[m] / profile.power(v);

      // Sub-case 1: inherit — module m joins module m-1's group on v.
      double best = T[m - 1][vi];
      int best_prev = T[m - 1][vi] < kInf ? v : -1;

      // Sub-case 2: message m-1 crosses one incident link u -> v.
      for (const int u : in_neighbors[vi]) {
        const auto ui = static_cast<std::size_t>(u);
        if (T[m - 1][ui] >= kInf) continue;
        const double candidate =
            T[m - 1][ui] +
            profile.transfer_seconds(u, v, problem.messages[m - 1]) +
            profile.activation_overhead(v);
        if (candidate < best) {
          best = candidate;
          best_prev = u;
        }
      }

      if (best_prev >= 0) {
        T[m][vi] = best + compute;
        prev[m][vi] = best_prev;
      }
    }
  }

  const auto dest = static_cast<std::size_t>(problem.destination);
  Mapping out;
  if (T[n_mod - 1][dest] >= kInf) return out;
  out.feasible = true;
  out.delay_s = T[n_mod - 1][dest];
  out.node_of_module.assign(n_mod, -1);
  int v = problem.destination;
  for (std::size_t m = n_mod; m-- > 0;) {
    out.node_of_module[m] = v;
    if (m > 0) v = prev[m][static_cast<std::size_t>(v)];
  }
  return out;
}

namespace {

void exhaustive_dfs(const cost::NetworkProfile& profile,
                    const MappingProblem& problem,
                    const std::vector<std::vector<int>>& out_neighbors,
                    std::vector<int>& assignment, std::size_t m,
                    double partial, Mapping& best, std::size_t& states,
                    std::size_t max_states) {
  if (++states > max_states) {
    throw std::length_error("ExhaustiveMapper: state budget exceeded");
  }
  if (partial >= best.delay_s) return;  // branch and bound
  const std::size_t n_mod = problem.module_count();
  if (m == n_mod) {
    if (assignment.back() != problem.destination) return;
    best.delay_s = partial;
    best.feasible = true;
    best.node_of_module = assignment;
    return;
  }

  const int here = assignment[m - 1];
  // Option 1: stay on the current node.
  {
    const auto hi = static_cast<std::size_t>(here);
    if (problem.allowed[m][hi]) {
      assignment.push_back(here);
      exhaustive_dfs(profile, problem, out_neighbors, assignment, m + 1,
                     partial + problem.unit_compute[m] / profile.power(here),
                     best, states, max_states);
      assignment.pop_back();
    }
  }
  // Option 2: hop across one outgoing link.
  for (const int v : out_neighbors[static_cast<std::size_t>(here)]) {
    const auto vi = static_cast<std::size_t>(v);
    if (!problem.allowed[m][vi]) continue;
    const double hop =
        profile.transfer_seconds(here, v, problem.messages[m - 1]) +
        profile.activation_overhead(v);
    assignment.push_back(v);
    exhaustive_dfs(profile, problem, out_neighbors, assignment, m + 1,
                   partial + hop + problem.unit_compute[m] / profile.power(v),
                   best, states, max_states);
    assignment.pop_back();
  }
}

}  // namespace

Mapping ExhaustiveMapper::solve(const cost::NetworkProfile& profile,
                                const MappingProblem& problem,
                                std::size_t max_states) const {
  Mapping best;
  if (problem.module_count() == 0) return best;
  if (!problem.allowed[0][static_cast<std::size_t>(problem.source)]) return best;

  std::vector<std::vector<int>> out_neighbors(
      static_cast<std::size_t>(profile.node_count()));
  for (const auto& [edge, est] : profile.links()) {
    out_neighbors[static_cast<std::size_t>(edge.first)].push_back(edge.second);
  }

  std::vector<int> assignment = {problem.source};
  std::size_t states = 0;
  exhaustive_dfs(profile, problem, out_neighbors, assignment, 1, 0.0, best,
                 states, max_states);
  return best;
}

}  // namespace ricsa::core
