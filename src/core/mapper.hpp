// Optimal visualization pipeline configuration — the paper's core
// contribution (Section 4.5).
//
// Given a linear pipeline of n+1 modules and a transport network G = (V, E),
// find the decomposition into groups and the one-to-one mapping onto a path
// from the source node to the destination (client) node that minimizes the
// end-to-end delay of Eq. 2:
//
//   T = sum_groups (1/p_node) sum_{j in group} c_j m_{j-1}
//     + sum_path_links m(group) / b_link
//
// DpMapper implements the dynamic program of Eqs. 9/10: T^j(v_i) is the
// minimal delay with the first j messages mapped to a path ending at v_i;
// each step either inherits (module co-located with its predecessor) or
// crosses one incident link. Complexity O(n * |E|) — the paper's guarantee
// that the system "scales well as the network size increases". Practical
// feasibility constraints (paper: "some nodes are only capable of executing
// certain visualization modules") are imposed per (module, node).
//
// ExhaustiveMapper enumerates every stay-or-hop assignment and serves as the
// optimality ground truth in tests and the Fig.-9-style loop comparisons.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "cost/network_profile.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/vrt.hpp"

namespace ricsa::core {

struct MappingProblem {
  /// Per-module compute seconds on a unit-power node (c_j * m_{j-1});
  /// index 0 is the source module (always 0).
  std::vector<double> unit_compute;
  /// Message sizes m_j: messages[j] is emitted by module j (j = 0..n-1).
  std::vector<std::size_t> messages;
  /// allowed[module][node]: feasibility mask.
  std::vector<std::vector<bool>> allowed;
  int source = 0;
  int destination = 0;

  std::size_t module_count() const { return unit_compute.size(); }

  /// Standard construction: source pinned to `source`, display pinned to
  /// `destination`, GPU-requiring modules restricted to GPU nodes.
  static MappingProblem from_pipeline(const pipeline::PipelineSpec& spec,
                                      const cost::NetworkProfile& profile,
                                      int source, int destination);
};

struct Mapping {
  std::vector<int> node_of_module;
  double delay_s = std::numeric_limits<double>::infinity();
  bool feasible = false;

  pipeline::VisualizationRoutingTable to_vrt(std::uint32_t version = 0) const {
    return pipeline::vrt_from_assignment(node_of_module, delay_s, version);
  }
};

/// Eq. 2 evaluator: end-to-end delay of a concrete assignment (infinity when
/// the assignment violates feasibility or uses a non-existent link).
double predict_delay(const cost::NetworkProfile& profile,
                     const MappingProblem& problem,
                     const std::vector<int>& node_of_module);

class DpMapper {
 public:
  /// Solve Eqs. 9/10. Returns an infeasible Mapping when no valid path
  /// exists.
  Mapping solve(const cost::NetworkProfile& profile,
                const MappingProblem& problem) const;
};

class ExhaustiveMapper {
 public:
  /// Enumerates all assignments (exponential; small instances only). The
  /// `max_states` guard throws std::length_error beyond ~10^7 states.
  Mapping solve(const cost::NetworkProfile& profile,
                const MappingProblem& problem,
                std::size_t max_states = 10'000'000) const;
};

}  // namespace ricsa::core
