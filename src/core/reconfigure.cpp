#include "core/reconfigure.hpp"

namespace ricsa::core {

ReconfigureOutcome Reconfigurator::update(const cost::NetworkProfile& profile) {
  ReconfigureOutcome outcome;
  const Mapping fresh = mapper_.solve(profile, problem_);

  if (!current_.feasible) {
    // First solve (or we had nothing workable): adopt whatever we got.
    current_ = fresh;
    outcome.changed = fresh.feasible;
    outcome.mapping = current_;
    outcome.stale_delay_s = fresh.delay_s;
    if (outcome.changed) {
      outcome.vrt = current_.to_vrt(++version_);
    }
    return outcome;
  }

  // Re-price the standing assignment under the new conditions.
  outcome.stale_delay_s =
      predict_delay(profile, problem_, current_.node_of_module);

  const bool old_broken = !(outcome.stale_delay_s <
                            std::numeric_limits<double>::infinity());
  const bool better_enough =
      fresh.feasible &&
      fresh.delay_s < outcome.stale_delay_s * (1.0 - min_improvement_);

  if (fresh.feasible && (old_broken || better_enough) &&
      fresh.node_of_module != current_.node_of_module) {
    current_ = fresh;
    outcome.changed = true;
    outcome.vrt = current_.to_vrt(++version_);
  } else {
    outcome.vrt = current_.to_vrt(version_);
  }
  outcome.mapping = current_;
  return outcome;
}

}  // namespace ricsa::core
