// Adaptive reconfiguration (Section 5.3.2): "the initial configuration is
// automatically computed using dynamic programming by the CM node and the
// mapping scheme is adaptively re-configured during runtime in response to
// drastic network or host condition changes."
//
// The Reconfigurator re-solves the DP against every fresh NetworkProfile and
// reports whether the optimal assignment moved, bumping the VRT version so
// downstream nodes can discard stale tables. A relative-improvement
// threshold prevents thrashing on measurement noise.
#pragma once

#include <cstdint>

#include "core/mapper.hpp"

namespace ricsa::core {

struct ReconfigureOutcome {
  /// True when a new VRT was issued.
  bool changed = false;
  Mapping mapping;
  pipeline::VisualizationRoutingTable vrt;
  /// Delay of keeping the previous assignment under the new conditions.
  double stale_delay_s = 0.0;
};

class Reconfigurator {
 public:
  /// min_improvement: re-route only if the new optimum beats the re-evaluated
  /// old assignment by this relative margin (0 = always take the optimum).
  explicit Reconfigurator(MappingProblem problem, double min_improvement = 0.05)
      : problem_(std::move(problem)), min_improvement_(min_improvement) {}

  /// Solve against a fresh profile; issue a new VRT if warranted.
  ReconfigureOutcome update(const cost::NetworkProfile& profile);

  std::uint32_t version() const noexcept { return version_; }
  const Mapping& current() const noexcept { return current_; }

 private:
  MappingProblem problem_;
  double min_improvement_;
  DpMapper mapper_;
  Mapping current_;
  std::uint32_t version_ = 0;
};

}  // namespace ricsa::core
