#include "hydro/euler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ricsa::hydro {

namespace {

constexpr double kFloor = 1e-12;

struct P5 {
  double rho, u, v, w, p;  // u = longitudinal velocity for the active sweep
};

struct U5 {
  double rho, mu, mv, mw, e;
};

U5 to_conserved(const P5& s, double gamma) {
  const double kin = 0.5 * s.rho * (s.u * s.u + s.v * s.v + s.w * s.w);
  return {s.rho, s.rho * s.u, s.rho * s.v, s.rho * s.w,
          s.p / (gamma - 1.0) + kin};
}

U5 flux_of(const P5& s, double gamma) {
  const U5 c = to_conserved(s, gamma);
  return {c.mu, c.mu * s.u + s.p, c.mv * s.u, c.mw * s.u,
          s.u * (c.e + s.p)};
}

U5 add(const U5& a, const U5& b, double fb) {
  return {a.rho + fb * b.rho, a.mu + fb * b.mu, a.mv + fb * b.mv,
          a.mw + fb * b.mw, a.e + fb * b.e};
}

/// HLLC approximate Riemann flux (Toro) with passive transverse momentum.
U5 hllc_flux(const P5& L, const P5& R, double gamma) {
  const double aL = std::sqrt(gamma * L.p / L.rho);
  const double aR = std::sqrt(gamma * R.p / R.rho);
  const double sL = std::min(L.u - aL, R.u - aR);
  const double sR = std::max(L.u + aL, R.u + aR);

  if (sL >= 0.0) return flux_of(L, gamma);
  if (sR <= 0.0) return flux_of(R, gamma);

  const double num = R.p - L.p + L.rho * L.u * (sL - L.u) -
                     R.rho * R.u * (sR - R.u);
  const double den = L.rho * (sL - L.u) - R.rho * (sR - R.u);
  const double sStar = den != 0.0 ? num / den : 0.0;

  const auto star_flux = [&](const P5& K, double sK) {
    const U5 uK = to_conserved(K, gamma);
    const double factor = K.rho * (sK - K.u) / (sK - sStar);
    U5 uStar;
    uStar.rho = factor;
    uStar.mu = factor * sStar;
    uStar.mv = factor * K.v;
    uStar.mw = factor * K.w;
    uStar.e = factor * (uK.e / K.rho +
                        (sStar - K.u) * (sStar + K.p / (K.rho * (sK - K.u))));
    const U5 fK = flux_of(K, gamma);
    return add(fK, add(uStar, uK, -1.0), sK);
  };

  return sStar >= 0.0 ? star_flux(L, sL) : star_flux(R, sR);
}

double minmod(double a, double b) {
  if (a * b <= 0.0) return 0.0;
  return std::abs(a) < std::abs(b) ? a : b;
}

}  // namespace

EulerSolver3D::EulerSolver3D(int nx, int ny, int nz, EulerConfig config)
    : nx_(nx), ny_(ny), nz_(nz), config_(config) {
  if (nx <= 0 || ny <= 0 || nz <= 0) {
    throw std::invalid_argument("EulerSolver3D: dimensions must be positive");
  }
  Conserved ambient;
  ambient.rho = 1.0;
  ambient.e = 1.0 / (config.gamma - 1.0);
  cells_.assign(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
                    static_cast<std::size_t>(nz),
                ambient);
}

Primitive3 EulerSolver3D::primitive(int i, int j, int k) const {
  const Conserved& c = cells_[index(i, j, k)];
  const double rho = std::max(c.rho, kFloor);
  const double u = c.mx / rho, v = c.my / rho, w = c.mz / rho;
  const double kin = 0.5 * rho * (u * u + v * v + w * w);
  const double p = std::max((config_.gamma - 1.0) * (c.e - kin), kFloor);
  return {rho, u, v, w, p};
}

void EulerSolver3D::set_primitive(int i, int j, int k, const Primitive3& s) {
  Conserved& c = cells_[index(i, j, k)];
  c.rho = s.rho;
  c.mx = s.rho * s.u;
  c.my = s.rho * s.v;
  c.mz = s.rho * s.w;
  const double kin = 0.5 * s.rho * (s.u * s.u + s.v * s.v + s.w * s.w);
  c.e = s.p / (config_.gamma - 1.0) + kin;
}

double EulerSolver3D::compute_dt() const {
  double max_speed = 1e-12;
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        const Primitive3 s = primitive(i, j, k);
        const double a = std::sqrt(config_.gamma * s.p / s.rho);
        const double vel =
            std::max({std::abs(s.u), std::abs(s.v), std::abs(s.w)});
        max_speed = std::max(max_speed, vel + a);
      }
    }
  }
  return config_.cfl * config_.dx / max_speed;
}

void EulerSolver3D::sweep_pencil(Conserved* line, int n, int axis, double dt,
                                 Boundary lo, Boundary hi) {
  if (n < 2) return;
  const double gamma = config_.gamma;
  const int N = n + 4;  // two ghosts per side
  static thread_local std::vector<P5> w;
  static thread_local std::vector<P5> slope;
  static thread_local std::vector<U5> flux;
  w.assign(static_cast<std::size_t>(N), P5{});
  slope.assign(static_cast<std::size_t>(N), P5{});
  flux.assign(static_cast<std::size_t>(n + 1), U5{});

  // Gather primitives with the sweep axis's momentum as the longitudinal u.
  for (int i = 0; i < n; ++i) {
    const Conserved& c = line[i];
    const double rho = std::max(c.rho, kFloor);
    double mu, mv, mw;
    switch (axis) {
      case 0: mu = c.mx; mv = c.my; mw = c.mz; break;
      case 1: mu = c.my; mv = c.mz; mw = c.mx; break;
      default: mu = c.mz; mv = c.mx; mw = c.my; break;
    }
    const double u = mu / rho, v = mv / rho, ww = mw / rho;
    const double kin = 0.5 * rho * (u * u + v * v + ww * ww);
    const double p = std::max((gamma - 1.0) * (c.e - kin), kFloor);
    w[static_cast<std::size_t>(i + 2)] = {rho, u, v, ww, p};
  }

  // Ghost cells.
  const auto fill_ghost = [&](int ghost, int src_edge, int mirror, Boundary bc) {
    switch (bc) {
      case Boundary::kOutflow:
        w[static_cast<std::size_t>(ghost)] = w[static_cast<std::size_t>(src_edge)];
        break;
      case Boundary::kReflect:
        w[static_cast<std::size_t>(ghost)] = w[static_cast<std::size_t>(mirror)];
        w[static_cast<std::size_t>(ghost)].u = -w[static_cast<std::size_t>(mirror)].u;
        break;
      case Boundary::kPeriodic:
        break;  // handled below
      case Boundary::kInflow: {
        const Primitive3& in = config_.inflow;
        double u, v, ww;
        switch (axis) {
          case 0: u = in.u; v = in.v; ww = in.w; break;
          case 1: u = in.v; v = in.w; ww = in.u; break;
          default: u = in.w; v = in.u; ww = in.v; break;
        }
        w[static_cast<std::size_t>(ghost)] = {in.rho, u, v, ww, in.p};
        break;
      }
    }
  };
  fill_ghost(1, 2, 2, lo);
  fill_ghost(0, 2, 3, lo);
  fill_ghost(n + 2, n + 1, n + 1, hi);
  fill_ghost(n + 3, n + 1, n, hi);
  if (lo == Boundary::kPeriodic || hi == Boundary::kPeriodic) {
    w[1] = w[static_cast<std::size_t>(n + 1)];
    w[0] = w[static_cast<std::size_t>(n)];
    w[static_cast<std::size_t>(n + 2)] = w[2];
    w[static_cast<std::size_t>(n + 3)] = w[3];
  }

  // Minmod-limited slopes of the primitives.
  for (int i = 1; i < N - 1; ++i) {
    const P5& m = w[static_cast<std::size_t>(i - 1)];
    const P5& c = w[static_cast<std::size_t>(i)];
    const P5& pl = w[static_cast<std::size_t>(i + 1)];
    slope[static_cast<std::size_t>(i)] = {
        minmod(c.rho - m.rho, pl.rho - c.rho), minmod(c.u - m.u, pl.u - c.u),
        minmod(c.v - m.v, pl.v - c.v), minmod(c.w - m.w, pl.w - c.w),
        minmod(c.p - m.p, pl.p - c.p)};
  }

  // Face fluxes: face f sits between padded cells (f+1) and (f+2).
  for (int f = 0; f <= n; ++f) {
    const int il = f + 1, ir = f + 2;
    const P5& cl = w[static_cast<std::size_t>(il)];
    const P5& sl = slope[static_cast<std::size_t>(il)];
    const P5& cr = w[static_cast<std::size_t>(ir)];
    const P5& sr = slope[static_cast<std::size_t>(ir)];
    P5 L{cl.rho + 0.5 * sl.rho, cl.u + 0.5 * sl.u, cl.v + 0.5 * sl.v,
         cl.w + 0.5 * sl.w, cl.p + 0.5 * sl.p};
    P5 R{cr.rho - 0.5 * sr.rho, cr.u - 0.5 * sr.u, cr.v - 0.5 * sr.v,
         cr.w - 0.5 * sr.w, cr.p - 0.5 * sr.p};
    L.rho = std::max(L.rho, kFloor);
    L.p = std::max(L.p, kFloor);
    R.rho = std::max(R.rho, kFloor);
    R.p = std::max(R.p, kFloor);
    flux[static_cast<std::size_t>(f)] = hllc_flux(L, R, gamma);
  }

  // Conservative update; scatter back with the axis permutation undone.
  const double lambda = dt / config_.dx;
  for (int i = 0; i < n; ++i) {
    const P5& c = w[static_cast<std::size_t>(i + 2)];
    U5 u = to_conserved(c, gamma);
    u = add(u, flux[static_cast<std::size_t>(i)], lambda);
    u = add(u, flux[static_cast<std::size_t>(i + 1)], -lambda);
    Conserved& out = line[i];
    out.rho = std::max(u.rho, kFloor);
    switch (axis) {
      case 0: out.mx = u.mu; out.my = u.mv; out.mz = u.mw; break;
      case 1: out.my = u.mu; out.mz = u.mv; out.mx = u.mw; break;
      default: out.mz = u.mu; out.mx = u.mv; out.my = u.mw; break;
    }
    out.e = u.e;
  }
}

void EulerSolver3D::sweepx(double dt) {
  if (nx_ < 2) return;
  std::vector<Conserved> line(static_cast<std::size_t>(nx_));
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) line[static_cast<std::size_t>(i)] = cells_[index(i, j, k)];
      sweep_pencil(line.data(), nx_, 0, dt, config_.boundaries[0],
                   config_.boundaries[1]);
      for (int i = 0; i < nx_; ++i) cells_[index(i, j, k)] = line[static_cast<std::size_t>(i)];
    }
  }
}

void EulerSolver3D::sweepy(double dt) {
  if (ny_ < 2) return;
  std::vector<Conserved> line(static_cast<std::size_t>(ny_));
  for (int k = 0; k < nz_; ++k) {
    for (int i = 0; i < nx_; ++i) {
      for (int j = 0; j < ny_; ++j) line[static_cast<std::size_t>(j)] = cells_[index(i, j, k)];
      sweep_pencil(line.data(), ny_, 1, dt, config_.boundaries[2],
                   config_.boundaries[3]);
      for (int j = 0; j < ny_; ++j) cells_[index(i, j, k)] = line[static_cast<std::size_t>(j)];
    }
  }
}

void EulerSolver3D::sweepz(double dt) {
  if (nz_ < 2) return;
  std::vector<Conserved> line(static_cast<std::size_t>(nz_));
  for (int j = 0; j < ny_; ++j) {
    for (int i = 0; i < nx_; ++i) {
      for (int k = 0; k < nz_; ++k) line[static_cast<std::size_t>(k)] = cells_[index(i, j, k)];
      sweep_pencil(line.data(), nz_, 2, dt, config_.boundaries[4],
                   config_.boundaries[5]);
      for (int k = 0; k < nz_; ++k) cells_[index(i, j, k)] = line[static_cast<std::size_t>(k)];
    }
  }
}

void EulerSolver3D::step() {
  const double dt = compute_dt();
  if (cycle_ % 2 == 0) {
    sweepx(dt);
    sweepy(dt);
    sweepz(dt);
  } else {
    sweepz(dt);
    sweepy(dt);
    sweepx(dt);
  }
  time_ += dt;
  ++cycle_;
  if (post_step_) post_step_(*this);
}

data::ScalarVolume EulerSolver3D::snapshot(Field field) const {
  const char* names[] = {"density", "pressure", "velocity", "energy"};
  data::ScalarVolume out(nx_, ny_, nz_, names[static_cast<int>(field)]);
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        const Primitive3 s = primitive(i, j, k);
        float v = 0;
        switch (field) {
          case Field::kDensity: v = static_cast<float>(s.rho); break;
          case Field::kPressure: v = static_cast<float>(s.p); break;
          case Field::kVelocityMagnitude:
            v = static_cast<float>(
                std::sqrt(s.u * s.u + s.v * s.v + s.w * s.w));
            break;
          case Field::kEnergy:
            v = static_cast<float>(cells_[index(i, j, k)].e);
            break;
        }
        out.at(i, j, k) = v;
      }
    }
  }
  return out;
}

data::VectorVolume EulerSolver3D::velocity() const {
  data::VectorVolume out(nx_, ny_, nz_);
  for (int k = 0; k < nz_; ++k) {
    for (int j = 0; j < ny_; ++j) {
      for (int i = 0; i < nx_; ++i) {
        const Primitive3 s = primitive(i, j, k);
        out.at(i, j, k) = data::Vec3{static_cast<float>(s.u),
                                     static_cast<float>(s.v),
                                     static_cast<float>(s.w)};
      }
    }
  }
  return out;
}

double EulerSolver3D::total_mass() const {
  double m = 0;
  for (const Conserved& c : cells_) m += c.rho;
  return m * config_.dx * config_.dx * config_.dx;
}

double EulerSolver3D::total_energy() const {
  double e = 0;
  for (const Conserved& c : cells_) e += c.e;
  return e * config_.dx * config_.dx * config_.dx;
}

}  // namespace ricsa::hydro
