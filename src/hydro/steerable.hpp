// The steerable-simulation abstraction the RICSA framework talks to.
//
// Section 5.2: "RICSA is designed as a universal framework to support various
// simulation programs possibly written in different programming languages. ...
// API function calls are inserted at certain points in the simulation code".
// Steerable is the C++ face of that contract: anything that can advance,
// snapshot a named variable, and accept parameter updates can be monitored
// and steered. HydroSimulation adapts the Euler solver setups; the steering
// library's SimulationServer drives any Steerable through the six RICSA_*
// calls of Fig. 7.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/volume.hpp"
#include "hydro/euler.hpp"
#include "hydro/setups.hpp"

namespace ricsa::hydro {

class Steerable {
 public:
  virtual ~Steerable() = default;

  virtual std::string name() const = 0;
  virtual int cycle() const = 0;
  virtual double time() const = 0;

  /// Advance the computation by `cycles` steps.
  virtual void advance(int cycles) = 0;

  /// Monitorable variables (e.g. "density", "pressure").
  virtual std::vector<std::string> variables() const = 0;
  virtual data::ScalarVolume snapshot(const std::string& variable) const = 0;

  /// Steerable parameters with current values.
  virtual std::map<std::string, double> parameters() const = 0;
  /// Returns false for unknown names or rejected values.
  virtual bool set_parameter(const std::string& name, double value) = 0;
};

/// Adapts an Euler-solver problem setup into a Steerable. Steerable knobs:
/// "gamma", "cfl", plus per-setup extras (bowshock: "mach", "source_density",
/// "source_pressure"; sedov: none beyond the common two).
class HydroSimulation final : public Steerable {
 public:
  enum class Kind { kSod, kBowshock, kSedov };

  explicit HydroSimulation(Kind kind, int resolution = 0);

  std::string name() const override;
  int cycle() const override { return solver_->cycle(); }
  double time() const override { return solver_->time(); }
  void advance(int cycles) override;
  std::vector<std::string> variables() const override;
  data::ScalarVolume snapshot(const std::string& variable) const override;
  std::map<std::string, double> parameters() const override;
  bool set_parameter(const std::string& name, double value) override;

  EulerSolver3D& solver() noexcept { return *solver_; }

 private:
  void rebuild_bowshock_hook();

  Kind kind_;
  std::unique_ptr<EulerSolver3D> solver_;
  BowshockOptions bowshock_;
};

}  // namespace ricsa::hydro
