// Dimensionally-split finite-volume solver for the 3D Euler equations —
// the stand-in for the VH1 hydrodynamics code the paper instruments
// (Fig. 7's "sweepx; sweepy; sweepz" main loop is exactly this solver's
// step() body). MUSCL (minmod-limited) reconstruction + HLLC fluxes.
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "data/volume.hpp"

namespace ricsa::hydro {

enum class Boundary { kOutflow, kReflect, kPeriodic, kInflow };

enum class Field { kDensity, kPressure, kVelocityMagnitude, kEnergy };

struct Conserved {
  double rho = 1.0;
  double mx = 0.0, my = 0.0, mz = 0.0;
  double e = 1.0;  // total energy density
};

struct Primitive3 {
  double rho = 1.0;
  double u = 0.0, v = 0.0, w = 0.0;
  double p = 1.0;
};

struct EulerConfig {
  double gamma = 1.4;
  double cfl = 0.4;
  /// Cell size (cubic cells).
  double dx = 1.0;
  std::array<Boundary, 6> boundaries = {Boundary::kOutflow, Boundary::kOutflow,
                                        Boundary::kOutflow, Boundary::kOutflow,
                                        Boundary::kOutflow, Boundary::kOutflow};
  /// Fixed state used by kInflow boundaries.
  Primitive3 inflow{1.0, 0.0, 0.0, 0.0, 1.0};
};

class EulerSolver3D {
 public:
  EulerSolver3D(int nx, int ny, int nz, EulerConfig config = {});

  int nx() const noexcept { return nx_; }
  int ny() const noexcept { return ny_; }
  int nz() const noexcept { return nz_; }
  double time() const noexcept { return time_; }
  int cycle() const noexcept { return cycle_; }

  EulerConfig& config() noexcept { return config_; }
  const EulerConfig& config() const noexcept { return config_; }

  Primitive3 primitive(int i, int j, int k) const;
  void set_primitive(int i, int j, int k, const Primitive3& state);
  Conserved& conserved(int i, int j, int k) { return cells_[index(i, j, k)]; }
  const Conserved& conserved(int i, int j, int k) const {
    return cells_[index(i, j, k)];
  }

  /// Largest stable timestep under the configured CFL number.
  double compute_dt() const;

  /// One full cycle: sweepx, sweepy, sweepz at a common dt (Strang order
  /// alternates between cycles to cancel splitting bias), then the per-step
  /// hook (used by setups to maintain sources, e.g. the stellar wind).
  void step();

  /// Directional sweeps, exposed with VH1's names (Fig. 7).
  void sweepx(double dt);
  void sweepy(double dt);
  void sweepz(double dt);

  /// Hook invoked at the end of every step().
  void set_post_step(std::function<void(EulerSolver3D&)> hook) {
    post_step_ = std::move(hook);
  }

  /// Snapshot a field as a float volume (what gets pushed to the viz node).
  data::ScalarVolume snapshot(Field field) const;
  data::VectorVolume velocity() const;

  /// Total mass / energy over the domain (conservation diagnostics).
  double total_mass() const;
  double total_energy() const;

 private:
  std::size_t index(int i, int j, int k) const {
    return static_cast<std::size_t>(i) +
           static_cast<std::size_t>(nx_) *
               (static_cast<std::size_t>(j) +
                static_cast<std::size_t>(ny_) * static_cast<std::size_t>(k));
  }
  /// Sweep a single pencil of `n` cells (stride-gathered); axis selects which
  /// momentum component is longitudinal; lo/hi are that axis's boundaries.
  void sweep_pencil(Conserved* line, int n, int axis, double dt, Boundary lo,
                    Boundary hi);

  int nx_, ny_, nz_;
  EulerConfig config_;
  std::vector<Conserved> cells_;
  double time_ = 0.0;
  int cycle_ = 0;
  std::function<void(EulerSolver3D&)> post_step_;
};

}  // namespace ricsa::hydro
