#include "hydro/setups.hpp"

#include <cmath>

#include "hydro/riemann_exact.hpp"

namespace ricsa::hydro {

std::unique_ptr<EulerSolver3D> make_sod(const SodOptions& options) {
  EulerConfig config;
  config.gamma = options.gamma;
  config.dx = 1.0 / options.nx;
  config.boundaries = {Boundary::kOutflow, Boundary::kOutflow,
                       Boundary::kOutflow, Boundary::kOutflow,
                       Boundary::kOutflow, Boundary::kOutflow};
  auto solver = std::make_unique<EulerSolver3D>(options.nx, options.ny,
                                                options.nz, config);
  const PrimitiveState L = sod_left();
  const PrimitiveState R = sod_right();
  for (int k = 0; k < options.nz; ++k) {
    for (int j = 0; j < options.ny; ++j) {
      for (int i = 0; i < options.nx; ++i) {
        const double x = (i + 0.5) / options.nx;
        const PrimitiveState& s = x < options.diaphragm ? L : R;
        solver->set_primitive(i, j, k, {s.rho, s.u, 0.0, 0.0, s.p});
      }
    }
  }
  return solver;
}

namespace {
void apply_wind_source(EulerSolver3D& solver, const BowshockOptions& opt) {
  const int n = solver.nx();
  const double cx = 0.55 * n, cy = 0.5 * n, cz = 0.5 * n;
  const double r = opt.source_radius_frac * n;
  const int lo_x = std::max(0, static_cast<int>(cx - r - 1));
  const int hi_x = std::min(n - 1, static_cast<int>(cx + r + 1));
  for (int k = 0; k < solver.nz(); ++k) {
    for (int j = 0; j < solver.ny(); ++j) {
      for (int i = lo_x; i <= hi_x; ++i) {
        const double dx = i - cx, dy = j - cy, dz = k - cz;
        if (dx * dx + dy * dy + dz * dz <= r * r) {
          solver.set_primitive(i, j, k, {opt.source_density, 0.0, 0.0, 0.0,
                                         opt.source_pressure});
        }
      }
    }
  }
}
}  // namespace

std::unique_ptr<EulerSolver3D> make_bowshock(const BowshockOptions& options) {
  EulerConfig config;
  config.gamma = options.gamma;
  config.dx = 1.0 / options.n;
  // Ambient: rho = 1, p = 1/gamma so the sound speed is exactly 1 and the
  // inflow speed equals the Mach number.
  const double p_ambient = 1.0 / options.gamma;
  config.inflow = {1.0, options.mach, 0.0, 0.0, p_ambient};
  config.boundaries = {Boundary::kInflow, Boundary::kOutflow,
                       Boundary::kOutflow, Boundary::kOutflow,
                       Boundary::kOutflow, Boundary::kOutflow};
  auto solver =
      std::make_unique<EulerSolver3D>(options.n, options.n, options.n, config);
  for (int k = 0; k < options.n; ++k) {
    for (int j = 0; j < options.n; ++j) {
      for (int i = 0; i < options.n; ++i) {
        solver->set_primitive(i, j, k,
                              {1.0, options.mach, 0.0, 0.0, p_ambient});
      }
    }
  }
  apply_wind_source(*solver, options);
  solver->set_post_step(
      [options](EulerSolver3D& s) { apply_wind_source(s, options); });
  return solver;
}

std::unique_ptr<EulerSolver3D> make_sedov(const SedovOptions& options) {
  EulerConfig config;
  config.gamma = options.gamma;
  config.dx = 1.0 / options.n;
  auto solver =
      std::make_unique<EulerSolver3D>(options.n, options.n, options.n, config);
  const double p_ambient = 1e-3;
  for (int k = 0; k < options.n; ++k) {
    for (int j = 0; j < options.n; ++j) {
      for (int i = 0; i < options.n; ++i) {
        solver->set_primitive(i, j, k, {1.0, 0, 0, 0, p_ambient});
      }
    }
  }
  // Deposit the blast energy as pressure in a small central ball.
  const int c = options.n / 2;
  const int r = options.deposit_radius;
  int cells = 0;
  for (int k = -r; k <= r; ++k)
    for (int j = -r; j <= r; ++j)
      for (int i = -r; i <= r; ++i)
        if (i * i + j * j + k * k <= r * r) ++cells;
  const double volume = cells * config.dx * config.dx * config.dx;
  const double p_blast =
      (options.gamma - 1.0) * options.blast_energy / volume;
  for (int k = -r; k <= r; ++k) {
    for (int j = -r; j <= r; ++j) {
      for (int i = -r; i <= r; ++i) {
        if (i * i + j * j + k * k <= r * r) {
          solver->set_primitive(c + i, c + j, c + k, {1.0, 0, 0, 0, p_blast});
        }
      }
    }
  }
  return solver;
}

}  // namespace ricsa::hydro
