// Problem setups for the steerable simulations of Section 5:
//  * Sod shock tube — "a classical hydrodynamics problem ... running on a
//    Linux cluster" (Section 5.1), validated against the exact Riemann
//    solution;
//  * stellar wind bowshock — the pressure animation shown in Fig. 6;
//  * Sedov point blast — a third steerable workload for the examples.
#pragma once

#include <memory>

#include "hydro/euler.hpp"

namespace ricsa::hydro {

struct SodOptions {
  int nx = 200;
  int ny = 1;
  int nz = 1;
  /// Diaphragm position as a fraction of the x extent.
  double diaphragm = 0.5;
  double gamma = 1.4;
};

/// 1D (or thin-3D) Sod tube on x in [0, 1]; dx = 1/nx.
std::unique_ptr<EulerSolver3D> make_sod(const SodOptions& options = {});

struct BowshockOptions {
  int n = 48;
  /// Inflow Mach number of the ambient wind.
  double mach = 2.5;
  /// Dense obstacle ("stellar wind source") radius in cells and density.
  double source_radius_frac = 0.12;
  double source_density = 10.0;
  double source_pressure = 2.5;
  double gamma = 1.4;
};

/// Supersonic flow past a continuously replenished dense sphere: a bow shock
/// forms upstream of the obstacle. The source region is maintained by a
/// post-step hook, so steering source parameters mid-run works naturally.
std::unique_ptr<EulerSolver3D> make_bowshock(const BowshockOptions& options = {});

struct SedovOptions {
  int n = 48;
  double blast_energy = 100.0;
  /// Radius (cells) over which the blast energy is deposited.
  int deposit_radius = 2;
  double gamma = 1.4;
};

/// Point explosion into a uniform cold medium.
std::unique_ptr<EulerSolver3D> make_sedov(const SedovOptions& options = {});

}  // namespace ricsa::hydro
