// Exact Riemann solver for the 1D Euler equations (Toro's iterative scheme).
//
// Provides the closed-form reference solution for the Sod shock tube — the
// simulation the paper runs on its cluster (Section 5.1) — against which the
// finite-volume solver is validated.
#pragma once

namespace ricsa::hydro {

struct PrimitiveState {
  double rho = 1.0;
  double u = 0.0;
  double p = 1.0;
};

struct RiemannSolution {
  /// Pressure and velocity in the star region between the waves.
  double p_star = 0.0;
  double u_star = 0.0;
  int iterations = 0;
};

/// Solve for the star-region state. Throws std::runtime_error if vacuum is
/// generated (pressure positivity violated).
RiemannSolution solve_riemann(const PrimitiveState& left,
                              const PrimitiveState& right, double gamma);

/// Sample the self-similar solution at speed s = x/t.
PrimitiveState sample_riemann(const PrimitiveState& left,
                              const PrimitiveState& right, double gamma,
                              const RiemannSolution& star, double s);

/// Convenience: Sod's classic initial data (1, 0, 1) / (0.125, 0, 0.1).
PrimitiveState sod_left();
PrimitiveState sod_right();

/// Density profile of the Sod problem at time t on x in [0, 1] with the
/// diaphragm at x0 (n samples).
void sod_exact_profile(double t, double x0, int n, double gamma,
                       double* rho_out, double* u_out, double* p_out);

}  // namespace ricsa::hydro
