#include "hydro/riemann_exact.hpp"

#include <cmath>
#include <stdexcept>

namespace ricsa::hydro {

namespace {

/// Toro's pressure function f_K(p) and its derivative for one side.
void pressure_function(double p, const PrimitiveState& s, double gamma,
                       double& f, double& df) {
  const double a = std::sqrt(gamma * s.p / s.rho);
  if (p > s.p) {
    // Shock branch.
    const double ak = 2.0 / ((gamma + 1.0) * s.rho);
    const double bk = (gamma - 1.0) / (gamma + 1.0) * s.p;
    const double root = std::sqrt(ak / (p + bk));
    f = (p - s.p) * root;
    df = root * (1.0 - 0.5 * (p - s.p) / (p + bk));
  } else {
    // Rarefaction branch.
    const double pr = p / s.p;
    f = 2.0 * a / (gamma - 1.0) *
        (std::pow(pr, (gamma - 1.0) / (2.0 * gamma)) - 1.0);
    df = 1.0 / (s.rho * a) * std::pow(pr, -(gamma + 1.0) / (2.0 * gamma));
  }
}

}  // namespace

RiemannSolution solve_riemann(const PrimitiveState& left,
                              const PrimitiveState& right, double gamma) {
  const double aL = std::sqrt(gamma * left.p / left.rho);
  const double aR = std::sqrt(gamma * right.p / right.rho);
  // Vacuum check (Toro eq. 4.40).
  if (2.0 * (aL + aR) / (gamma - 1.0) <= right.u - left.u) {
    throw std::runtime_error("riemann: vacuum generated");
  }

  // Initial guess: two-rarefaction approximation, floored.
  const double z = (gamma - 1.0) / (2.0 * gamma);
  double p = std::pow(
      (aL + aR - 0.5 * (gamma - 1.0) * (right.u - left.u)) /
          (aL / std::pow(left.p, z) + aR / std::pow(right.p, z)),
      1.0 / z);
  p = std::max(p, 1e-10);

  RiemannSolution out;
  for (int iter = 0; iter < 100; ++iter) {
    double fL, dfL, fR, dfR;
    pressure_function(p, left, gamma, fL, dfL);
    pressure_function(p, right, gamma, fR, dfR);
    const double f = fL + fR + (right.u - left.u);
    const double delta = f / (dfL + dfR);
    const double p_new = std::max(p - delta, 1e-12);
    out.iterations = iter + 1;
    if (std::abs(p_new - p) / (0.5 * (p_new + p)) < 1e-12) {
      p = p_new;
      break;
    }
    p = p_new;
  }
  out.p_star = p;
  double fL, dfL, fR, dfR;
  pressure_function(p, left, gamma, fL, dfL);
  pressure_function(p, right, gamma, fR, dfR);
  out.u_star = 0.5 * (left.u + right.u) + 0.5 * (fR - fL);
  return out;
}

PrimitiveState sample_riemann(const PrimitiveState& left,
                              const PrimitiveState& right, double gamma,
                              const RiemannSolution& star, double s) {
  const double g = gamma;
  const double pm = star.p_star;
  const double um = star.u_star;

  if (s <= um) {
    // Left of the contact.
    const PrimitiveState& K = left;
    const double aK = std::sqrt(g * K.p / K.rho);
    if (pm > K.p) {
      // Left shock.
      const double sL =
          K.u - aK * std::sqrt((g + 1.0) / (2.0 * g) * pm / K.p +
                               (g - 1.0) / (2.0 * g));
      if (s <= sL) return K;
      const double rho = K.rho *
                         ((pm / K.p + (g - 1.0) / (g + 1.0)) /
                          ((g - 1.0) / (g + 1.0) * pm / K.p + 1.0));
      return {rho, um, pm};
    }
    // Left rarefaction.
    const double sH = K.u - aK;
    if (s <= sH) return K;
    const double am = aK * std::pow(pm / K.p, (g - 1.0) / (2.0 * g));
    const double sT = um - am;
    if (s >= sT) {
      const double rho = K.rho * std::pow(pm / K.p, 1.0 / g);
      return {rho, um, pm};
    }
    // Inside the fan.
    const double u = 2.0 / (g + 1.0) * (aK + (g - 1.0) / 2.0 * K.u + s);
    const double a = 2.0 / (g + 1.0) * (aK + (g - 1.0) / 2.0 * (K.u - s));
    const double rho = K.rho * std::pow(a / aK, 2.0 / (g - 1.0));
    const double p = K.p * std::pow(a / aK, 2.0 * g / (g - 1.0));
    return {rho, u, p};
  }

  // Right of the contact (mirror).
  const PrimitiveState& K = right;
  const double aK = std::sqrt(g * K.p / K.rho);
  if (pm > K.p) {
    const double sR =
        K.u + aK * std::sqrt((g + 1.0) / (2.0 * g) * pm / K.p +
                             (g - 1.0) / (2.0 * g));
    if (s >= sR) return K;
    const double rho = K.rho *
                       ((pm / K.p + (g - 1.0) / (g + 1.0)) /
                        ((g - 1.0) / (g + 1.0) * pm / K.p + 1.0));
    return {rho, um, pm};
  }
  const double sH = K.u + aK;
  if (s >= sH) return K;
  const double am = aK * std::pow(pm / K.p, (g - 1.0) / (2.0 * g));
  const double sT = um + am;
  if (s <= sT) {
    const double rho = K.rho * std::pow(pm / K.p, 1.0 / g);
    return {rho, um, pm};
  }
  const double u = 2.0 / (g + 1.0) * (-aK + (g - 1.0) / 2.0 * K.u + s);
  const double a = 2.0 / (g + 1.0) * (aK - (g - 1.0) / 2.0 * (K.u - s));
  const double rho = K.rho * std::pow(a / aK, 2.0 / (g - 1.0));
  const double p = K.p * std::pow(a / aK, 2.0 * g / (g - 1.0));
  return {rho, u, p};
}

PrimitiveState sod_left() { return {1.0, 0.0, 1.0}; }
PrimitiveState sod_right() { return {0.125, 0.0, 0.1}; }

void sod_exact_profile(double t, double x0, int n, double gamma,
                       double* rho_out, double* u_out, double* p_out) {
  const PrimitiveState L = sod_left();
  const PrimitiveState R = sod_right();
  const RiemannSolution star = solve_riemann(L, R, gamma);
  for (int i = 0; i < n; ++i) {
    const double x = (static_cast<double>(i) + 0.5) / static_cast<double>(n);
    const double s = t > 0 ? (x - x0) / t : (x < x0 ? -1e30 : 1e30);
    const PrimitiveState state = sample_riemann(L, R, gamma, star, s);
    if (rho_out) rho_out[i] = state.rho;
    if (u_out) u_out[i] = state.u;
    if (p_out) p_out[i] = state.p;
  }
}

}  // namespace ricsa::hydro
