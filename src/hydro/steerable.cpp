#include "hydro/steerable.hpp"

#include <stdexcept>

namespace ricsa::hydro {

HydroSimulation::HydroSimulation(Kind kind, int resolution) : kind_(kind) {
  switch (kind) {
    case Kind::kSod: {
      SodOptions opt;
      if (resolution > 0) opt.nx = resolution;
      // Thin-3D tube rather than a strict 1D pencil: snapshots stay
      // visualizable by the volume pipeline (block decomposition needs at
      // least one cell per axis).
      opt.ny = 4;
      opt.nz = 4;
      solver_ = make_sod(opt);
      break;
    }
    case Kind::kBowshock: {
      if (resolution > 0) bowshock_.n = resolution;
      solver_ = make_bowshock(bowshock_);
      break;
    }
    case Kind::kSedov: {
      SedovOptions opt;
      if (resolution > 0) opt.n = resolution;
      solver_ = make_sedov(opt);
      break;
    }
  }
}

std::string HydroSimulation::name() const {
  switch (kind_) {
    case Kind::kSod: return "sod_shock_tube";
    case Kind::kBowshock: return "stellar_wind_bowshock";
    case Kind::kSedov: return "sedov_blast";
  }
  return "?";
}

void HydroSimulation::advance(int cycles) {
  for (int i = 0; i < cycles; ++i) solver_->step();
}

std::vector<std::string> HydroSimulation::variables() const {
  return {"density", "pressure", "velocity", "energy"};
}

data::ScalarVolume HydroSimulation::snapshot(const std::string& variable) const {
  if (variable == "density") return solver_->snapshot(Field::kDensity);
  if (variable == "pressure") return solver_->snapshot(Field::kPressure);
  if (variable == "velocity") return solver_->snapshot(Field::kVelocityMagnitude);
  if (variable == "energy") return solver_->snapshot(Field::kEnergy);
  throw std::invalid_argument("HydroSimulation: unknown variable " + variable);
}

std::map<std::string, double> HydroSimulation::parameters() const {
  std::map<std::string, double> out{{"gamma", solver_->config().gamma},
                                    {"cfl", solver_->config().cfl}};
  if (kind_ == Kind::kBowshock) {
    out["mach"] = bowshock_.mach;
    out["source_density"] = bowshock_.source_density;
    out["source_pressure"] = bowshock_.source_pressure;
  }
  return out;
}

void HydroSimulation::rebuild_bowshock_hook() {
  // Refresh the inflow state and the source-maintenance hook with the
  // current (possibly steered) options.
  solver_->config().inflow = {1.0, bowshock_.mach, 0.0, 0.0,
                              1.0 / bowshock_.gamma};
  const BowshockOptions opt = bowshock_;
  solver_->set_post_step([opt](EulerSolver3D& s) {
    const int n = s.nx();
    const double cx = 0.55 * n, cy = 0.5 * n, cz = 0.5 * n;
    const double r = opt.source_radius_frac * n;
    for (int k = 0; k < s.nz(); ++k) {
      for (int j = 0; j < s.ny(); ++j) {
        for (int i = 0; i < s.nx(); ++i) {
          const double dx = i - cx, dy = j - cy, dz = k - cz;
          if (dx * dx + dy * dy + dz * dz <= r * r) {
            s.set_primitive(i, j, k, {opt.source_density, 0.0, 0.0, 0.0,
                                      opt.source_pressure});
          }
        }
      }
    }
  });
}

bool HydroSimulation::set_parameter(const std::string& name, double value) {
  if (name == "gamma") {
    if (value <= 1.0 || value > 3.0) return false;
    solver_->config().gamma = value;
    if (kind_ == Kind::kBowshock) {
      bowshock_.gamma = value;
      rebuild_bowshock_hook();
    }
    return true;
  }
  if (name == "cfl") {
    if (value <= 0.0 || value > 0.9) return false;
    solver_->config().cfl = value;
    return true;
  }
  if (kind_ == Kind::kBowshock) {
    if (name == "mach") {
      if (value <= 0.0 || value > 20.0) return false;
      bowshock_.mach = value;
      rebuild_bowshock_hook();
      return true;
    }
    if (name == "source_density") {
      if (value <= 0.0) return false;
      bowshock_.source_density = value;
      rebuild_bowshock_hook();
      return true;
    }
    if (name == "source_pressure") {
      if (value <= 0.0) return false;
      bowshock_.source_pressure = value;
      rebuild_bowshock_hook();
      return true;
    }
  }
  return false;
}

}  // namespace ricsa::hydro
