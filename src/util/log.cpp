#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace ricsa::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, std::string_view component,
                 std::string_view message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  const double t =
      std::chrono::duration<double>(clock::now() - start).count();
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%10.4f] [%s] [%.*s] %.*s\n", t, level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace ricsa::util
