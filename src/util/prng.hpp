// Deterministic pseudo-random number generation for all stochastic components.
//
// Every randomized piece of RICSA (link losses, cross traffic, dataset noise,
// probe scheduling) draws from an explicitly seeded Xoshiro256++ stream so that
// experiments are exactly reproducible across runs and machines.
#pragma once

#include <cstdint>
#include <cmath>
#include <limits>

namespace ricsa::util {

/// SplitMix64: used to expand a single 64-bit seed into a full generator state.
/// Recommended seeding procedure by the xoshiro authors (Blackman & Vigna).
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Xoshiro256++ — fast, high-quality 64-bit PRNG with 2^256-1 period.
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions when convenient.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x243f6a8885a308d3ULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>((*this)() % span);
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (no cached spare: keeps the
  /// generator stateless w.r.t. call parity, which simplifies replay tests).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept {
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    return mean + stddev * u * std::sqrt(-2.0 * std::log(s) / s);
  }

  /// Exponential with given rate (lambda).
  double exponential(double rate) noexcept {
    return -std::log(1.0 - uniform()) / rate;
  }

  /// Derive an independent child stream (for per-link / per-module streams).
  Xoshiro256 fork() noexcept { return Xoshiro256{(*this)()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace ricsa::util
