#include "util/bytes.hpp"

namespace ricsa::util {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u32(bits);
}

void ByteWriter::blob(std::span<const std::uint8_t> bytes) {
  u32(static_cast<std::uint32_t>(bytes.size()));
  raw(bytes);
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::raw(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::uint8_t ByteReader::u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  require(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<std::uint16_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

std::uint32_t ByteReader::u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

std::uint64_t ByteReader::u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  }
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

float ByteReader::f32() {
  const std::uint32_t bits = u32();
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::vector<std::uint8_t> ByteReader::blob() {
  const std::uint32_t n = u32();
  return raw(n);
}

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  require(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<std::uint8_t> ByteReader::raw(std::size_t n) {
  require(n);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace ricsa::util
