// Fixed-size worker pool with a blocking task queue and a parallel_for
// helper. This is the substrate for the "MPI-based visualization modules on
// the cluster CS nodes" of the paper: data-parallel marching cubes and
// scanline-parallel ray casting run their block/row ranges through it.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ricsa::util {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future resolves when it completes.
  std::future<void> submit(std::function<void()> task);

  /// Statically partition [begin, end) into ~size() contiguous chunks and run
  /// body(chunk_begin, chunk_end) on the pool; blocks until all finish.
  /// Exceptions from chunks are rethrown (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace ricsa::util
