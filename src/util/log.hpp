// Minimal leveled logger. Thread-safe, writes to stderr by default.
// Verbosity is global and settable at runtime (examples expose a -v flag).
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace ricsa::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Core sink: formats "[level] [component] message" with a monotonic
/// timestamp and writes atomically to stderr.
void log_message(LogLevel level, std::string_view component,
                 std::string_view message);

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { log_message(level_, component_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_trace(std::string_view c) { return {LogLevel::kTrace, c}; }
inline detail::LogLine log_debug(std::string_view c) { return {LogLevel::kDebug, c}; }
inline detail::LogLine log_info(std::string_view c) { return {LogLevel::kInfo, c}; }
inline detail::LogLine log_warn(std::string_view c) { return {LogLevel::kWarn, c}; }
inline detail::LogLine log_error(std::string_view c) { return {LogLevel::kError, c}; }

}  // namespace ricsa::util
