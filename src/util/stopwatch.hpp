// Wall-clock stopwatch for cost-model calibration measurements (Section 4.4):
// the calibration harness times the real visualization code with this.
#pragma once

#include <chrono>

namespace ricsa::util {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  void restart() { start_ = clock::now(); }
  /// Elapsed seconds since construction or last restart().
  double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ricsa::util
