// Small string helpers shared by the HTTP server, CLI parsing and report
// printers. Nothing clever: split/trim/case-insensitive compare/formatting.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ricsa::util {

std::vector<std::string> split(std::string_view text, char delim);
std::string_view trim(std::string_view text);
std::string to_lower(std::string_view text);
bool iequals(std::string_view a, std::string_view b);
bool starts_with(std::string_view text, std::string_view prefix);

/// "12.3 MB", "980 KB" etc. (binary-ish, decimal multiples as the paper uses).
std::string format_bytes(double bytes);
/// "1.23 s", "45.6 ms" depending on magnitude.
std::string format_seconds(double seconds);
/// printf-style formatting into std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace ricsa::util
