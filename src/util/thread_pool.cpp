#include "util/thread_pool.hpp"

#include <algorithm>

namespace ricsa::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> fut = packaged->get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.emplace([packaged] { (*packaged)(); });
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t chunks = std::min(total, size());
  const std::size_t per = (total + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * per;
    const std::size_t hi = std::min(end, lo + per);
    if (lo >= hi) break;
    futures.push_back(submit([&body, lo, hi] { body(lo, hi); }));
  }
  // Wait for every chunk before rethrowing: the caller may destroy `body`
  // (and the data it references) the moment we propagate, so no chunk can
  // still be running by then. First exception wins.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace ricsa::util
