#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace ricsa::util {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string format_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1000.0 && u < 4) {
    bytes /= 1000.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), bytes < 10 ? "%.2f %s" : "%.1f %s", bytes,
                units[u]);
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[32];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  }
  return buf;
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace ricsa::util
