// Portable binary (de)serialization used by the steering message protocol,
// the visualization routing table, and the RDF dataset container.
//
// Wire format: little-endian fixed-width integers, IEEE-754 doubles,
// length-prefixed strings/blobs. Readers perform bounds checks and throw
// std::out_of_range on truncated input (a remote peer must never be able to
// crash a node with a short message).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ricsa::util {

class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void f32(float v);
  /// Length-prefixed (u32) byte blob.
  void blob(std::span<const std::uint8_t> bytes);
  /// Length-prefixed (u32) UTF-8 string.
  void str(std::string_view s);
  /// Raw bytes, no length prefix.
  void raw(std::span<const std::uint8_t> bytes);

  const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  float f32();
  std::vector<std::uint8_t> blob();
  std::string str();
  /// Read exactly n raw bytes.
  std::vector<std::uint8_t> raw(std::size_t n);

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return pos_ == data_.size(); }
  std::size_t position() const noexcept { return pos_; }

 private:
  void require(std::size_t n) const {
    if (remaining() < n) {
      throw std::out_of_range("ByteReader: truncated input");
    }
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace ricsa::util
