#include "util/base64.hpp"

#include <array>
#include <stdexcept>

namespace ricsa::util {

namespace {
constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<std::int8_t, 256> build_reverse() {
  std::array<std::int8_t, 256> rev{};
  rev.fill(-1);
  for (int i = 0; i < 64; ++i) {
    rev[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  }
  return rev;
}
const std::array<std::int8_t, 256> kReverse = build_reverse();
}  // namespace

std::string base64_encode(std::span<const std::uint8_t> input) {
  std::string out;
  out.reserve((input.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= input.size(); i += 3) {
    const std::uint32_t n = (static_cast<std::uint32_t>(input[i]) << 16) |
                            (static_cast<std::uint32_t>(input[i + 1]) << 8) |
                            input[i + 2];
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back(kAlphabet[(n >> 6) & 63]);
    out.push_back(kAlphabet[n & 63]);
  }
  const std::size_t rem = input.size() - i;
  if (rem == 1) {
    const std::uint32_t n = static_cast<std::uint32_t>(input[i]) << 16;
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out += "==";
  } else if (rem == 2) {
    const std::uint32_t n = (static_cast<std::uint32_t>(input[i]) << 16) |
                            (static_cast<std::uint32_t>(input[i + 1]) << 8);
    out.push_back(kAlphabet[(n >> 18) & 63]);
    out.push_back(kAlphabet[(n >> 12) & 63]);
    out.push_back(kAlphabet[(n >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

std::vector<std::uint8_t> base64_decode(std::string_view input) {
  if (input.size() % 4 != 0) {
    throw std::invalid_argument("base64: length not a multiple of 4");
  }
  std::vector<std::uint8_t> out;
  out.reserve(input.size() / 4 * 3);
  for (std::size_t i = 0; i < input.size(); i += 4) {
    int pad = 0;
    std::uint32_t n = 0;
    for (int j = 0; j < 4; ++j) {
      const char c = input[i + j];
      if (c == '=') {
        if (i + 4 != input.size() || j < 2) {
          throw std::invalid_argument("base64: bad padding position");
        }
        ++pad;
        n <<= 6;
        continue;
      }
      if (pad > 0) throw std::invalid_argument("base64: data after padding");
      const std::int8_t v = kReverse[static_cast<unsigned char>(c)];
      if (v < 0) throw std::invalid_argument("base64: invalid character");
      n = (n << 6) | static_cast<std::uint32_t>(v);
    }
    out.push_back(static_cast<std::uint8_t>(n >> 16));
    if (pad < 2) out.push_back(static_cast<std::uint8_t>(n >> 8));
    if (pad < 1) out.push_back(static_cast<std::uint8_t>(n));
  }
  return out;
}

}  // namespace ricsa::util
