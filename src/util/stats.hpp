// Streaming statistics, histograms and ordinary least squares regression.
//
// Used for: goodput jitter measurement (Section 3), effective-path-bandwidth
// estimation via linear regression on probe delays (Eq. 3), and cost-model
// calibration (Section 4.4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ricsa::util {

/// Welford single-pass mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }
  /// Coefficient of variation (stddev / |mean|); 0 when mean is 0.
  double cv() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::uint64_t total() const noexcept { return total_; }
  double bucket_low(std::size_t i) const noexcept;
  /// Approximate quantile in [0,1] by linear interpolation within buckets.
  double quantile(double q) const noexcept;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Result of an ordinary least squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
  std::size_t n = 0;
};

/// Streaming OLS accumulator.
class LinearRegression {
 public:
  void add(double x, double y) noexcept;
  void reset() noexcept { *this = LinearRegression{}; }
  std::size_t count() const noexcept { return n_; }
  /// Fit over all accumulated points. Requires >= 2 distinct x values;
  /// returns a zero fit otherwise.
  LinearFit fit() const noexcept;

 private:
  std::size_t n_ = 0;
  double sx_ = 0.0, sy_ = 0.0, sxx_ = 0.0, sxy_ = 0.0, syy_ = 0.0;
};

/// Exact quantile of a sample (copies + sorts; for small result sets).
double exact_quantile(std::vector<double> samples, double q);

}  // namespace ricsa::util
