#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ricsa::util {

namespace {
const Json kNullJson{};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    skip_ws();
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) {
      throw std::runtime_error("json parse error: unexpected end of input");
    }
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      take();
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char d = take();
      if (d == '}') break;
      if (d != ',') { --pos_; fail("expected ',' or '}'"); }
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      take();
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char d = take();
      if (d == ']') break;
      if (d != ',') { --pos_; fail("expected ',' or ']'"); }
    }
    return Json(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') break;
      if (c == '\\') {
        const char e = take();
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // Encode BMP codepoint as UTF-8 (surrogate pairs not combined).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') take();
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    double value = 0.0;
    const auto result =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (result.ec != std::errc{} || result.ptr != token.data() + token.size()) {
      pos_ = start;
      fail("bad number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_number(double d, std::string& out) {
  if (d == static_cast<double>(static_cast<std::int64_t>(d)) &&
      std::abs(d) < 1e15) {
    out += std::to_string(static_cast<std::int64_t>(d));
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  }
}
}  // namespace

bool Json::as_bool(bool fallback) const noexcept {
  if (const bool* b = std::get_if<bool>(&value_)) return *b;
  return fallback;
}

double Json::as_number(double fallback) const noexcept {
  if (const double* d = std::get_if<double>(&value_)) return *d;
  return fallback;
}

std::int64_t Json::as_int(std::int64_t fallback) const noexcept {
  if (const double* d = std::get_if<double>(&value_)) {
    return static_cast<std::int64_t>(std::llround(*d));
  }
  return fallback;
}

const std::string& Json::as_string() const { return std::get<std::string>(value_); }
const JsonArray& Json::as_array() const { return std::get<JsonArray>(value_); }
const JsonObject& Json::as_object() const { return std::get<JsonObject>(value_); }
JsonArray& Json::as_array() { return std::get<JsonArray>(value_); }
JsonObject& Json::as_object() { return std::get<JsonObject>(value_); }

const Json& Json::at(std::string_view key) const {
  if (const JsonObject* obj = std::get_if<JsonObject>(&value_)) {
    const auto it = obj->find(std::string(key));
    if (it != obj->end()) return it->second;
  }
  return kNullJson;
}

bool Json::contains(std::string_view key) const {
  if (const JsonObject* obj = std::get_if<JsonObject>(&value_)) {
    return obj->find(std::string(key)) != obj->end();
  }
  return false;
}

Json& Json::operator[](const std::string& key) {
  if (!is_object()) value_ = JsonObject{};
  return std::get<JsonObject>(value_)[key];
}

namespace {
void dump_impl(const Json& v, std::string& out, int indent, int depth);

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}
}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(*this, out, indent, 0);
  return out;
}

namespace {
void dump_impl(const Json& v, std::string& out, int indent, int depth) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    dump_number(v.as_number(), out);
  } else if (v.is_string()) {
    dump_string(v.as_string(), out);
  } else if (v.is_array()) {
    const JsonArray& arr = v.as_array();
    out.push_back('[');
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i) out.push_back(',');
      newline_indent(out, indent, depth + 1);
      dump_impl(arr[i], out, indent, depth + 1);
    }
    if (!arr.empty()) newline_indent(out, indent, depth);
    out.push_back(']');
  } else {
    const JsonObject& obj = v.as_object();
    out.push_back('{');
    bool first = true;
    for (const auto& [key, value] : obj) {
      if (!first) out.push_back(',');
      first = false;
      newline_indent(out, indent, depth + 1);
      dump_string(key, out);
      out.push_back(':');
      if (indent >= 0) out.push_back(' ');
      dump_impl(value, out, indent, depth + 1);
    }
    if (!obj.empty()) newline_indent(out, indent, depth);
    out.push_back('}');
  }
}
}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace ricsa::util
