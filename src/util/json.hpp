// Small JSON value type with parser and writer.
//
// Used by the Ajax web front end (Section 5.1): steering commands arrive as
// JSON POST bodies and monitoring state is pushed to browsers as JSON via
// XMLHttpRequest long-polls. Supports the full JSON grammar minus \u escapes
// beyond BMP pass-through.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace ricsa::util {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::size_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const noexcept { return std::holds_alternative<bool>(value_); }
  bool is_number() const noexcept { return std::holds_alternative<double>(value_); }
  bool is_string() const noexcept { return std::holds_alternative<std::string>(value_); }
  bool is_array() const noexcept { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const noexcept { return std::holds_alternative<JsonObject>(value_); }

  bool as_bool(bool fallback = false) const noexcept;
  double as_number(double fallback = 0.0) const noexcept;
  std::int64_t as_int(std::int64_t fallback = 0) const noexcept;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;
  JsonArray& as_array();
  JsonObject& as_object();

  /// Object field access; returns null Json for missing keys.
  const Json& at(std::string_view key) const;
  bool contains(std::string_view key) const;
  Json& operator[](const std::string& key);

  std::string dump(int indent = -1) const;

  /// Parse a complete JSON document. Throws std::runtime_error on malformed
  /// input with a byte-offset diagnostic.
  static Json parse(std::string_view text);

  friend bool operator==(const Json& a, const Json& b) { return a.value_ == b.value_; }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject>
      value_;
};

}  // namespace ricsa::util
