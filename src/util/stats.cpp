#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ricsa::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::cv() const noexcept {
  const double m = mean();
  return m != 0.0 ? stddev() / std::abs(m) : 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  if (buckets == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need hi > lo and buckets > 0");
  }
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    const auto idx = static_cast<std::size_t>((x - lo_) / width_);
    ++counts_[std::min(idx, counts_.size() - 1)];
  }
}

double Histogram::bucket_low(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bucket_low(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

void LinearRegression::add(double x, double y) noexcept {
  ++n_;
  sx_ += x;
  sy_ += y;
  sxx_ += x * x;
  sxy_ += x * y;
  syy_ += y * y;
}

LinearFit LinearRegression::fit() const noexcept {
  LinearFit out;
  out.n = n_;
  if (n_ < 2) return out;
  const double n = static_cast<double>(n_);
  const double den = n * sxx_ - sx_ * sx_;
  if (den == 0.0) return out;  // all x identical
  out.slope = (n * sxy_ - sx_ * sy_) / den;
  out.intercept = (sy_ - out.slope * sx_) / n;
  const double sst = syy_ - sy_ * sy_ / n;
  if (sst > 0.0) {
    const double ssr = out.slope * (sxy_ - sx_ * sy_ / n);
    out.r_squared = std::clamp(ssr / sst, 0.0, 1.0);
  } else {
    out.r_squared = 1.0;  // y constant and perfectly predicted
  }
  return out;
}

double exact_quantile(std::vector<double> samples, double q) {
  if (samples.empty()) throw std::invalid_argument("exact_quantile: empty");
  std::sort(samples.begin(), samples.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  if (i + 1 >= samples.size()) return samples.back();
  return samples[i] * (1.0 - frac) + samples[i + 1] * frac;
}

}  // namespace ricsa::util
