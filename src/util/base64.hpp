// Base64 codec (RFC 4648). The Ajax front end inlines small preview images
// into JSON poll responses as data URIs; larger frames are fetched as binary.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ricsa::util {

std::string base64_encode(std::span<const std::uint8_t> input);

/// Decodes; throws std::invalid_argument on non-alphabet characters or bad
/// padding.
std::vector<std::uint8_t> base64_decode(std::string_view input);

}  // namespace ricsa::util
