// Relay node: a full re-publish tier in an HTTP fan-out tree.
//
// The node couples a RelaySubscriber (upstream-facing: consumes frames
// from an origin or another relay) with its own HubRegistry + HttpServer
// (downstream-facing: serves /api/poll, /api/stream, /api/state,
// /api/stats with the origin's contract), so browsers and further relays
// subscribe to a relay exactly as they would to the origin. Each tier
// multiplies capacity: an origin serving R relays instead of N browsers
// carries R keep-alive connections and R body copies per frame, while
// each relay fans the same pre-encoded bodies out to its own N/R clients.
//
// Serving-side resync: a downstream client that needs a full snapshot the
// relay's local window cannot provide (fresh join against a delta-only
// head, or an explicit full=1) triggers subscriber.request_resync() —
// latched upstream — and the client's poll re-parks on the local hub
// until the resync's full frame lands (or its own deadline passes).
// Control traffic (POST /api/steer, /api/view) is forwarded upstream
// verbatim: steering always reaches the origin simulation.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "relay/subscriber.hpp"
#include "web/http.hpp"
#include "web/registry.hpp"
#include "web/session.hpp"

namespace ricsa::relay {

struct RelayNodeConfig {
  /// Upstream half (port, views, identity, transport, depth cap).
  SubscriberConfig subscriber;
  /// Local HTTP port (0 = ephemeral).
  int port = 0;
  /// Ceiling on downstream long-poll/stream waits.
  double poll_timeout_s = 15.0;
  /// Local frame window (catch-up replay depth for downstream clients).
  std::size_t frame_window = 256;
  std::size_t hub_workers = 2;
  std::size_t http_workers = 2;
  std::size_t reactors = 1;
  std::size_t max_connections = 8192;
  /// Per-client adaptive pacing for *downstream* clients, identical to the
  /// origin's: a `client=` id on /api/poll or /api/stream gets a session
  /// whose congestion controller (pacing.controller) paces and skips
  /// frames for that client. The relay serves pre-encoded kFull bodies
  /// only — tier downgrades cannot re-encode here — so the controller
  /// governs the interval/skip axis. frame_interval_s is the cadence
  /// downstream promptness is judged against (the upstream publish rate).
  web::PacingConfig pacing;
};

class RelayNode {
 public:
  explicit RelayNode(RelayNodeConfig config);
  ~RelayNode();
  RelayNode(const RelayNode&) = delete;
  RelayNode& operator=(const RelayNode&) = delete;

  /// Start the HTTP server, then the upstream subscriber. Returns the
  /// bound port.
  int start();
  void stop();
  int port() const noexcept { return server_.port(); }

  web::HttpServer& server() noexcept { return server_; }
  web::HubRegistry& registry() noexcept { return registry_; }
  RelaySubscriber& subscriber() noexcept { return subscriber_; }

 private:
  struct RelayStream;  // SSE pump state (relay.cpp)

  void handle_poll(const web::HttpRequest& request,
                   web::HttpServer::ResponseSink sink);
  /// The re-parking poll wait: serves the first frame after `cursor` that
  /// can answer the client (delta when sequential, full otherwise),
  /// escalating one upstream resync and re-parking past delta-only frames
  /// a full-needing client cannot use.
  void park_poll(std::shared_ptr<web::FrameHub> hub, std::string view,
                 std::uint64_t client_since, std::uint64_t cursor,
                 bool want_delta,
                 std::chrono::steady_clock::time_point deadline,
                 std::shared_ptr<web::ClientSession> session,
                 web::FrameHub::WaitOptions options,
                 web::HttpServer::ResponseSink sink);
  void handle_stream(const web::HttpRequest& request,
                     web::HttpServer::StreamSink sink);
  void stream_pump(const std::shared_ptr<RelayStream>& s);
  web::HttpResponse handle_state(const web::HttpRequest& request);
  web::HttpResponse handle_stats(const web::HttpRequest& request);
  web::HttpResponse forward_post(const web::HttpRequest& request,
                                 const std::string& path);

  /// This node's X-Relay-Path response value: "<own id>,<upstream chain>".
  std::string relay_path_header() const;
  /// True when the request's X-Relay-Path shares an id with this node's
  /// chain — serving it would close a forwarding loop.
  bool request_path_conflicts(const web::HttpRequest& request) const;

  RelayNodeConfig config_;
  web::HttpServer server_;
  web::HubRegistry registry_;
  RelaySubscriber subscriber_;

  /// Upstream control-channel client (steer/view forwarding). HttpClient
  /// is a single blocking connection, hence the mutex.
  std::mutex forward_mutex_;
  web::HttpClient forward_client_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace ricsa::relay
