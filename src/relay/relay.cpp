#include "relay/relay.hpp"

#include <algorithm>
#include <cmath>
#include <string_view>
#include <utility>

#include "net/buffer_chain.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "web/hub.hpp"

namespace ricsa::relay {
namespace {

using Clock = std::chrono::steady_clock;

/// Strict cursor parse (mirrors the origin front end's contract).
bool parse_since(const std::string& raw, std::uint64_t& out) {
  if (raw.empty() || raw[0] < '0' || raw[0] > '9') return false;
  try {
    std::size_t parsed = 0;
    out = static_cast<std::uint64_t>(std::stoull(raw, &parsed));
    return parsed == raw.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_timeout(const std::string& raw, double ceiling, double& out) {
  try {
    std::size_t parsed = 0;
    const double value = std::stod(raw, &parsed);
    if (parsed != raw.size() || std::isnan(value)) return false;
    out = std::clamp(value, 0.0, ceiling);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

const std::map<std::string, std::string> kSseHeaders = {
    {"Content-Type", "text/event-stream"}, {"Cache-Control", "no-cache"}};
const std::map<std::string, std::string> kTextHeaders = {
    {"Content-Type", "text/plain; charset=utf-8"}};

void stream_error(const web::HttpServer::StreamSink& sink, int status,
                  const std::string& message) {
  sink.begin(kTextHeaders, status);
  sink.chunk(message + "\n");
  sink.end();
}

web::HubRegistry::Config registry_config(const RelayNodeConfig& config,
                                         net::Reactor* reactor) {
  web::HubRegistry::Config out;
  out.hub.window = config.frame_window;
  out.hub.workers = config.hub_workers;
  out.hub.max_wait_s = config.poll_timeout_s;
  out.hub.reactor = reactor;
  if (!config.subscriber.views.empty()) {
    out.default_view = config.subscriber.views.front();
  }
  // Relay shards never decimate or reap: every shard is pinned by the
  // subscriber (its rebased seq space must survive), and every received
  // frame must land regardless of downstream idleness.
  out.idle_publish_divisor = 1;
  out.idle_reap_s = 0.0;
  // Downstream clients get the same session/controller stack the origin
  // runs — a relay tier must not turn paced clients back into unpaced ones.
  out.pacing = config.pacing;
  return out;
}

std::string timeout_body(std::uint64_t since) {
  return "{\"seq\":" + std::to_string(since) + ",\"timeout\":true}";
}

}  // namespace

/// One downstream SSE subscription on the relay. Same pump shape as the
/// origin's (chunk → drained callback → next wait). A `client=` id binds
/// the same pacing session the polls use; tiers stay kFull (the relay
/// serves the bodies it received, verbatim), so the session's controller
/// governs pacing and frame skipping only.
struct RelayNode::RelayStream {
  RelayNode* node = nullptr;
  std::shared_ptr<web::FrameHub> hub;
  std::string view;
  web::HttpServer::StreamSink sink;
  std::shared_ptr<web::ClientSession> session;
  std::uint64_t since = 0;
  bool want_delta = false;
  bool force_full = false;
  double timeout_s = 15.0;
};

RelayNode::RelayNode(RelayNodeConfig config)
    : config_(std::move(config)),
      registry_(registry_config(config_, &server_.reactor())),
      subscriber_(config_.subscriber, registry_),
      forward_client_(config_.subscriber.upstream_port) {}

RelayNode::~RelayNode() { stop(); }

int RelayNode::start() {
  if (started_.exchange(true)) return server_.port();
  server_.route("GET", "/", [](const web::HttpRequest&) {
    return web::HttpResponse::text("ricsa relay node\n");
  });
  server_.route("GET", "/api/state",
                [this](const web::HttpRequest& r) { return handle_state(r); });
  server_.route("GET", "/api/stats",
                [this](const web::HttpRequest& r) { return handle_stats(r); });
  server_.route_async("GET", "/api/poll",
                      [this](const web::HttpRequest& r,
                             web::HttpServer::ResponseSink sink) {
                        handle_poll(r, std::move(sink));
                      });
  server_.route_stream("GET", "/api/stream",
                       [this](const web::HttpRequest& r,
                              web::HttpServer::StreamSink sink) {
                         handle_stream(r, std::move(sink));
                       });
  // Control traffic goes upstream: a relay can serve frames, only the
  // origin can steer the simulation or declare views.
  server_.route("POST", "/api/steer", [this](const web::HttpRequest& r) {
    return forward_post(r, "/api/steer");
  });
  server_.route("POST", "/api/view", [this](const web::HttpRequest& r) {
    return forward_post(r, "/api/view");
  });
  server_.set_workers(config_.http_workers);
  server_.set_reactors(config_.reactors);
  server_.set_max_connections(config_.max_connections);
  // Never kill a legal long-poll mid-wait (same derivation as the origin).
  server_.set_idle_read_timeout(config_.poll_timeout_s + 15.0);
  const int port = server_.start(config_.port);
  subscriber_.start();
  return port;
}

void RelayNode::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  // Upstream first (no new publishes), then the server (downstream
  // connections close, parked sinks start refusing), then the hubs (any
  // still-parked waiter completes into a dead sink).
  subscriber_.stop();
  server_.stop();
  registry_.shutdown();
}

std::string RelayNode::relay_path_header() const {
  std::string out = config_.subscriber.relay_id;
  for (const std::string& hop : subscriber_.upstream_path()) {
    out += "," + hop;
  }
  return out;
}

bool RelayNode::request_path_conflicts(
    const web::HttpRequest& request) const {
  const auto it = request.headers.find("x-relay-path");
  if (it == request.headers.end()) return false;  // a plain browser
  std::vector<std::string> own;
  own.push_back(config_.subscriber.relay_id);
  for (std::string& hop : subscriber_.upstream_path()) {
    own.push_back(std::move(hop));
  }
  for (const std::string& part : util::split(it->second, ',')) {
    const std::string_view id = util::trim(part);
    if (id.empty()) continue;
    for (const std::string& mine : own) {
      if (id == mine) return true;
    }
  }
  return false;
}

void RelayNode::handle_poll(const web::HttpRequest& request,
                            web::HttpServer::ResponseSink sink) {
  if (request_path_conflicts(request)) {
    web::HttpResponse conflict = web::HttpResponse::json(
        "{\"error\":\"relay loop\",\"path\":\"" + relay_path_header() + "\"}",
        409);
    conflict.headers["X-Relay-Path"] = relay_path_header();
    sink(conflict);
    return;
  }
  std::string view = request.query_param("view");
  if (view.empty()) view = registry_.default_view_name();
  const std::shared_ptr<web::FrameHub> hub = registry_.subscribe(view);
  if (!hub) {
    sink(web::HttpResponse::not_found());
    return;
  }
  std::uint64_t since = 0;
  if (!parse_since(request.query_param("since", "0"), since)) {
    sink(web::HttpResponse::bad_request("since must be a non-negative integer"));
    return;
  }
  double timeout = config_.poll_timeout_s;
  const std::string timeout_raw = request.query_param("timeout");
  if (!timeout_raw.empty() &&
      !parse_timeout(timeout_raw, config_.poll_timeout_s, timeout)) {
    sink(web::HttpResponse::bad_request("timeout must be a number, not NaN"));
    return;
  }
  const bool want_delta = request.query_param("delta", "0") == "1" &&
                          request.query_param("full", "0") != "1";
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout));
  // Same pacing contract as the origin: a (sanitized) `client` id keys a
  // session whose controller paces/skips this relay's deliveries to that
  // client. Tier stays kFull — the relay owns no cheaper encodings — so
  // only the decision's interval/skip axis applies here.
  std::shared_ptr<web::ClientSession> session;
  web::FrameHub::WaitOptions options;
  const std::string client =
      web::sanitize_client_id(request.query_param("client"));
  if (!client.empty()) {
    const double now = web::mono_now_s();
    session = registry_.sessions().acquire(client, request.peer, now);
    if (session) {
      const web::ClientSession::Decision decision =
          session->decide(now, config_.pacing.frame_interval_s, view);
      options.latest_only = decision.skip_to_latest;
      if (decision.not_before_s > now) {
        options.not_before =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   decision.not_before_s - now));
      }
    }
  }
  park_poll(hub, std::move(view), since, since, want_delta, deadline,
            std::move(session), options, std::move(sink));
}

void RelayNode::park_poll(std::shared_ptr<web::FrameHub> hub,
                          std::string view, std::uint64_t client_since,
                          std::uint64_t cursor, bool want_delta,
                          Clock::time_point deadline,
                          std::shared_ptr<web::ClientSession> session,
                          web::FrameHub::WaitOptions options,
                          web::HttpServer::ResponseSink sink) {
  options.timeout_s = std::max(
      0.0, std::chrono::duration<double>(deadline - Clock::now()).count());
  hub->wait_async(
      cursor, options,
      [this, hub, view = std::move(view), client_since, want_delta, deadline,
       session = std::move(session), options,
       sink = std::move(sink)](web::FramePtr frame) mutable {
        if (!frame) {
          // Timeout contract: echo the *client's* cursor, not the parked
          // one — their next poll resumes where they left off.
          web::HttpResponse response =
              web::HttpResponse::json(timeout_body(client_since));
          response.headers["X-Relay-Path"] = relay_path_header();
          sink(response);
          if (session) session->on_timeout(web::mono_now_s());
          return;
        }
        // Body selection against pre-encoded frames: a relay frame carries
        // either a delta body (sequential consumers) or a full body
        // (joins/resyncs) — never pixels to assemble from.
        std::shared_ptr<const std::string> body;
        if (want_delta && frame->seq == client_since + 1) {
          body = web::body_shared(frame, web::Tier::kFull, true);
        }
        if (!body || body->empty()) {
          body = web::body_shared(frame, web::Tier::kFull, false);
        }
        if (!body->empty()) {
          web::HttpResponse response = web::HttpResponse::json_shared(body);
          response.headers["X-Relay-Path"] = relay_path_header();
          if (!session) {
            sink(response);
            return;
          }
          // Paced client: stamp the dispatch, account the delivery at
          // kernel drain — the controller's RTT sample brackets exactly
          // this relay→client hop.
          const std::uint64_t skipped =
              (client_since != 0 && frame->seq > client_since + 1)
                  ? frame->seq - client_since - 1
                  : 0;
          const std::size_t bytes = body->size();
          const double cadence = config_.pacing.frame_interval_s;
          session->note_dispatch(web::mono_now_s(), view);
          sink(response, [session, bytes, skipped, cadence, view] {
            session->on_delivered(web::mono_now_s(), bytes, skipped,
                                  web::Tier::kFull, cadence, view);
          });
          return;
        }
        // A delta-only frame that cannot answer this client (fresh join,
        // full=1, or a skip past the sequential chain). Escalate one
        // upstream full-frame resync — latched in the subscriber — and
        // re-park just past this frame until the snapshot lands or the
        // poll deadline passes. Synchronous completions recurse at most
        // window-depth before parking for real.
        subscriber_.request_resync(view);
        if (Clock::now() >= deadline) {
          web::HttpResponse response =
              web::HttpResponse::json(timeout_body(client_since));
          response.headers["X-Relay-Path"] = relay_path_header();
          sink(response);
          if (session) session->on_timeout(web::mono_now_s());
          return;
        }
        const std::uint64_t next = frame->seq;
        park_poll(hub, std::move(view), client_since, next, want_delta,
                  deadline, std::move(session), options, std::move(sink));
      });
}

void RelayNode::handle_stream(const web::HttpRequest& request,
                              web::HttpServer::StreamSink sink) {
  if (request_path_conflicts(request)) {
    stream_error(sink, 409, "relay loop: " + relay_path_header());
    return;
  }
  std::string view = request.query_param("view");
  if (view.empty()) view = registry_.default_view_name();
  const std::shared_ptr<web::FrameHub> hub = registry_.subscribe(view);
  if (!hub) {
    stream_error(sink, 404, "not found");
    return;
  }
  std::uint64_t since = 0;
  if (!parse_since(request.query_param("since", "0"), since)) {
    stream_error(sink, 400, "since must be a non-negative integer");
    return;
  }
  double timeout = config_.poll_timeout_s;
  const std::string timeout_raw = request.query_param("timeout");
  if (!timeout_raw.empty() &&
      !parse_timeout(timeout_raw, config_.poll_timeout_s, timeout)) {
    stream_error(sink, 400, "timeout must be a number, not NaN");
    return;
  }
  std::map<std::string, std::string> headers = kSseHeaders;
  headers["X-Relay-Path"] = relay_path_header();
  sink.begin(headers);
  if (sink.head_only()) return;

  auto s = std::make_shared<RelayStream>();
  s->node = this;
  s->hub = hub;
  s->view = std::move(view);
  s->sink = std::move(sink);
  const std::string client =
      web::sanitize_client_id(request.query_param("client"));
  if (!client.empty()) {
    s->session =
        registry_.sessions().acquire(client, request.peer, web::mono_now_s());
  }
  s->since = since;
  s->want_delta = request.query_param("delta", "0") == "1";
  s->force_full = request.query_param("full", "0") == "1";
  s->timeout_s = std::max(timeout, 0.05);
  stream_pump(s);
}

void RelayNode::stream_pump(const std::shared_ptr<RelayStream>& s) {
  if (!s->sink.alive()) return;
  web::FrameHub::WaitOptions options;
  options.timeout_s = s->timeout_s;
  if (s->session) {
    // Re-decide per pump cycle: a client whose drains slow mid-stream is
    // paced/skipped on the very next wait, exactly like the origin's pump.
    const double now = web::mono_now_s();
    const web::ClientSession::Decision decision =
        s->session->decide(now, config_.pacing.frame_interval_s, s->view);
    options.latest_only = decision.skip_to_latest;
    if (decision.not_before_s > now) {
      options.not_before =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 decision.not_before_s - now));
    }
  }
  s->hub->wait_async(s->since, options, [this, s](web::FramePtr frame) {
    if (!frame) {
      if (s->hub->is_shutdown()) {
        s->sink.end();
        return;
      }
      if (s->session) s->session->on_timeout(web::mono_now_s());
      s->sink.chunk(": keepalive\n\n", [this, s] { stream_pump(s); });
      return;
    }
    std::shared_ptr<const std::string> body;
    if (!s->force_full && s->want_delta && frame->seq == s->since + 1) {
      body = web::body_shared(frame, web::Tier::kFull, true);
    }
    if (!body || body->empty()) {
      body = web::body_shared(frame, web::Tier::kFull, false);
    }
    if (body->empty()) {
      // Delta-only frame under a full requirement: skip it, escalate one
      // latched upstream resync, and keep waiting for the snapshot.
      subscriber_.request_resync(s->view);
      s->since = frame->seq;
      stream_pump(s);
      return;
    }
    s->force_full = false;
    const std::uint64_t skipped =
        (s->since != 0 && frame->seq > s->since + 1)
            ? frame->seq - s->since - 1
            : 0;
    const std::size_t bytes = body->size();
    s->since = frame->seq;
    net::BufferChain event;
    event.append_copy("id: " + std::to_string(frame->seq) + "\ndata: ");
    event.append_shared(std::move(body));
    event.append_copy("\n\n");
    if (s->session) s->session->note_dispatch(web::mono_now_s(), s->view);
    s->sink.chunk(std::move(event), [this, s, bytes, skipped] {
      if (s->session) {
        s->session->on_delivered(web::mono_now_s(), bytes, skipped,
                                 web::Tier::kFull,
                                 config_.pacing.frame_interval_s, s->view);
      }
      registry_.touch(s->view);
      stream_pump(s);
    });
  });
}

web::HttpResponse RelayNode::handle_state(const web::HttpRequest& request) {
  if (request_path_conflicts(request)) {
    web::HttpResponse conflict = web::HttpResponse::json(
        "{\"error\":\"relay loop\",\"path\":\"" + relay_path_header() + "\"}",
        409);
    conflict.headers["X-Relay-Path"] = relay_path_header();
    return conflict;
  }
  std::string view = request.query_param("view");
  if (view.empty()) view = registry_.default_view_name();
  const std::shared_ptr<web::FrameHub> hub = registry_.subscribe(view);
  if (!hub) return web::HttpResponse::not_found();
  util::Json out;
  const web::FramePtr frame = hub->latest();
  out["seq"] = static_cast<double>(frame ? frame->seq : 0);
  out["state"] = frame ? frame->state : util::Json();
  web::HttpResponse response = web::HttpResponse::json(out.dump());
  response.headers["X-Relay-Path"] = relay_path_header();
  return response;
}

web::HttpResponse RelayNode::handle_stats(const web::HttpRequest&) {
  util::Json out;
  {
    util::Json relay;
    relay["id"] = config_.subscriber.relay_id;
    relay["upstream_port"] =
        static_cast<double>(config_.subscriber.upstream_port);
    const std::vector<std::string> chain = subscriber_.upstream_path();
    relay["depth"] = static_cast<double>(1 + chain.size());
    relay["path"] = relay_path_header();
    relay["failed"] = subscriber_.any_failed();
    out["relay"] = relay;
  }
  {
    util::Json views;
    for (const auto& [view, s] : subscriber_.stats()) {
      util::Json v;
      v["frames"] = static_cast<double>(s.frames);
      v["full_frames"] = static_cast<double>(s.full_frames);
      v["delta_frames"] = static_cast<double>(s.delta_frames);
      v["resyncs"] = static_cast<double>(s.resyncs);
      v["reconnects"] = static_cast<double>(s.reconnects);
      v["epoch_changes"] = static_cast<double>(s.epoch_changes);
      v["restarts"] = static_cast<double>(s.restarts);
      v["last_upstream_seq"] = static_cast<double>(s.last_upstream_seq);
      v["last_local_seq"] = static_cast<double>(s.last_local_seq);
      v["sse"] = s.sse;
      v["failed"] = s.failed;
      if (!s.failure.empty()) v["failure"] = s.failure;
      views[view] = v;
    }
    out["subscriber"] = views;
  }
  {
    // The forwarding-without-decoding proof: every local publish must be
    // pre-encoded and the relay must never touch an encoder.
    util::Json hubs;
    for (const std::string& name : registry_.view_names()) {
      const std::shared_ptr<web::FrameHub> hub = registry_.find(name);
      if (!hub) continue;
      const web::FrameHub::Stats s = hub->stats();
      util::Json h;
      h["seq"] = static_cast<double>(hub->seq());
      h["published"] = static_cast<double>(s.published);
      h["served"] = static_cast<double>(s.served);
      h["timeouts"] = static_cast<double>(s.timeouts);
      h["waiting"] = static_cast<double>(s.waiting);
      h["image_encodes"] = static_cast<double>(s.image_encodes);
      h["preencoded_publishes"] = static_cast<double>(s.preencoded_publishes);
      hubs[name] = h;
    }
    out["views"] = hubs;
  }
  // Downstream pacing sessions (same shape as the origin's stats block).
  out["pacing"] = registry_.sessions().stats_json(web::mono_now_s());
  out["connections_open"] = static_cast<double>(server_.connections_open());
  out["requests_served"] = static_cast<double>(server_.requests_served());
  out["bytes_sent"] = static_cast<double>(server_.bytes_sent());
  web::HttpResponse response = web::HttpResponse::json(out.dump());
  response.headers["X-Relay-Path"] = relay_path_header();
  return response;
}

web::HttpResponse RelayNode::forward_post(const web::HttpRequest& request,
                                          const std::string& path) {
  std::string target = path;
  if (!request.query.empty()) target += "?" + request.query;
  try {
    web::HttpClient::RetryPolicy policy;
    policy.max_attempts = 3;
    web::HttpClient::Response upstream;
    {
      std::lock_guard<std::mutex> lock(forward_mutex_);
      upstream = forward_client_.post_with_retry(
          target, request.body, policy,
          request.headers.count("content-type")
              ? request.headers.at("content-type")
              : "application/json",
          5.0);
    }
    web::HttpResponse response = web::HttpResponse::json(upstream.body);
    response.status = upstream.status;
    return response;
  } catch (const std::exception& e) {
    return web::HttpResponse::json(
        std::string("{\"error\":\"upstream unreachable: ") + e.what() +
            "\"}",
        503);
  }
}

}  // namespace ricsa::relay
