// Relay subscriber: the upstream-facing half of a relay node.
//
// One reactor thread owns a keep-alive HTTP connection per subscribed view
// against the upstream origin (or another relay), prefers the /api/stream
// SSE push channel with automatic long-poll fallback, and re-publishes
// every received frame body into the local HubRegistry through the
// pre-encoded path — the forwarding-without-decoding idiom: the relay
// never parses pixels, never PNG/base64-encodes, never rebuilds tiles. It
// only splices the body's top-level `seq`/`base_seq` digits into its own
// local seq space, so downstream subscribers ride a strictly increasing
// local window regardless of upstream restarts.
//
// Resync semantics: the subscriber tracks the upstream cursor per view. A
// received seq at or below the cursor (origin restart: seq counting
// re-began), a delta whose base_seq is not the cursor, or an explicit
// request_resync() from the serving side (a downstream client needs a full
// body this relay never received) all converge on the same procedure —
// re-join via /api/state, then ask for one `full=1` frame, and resume
// deltas from it. The resync is latched per view: however many downstream
// clients demand a full frame simultaneously, the upstream sees one
// escalation (no resync storms).
//
// Topology guards: every request carries `X-Relay-Path: <relay id>`;
// every response from a relay carries the server's own chain. Seeing our
// own id in an upstream chain (a cycle) or a chain already at the depth
// cap fails the view instead of building a forwarding loop.
//
// Failed views are supervised, not abandoned: a failure (cycle, depth cap,
// 409 rejection) marks the view failed and schedules a respawn under its
// own capped-exponential backoff — topology errors can be transient (an
// upstream relay restarting under a different chain). The view stays
// *reported* failed (stats/any_failed) through failing respawn attempts
// and clears only once a re-join actually succeeds, so monitoring sees a
// persistent outage as persistent.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/reactor.hpp"
#include "web/registry.hpp"

namespace ricsa::relay {

struct SubscriberConfig {
  /// Upstream HTTP port (origin or another relay) on loopback.
  int upstream_port = 0;
  /// Upstream view names to subscribe; re-published under the same names.
  std::vector<std::string> views;
  /// This relay's identity in X-Relay-Path hop headers. Must be unique
  /// within a relay tree; commas are reserved (the chain separator).
  std::string relay_id = "relay";
  /// "auto" (SSE, falling back to long-poll when the upstream refuses the
  /// stream route), "sse", or "poll".
  std::string transport = "auto";
  /// Maximum relay chain length including this node. A response whose
  /// chain is already max_depth - 1 hops deep fails the subscription.
  std::size_t max_depth = 4;
  /// Long-poll wait handed to the upstream (also the SSE keepalive bound).
  double poll_timeout_s = 15.0;
  /// Reconnect backoff schedule: initial * 2^failures, capped.
  double backoff_initial_s = 0.05;
  double backoff_max_s = 2.0;
  /// Supervisor respawn schedule for *failed* subscriptions (cycle /
  /// depth cap / 409 rejection): initial * 2^(restarts-1), capped. Much
  /// longer than the reconnect backoff — a structural failure usually
  /// needs the upstream topology to change before a retry can succeed.
  double respawn_initial_s = 0.5;
  double respawn_max_s = 10.0;
};

/// Per-view forwarding counters (loop-thread owned, snapshotted for stats).
struct SubscriberViewStats {
  std::uint64_t frames = 0;        // frames re-published locally
  std::uint64_t full_frames = 0;   // of which complete snapshots
  std::uint64_t delta_frames = 0;  // of which delta bodies
  std::uint64_t resyncs = 0;       // full=1 escalations issued upstream
  std::uint64_t reconnects = 0;    // TCP reconnects (backoff cycles)
  std::uint64_t epoch_changes = 0; // upstream seq regressions observed
  std::uint64_t last_upstream_seq = 0;
  std::uint64_t last_local_seq = 0;
  std::uint64_t restarts = 0;  // supervisor respawns of a failed view
  bool sse = false;     // currently riding /api/stream
  bool failed = false;  // failing now (cycle / depth / 409); clears on rejoin
  std::string failure;
};

class RelaySubscriber {
 public:
  RelaySubscriber(SubscriberConfig config, web::HubRegistry& registry);
  ~RelaySubscriber();
  RelaySubscriber(const RelaySubscriber&) = delete;
  RelaySubscriber& operator=(const RelaySubscriber&) = delete;

  /// Pin the subscribed views in the local registry and start the reactor
  /// thread; each view begins its join/subscribe cycle immediately.
  void start();
  /// Stop the reactor thread and close every upstream connection.
  /// Idempotent; safe to call from any thread.
  void stop();

  /// Escalate one full-frame resync for `view` upstream — the serving
  /// side calls this when a downstream client needs a full body the local
  /// window cannot provide. Latched per view: while a resync is already
  /// pending, further requests are no-ops. Safe from any thread; a no-op
  /// after stop().
  void request_resync(const std::string& view);

  const SubscriberConfig& config() const noexcept { return config_; }
  /// Per-view counters, in config order.
  std::vector<std::pair<std::string, SubscriberViewStats>> stats() const;
  /// Upstream relay chain learned from response X-Relay-Path headers
  /// (nearest hop first); empty when subscribed directly to an origin.
  std::vector<std::string> upstream_path() const;
  /// True while any view is in the failed state (cycle / depth /
  /// rejection). Stays true across failing supervisor respawns; clears
  /// when the view successfully re-joins its upstream.
  bool any_failed() const;

 private:
  struct Conn;  // upstream connection state machine (subscriber.cpp)

  // All of the following run on the reactor loop thread.
  void conn_event(Conn* conn, std::uint32_t events);
  void schedule_connect(Conn* conn, double delay_s);
  void start_connect(Conn* conn);
  void teardown(Conn* conn);
  void fail_subscription(Conn* conn, const std::string& why);
  void schedule_respawn(Conn* conn);
  void begin_resync(Conn* conn, bool teardown_connection);
  void send_next_request(Conn* conn);
  void flush(Conn* conn);
  void on_readable(Conn* conn);
  bool handle_response(Conn* conn);
  void consume_stream(Conn* conn);
  bool handle_headers(Conn* conn);
  /// One received poll body / SSE event. Returns false when the
  /// connection must be torn down (resync through reconnect).
  bool handle_body(Conn* conn, std::string body);
  void publish_body(Conn* conn, std::string body, bool is_full,
                    bool has_base);
  void note_relay_path(Conn* conn, const std::string& header);
  void arm_watchdog(Conn* conn);

  SubscriberConfig config_;
  web::HubRegistry& registry_;
  net::Reactor reactor_;
  std::thread thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::vector<std::unique_ptr<Conn>> conns_;

  /// Guards the cross-thread views of loop-thread state: per-view stats
  /// snapshots and the learned upstream chain.
  mutable std::mutex stats_mutex_;
  std::vector<std::string> upstream_path_;
};

}  // namespace ricsa::relay
