#include "relay/subscriber.hpp"

#include <sys/epoll.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <string_view>

#include "net/socket.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "web/hub.hpp"

namespace ricsa::relay {
namespace {

using Clock = std::chrono::steady_clock;

/// Scan the first occurrence of `"token":` in a compact JSON body and parse
/// the unsigned integer that follows. The first occurrence of `"seq":` is
/// always the top-level frame seq: `"base_seq"` does not match (the quote
/// anchors the key start), base64 payloads contain no quotes, and the
/// nested `state` object carries no seq-like keys.
bool scan_u64(const std::string& body, std::string_view key,
              std::uint64_t& out) {
  const std::size_t pos = body.find(key);
  if (pos == std::string::npos) return false;
  const char* start = body.c_str() + pos + key.size();
  if (!std::isdigit(static_cast<unsigned char>(*start))) return false;
  out = std::strtoull(start, nullptr, 10);
  return true;
}

/// Replace the digit run after the first `"token":` with `value` in place.
/// util::Json prints integral numbers as plain digit runs, so this rebases
/// the top-level seq without parsing (or even copying) the body.
bool splice_u64(std::string& body, std::string_view key, std::uint64_t value) {
  const std::size_t pos = body.find(key);
  if (pos == std::string::npos) return false;
  const std::size_t start = pos + key.size();
  std::size_t end = start;
  while (end < body.size() &&
         std::isdigit(static_cast<unsigned char>(body[end]))) {
    ++end;
  }
  if (end == start) return false;
  body.replace(start, end - start, std::to_string(value));
  return true;
}

double backoff_delay_s(const SubscriberConfig& config, int failures) {
  double delay = config.backoff_initial_s;
  for (int i = 1; i < failures && delay < config.backoff_max_s; ++i) {
    delay *= 2.0;
  }
  return std::min(delay, config.backoff_max_s);
}

double respawn_delay_s(const SubscriberConfig& config, int respawns) {
  double delay = config.respawn_initial_s;
  for (int i = 1; i < respawns && delay < config.respawn_max_s; ++i) {
    delay *= 2.0;
  }
  return std::min(delay, config.respawn_max_s);
}

}  // namespace

/// Upstream connection state machine; every field is owned by the
/// subscriber's reactor loop thread except `stats`, whose writes and
/// cross-thread snapshots are guarded by RelaySubscriber::stats_mutex_.
struct RelaySubscriber::Conn : net::EventHandler {
  explicit Conn(RelaySubscriber* owner_in) : owner(owner_in) {}
  void on_event(std::uint32_t events) override { owner->conn_event(this, events); }

  RelaySubscriber* owner;
  std::string view;

  net::Socket sock;
  bool registered = false;   // fd is in the reactor's interest set
  bool connecting = false;   // awaiting EPOLLOUT + connect_error()
  bool connected_once = false;

  std::string out;  // unsent request bytes
  std::string in;   // raw bytes read, consumed by the response parser

  enum class Pending { kNone, kState, kPoll, kStream };
  Pending pending = Pending::kNone;

  // In-flight response parse state.
  bool have_headers = false;
  int status = 0;
  std::size_t content_length = 0;
  bool chunked = false;
  bool close_after = false;
  bool streaming = false;  // 200 on /api/stream: body is an endless SSE feed

  // Chunked-transfer decoder (SSE responses are always chunked).
  enum class ChunkMode { kSize, kData, kCrLf };
  ChunkMode chunk_mode = ChunkMode::kSize;
  std::size_t chunk_left = 0;
  bool stream_ended = false;  // terminal 0-chunk seen
  std::string decoded;        // de-chunked SSE payload, split on "\n\n"

  // Forwarding protocol state.
  bool use_sse = true;         // transport preference (auto-negotiated)
  bool joined = false;         // /api/state answered; since_up is valid
  bool resync_pending = true;  // next frame must be a full snapshot
  bool failed = false;         // failing now (loop-thread mirror)
  std::uint64_t since_up = 0;     // upstream cursor (last seq consumed)
  std::uint64_t last_local = 0;   // local hub seq of our last publish

  int failures = 0;  // consecutive connect/IO failures (backoff exponent)
  int respawns = 0;  // consecutive supervisor respawns (backoff exponent)
  std::uint64_t retry_timer = 0;
  std::uint64_t watchdog_timer = 0;
  Clock::time_point last_activity{};

  SubscriberViewStats stats;  // guarded by owner->stats_mutex_
};

RelaySubscriber::RelaySubscriber(SubscriberConfig config,
                                 web::HubRegistry& registry)
    : config_(std::move(config)), registry_(registry) {
  if (config_.views.empty()) {
    config_.views.push_back(registry_.default_view_name());
  }
  if (config_.max_depth == 0) config_.max_depth = 1;
  for (const std::string& view : config_.views) {
    auto conn = std::make_unique<Conn>(this);
    conn->view = view;
    conn->use_sse = config_.transport != "poll";
    conns_.push_back(std::move(conn));
  }
}

RelaySubscriber::~RelaySubscriber() { stop(); }

void RelaySubscriber::start() {
  if (started_.exchange(true)) return;
  // Pin the target shards up front: the local hubs must exist before the
  // first downstream subscribe, and must never be reaped mid-stream — a
  // reap restarts the local seq space out from under bodies already
  // rebased against it.
  for (const std::string& view : config_.views) registry_.pin(view);
  reactor_.post([this] {
    for (const auto& conn : conns_) schedule_connect(conn.get(), 0.0);
  });
  thread_ = std::thread([this] { reactor_.run(); });
}

void RelaySubscriber::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  reactor_.stop();
  if (thread_.joinable()) thread_.join();
}

void RelaySubscriber::request_resync(const std::string& view) {
  // post() refuses after the loop exits, so this is naturally a no-op
  // after stop().
  reactor_.post([this, view] {
    for (const auto& conn : conns_) {
      if (conn->view != view) continue;
      Conn* c = conn.get();
      // The latch: one escalation per outage, however many downstream
      // clients demand a full frame while it is in flight.
      if (c->failed || c->resync_pending) return;
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++c->stats.resyncs;
      }
      // Tear the connection down even on the poll path: the in-flight
      // long poll may be parked upstream for seconds, and downstream
      // waiters need the full frame now, not after that poll drains.
      begin_resync(c, /*teardown_connection=*/true);
      return;
    }
  });
}

std::vector<std::pair<std::string, SubscriberViewStats>>
RelaySubscriber::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  std::vector<std::pair<std::string, SubscriberViewStats>> out;
  out.reserve(conns_.size());
  for (const auto& conn : conns_) out.emplace_back(conn->view, conn->stats);
  return out;
}

std::vector<std::string> RelaySubscriber::upstream_path() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return upstream_path_;
}

bool RelaySubscriber::any_failed() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  for (const auto& conn : conns_) {
    if (conn->stats.failed) return true;
  }
  return false;
}

void RelaySubscriber::conn_event(Conn* c, std::uint32_t events) {
  if (c->failed || !c->sock.valid()) return;
  if (c->connecting) {
    if ((events & (EPOLLERR | EPOLLHUP)) != 0 || c->sock.connect_error() != 0) {
      c->failures = std::min(c->failures + 1, 16);
      teardown(c);
      schedule_connect(c, backoff_delay_s(config_, c->failures));
      return;
    }
    c->connecting = false;
    c->connected_once = true;
    c->last_activity = Clock::now();
    send_next_request(c);
    return;
  }
  if ((events & EPOLLOUT) != 0) flush(c);
  if (!c->sock.valid() || c->failed) return;
  if ((events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) on_readable(c);
}

void RelaySubscriber::schedule_connect(Conn* c, double delay_s) {
  if (c->failed || stopped_.load() || c->retry_timer != 0) return;
  c->retry_timer = reactor_.run_after(delay_s, [this, c] {
    c->retry_timer = 0;
    start_connect(c);
  });
}

void RelaySubscriber::start_connect(Conn* c) {
  if (c->failed || stopped_.load()) return;
  if (c->connected_once) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++c->stats.reconnects;
  }
  c->sock = net::Socket::connect_loopback(config_.upstream_port);
  if (!c->sock.valid() ||
      !reactor_.add(c->sock.fd(), EPOLLOUT, c)) {
    c->sock.close();
    c->failures = std::min(c->failures + 1, 16);
    schedule_connect(c, backoff_delay_s(config_, c->failures));
    return;
  }
  c->registered = true;
  c->connecting = true;
  c->last_activity = Clock::now();
  arm_watchdog(c);
}

void RelaySubscriber::teardown(Conn* c) {
  if (c->retry_timer != 0) {
    reactor_.cancel(c->retry_timer);
    c->retry_timer = 0;
  }
  if (c->watchdog_timer != 0) {
    reactor_.cancel(c->watchdog_timer);
    c->watchdog_timer = 0;
  }
  if (c->registered) {
    reactor_.remove(c->sock.fd());
    c->registered = false;
  }
  c->sock.close();
  c->connecting = false;
  c->out.clear();
  c->in.clear();
  c->decoded.clear();
  c->pending = Conn::Pending::kNone;
  c->have_headers = false;
  c->streaming = false;
  c->stream_ended = false;
  c->chunk_mode = Conn::ChunkMode::kSize;
  c->chunk_left = 0;
}

void RelaySubscriber::fail_subscription(Conn* c, const std::string& why) {
  teardown(c);
  c->failed = true;
  util::log_message(util::LogLevel::kError, "relay",
                    "view '" + c->view + "' failed: " + why);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    c->stats.failed = true;
    c->stats.failure = why;
  }
  schedule_respawn(c);
}

void RelaySubscriber::schedule_respawn(Conn* c) {
  // The supervisor: instead of latching the failure forever, re-run the
  // whole join cycle under a capped backoff of its own. The view stays
  // *reported* failed (stats.failed / any_failed) across respawn attempts
  // that fail again; only a successful re-join clears it — so a persistent
  // topology error reads as a persistent outage, with a climbing restart
  // counter, not as a flapping one.
  if (stopped_.load() || c->retry_timer != 0) return;
  c->respawns = std::min(c->respawns + 1, 16);
  c->retry_timer =
      reactor_.run_after(respawn_delay_s(config_, c->respawns), [this, c] {
        c->retry_timer = 0;
        if (stopped_.load()) return;
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++c->stats.restarts;
        }
        // Lift the loop-thread abort latch and start from scratch: fresh
        // connect, /api/state re-join, full-frame resync.
        c->failed = false;
        c->failures = 0;
        c->joined = false;
        c->resync_pending = true;
        start_connect(c);
      });
}

void RelaySubscriber::begin_resync(Conn* c, bool teardown_connection) {
  c->resync_pending = true;
  c->joined = false;
  if (teardown_connection || c->streaming || !c->sock.valid() ||
      c->connecting) {
    teardown(c);
    schedule_connect(c, 0.0);
  } else {
    // Keep-alive intact and the previous response fully consumed: re-join
    // on the same connection.
    send_next_request(c);
  }
}

void RelaySubscriber::send_next_request(Conn* c) {
  std::string target;
  if (!c->joined) {
    c->pending = Conn::Pending::kState;
    target = "/api/state?view=" + c->view;
  } else {
    const std::string cursor =
        "?view=" + c->view + "&since=" + std::to_string(c->since_up) +
        "&delta=1&timeout=" + util::strprintf("%.3f", config_.poll_timeout_s) +
        (c->resync_pending ? "&full=1" : "");
    if (c->use_sse) {
      c->pending = Conn::Pending::kStream;
      target = "/api/stream" + cursor;
    } else {
      c->pending = Conn::Pending::kPoll;
      target = "/api/poll" + cursor;
    }
  }
  c->have_headers = false;
  c->status = 0;
  c->content_length = 0;
  c->chunked = false;
  c->close_after = false;
  c->streaming = false;
  c->stream_ended = false;
  c->chunk_mode = Conn::ChunkMode::kSize;
  c->chunk_left = 0;
  c->decoded.clear();
  c->out += "GET " + target +
            " HTTP/1.1\r\nHost: relay\r\nConnection: keep-alive\r\n"
            "X-Relay-Path: " + config_.relay_id + "\r\n\r\n";
  flush(c);
}

void RelaySubscriber::flush(Conn* c) {
  while (!c->out.empty()) {
    std::size_t written = 0;
    const net::IoStatus st =
        c->sock.write_some(c->out.data(), c->out.size(), written);
    if (written > 0) c->out.erase(0, written);
    if (st == net::IoStatus::kWouldBlock) break;
    if (st == net::IoStatus::kError) {
      c->failures = std::min(c->failures + 1, 16);
      c->joined = false;
      c->resync_pending = true;
      teardown(c);
      schedule_connect(c, backoff_delay_s(config_, c->failures));
      return;
    }
    if (written == 0) break;
  }
  reactor_.modify(c->sock.fd(),
                  EPOLLIN | (c->out.empty() ? 0u : EPOLLOUT));
}

void RelaySubscriber::on_readable(Conn* c) {
  bool eof = false;
  for (;;) {
    const net::IoStatus st = c->sock.read_some(c->in);
    if (st == net::IoStatus::kOk) {
      c->last_activity = Clock::now();
      continue;
    }
    if (st == net::IoStatus::kWouldBlock) break;
    eof = true;  // kEof or kError: the peer is gone either way
    break;
  }
  // Drain every complete response / stream event from the buffer.
  while (c->sock.valid() && !c->failed) {
    if (!c->have_headers && !handle_headers(c)) break;
    if (!c->sock.valid() || c->failed) break;
    if (c->streaming) {
      consume_stream(c);
      break;
    }
    if (c->in.size() < c->content_length) break;
    if (!handle_response(c)) break;
  }
  if (eof && c->sock.valid() && !c->failed) {
    // Peer closed mid-exchange (origin stop/restart, keep-alive cut):
    // reconnect with backoff and re-join from a fresh full frame.
    c->failures = std::min(c->failures + 1, 16);
    c->joined = false;
    c->resync_pending = true;
    teardown(c);
    schedule_connect(c, backoff_delay_s(config_, c->failures));
  }
}

bool RelaySubscriber::handle_headers(Conn* c) {
  const std::size_t pos = c->in.find("\r\n\r\n");
  if (pos == std::string::npos) {
    if (c->in.size() > (1u << 20)) {
      // A megabyte without a header terminator is not HTTP.
      c->failures = std::min(c->failures + 1, 16);
      c->joined = false;
      c->resync_pending = true;
      teardown(c);
      schedule_connect(c, backoff_delay_s(config_, c->failures));
    }
    return false;
  }
  const std::string head = c->in.substr(0, pos);
  c->in.erase(0, pos + 4);
  c->status = 0;
  c->content_length = 0;
  c->chunked = false;
  c->close_after = false;
  std::string relay_path;
  std::size_t line_start = 0;
  bool first = true;
  while (line_start < head.size()) {
    std::size_t line_end = head.find("\r\n", line_start);
    if (line_end == std::string::npos) line_end = head.size();
    const std::string_view line(head.data() + line_start,
                                line_end - line_start);
    line_start = line_end + 2;
    if (first) {
      first = false;
      const std::size_t sp = line.find(' ');
      if (sp != std::string_view::npos) {
        c->status = std::atoi(std::string(line.substr(sp + 1)).c_str());
      }
      continue;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    const std::string key = util::to_lower(util::trim(line.substr(0, colon)));
    const std::string_view value = util::trim(line.substr(colon + 1));
    if (key == "content-length") {
      c->content_length = std::strtoull(std::string(value).c_str(), nullptr, 10);
    } else if (key == "transfer-encoding") {
      c->chunked = util::to_lower(value).find("chunked") != std::string::npos;
    } else if (key == "x-relay-path") {
      relay_path.assign(value);
    } else if (key == "connection") {
      c->close_after = util::iequals(value, "close");
    }
  }
  c->have_headers = true;
  note_relay_path(c, relay_path);  // may fail the view permanently
  if (c->failed) return false;
  if (c->status == 409) {
    fail_subscription(c, "upstream rejected the subscription (409 conflict)");
    return false;
  }
  if (c->status != 200) {
    const bool stream_req = c->pending == Conn::Pending::kStream;
    const int status = c->status;
    c->failures = std::min(c->failures + 1, 16);
    c->joined = false;
    c->resync_pending = true;
    teardown(c);
    if (stream_req && config_.transport == "auto" &&
        (status == 400 || status == 405 || status == 501)) {
      // The upstream has no usable stream route: settle on long-poll.
      // (404 is excluded — it means the *view* is not declared yet, and
      // downgrading the transport would not help.)
      c->use_sse = false;
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        c->stats.sse = false;
      }
      schedule_connect(c, 0.0);
    } else {
      // 503 (overload), 404 (view not yet published), or anything else
      // transient: retry the same transport with backoff.
      schedule_connect(c, backoff_delay_s(config_, c->failures));
    }
    return false;
  }
  if (c->pending == Conn::Pending::kStream) {
    if (!c->chunked) {
      // A 200 stream must be chunked; anything else is not our protocol.
      c->failures = std::min(c->failures + 1, 16);
      c->joined = false;
      c->resync_pending = true;
      teardown(c);
      schedule_connect(c, backoff_delay_s(config_, c->failures));
      return false;
    }
    c->streaming = true;
    std::lock_guard<std::mutex> lock(stats_mutex_);
    c->stats.sse = true;
  }
  return true;
}

bool RelaySubscriber::handle_response(Conn* c) {
  std::string body = c->in.substr(0, c->content_length);
  c->in.erase(0, c->content_length);
  c->have_headers = false;
  const Conn::Pending pending = c->pending;
  c->pending = Conn::Pending::kNone;
  c->failures = 0;
  c->last_activity = Clock::now();
  if (pending == Conn::Pending::kState) {
    // Join at the upstream head: ask for head-1 so the first subscribed
    // frame is the head itself (full, because resync_pending is set).
    std::uint64_t head = 0;
    scan_u64(body, "\"seq\":", head);
    c->since_up = head > 0 ? head - 1 : 0;
    c->joined = true;
    c->resync_pending = true;
    if (c->respawns != 0) {
      // A supervised respawn made it through the join: the failure is
      // over. Clear the reported state so any_failed() reflects now.
      c->respawns = 0;
      std::lock_guard<std::mutex> lock(stats_mutex_);
      c->stats.failed = false;
      c->stats.failure.clear();
    }
    send_next_request(c);
    return true;
  }
  const bool ok = handle_body(c, std::move(body));
  if (c->failed || !c->sock.valid()) return false;
  if (!ok) {
    // Epoch change / base mismatch: re-join. The response was consumed in
    // full, so the keep-alive connection is reusable.
    begin_resync(c, /*teardown_connection=*/false);
    return c->sock.valid();
  }
  if (c->close_after) {
    teardown(c);
    schedule_connect(c, 0.0);
    return false;
  }
  send_next_request(c);
  return true;
}

void RelaySubscriber::consume_stream(Conn* c) {
  // De-chunk into the decoded buffer.
  while (!c->stream_ended) {
    if (c->chunk_mode == Conn::ChunkMode::kSize) {
      const std::size_t pos = c->in.find("\r\n");
      if (pos == std::string::npos) break;
      const unsigned long size = std::strtoul(c->in.c_str(), nullptr, 16);
      c->in.erase(0, pos + 2);
      if (size == 0) {
        c->stream_ended = true;
        break;
      }
      c->chunk_left = size;
      c->chunk_mode = Conn::ChunkMode::kData;
    } else if (c->chunk_mode == Conn::ChunkMode::kData) {
      if (c->in.empty()) break;
      const std::size_t take = std::min(c->chunk_left, c->in.size());
      c->decoded.append(c->in, 0, take);
      c->in.erase(0, take);
      c->chunk_left -= take;
      if (c->chunk_left == 0) c->chunk_mode = Conn::ChunkMode::kCrLf;
    } else {  // kCrLf: trailing \r\n after a data chunk
      if (c->in.size() < 2) break;
      c->in.erase(0, 2);
      c->chunk_mode = Conn::ChunkMode::kSize;
    }
  }
  // Split SSE events on the blank-line terminator and forward each body.
  for (;;) {
    const std::size_t pos = c->decoded.find("\n\n");
    if (pos == std::string::npos) break;
    const std::string event = c->decoded.substr(0, pos);
    c->decoded.erase(0, pos + 2);
    c->last_activity = Clock::now();
    std::string data;
    std::size_t line_start = 0;
    while (line_start < event.size()) {
      std::size_t line_end = event.find('\n', line_start);
      if (line_end == std::string::npos) line_end = event.size();
      const std::string_view line(event.data() + line_start,
                                  line_end - line_start);
      line_start = line_end + 1;
      if (line.rfind("data: ", 0) == 0) data.assign(line.substr(6));
    }
    if (data.empty()) continue;  // ": keepalive" comment
    c->failures = 0;
    if (!handle_body(c, std::move(data))) {
      // A stream cannot move its cursor mid-flight: resync by reconnect.
      begin_resync(c, /*teardown_connection=*/true);
      return;
    }
    if (c->failed || !c->sock.valid()) return;
  }
  if (c->stream_ended) {
    // The upstream ended the stream (shutdown or restart): treat it as a
    // potential new epoch and re-join from scratch.
    c->failures = std::min(c->failures + 1, 16);
    begin_resync(c, /*teardown_connection=*/true);
  }
}

bool RelaySubscriber::handle_body(Conn* c, std::string body) {
  // Order matters: the long-poll timeout body is {"seq":<since>,
  // "timeout":true} — it contains "seq" and would otherwise read as an
  // epoch regression.
  if (body.find("\"timeout\":true") != std::string::npos) return true;
  std::uint64_t seq = 0;
  if (!scan_u64(body, "\"seq\":", seq)) return true;  // not a frame body
  const bool is_full = body.find("\"delta\":false") != std::string::npos;
  std::uint64_t base_seq = 0;
  const bool has_base = scan_u64(body, "\"base_seq\":", base_seq);
  if (c->resync_pending) {
    // We asked for full=1; anything else means the request raced an
    // upstream restart — run the resync again.
    if (!is_full) return false;
    c->resync_pending = false;
    publish_body(c, std::move(body), /*is_full=*/true, /*has_base=*/false);
    c->since_up = seq;
    return true;
  }
  if (seq <= c->since_up) {
    // Upstream seq went backwards: the origin restarted and its counting
    // re-began. Propagate as a clean full-frame resync, not a gap.
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++c->stats.epoch_changes;
    }
    return false;
  }
  if (has_base && base_seq != c->since_up) {
    // A delta against a base we never consumed cannot be rebased.
    return false;
  }
  publish_body(c, std::move(body), is_full, has_base && !is_full);
  c->since_up = seq;
  return true;
}

void RelaySubscriber::publish_body(Conn* c, std::string body, bool is_full,
                                   bool has_base) {
  // Rebase the body into the local seq space: downstream subscribers must
  // see a strictly increasing window regardless of upstream restarts.
  const std::uint64_t local = c->last_local + 1;
  splice_u64(body, "\"seq\":", local);
  if (has_base) splice_u64(body, "\"base_seq\":", c->last_local);
  web::FrameHub::PreEncoded pre;
  if (is_full) {
    pre.full_body = std::move(body);
  } else {
    pre.delta_body = std::move(body);
  }
  const std::uint64_t seq = registry_.publish_encoded(c->view, std::move(pre));
  if (seq == 0) return;  // registry shutting down
  if (seq != local) {
    // The local shard was reaped and revived under us: its seq space no
    // longer matches our rebased bodies. Re-anchor and fetch a fresh full
    // frame so the next publish is coherent at the hub's actual head.
    c->resync_pending = true;
  }
  c->last_local = seq;
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++c->stats.frames;
  if (is_full) {
    ++c->stats.full_frames;
  } else {
    ++c->stats.delta_frames;
  }
  c->stats.last_upstream_seq = c->since_up;
  c->stats.last_local_seq = seq;
}

void RelaySubscriber::note_relay_path(Conn* c, const std::string& header) {
  if (header.empty()) return;  // direct origin: no chain to learn
  std::vector<std::string> chain;
  for (const std::string& part : util::split(header, ',')) {
    const std::string_view id = util::trim(part);
    if (!id.empty()) chain.emplace_back(id);
  }
  for (const std::string& id : chain) {
    if (id == config_.relay_id) {
      fail_subscription(c, "relay cycle: own id '" + id +
                               "' appears in the upstream path");
      return;
    }
  }
  if (chain.size() + 1 > config_.max_depth) {
    fail_subscription(
        c, util::strprintf("relay depth cap exceeded: %zu upstream hops, "
                           "max_depth %zu",
                           chain.size(), config_.max_depth));
    return;
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  upstream_path_ = std::move(chain);
}

void RelaySubscriber::arm_watchdog(Conn* c) {
  const double period = std::max(1.0, config_.poll_timeout_s);
  c->watchdog_timer = reactor_.run_after(period, [this, c] {
    c->watchdog_timer = 0;
    if (c->failed || !c->sock.valid()) return;
    // A live upstream produces at least keepalives/timeout bodies every
    // poll_timeout_s; twice that plus slack means it silently hung.
    const double budget = 2.0 * config_.poll_timeout_s + 5.0;
    const double idle =
        std::chrono::duration<double>(Clock::now() - c->last_activity).count();
    if (idle > budget) {
      c->failures = std::min(c->failures + 1, 16);
      c->joined = false;
      c->resync_pending = true;
      teardown(c);
      schedule_connect(c, backoff_delay_s(config_, c->failures));
      return;
    }
    arm_watchdog(c);
  });
}

}  // namespace ricsa::relay
