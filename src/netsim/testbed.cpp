#include "netsim/testbed.hpp"

namespace ricsa::netsim {

namespace {
constexpr double kMB = 1e6;  // bytes
}

Testbed make_testbed(const TestbedOptions& options) {
  Testbed tb;
  tb.sim = std::make_unique<Simulator>();
  tb.net = std::make_unique<Network>(*tb.sim, options.seed);

  // --- Hosts -------------------------------------------------------------
  // Normalized compute power: PC = 1.0 (footnote 1 of the paper). The two
  // data-source PCs are slightly dated hardware. Clusters aggregate to
  // several PCs' worth after parallel efficiency, and additionally carry a
  // distribution overhead charged once per parallel task.
  tb.ornl = tb.net->add_node({.name = "ORNL", .power = 1.0, .has_gpu = true,
                              .parallel_workers = 1});
  tb.lsu = tb.net->add_node({.name = "LSU", .power = 1.0, .has_gpu = false,
                             .parallel_workers = 1});
  tb.ut = tb.net->add_node({.name = "UT", .power = 5.0, .has_gpu = true,
                            .parallel_workers = 8,
                            .distribution_overhead_s = 0.9});
  tb.ncstate = tb.net->add_node({.name = "NCState", .power = 3.5,
                                 .has_gpu = true, .parallel_workers = 4,
                                 .distribution_overhead_s = 0.7});
  tb.osu = tb.net->add_node({.name = "OSU", .power = 0.8, .has_gpu = false,
                             .parallel_workers = 1});
  tb.gatech = tb.net->add_node({.name = "GaTech", .power = 0.8,
                                .has_gpu = false, .parallel_workers = 1});

  const auto link = [&](double mbps, double delay_s) {
    LinkConfig c;
    c.bandwidth_Bps = mbps * kMB * options.bandwidth_scale;
    c.prop_delay_s = delay_s;
    c.random_loss = options.random_loss;
    return c;
  };

  // --- Links (duplex, effective path bandwidths in MB/s) ------------------
  // Control plane (client -> CM -> data sources): thin but low-jitter paths.
  tb.net->add_duplex(tb.ornl, tb.lsu, link(4.0, 0.012));
  tb.net->add_duplex(tb.lsu, tb.gatech, link(3.0, 0.015));
  tb.net->add_duplex(tb.lsu, tb.osu, link(3.0, 0.014));

  // Data plane: DS -> CS cluster hops.
  tb.net->add_duplex(tb.gatech, tb.ut, link(9.0, 0.008));
  tb.net->add_duplex(tb.gatech, tb.ncstate, link(5.0, 0.010));
  tb.net->add_duplex(tb.osu, tb.ut, link(4.5, 0.012));
  tb.net->add_duplex(tb.osu, tb.ncstate, link(4.0, 0.009));

  // CS -> client. UT and ORNL are geographically adjacent (Knoxville /
  // Oak Ridge): the fattest, shortest link in the deployment.
  tb.net->add_duplex(tb.ut, tb.ornl, link(10.0, 0.004));
  tb.net->add_duplex(tb.ncstate, tb.ornl, link(5.0, 0.009));

  // Direct DS -> client paths used by the PC-PC client/server baselines.
  tb.net->add_duplex(tb.gatech, tb.ornl, link(2.5, 0.011));
  tb.net->add_duplex(tb.osu, tb.ornl, link(2.0, 0.013));

  return tb;
}

}  // namespace ricsa::netsim
