// Directed overlay link with a serializing transmitter, a FIFO byte queue,
// and configurable random loss.
//
// A "link" here models one virtual hop of the paper's overlay network of
// transport daemons (Section 4.3) — possibly many physical hops underneath —
// characterized by an effective bandwidth, a minimum delay d_{i,j}, and loss.
// Congestive loss emerges naturally: packets arriving while the queue holds
// queue_capacity_bytes are dropped, which is what the Robbins-Monro transport
// reacts to.
#pragma once

#include <functional>

#include "netsim/packet.hpp"
#include "netsim/simulator.hpp"
#include "util/prng.hpp"

namespace ricsa::netsim {

struct LinkConfig {
  /// Serialization rate in bytes per (virtual) second.
  double bandwidth_Bps = 1e7;
  /// Minimum link delay (propagation + fixed per-hop processing), seconds.
  double prop_delay_s = 0.01;
  /// FIFO queue capacity; arrivals beyond it are tail-dropped.
  std::size_t queue_capacity_bytes = 512 * 1024;
  /// Independent per-packet random loss probability (non-congestive).
  double random_loss = 0.0;
  /// Gilbert-Elliott burst-loss model: when enabled the link alternates
  /// between a good state (loss = random_loss) and a bad state
  /// (loss = burst_loss) with exponential dwell times.
  bool burst_model = false;
  double burst_loss = 0.2;
  double mean_good_s = 1.0;
  double mean_bad_s = 0.05;
};

struct LinkStats {
  std::uint64_t delivered = 0;
  std::uint64_t dropped_queue = 0;
  std::uint64_t dropped_random = 0;
  std::uint64_t bytes_delivered = 0;
};

class Link {
 public:
  using DeliverFn = std::function<void(const Packet&)>;

  Link(Simulator& sim, LinkConfig config, std::uint64_t seed);

  /// Offer a packet to the transmitter. Tail-drops if the queue is full.
  /// Surviving packets are delivered via deliver after serialization +
  /// propagation.
  void send(Packet packet, DeliverFn deliver);

  const LinkConfig& config() const noexcept { return config_; }
  const LinkStats& stats() const noexcept { return stats_; }
  std::size_t queued_bytes() const noexcept { return queued_bytes_; }

  /// Live reconfiguration (used by the adaptive-reconfiguration ablation:
  /// degrade a link mid-run and watch the CM recompute the VRT).
  void set_bandwidth(double bandwidth_Bps) noexcept {
    config_.bandwidth_Bps = bandwidth_Bps;
  }
  void set_random_loss(double p) noexcept { config_.random_loss = p; }

 private:
  bool in_bad_state_at(SimTime t);
  double loss_probability(SimTime t);

  Simulator& sim_;
  LinkConfig config_;
  util::Xoshiro256 rng_;
  LinkStats stats_;
  /// Time at which the transmitter finishes its current backlog.
  SimTime busy_until_ = 0.0;
  std::size_t queued_bytes_ = 0;
  /// Gilbert-Elliott state machine, advanced lazily.
  bool bad_state_ = false;
  SimTime state_until_ = 0.0;
};

}  // namespace ricsa::netsim
