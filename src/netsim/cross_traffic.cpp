#include "netsim/cross_traffic.hpp"

namespace ricsa::netsim {

CrossTraffic::CrossTraffic(Simulator& sim, Link& link,
                           CrossTrafficConfig config, std::uint64_t seed)
    : sim_(sim), link_(link), config_(config), rng_(seed) {}

void CrossTraffic::start() {
  if (running_) return;
  running_ = true;
  state_until_ = sim_.now() + rng_.exponential(1.0 / config_.mean_on_s);
  schedule_next();
}

void CrossTraffic::schedule_next() {
  if (!running_) return;

  // Advance the ON/OFF chain past `now`.
  while (state_until_ <= sim_.now()) {
    on_state_ = !on_state_;
    const double dwell = on_state_ ? config_.mean_on_s : config_.mean_off_s;
    state_until_ += rng_.exponential(1.0 / dwell);
  }

  if (!on_state_) {
    // Sleep until the OFF period ends, then resume.
    sim_.at(state_until_, [this] { schedule_next(); });
    return;
  }

  // Poisson arrivals at rate on_load * bandwidth / packet_bytes.
  const double rate = config_.on_load * link_.config().bandwidth_Bps /
                      static_cast<double>(config_.packet_bytes);
  const double gap = rate > 0 ? rng_.exponential(rate) : 1.0;
  sim_.after(gap, [this] {
    if (!running_) return;
    Packet p;
    p.flow = 0;  // cross traffic
    p.wire_bytes = config_.packet_bytes;
    ++injected_;
    link_.send(std::move(p), [](const Packet&) { /* sinks silently */ });
    schedule_next();
  });
}

}  // namespace ricsa::netsim
