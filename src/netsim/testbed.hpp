// The six-site experimental deployment of Section 5.3 (Fig. 8), rebuilt as a
// simulated topology:
//
//   ORNL    — Ajax client + front end (PC, graphics card)
//   LSU     — central management (PC)
//   UT      — computing service, 8-node cluster (close to ORNL: fast link)
//   NCState — computing service, cluster (smaller)
//   OSU     — data source (PC, no graphics card)
//   GaTech  — data source (PC, no graphics card)
//
// Link parameters are calibrated so the measured Fig. 9 *shape* reproduces:
// GaTech-UT-ORNL is the premium data path; direct PC-PC paths to ORNL are
// comparatively thin; cluster nodes have several times PC compute power but
// pay a per-task distribution overhead.
#pragma once

#include <memory>

#include "netsim/cross_traffic.hpp"
#include "netsim/network.hpp"
#include "netsim/simulator.hpp"

namespace ricsa::netsim {

struct Testbed {
  std::unique_ptr<Simulator> sim;
  std::unique_ptr<Network> net;
  NodeId ornl = kInvalidNode;
  NodeId lsu = kInvalidNode;
  NodeId ut = kInvalidNode;
  NodeId ncstate = kInvalidNode;
  NodeId osu = kInvalidNode;
  NodeId gatech = kInvalidNode;
};

struct TestbedOptions {
  std::uint64_t seed = 0x41ce5a;
  /// Uniform random (non-congestive) loss on every link.
  double random_loss = 5e-4;
  /// Scale factor applied to all bandwidths (1.0 = nominal).
  double bandwidth_scale = 1.0;
};

/// Build the six-node topology with calibrated link/host parameters.
Testbed make_testbed(const TestbedOptions& options = {});

}  // namespace ricsa::netsim
