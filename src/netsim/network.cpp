#include "netsim/network.hpp"

#include <stdexcept>

namespace ricsa::netsim {

Network::Network(Simulator& sim, std::uint64_t seed)
    : sim_(sim), seed_stream_(seed) {}

NodeId Network::add_node(NodeInfo info) {
  info.id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(info));
  return nodes_.back().id;
}

Link& Network::add_link(NodeId from, NodeId to, LinkConfig config) {
  auto link = std::make_unique<Link>(sim_, config, seed_stream_());
  Link& ref = *link;
  links_[{from, to}] = std::move(link);
  return ref;
}

void Network::add_duplex(NodeId a, NodeId b, LinkConfig config) {
  add_link(a, b, config);
  add_link(b, a, config);
}

bool Network::has_link(NodeId from, NodeId to) const {
  return links_.count({from, to}) > 0;
}

Link& Network::link(NodeId from, NodeId to) {
  const auto it = links_.find({from, to});
  if (it == links_.end()) throw std::out_of_range("Network::link: no such link");
  return *it->second;
}

const Link& Network::link(NodeId from, NodeId to) const {
  const auto it = links_.find({from, to});
  if (it == links_.end()) throw std::out_of_range("Network::link: no such link");
  return *it->second;
}

const NodeInfo& Network::node(NodeId id) const {
  return nodes_.at(static_cast<std::size_t>(id));
}

NodeId Network::find_node(const std::string& name) const {
  for (const NodeInfo& n : nodes_) {
    if (n.name == name) return n.id;
  }
  throw std::out_of_range("Network::find_node: unknown node " + name);
}

std::vector<NodeId> Network::neighbors_in(NodeId id) const {
  std::vector<NodeId> out;
  for (const auto& [key, link] : links_) {
    if (key.second == id) out.push_back(key.first);
  }
  return out;
}

std::vector<NodeId> Network::neighbors_out(NodeId id) const {
  std::vector<NodeId> out;
  for (const auto& [key, link] : links_) {
    if (key.first == id) out.push_back(key.second);
  }
  return out;
}

std::vector<std::pair<NodeId, NodeId>> Network::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(links_.size());
  for (const auto& [key, link] : links_) out.push_back(key);
  return out;
}

void Network::listen(NodeId node, int port, Handler handler) {
  handlers_[{node, port}] = std::move(handler);
}

void Network::unlisten(NodeId node, int port) {
  handlers_.erase({node, port});
}

void Network::send(Packet packet) {
  Link& l = link(packet.src, packet.dst);
  l.send(std::move(packet), [this](const Packet& p) {
    const auto it = handlers_.find({p.dst, p.port});
    if (it == handlers_.end()) {
      ++undeliverable_;
      return;
    }
    // Copy before invoking: a handler may unlisten (erase) itself while
    // running, which would otherwise destroy the closure mid-call.
    const Handler handler = it->second;
    handler(p);
  });
}

}  // namespace ricsa::netsim
