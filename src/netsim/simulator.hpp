// Virtual-time discrete-event simulator.
//
// All WAN experiments (Figs. 9 and 10, transport stabilization) run in
// virtual time so results are deterministic and machine-independent: a
// "second" here is a simulated second, not a wall-clock one. Events with
// equal timestamps execute in scheduling order (FIFO tie-break by sequence
// number), which makes runs exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace ricsa::netsim {

/// Simulated seconds.
using SimTime = double;

class Simulator {
 public:
  SimTime now() const noexcept { return now_; }

  /// Schedule fn at absolute virtual time t (must be >= now()).
  void at(SimTime t, std::function<void()> fn);

  /// Schedule fn after a relative delay (clamped at >= 0).
  void after(SimTime delay, std::function<void()> fn);

  /// Execute the next event; returns false when the queue is empty.
  bool step();

  /// Run until the event queue drains.
  void run();

  /// Run events with timestamp <= t, then set now() = t.
  void run_until(SimTime t);

  std::size_t pending() const noexcept { return queue_.size(); }
  std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace ricsa::netsim
