// Cross-traffic injector: an on/off Markov-modulated Poisson source that
// shares a link with the measured flows.
//
// The paper's transport stabilization (Section 3) and EPB estimation
// (Section 4.3) are motivated by "complex traffic distribution over wide-area
// networks"; this process supplies that competing traffic so congestive loss
// and delay variation are endogenous rather than hard-coded.
#pragma once

#include <cstdint>

#include "netsim/link.hpp"
#include "netsim/simulator.hpp"
#include "util/prng.hpp"

namespace ricsa::netsim {

struct CrossTrafficConfig {
  /// Mean offered load while in the ON state, as a fraction of the link
  /// bandwidth (e.g. 0.3 = 30% of capacity).
  double on_load = 0.3;
  /// Mean dwell times of the ON/OFF states, seconds.
  double mean_on_s = 2.0;
  double mean_off_s = 2.0;
  /// Size of each injected burst packet, bytes.
  std::size_t packet_bytes = 1500;
};

class CrossTraffic {
 public:
  CrossTraffic(Simulator& sim, Link& link, CrossTrafficConfig config,
               std::uint64_t seed);

  /// Begin injecting (schedules itself forever; call stop() to cease).
  void start();
  void stop() noexcept { running_ = false; }
  std::uint64_t injected_packets() const noexcept { return injected_; }

 private:
  void schedule_next();

  Simulator& sim_;
  Link& link_;
  CrossTrafficConfig config_;
  util::Xoshiro256 rng_;
  bool running_ = false;
  bool on_state_ = true;
  SimTime state_until_ = 0.0;
  std::uint64_t injected_ = 0;
};

}  // namespace ricsa::netsim
