#include "netsim/link.hpp"

#include <algorithm>
#include <utility>

namespace ricsa::netsim {

Link::Link(Simulator& sim, LinkConfig config, std::uint64_t seed)
    : sim_(sim), config_(config), rng_(seed) {}

bool Link::in_bad_state_at(SimTime t) {
  if (!config_.burst_model) return false;
  while (state_until_ <= t) {
    // Advance the two-state Markov chain lazily up to time t.
    const double dwell = bad_state_
                             ? rng_.exponential(1.0 / config_.mean_bad_s)
                             : rng_.exponential(1.0 / config_.mean_good_s);
    state_until_ += dwell;
    bad_state_ = !bad_state_;
  }
  return bad_state_;
}

double Link::loss_probability(SimTime t) {
  return in_bad_state_at(t) ? config_.burst_loss : config_.random_loss;
}

void Link::send(Packet packet, DeliverFn deliver) {
  const std::size_t size = std::max<std::size_t>(packet.wire_bytes, 1);
  if (queued_bytes_ + size > config_.queue_capacity_bytes) {
    ++stats_.dropped_queue;
    return;
  }
  queued_bytes_ += size;

  const SimTime start = std::max(sim_.now(), busy_until_);
  const SimTime tx_done = start + static_cast<double>(size) / config_.bandwidth_Bps;
  busy_until_ = tx_done;

  // The queue drains when serialization of this packet completes.
  sim_.at(tx_done, [this, size] {
    queued_bytes_ -= std::min(queued_bytes_, size);
  });

  const double p_loss = loss_probability(tx_done);
  if (p_loss > 0.0 && rng_.bernoulli(p_loss)) {
    ++stats_.dropped_random;
    return;
  }

  const SimTime arrive = tx_done + config_.prop_delay_s;
  ++stats_.delivered;
  stats_.bytes_delivered += size;
  sim_.at(arrive, [deliver = std::move(deliver), packet = std::move(packet)] {
    deliver(packet);
  });
}

}  // namespace ricsa::netsim
