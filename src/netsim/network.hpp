// Overlay network: nodes with normalized compute power, directed links,
// per-node/port packet handlers.
//
// This is the transport graph G = (V, E) of Section 4.2. Node capabilities
// (graphics card, cluster parallelism) feed the DP mapper's feasibility
// checks; link parameters feed the cost models.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "netsim/link.hpp"
#include "netsim/packet.hpp"
#include "netsim/simulator.hpp"

namespace ricsa::netsim {

struct NodeInfo {
  NodeId id = kInvalidNode;
  std::string name;
  /// Normalized computing power p_i (Section 4.2, footnote 1). A PC host is
  /// 1.0; a cluster node aggregates to several times that.
  double power = 1.0;
  /// Whether the node has rendering hardware (the paper's GaTech/OSU hosts
  /// had no graphics card, so Render could not be placed there).
  bool has_gpu = false;
  /// Cluster width for data-parallel visualization modules (1 = plain PC).
  int parallel_workers = 1;
  /// Fixed per-activation overhead of distributing work across the cluster
  /// (the paper: "overhead incurred by data distributions and communications
  /// among cluster nodes"), seconds per task.
  double distribution_overhead_s = 0.0;
};

class Network {
 public:
  explicit Network(Simulator& sim, std::uint64_t seed = 0x5eed);

  NodeId add_node(NodeInfo info);
  /// Adds a directed link; returns a stable handle for reconfiguration.
  Link& add_link(NodeId from, NodeId to, LinkConfig config);
  /// Adds both directions with the same config.
  void add_duplex(NodeId a, NodeId b, LinkConfig config);

  bool has_link(NodeId from, NodeId to) const;
  Link& link(NodeId from, NodeId to);
  const Link& link(NodeId from, NodeId to) const;

  const NodeInfo& node(NodeId id) const;
  NodeId find_node(const std::string& name) const;
  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t link_count() const noexcept { return links_.size(); }
  std::vector<NodeId> neighbors_in(NodeId id) const;
  std::vector<NodeId> neighbors_out(NodeId id) const;
  std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// Register/replace the handler for (node, port). Incoming packets with no
  /// handler are counted and dropped.
  using Handler = std::function<void(const Packet&)>;
  void listen(NodeId node, int port, Handler handler);
  void unlisten(NodeId node, int port);

  /// Send over the direct overlay link from packet.src to packet.dst.
  /// Throws std::out_of_range if no such link exists (overlay routing is the
  /// application's job, matching the paper's hop-by-hop VRT delivery).
  void send(Packet packet);

  Simulator& simulator() noexcept { return sim_; }
  std::uint64_t undeliverable() const noexcept { return undeliverable_; }

 private:
  Simulator& sim_;
  util::Xoshiro256 seed_stream_;
  std::vector<NodeInfo> nodes_;
  std::map<std::pair<NodeId, NodeId>, std::unique_ptr<Link>> links_;
  std::map<std::pair<NodeId, int>, Handler> handlers_;
  std::uint64_t undeliverable_ = 0;
};

}  // namespace ricsa::netsim
