// Packet record exchanged between simulated nodes.
#pragma once

#include <cstdint>
#include <vector>

namespace ricsa::netsim {

using NodeId = int;
inline constexpr NodeId kInvalidNode = -1;

struct Packet {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  /// Destination demux port (a transport connection or an actor mailbox).
  int port = 0;
  /// Transport-level sequence number (datagram index within a flow).
  std::uint64_t seq = 0;
  /// Flow identifier; cross-traffic uses flow 0.
  std::uint64_t flow = 0;
  /// Bytes on the wire (header + payload); what the link serializes.
  std::size_t wire_bytes = 0;
  /// Optional structured payload (steering messages carry real bytes;
  /// bulk-data datagrams usually carry none and are accounted by wire_bytes).
  std::vector<std::uint8_t> payload;
};

}  // namespace ricsa::netsim
