#include "netsim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace ricsa::netsim {

void Simulator::at(SimTime t, std::function<void()> fn) {
  if (t < now_) throw std::invalid_argument("Simulator::at: time in the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulator::after(SimTime delay, std::function<void()> fn) {
  at(now_ + (delay > 0 ? delay : 0), std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast on the handler
  // only (time/seq stay untouched until pop).
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ++executed_;
  ev.fn();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) step();
  if (t > now_) now_ = t;
}

}  // namespace ricsa::netsim
