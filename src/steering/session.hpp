// High-level monitoring & steering session: the functional composition of
// the whole system for in-process use (examples, web dashboard, tests).
//
// Owns a steerable simulation behind a SimulationServer (the Fig. 7 loop),
// the calibrated cost models, the six-site testbed profile, and the CM-side
// DP mapper. Every frame: drain steering messages -> advance the simulation
// -> snapshot -> recompute the VRT for the current dataset (the paper
// recomputes "a new visualization routing table ... for each subsequent
// interactive operation", footnote 3) -> run the real visualization pipeline
// -> return the image plus monitoring metadata.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/mapper.hpp"
#include "cost/models.hpp"
#include "cost/network_profile.hpp"
#include "hydro/steerable.hpp"
#include "netsim/testbed.hpp"
#include "pipeline/vrt.hpp"
#include "steering/executor.hpp"
#include "steering/server.hpp"
#include "util/thread_pool.hpp"

namespace ricsa::steering {

struct SessionConfig {
  hydro::HydroSimulation::Kind simulation =
      hydro::HydroSimulation::Kind::kBowshock;
  int resolution = 40;
  cost::VizRequest viz;
  /// Simulation cycles advanced per produced frame.
  int cycles_per_frame = 2;
  std::size_t threads = 2;
};

class SteeringSession {
 public:
  explicit SteeringSession(SessionConfig config);

  struct FrameResult {
    viz::Image image;
    int cycle = 0;
    double sim_time = 0.0;
    std::string variable;
    ExecuteResult exec;
    pipeline::VisualizationRoutingTable vrt;
  };

  /// Produce the next monitoring frame (advances the simulation).
  FrameResult next_frame();

  /// Re-render the most recent frame's snapshot under a different
  /// request/camera, without advancing the simulation — one simulation
  /// step fanned out into several published *views* (the sharded web
  /// layer's variable × projection streams). Uses the session's pool; call
  /// from the thread driving next_frame(). Returns nullopt before the
  /// first frame.
  std::optional<ExecuteResult> render_view(const cost::VizRequest& request,
                                           ExecuteOptions options);

  /// Post a steering parameter (takes effect on the next frame). Returns
  /// false only for malformed names the protocol rejects outright.
  void steer(const std::string& name, double value);
  std::map<std::string, double> parameters() const;

  void set_variable(const std::string& variable);
  const std::string& variable() const { return server_.monitored_variable(); }

  cost::VizRequest& viz_request() noexcept { return config_.viz; }
  ExecuteOptions& view() noexcept { return view_; }
  hydro::Steerable& simulation() noexcept { return sim_; }
  const cost::NetworkProfile& profile() const noexcept { return profile_; }
  const pipeline::VisualizationRoutingTable& vrt() const noexcept { return vrt_; }
  const cost::CostModels& models() const noexcept { return models_; }

 private:
  SessionConfig config_;
  hydro::HydroSimulation sim_;
  SimulationServer server_;
  util::ThreadPool pool_;
  netsim::Testbed testbed_;
  cost::NetworkProfile profile_;
  cost::CostModels models_;
  core::DpMapper mapper_;
  pipeline::VisualizationRoutingTable vrt_;
  std::uint32_t vrt_version_ = 0;
  ExecuteOptions view_;
  std::uint32_t message_seq_ = 0;
  /// The last frame's volume snapshot, retained so render_view() can fan
  /// one simulation step out into several published views.
  std::shared_ptr<const data::ScalarVolume> last_snapshot_;
};

}  // namespace ricsa::steering
