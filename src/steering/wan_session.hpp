// One full RICSA monitoring round trip over the simulated WAN, in virtual
// time — the measurement engine behind the Fig. 9 / Fig. 10 reproductions.
//
// Actors (the paper's five virtual component nodes) run as message handlers
// on their testbed hosts:
//   client/front end -> CM: simulation + visualization request (control);
//   CM: solves the DP (or accepts a fixed assignment for baseline loops),
//       issues the VRT to the data source hop-by-hop (control);
//   DS -> CS -> ... -> client: the data phase executes each VRT group —
//       compute time = group's unit-compute / node power (+ cluster
//       distribution overhead), transfers ride real packet-level transport
//       flows with Robbins-Monro rate control (or analytic m/EPB + d0).
//
// The returned record separates control-plane latency from the data-path
// delay (the quantity Fig. 9 plots).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/mapper.hpp"
#include "cost/network_profile.hpp"
#include "netsim/network.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/vrt.hpp"

namespace ricsa::steering {

struct WanSessionConfig {
  netsim::NodeId client = 0;
  netsim::NodeId central_manager = 0;
  netsim::NodeId data_source = 0;
  pipeline::PipelineSpec spec;
  /// What the CM believes about the network (drives the DP and the
  /// transport targets).
  cost::NetworkProfile profile;
  /// When set, the CM skips the DP and installs this module->node
  /// assignment (used to price the non-optimal comparison loops).
  std::optional<std::vector<int>> fixed_assignment;
  /// Transport realism: true = packet-level reliable flows (Robbins-Monro
  /// rate control, losses, retransmissions); false = analytic m/EPB + d0.
  bool packet_transport = true;
  /// Datagram payload for the data flows. Large payloads keep event counts
  /// tractable for 100 MB transfers without changing the control dynamics.
  std::size_t datagram_payload = 64 * 1024;
  /// Fraction of the link's profiled EPB the data flow targets.
  double target_share = 0.9;
  /// CM processing time to compute the VRT (the DP itself is microseconds;
  /// this covers request parsing and table distribution bookkeeping).
  double cm_compute_s = 0.005;
  /// Fixed per-transfer protocol overhead added before each inter-group
  /// data transfer (0 for RICSA's lightweight message protocol; the
  /// ParaView-style baseline of Fig. 10 pays a connection/handshake cost
  /// per stage).
  double per_transfer_overhead_s = 0.0;
};

struct StageRecord {
  std::string label;
  int node = -1;
  double start_s = 0.0;
  double end_s = 0.0;
};

struct WanResult {
  bool completed = false;
  /// Control plane: request departure -> VRT installed at the data source.
  double control_s = 0.0;
  /// Data path: data-source start -> image displayed at the client. This is
  /// the end-to-end delay of Eq. 2 that Fig. 9 reports.
  double data_path_s = 0.0;
  double total_s = 0.0;
  std::vector<int> assignment;
  pipeline::VisualizationRoutingTable vrt;
  std::vector<StageRecord> timeline;
};

/// Run the session to completion (advances the network's simulator clock).
WanResult run_wan_session(netsim::Network& net, const WanSessionConfig& config);

}  // namespace ricsa::steering
