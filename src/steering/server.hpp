// The simulation-side steering server and the six RICSA_* API calls of
// Fig. 7.
//
// "We achieved this goal by developing several generic C++ visualization/
// network API functions and packaging them in a shared library. These API
// function calls are inserted at certain points in the simulation code ...
// to set up socket communications, transfer datasets, or intercept steering
// commands from the client." (Section 5.2)
//
// SimulationServer is the object behind those calls: a thread-safe mailbox
// of steering messages feeding any hydro::Steerable, plus a frame slot the
// visualization side drains. The C-style functions mirror the paper's
// pseudo-code verbatim so a VH1-like main loop reads identically.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "data/volume.hpp"
#include "hydro/steerable.hpp"
#include "steering/message.hpp"

namespace ricsa::steering {

class SimulationServer {
 public:
  explicit SimulationServer(hydro::Steerable& simulation);

  // ---- client side (any thread) ----------------------------------------
  /// Queue a message for the simulation (steering params, viz request,
  /// shutdown).
  void post(Message message);

  struct Frame {
    int cycle = 0;
    double sim_time = 0.0;
    std::string variable;
    data::ScalarVolume snapshot;
  };
  /// Take the most recent pushed frame, if any (consumes it).
  std::optional<Frame> take_frame();
  std::uint64_t frames_pushed() const;

  // ---- simulation side (the Fig. 7 calls) -------------------------------
  /// Blocks until at least one message has ever been posted (the paper's
  /// WaitAcceptConnection: the simulation idles until a client attaches).
  void wait_accept_connection();

  /// Drain the mailbox. Returns -1 after a shutdown message, 1 if new
  /// simulation parameters are pending, 0 otherwise. Non-parameter messages
  /// (viz requests) are applied immediately.
  int receive_handle_message();

  /// Snapshot the monitored variable into the frame slot.
  void push_data_to_viz_node();

  /// Apply pending steering parameters to the simulation. Returns how many
  /// parameters were accepted.
  int update_simulation_parameters();

  bool running() const;
  const std::string& monitored_variable() const;

 private:
  hydro::Steerable& simulation_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> mailbox_;
  bool ever_connected_ = false;
  bool running_ = true;
  std::map<std::string, double> pending_params_;
  std::string variable_ = "density";
  std::optional<Frame> frame_;
  std::uint64_t frames_ = 0;
};

// ---- Fig. 7 C-style facade ----------------------------------------------
SimulationServer* RICSA_StartupSimulationServer(hydro::Steerable* simulation);
void RICSA_WaitAcceptConnection(SimulationServer* server);
/// -1 shutdown, 1 new simulation parameters pending, 0 nothing.
int RICSA_ReceiveHandleMessage(SimulationServer* server);
void RICSA_PushDataToVizNode(SimulationServer* server);
void RICSA_UpdateSimulationParameters(SimulationServer* server);
void RICSA_ShutdownSimulationServer(SimulationServer* server);

}  // namespace ricsa::steering
