// Steering message protocol.
//
// Every interaction in the visualization loop (Section 2) is one of these
// messages: the client's simulation/visualization request, the CM's VRT
// installation, steering parameter updates on the control channel, data
// chunks on the data channel, and image results flowing back to the front
// end. Wire format: length-prefixed binary via util::ByteWriter with a JSON
// header for extensible key/value metadata.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace ricsa::steering {

enum class MessageType : std::uint8_t {
  kSimulationRequest = 1,  // client -> FE -> CM: start/attach to a simulation
  kSimulationAck = 2,      // CM -> client: accepted, session id assigned
  kVizRequest = 3,         // client -> FE -> CM: visualization parameters
  kSteeringParams = 4,     // client -> ... -> simulator: new parameters
  kVrtInstall = 5,         // CM -> loop nodes: visualization routing table
  kDataChunk = 6,          // DS -> CS: raw/filtered dataset
  kGeometry = 7,           // CS -> CS/client: extracted geometry
  kImageResult = 8,        // CS -> FE: rendered frame
  kStatus = 9,             // any -> FE: progress/monitoring info
  kError = 10,
  kShutdown = 11,
};

const char* to_string(MessageType type);

struct Message {
  MessageType type = MessageType::kStatus;
  std::uint32_t session = 0;
  std::uint32_t sequence = 0;
  /// Structured metadata (variable names, parameters, stats...).
  util::Json header;
  /// Bulk payload (serialized volume / mesh / VRT / image).
  std::vector<std::uint8_t> payload;

  std::vector<std::uint8_t> serialize() const;
  static Message deserialize(const std::vector<std::uint8_t>& bytes);

  /// Approximate wire size (what the control channel carries).
  std::size_t wire_bytes() const;
};

/// Convenience constructors.
Message make_simulation_request(std::uint32_t session, const std::string& simulator,
                                const std::string& variable);
Message make_viz_request(std::uint32_t session, const std::string& technique,
                         float isovalue, int width, int height);
Message make_steering_params(std::uint32_t session,
                             const std::map<std::string, double>& params);
Message make_status(std::uint32_t session, const std::string& text);

}  // namespace ricsa::steering
