// In-process execution of the visualization pipeline on real data: the
// functional counterpart of the WAN timing model. The web dashboard, the
// live steering server and the examples all funnel a volume snapshot through
// this to obtain the frame a browser displays.
#pragma once

#include <optional>

#include "cost/pipeline_builder.hpp"
#include "data/volume.hpp"
#include "util/thread_pool.hpp"
#include "viz/image.hpp"
#include "viz/isosurface.hpp"
#include "viz/mesh.hpp"

namespace ricsa::steering {

struct ExecuteOptions {
  /// Downsample factor applied by the filter stage (1 = keep full data).
  int downsample = 1;
  /// Octree subset (-1 = whole dataset; 0..7 selects an octant, the GUI's
  /// "one of the eight octree subsets").
  int octant = -1;
  /// View parameters (zoom factor and rotation, Section 5.1's GUI knobs).
  float azimuth = 0.7f;
  float elevation = 0.35f;
  float zoom = 1.0f;
  util::ThreadPool* pool = nullptr;
};

struct ExecuteResult {
  viz::Image image;
  /// Stage timings (seconds) for monitoring display.
  double filter_s = 0.0;
  double transform_s = 0.0;
  double render_s = 0.0;
  /// Extraction statistics when the technique was isosurface.
  std::optional<viz::IsosurfaceStats> iso_stats;
  std::size_t geometry_bytes = 0;
};

/// Run filter -> transform -> render for the request on the given snapshot.
ExecuteResult execute_pipeline(const data::ScalarVolume& snapshot,
                               const cost::VizRequest& request,
                               const ExecuteOptions& options = {});

}  // namespace ricsa::steering
