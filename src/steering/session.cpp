#include "steering/session.hpp"

#include "cost/pipeline_builder.hpp"
#include "data/generators.hpp"

namespace ricsa::steering {

namespace {
/// Quick shared calibration on small sample volumes (done once per process;
/// session construction must stay interactive).
const cost::CostModels& quick_models() {
  static const cost::CostModels models = [] {
    static const data::ScalarVolume jet = data::make_jet(24, 24, 24);
    static const data::ScalarVolume rage = data::make_rage(24, 24, 24);
    cost::CalibrationOptions opt;
    opt.isovalue_samples = 3;
    opt.raycast_size = 32;
    opt.streamline_seed_grid = 2;
    opt.streamline_max_steps = 50;
    return cost::calibrate({&jet, &rage}, opt);
  }();
  return models;
}
}  // namespace

SteeringSession::SteeringSession(SessionConfig config)
    : config_(config),
      sim_(config.simulation, config.resolution),
      server_(sim_),
      pool_(config.threads),
      testbed_(netsim::make_testbed()),
      profile_(cost::NetworkProfile::from_network(*testbed_.net)),
      models_(quick_models()) {
  // Attach like a client would: a simulation request opens the session.
  server_.post(make_simulation_request(1, sim_.name(), "density"));
  server_.receive_handle_message();
}

void SteeringSession::steer(const std::string& name, double value) {
  Message m = make_steering_params(1, {{name, value}});
  m.sequence = ++message_seq_;
  server_.post(std::move(m));
}

std::map<std::string, double> SteeringSession::parameters() const {
  return sim_.parameters();
}

void SteeringSession::set_variable(const std::string& variable) {
  Message m;
  m.type = MessageType::kVizRequest;
  m.session = 1;
  m.sequence = ++message_seq_;
  m.header["variable"] = variable;
  server_.post(std::move(m));
}

SteeringSession::FrameResult SteeringSession::next_frame() {
  // The Fig. 7 main-loop beat, driven from the monitoring side.
  const int received = server_.receive_handle_message();
  if (received == 1) server_.update_simulation_parameters();
  sim_.advance(config_.cycles_per_frame);
  server_.push_data_to_viz_node();
  auto frame = server_.take_frame();

  FrameResult out;
  out.cycle = frame->cycle;
  out.sim_time = frame->sim_time;
  out.variable = frame->variable;
  // Retain the snapshot for render_view(): extra views re-render this
  // cycle's data instead of advancing the simulation again.
  last_snapshot_ =
      std::make_shared<data::ScalarVolume>(std::move(frame->snapshot));

  // CM side: recompute the VRT for this dataset & operation (footnote 3).
  const auto props = cost::dataset_properties(
      *last_snapshot_, config_.viz.isovalue,
      std::max(4, std::min(16, last_snapshot_->nx() / 4)));
  const auto spec = cost::build_pipeline(config_.viz, props, models_);
  const auto problem = core::MappingProblem::from_pipeline(
      spec, profile_, testbed_.gatech, testbed_.ornl);
  const auto mapping = mapper_.solve(profile_, problem);
  if (mapping.feasible) {
    if (vrt_.groups.empty() ||
        mapping.node_of_module != vrt_.node_of_module()) {
      vrt_ = mapping.to_vrt(++vrt_version_);
    } else {
      vrt_.predicted_delay_s = mapping.delay_s;
    }
  }
  out.vrt = vrt_;

  // Execute the real pipeline on the snapshot.
  ExecuteOptions exec_opt = view_;
  exec_opt.pool = &pool_;
  out.exec = execute_pipeline(*last_snapshot_, config_.viz, exec_opt);
  out.image = out.exec.image;
  return out;
}

std::optional<ExecuteResult> SteeringSession::render_view(
    const cost::VizRequest& request, ExecuteOptions options) {
  if (!last_snapshot_) return std::nullopt;
  options.pool = &pool_;
  return execute_pipeline(*last_snapshot_, request, options);
}

}  // namespace ricsa::steering
