#include "steering/server.hpp"

namespace ricsa::steering {

SimulationServer::SimulationServer(hydro::Steerable& simulation)
    : simulation_(simulation) {}

void SimulationServer::post(Message message) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    mailbox_.push_back(std::move(message));
    ever_connected_ = true;
  }
  cv_.notify_all();
}

std::optional<SimulationServer::Frame> SimulationServer::take_frame() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::optional<Frame> out;
  out.swap(frame_);
  return out;
}

std::uint64_t SimulationServer::frames_pushed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return frames_;
}

void SimulationServer::wait_accept_connection() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return ever_connected_; });
}

int SimulationServer::receive_handle_message() {
  std::deque<Message> drained;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    drained.swap(mailbox_);
    // Once shut down, stay shut down: messages posted after the shutdown
    // are drained (bounding mailbox memory) but never acted on, and every
    // further call keeps reporting -1 so a `!= -1` simulation loop exits.
    if (!running_) return -1;
  }
  int result = 0;
  for (const Message& m : drained) {
    switch (m.type) {
      case MessageType::kShutdown: {
        std::lock_guard<std::mutex> lock(mutex_);
        running_ = false;
        return -1;
      }
      case MessageType::kSteeringParams: {
        std::lock_guard<std::mutex> lock(mutex_);
        if (m.header.at("params").is_object()) {
          for (const auto& [key, value] : m.header.at("params").as_object()) {
            pending_params_[key] = value.as_number();
          }
        }
        result = 1;
        break;
      }
      case MessageType::kVizRequest: {
        std::lock_guard<std::mutex> lock(mutex_);
        if (m.header.at("variable").is_string()) {
          variable_ = m.header.at("variable").as_string();
        }
        break;
      }
      case MessageType::kSimulationRequest: {
        std::lock_guard<std::mutex> lock(mutex_);
        if (m.header.at("variable").is_string()) {
          variable_ = m.header.at("variable").as_string();
        }
        break;
      }
      default:
        break;  // monitoring-only messages carry no simulation-side action
    }
  }
  return result;
}

void SimulationServer::push_data_to_viz_node() {
  std::string variable;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    variable = variable_;
  }
  Frame frame;
  frame.cycle = simulation_.cycle();
  frame.sim_time = simulation_.time();
  frame.variable = variable;
  frame.snapshot = simulation_.snapshot(variable);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    frame_ = std::move(frame);
    ++frames_;
  }
  cv_.notify_all();
}

int SimulationServer::update_simulation_parameters() {
  std::map<std::string, double> params;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    params.swap(pending_params_);
  }
  int accepted = 0;
  for (const auto& [name, value] : params) {
    if (simulation_.set_parameter(name, value)) ++accepted;
  }
  return accepted;
}

bool SimulationServer::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

const std::string& SimulationServer::monitored_variable() const {
  return variable_;
}

SimulationServer* RICSA_StartupSimulationServer(hydro::Steerable* simulation) {
  return new SimulationServer(*simulation);
}
void RICSA_WaitAcceptConnection(SimulationServer* server) {
  server->wait_accept_connection();
}
int RICSA_ReceiveHandleMessage(SimulationServer* server) {
  return server->receive_handle_message();
}
void RICSA_PushDataToVizNode(SimulationServer* server) {
  server->push_data_to_viz_node();
}
void RICSA_UpdateSimulationParameters(SimulationServer* server) {
  server->update_simulation_parameters();
}
void RICSA_ShutdownSimulationServer(SimulationServer* server) { delete server; }

}  // namespace ricsa::steering
