#include "steering/executor.hpp"

#include <algorithm>
#include <cmath>

#include "data/octree.hpp"
#include "util/stopwatch.hpp"
#include "viz/filters.hpp"
#include "viz/rasterizer.hpp"
#include "viz/raycast.hpp"
#include "viz/streamline.hpp"

namespace ricsa::steering {

ExecuteResult execute_pipeline(const data::ScalarVolume& snapshot,
                               const cost::VizRequest& request,
                               const ExecuteOptions& options) {
  ExecuteResult result;
  util::Stopwatch timer;

  // --- Filter stage ------------------------------------------------------
  data::ScalarVolume working = snapshot;
  if (options.octant >= 0) {
    working = data::BlockDecomposition::octant_volume(working, options.octant);
  }
  if (options.downsample > 1) {
    working = viz::downsample(working, options.downsample);
  }
  result.filter_s = timer.elapsed();

  // --- Transform + render stages ----------------------------------------
  switch (request.technique) {
    case cost::VizRequest::Technique::kIsosurface: {
      timer.restart();
      viz::IsosurfaceOptions iso_opt;
      iso_opt.pool = options.pool;
      const auto iso = viz::extract_isosurface(working, request.isovalue,
                                               iso_opt);
      result.transform_s = timer.elapsed();
      result.iso_stats = iso.stats;
      result.geometry_bytes = iso.mesh.bytes();

      timer.restart();
      viz::RenderOptions render_opt;
      render_opt.width = request.image_width;
      render_opt.height = request.image_height;
      render_opt.azimuth = options.azimuth;
      render_opt.elevation = options.elevation;
      render_opt.distance = 2.6f / std::max(options.zoom, 0.05f);
      render_opt.pool = options.pool;
      result.image = viz::render_mesh(iso.mesh, render_opt).image;
      result.render_s = timer.elapsed();
      break;
    }
    case cost::VizRequest::Technique::kRayCast: {
      timer.restart();
      const auto [lo, hi] = working.min_max();
      const auto tf = viz::TransferFunction::preset(lo, hi);
      viz::RayCastOptions opt;
      opt.width = request.image_width;
      opt.height = request.image_height;
      opt.azimuth = options.azimuth;
      opt.elevation = options.elevation;
      opt.pool = options.pool;
      result.image = viz::raycast(working, tf, opt).image;
      result.transform_s = timer.elapsed();
      result.geometry_bytes = result.image.bytes();
      break;
    }
    case cost::VizRequest::Technique::kStreamline: {
      timer.restart();
      // Streamlines through the scalar field's gradient.
      const int n = std::min({working.nx(), working.ny(), working.nz()});
      data::VectorVolume field(n, n, n);
      for (int z = 0; z < n; ++z) {
        for (int y = 0; y < n; ++y) {
          for (int x = 0; x < n; ++x) {
            field.at(x, y, z) = working.gradient(static_cast<float>(x),
                                                 static_cast<float>(y),
                                                 static_cast<float>(z));
          }
        }
      }
      const int seeds_per_axis = std::max(
          2, static_cast<int>(std::lround(std::cbrt(request.seeds))));
      viz::StreamlineOptions sl_opt;
      sl_opt.max_steps = request.steps_per_seed;
      const auto set = viz::trace_streamlines(
          field, viz::grid_seeds(field, seeds_per_axis), sl_opt);
      result.transform_s = timer.elapsed();
      result.geometry_bytes = set.bytes();

      // Render polylines as thin triangle ribbons.
      timer.restart();
      viz::TriangleMesh mesh;
      for (const auto& line : set.lines) {
        for (std::size_t i = 1; i < line.size(); ++i) {
          const data::Vec3& a = line[i - 1];
          const data::Vec3& b = line[i];
          const data::Vec3 off{0.12f, 0.12f, 0.0f};
          mesh.add_triangle(a, b, a + off);
        }
      }
      viz::RenderOptions render_opt;
      render_opt.width = request.image_width;
      render_opt.height = request.image_height;
      render_opt.azimuth = options.azimuth;
      render_opt.elevation = options.elevation;
      render_opt.base_color = {90, 200, 255, 255};
      result.image = viz::render_mesh(mesh, render_opt).image;
      result.render_s = timer.elapsed();
      break;
    }
  }
  return result;
}

}  // namespace ricsa::steering
