#include "steering/message.hpp"

#include <stdexcept>

#include "util/bytes.hpp"

namespace ricsa::steering {

namespace {
constexpr std::uint32_t kMagic = 0x52494353;  // "RICS"
}

const char* to_string(MessageType type) {
  switch (type) {
    case MessageType::kSimulationRequest: return "simulation_request";
    case MessageType::kSimulationAck: return "simulation_ack";
    case MessageType::kVizRequest: return "viz_request";
    case MessageType::kSteeringParams: return "steering_params";
    case MessageType::kVrtInstall: return "vrt_install";
    case MessageType::kDataChunk: return "data_chunk";
    case MessageType::kGeometry: return "geometry";
    case MessageType::kImageResult: return "image_result";
    case MessageType::kStatus: return "status";
    case MessageType::kError: return "error";
    case MessageType::kShutdown: return "shutdown";
  }
  return "?";
}

std::vector<std::uint8_t> Message::serialize() const {
  util::ByteWriter w(payload.size() + 128);
  w.u32(kMagic);
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(session);
  w.u32(sequence);
  w.str(header.dump());
  w.blob(payload);
  return w.take();
}

Message Message::deserialize(const std::vector<std::uint8_t>& bytes) {
  util::ByteReader r(bytes);
  try {
    if (r.u32() != kMagic) throw std::runtime_error("message: bad magic");
    Message out;
    const std::uint8_t type_raw = r.u8();
    if (type_raw < 1 || type_raw > 11) {
      throw std::runtime_error("message: unknown type");
    }
    out.type = static_cast<MessageType>(type_raw);
    out.session = r.u32();
    out.sequence = r.u32();
    const std::string header_json = r.str();
    out.header = header_json.empty() ? util::Json()
                                     : util::Json::parse(header_json);
    out.payload = r.blob();
    if (!r.done()) throw std::runtime_error("message: trailing bytes");
    return out;
  } catch (const std::out_of_range&) {
    throw std::runtime_error("message: truncated");
  }
}

std::size_t Message::wire_bytes() const {
  return 13 + header.dump().size() + 8 + payload.size();
}

Message make_simulation_request(std::uint32_t session,
                                const std::string& simulator,
                                const std::string& variable) {
  Message m;
  m.type = MessageType::kSimulationRequest;
  m.session = session;
  m.header["simulator"] = simulator;
  m.header["variable"] = variable;
  return m;
}

Message make_viz_request(std::uint32_t session, const std::string& technique,
                         float isovalue, int width, int height) {
  Message m;
  m.type = MessageType::kVizRequest;
  m.session = session;
  m.header["technique"] = technique;
  m.header["isovalue"] = static_cast<double>(isovalue);
  m.header["width"] = width;
  m.header["height"] = height;
  return m;
}

Message make_steering_params(std::uint32_t session,
                             const std::map<std::string, double>& params) {
  Message m;
  m.type = MessageType::kSteeringParams;
  m.session = session;
  util::JsonObject obj;
  for (const auto& [key, value] : params) obj[key] = util::Json(value);
  m.header["params"] = util::Json(obj);
  return m;
}

Message make_status(std::uint32_t session, const std::string& text) {
  Message m;
  m.type = MessageType::kStatus;
  m.session = session;
  m.header["text"] = text;
  return m;
}

}  // namespace ricsa::steering
