#include "steering/wan_session.hpp"

#include <cmath>
#include <memory>

#include "steering/message.hpp"
#include "transport/datagram_transport.hpp"
#include "util/strings.hpp"

namespace ricsa::steering {

namespace {

/// Shared mutable state for the asynchronous actor chain.
struct SessionState {
  netsim::Network* net = nullptr;
  WanSessionConfig config;
  core::MappingProblem problem;
  WanResult result;
  double t0 = 0.0;
  double data_start = 0.0;
  std::vector<transport::Flow> flows;  // keep data flows alive
  bool done = false;
};

/// Reliable-enough control message: the wire carries three duplicates (the
/// stabilized control channel of Section 3 guarantees delivery; at the
/// 0.05% testbed loss rate triple-send fails with p ~ 1e-10) and the
/// receiver fires once.
void send_control(SessionState& s, netsim::NodeId from, netsim::NodeId to,
                  std::size_t bytes, std::function<void()> on_arrive) {
  if (from == to) {
    s.net->simulator().after(1e-5, std::move(on_arrive));
    return;
  }
  const int port = transport::allocate_port();
  auto fired = std::make_shared<bool>(false);
  s.net->listen(to, port,
                [&s, to, port, fired, cb = std::move(on_arrive)](const netsim::Packet&) {
                  if (*fired) return;
                  *fired = true;
                  // Copy everything needed onto the stack before unlisten
                  // (which may release this closure's captures).
                  auto callback = cb;
                  netsim::Network* net = s.net;
                  net->unlisten(to, port);
                  callback();
                });
  for (int copy = 0; copy < 3; ++copy) {
    netsim::Packet p;
    p.src = from;
    p.dst = to;
    p.port = port;
    p.wire_bytes = bytes;
    s.net->send(std::move(p));
  }
}

void record(SessionState& s, const std::string& label, int node, double start) {
  s.result.timeline.push_back(
      {label, node, start, s.net->simulator().now()});
}

void execute_group(std::shared_ptr<SessionState> s, std::size_t group_index);

void start_transfer(std::shared_ptr<SessionState> s, std::size_t group_index);

void transfer_to_next(std::shared_ptr<SessionState> s, std::size_t group_index) {
  if (s->config.per_transfer_overhead_s > 0.0) {
    s->net->simulator().after(s->config.per_transfer_overhead_s,
                              [s, group_index] { start_transfer(s, group_index); });
  } else {
    start_transfer(s, group_index);
  }
}

void start_transfer(std::shared_ptr<SessionState> s, std::size_t group_index) {
  const auto& groups = s->result.vrt.groups;
  const auto& g = groups[group_index];
  const auto& next = groups[group_index + 1];
  const std::size_t bytes =
      s->problem.messages[static_cast<std::size_t>(g.last_module)];
  const double start = s->net->simulator().now();

  auto on_done = [s, group_index, g, next, bytes, start](netsim::SimTime) {
    record(*s,
           util::strprintf("transfer %s -> %s (%s)",
                           s->config.profile.name(g.node).c_str(),
                           s->config.profile.name(next.node).c_str(),
                           util::format_bytes(static_cast<double>(bytes)).c_str()),
           g.node, start);
    execute_group(s, group_index + 1);
  };

  if (!s->config.packet_transport) {
    const double delay =
        s->config.profile.transfer_seconds(g.node, next.node, bytes);
    s->net->simulator().after(delay, [on_done, s] {
      on_done(s->net->simulator().now());
    });
    return;
  }

  transport::FlowConfig fc;
  fc.datagram_payload = s->config.datagram_payload;
  // Keep one full window inside the default 512 KB link queue so bursts
  // don't tail-drop themselves even on thin links.
  fc.window = 6;
  transport::RmsaConfig rc;
  rc.target_Bps = s->config.target_share *
                  s->config.profile.link(g.node, next.node).epb_Bps;
  rc.datagram_bytes = fc.datagram_payload;
  rc.window = fc.window;
  // Start the Robbins-Monro controller at the target rate rather than
  // probing up from overload: Ts0 = window_payload / g*.
  rc.initial_sleep_s =
      static_cast<double>(fc.window * fc.datagram_payload) / rc.target_Bps;
  s->flows.push_back(transport::make_message_flow(
      *s->net, g.node, next.node, bytes,
      std::make_unique<transport::RmsaController>(rc), on_done, fc));
}

void execute_group(std::shared_ptr<SessionState> s, std::size_t group_index) {
  const auto& groups = s->result.vrt.groups;
  const auto& g = groups[group_index];

  // Aggregate compute time of the group's modules on this host (Eq. 2's
  // per-group term), plus the cluster distribution overhead when a parallel
  // host activates a non-trivial task (Section 5.3.1's observed penalty).
  double compute = 0.0;
  for (int m = g.first_module; m <= g.last_module; ++m) {
    compute += s->problem.unit_compute[static_cast<std::size_t>(m)] /
               s->config.profile.power(g.node);
  }
  const auto& host = s->net->node(g.node);
  // Matches the model's accounting: entering a cluster node (any non-first
  // group there) pays the data-distribution overhead once.
  if (host.parallel_workers > 1 && group_index > 0) {
    compute += host.distribution_overhead_s;
  }

  const double start = s->net->simulator().now();
  s->net->simulator().after(compute, [s, group_index, g, start] {
    record(*s,
           util::strprintf("compute M%d..M%d @ %s", g.first_module,
                           g.last_module,
                           s->config.profile.name(g.node).c_str()),
           g.node, start);
    const auto& all = s->result.vrt.groups;
    if (group_index + 1 < all.size()) {
      transfer_to_next(s, group_index);
    } else {
      // Image displayed at the client: the loop is closed.
      s->result.completed = true;
      s->result.data_path_s = s->net->simulator().now() - s->data_start;
      s->result.total_s = s->net->simulator().now() - s->t0;
      s->done = true;
    }
  });
}

}  // namespace

WanResult run_wan_session(netsim::Network& net, const WanSessionConfig& config) {
  auto s = std::make_shared<SessionState>();
  s->net = &net;
  s->config = config;

  // The CM's mapping decision (DP or pinned baseline assignment).
  s->problem = core::MappingProblem::from_pipeline(
      config.spec, config.profile, config.data_source, config.client);
  core::Mapping mapping;
  if (config.fixed_assignment) {
    mapping.node_of_module = *config.fixed_assignment;
    mapping.delay_s =
        core::predict_delay(config.profile, s->problem, mapping.node_of_module);
    mapping.feasible = std::isfinite(mapping.delay_s);
  } else {
    mapping = core::DpMapper().solve(config.profile, s->problem);
  }
  if (!mapping.feasible) {
    return s->result;  // completed = false
  }
  s->result.assignment = mapping.node_of_module;
  s->result.vrt = mapping.to_vrt(1);

  // ---- Control phase: client -> CM -> DS, then the data phase ----------
  s->t0 = net.simulator().now();
  const Message request = make_viz_request(1, config.spec.name(), 0.5f, 512, 512);
  const std::size_t request_bytes = request.wire_bytes();
  const std::size_t vrt_bytes = s->result.vrt.serialize().size() + 64;

  const double ctrl_start = net.simulator().now();
  send_control(*s, config.client, config.central_manager, request_bytes, [s, vrt_bytes, ctrl_start] {
    record(*s, "request @ CM", s->config.central_manager, ctrl_start);
    s->net->simulator().after(s->config.cm_compute_s, [s, vrt_bytes] {
      const double vrt_start = s->net->simulator().now();
      send_control(*s, s->config.central_manager, s->config.data_source,
                   vrt_bytes, [s, vrt_start] {
                     record(*s, "VRT installed @ DS", s->config.data_source,
                            vrt_start);
                     s->result.control_s =
                         s->net->simulator().now() - s->t0;
                     s->data_start = s->net->simulator().now();
                     execute_group(s, 0);
                   });
    });
  });

  net.simulator().run();
  return s->result;
}

}  // namespace ricsa::steering
