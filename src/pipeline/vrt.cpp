#include "pipeline/vrt.hpp"

#include <stdexcept>

#include "util/bytes.hpp"
#include "util/strings.hpp"

namespace ricsa::pipeline {

std::vector<int> VisualizationRoutingTable::node_of_module() const {
  std::vector<int> out;
  for (const VrtGroup& g : groups) {
    for (int m = g.first_module; m <= g.last_module; ++m) out.push_back(g.node);
  }
  return out;
}

std::vector<int> VisualizationRoutingTable::path() const {
  std::vector<int> out;
  for (const VrtGroup& g : groups) {
    if (out.empty() || out.back() != g.node) out.push_back(g.node);
  }
  return out;
}

bool VisualizationRoutingTable::valid() const {
  if (groups.empty()) return false;
  int next_module = 0;
  for (const VrtGroup& g : groups) {
    if (g.first_module != next_module || g.last_module < g.first_module ||
        g.node < 0) {
      return false;
    }
    next_module = g.last_module + 1;
  }
  return true;
}

std::vector<std::uint8_t> VisualizationRoutingTable::serialize() const {
  util::ByteWriter w;
  w.u32(0x56525431);  // "VRT1"
  w.u32(version);
  w.f64(predicted_delay_s);
  w.u32(static_cast<std::uint32_t>(groups.size()));
  for (const VrtGroup& g : groups) {
    w.i32(g.node);
    w.i32(g.first_module);
    w.i32(g.last_module);
  }
  return w.take();
}

VisualizationRoutingTable VisualizationRoutingTable::deserialize(
    const std::vector<std::uint8_t>& bytes) {
  util::ByteReader r(bytes);
  try {
    if (r.u32() != 0x56525431) throw std::runtime_error("vrt: bad magic");
    VisualizationRoutingTable out;
    out.version = r.u32();
    out.predicted_delay_s = r.f64();
    const std::uint32_t count = r.u32();
    if (count > 1024) throw std::runtime_error("vrt: implausible group count");
    for (std::uint32_t i = 0; i < count; ++i) {
      VrtGroup g;
      g.node = r.i32();
      g.first_module = r.i32();
      g.last_module = r.i32();
      out.groups.push_back(g);
    }
    return out;
  } catch (const std::out_of_range&) {
    throw std::runtime_error("vrt: truncated");
  }
}

std::string VisualizationRoutingTable::to_string() const {
  std::string out = util::strprintf("VRT v%u (predicted %.3f s): ", version,
                                    predicted_delay_s);
  for (std::size_t i = 0; i < groups.size(); ++i) {
    if (i) out += " -> ";
    out += util::strprintf("node%d[M%d..M%d]", groups[i].node,
                           groups[i].first_module, groups[i].last_module);
  }
  return out;
}

VisualizationRoutingTable vrt_from_assignment(
    const std::vector<int>& node_of_module, double predicted_delay_s,
    std::uint32_t version) {
  VisualizationRoutingTable out;
  out.predicted_delay_s = predicted_delay_s;
  out.version = version;
  for (std::size_t m = 0; m < node_of_module.size(); ++m) {
    if (!out.groups.empty() && out.groups.back().node == node_of_module[m]) {
      out.groups.back().last_module = static_cast<int>(m);
    } else {
      out.groups.push_back({node_of_module[m], static_cast<int>(m),
                            static_cast<int>(m)});
    }
  }
  return out;
}

}  // namespace ricsa::pipeline
