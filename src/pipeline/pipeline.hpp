// The visualization pipeline abstraction of Section 4.1/4.2: a linear chain
// of modules M1..M_{n+1} where M1 is the data source, each later module Mj
// performs work of complexity c_j on its input of size m_{j-1} and emits
// m_j bytes downstream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ricsa::pipeline {

enum class ModuleKind {
  kSource,      // M1: reads the cached dataset
  kFilter,      // preprocessing / subsetting
  kIsosurface,  // transformation: volume -> triangles
  kRayCast,     // transformation: volume -> image (alternative branch)
  kStreamline,  // transformation: vector volume -> polylines
  kRender,      // geometry -> framebuffer
  kDisplay,     // client-side presentation (always at the client node)
};

const char* to_string(ModuleKind kind);

struct ModuleSpec {
  ModuleKind kind = ModuleKind::kSource;
  std::string name;
  /// Computation cost coefficient c_j: seconds per input byte on a node of
  /// normalized power 1 (calibrated by the cost models). Source modules
  /// have c = 0.
  double complexity = 0.0;
  /// Output bytes = size_factor * input bytes, unless fixed_output != 0.
  double size_factor = 1.0;
  std::size_t fixed_output = 0;
  /// Feasibility constraint: module needs rendering hardware (Section 4.5:
  /// "some nodes are only capable of executing certain visualization
  /// modules").
  bool requires_gpu = false;
};

class PipelineSpec {
 public:
  PipelineSpec() = default;
  PipelineSpec(std::string name, std::size_t source_bytes,
               std::vector<ModuleSpec> modules);

  const std::string& name() const noexcept { return name_; }
  const std::vector<ModuleSpec>& modules() const noexcept { return modules_; }
  std::size_t module_count() const noexcept { return modules_.size(); }
  /// Bytes emitted by the source module (m_1).
  std::size_t source_bytes() const noexcept { return source_bytes_; }

  /// Message sizes m_j for j = 1..n (output of module j-1, 0-indexed:
  /// message_bytes()[0] is the source's output). Size n = module_count()-1.
  std::vector<std::size_t> message_bytes() const;

  /// Per-module compute time on a unit-power node: c_j * m_{j-1} seconds
  /// (index 0, the source, is 0).
  std::vector<double> unit_compute_seconds() const;

 private:
  std::string name_;
  std::size_t source_bytes_ = 0;
  std::vector<ModuleSpec> modules_;
};

/// The paper's main pipeline (Fig. 3): source -> filter -> isosurface
/// extraction -> rendering -> display. Coefficients are placeholders to be
/// overwritten by calibrated cost models; factors control message shrinkage
/// (filtering keeps `filter_keep`, extraction emits geometry_bytes, render
/// emits a fixed framebuffer).
PipelineSpec make_isosurface_pipeline(std::size_t raw_bytes,
                                      double filter_keep,
                                      std::size_t geometry_bytes,
                                      std::size_t framebuffer_bytes);

/// Volume-rendering variant: source -> filter -> raycast -> display (the
/// ray caster already produces pixels).
PipelineSpec make_raycast_pipeline(std::size_t raw_bytes, double filter_keep,
                                   std::size_t framebuffer_bytes);

/// Streamline variant: source -> filter -> streamline -> render -> display.
PipelineSpec make_streamline_pipeline(std::size_t raw_bytes,
                                      double filter_keep,
                                      std::size_t polyline_bytes,
                                      std::size_t framebuffer_bytes);

}  // namespace ricsa::pipeline
