// Visualization routing table (VRT).
//
// Section 2: "The computation for pipeline partitioning and network mapping
// results in a visualization routing table (VRT), which is delivered
// sequentially over the loop to establish the network routing path." Each
// entry assigns one contiguous group of pipeline modules to one node of the
// chosen transport path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ricsa::pipeline {

struct VrtGroup {
  /// Node hosting this group (netsim::NodeId, kept as int to avoid a
  /// dependency on the simulator from pure pipeline code).
  int node = -1;
  /// Inclusive module index range [first_module, last_module].
  int first_module = 0;
  int last_module = 0;
};

struct VisualizationRoutingTable {
  std::vector<VrtGroup> groups;
  /// End-to-end delay predicted by the optimizer for this mapping, seconds.
  double predicted_delay_s = 0.0;
  /// Monotonically increasing version so stale tables are discarded when the
  /// CM re-configures mid-run.
  std::uint32_t version = 0;

  /// Node assignment per module (flattening the groups).
  std::vector<int> node_of_module() const;
  /// Path of distinct nodes from source to destination.
  std::vector<int> path() const;
  bool valid() const;

  std::vector<std::uint8_t> serialize() const;
  static VisualizationRoutingTable deserialize(
      const std::vector<std::uint8_t>& bytes);

  std::string to_string() const;

  bool operator==(const VisualizationRoutingTable& o) const {
    return version == o.version && predicted_delay_s == o.predicted_delay_s &&
           node_of_module() == o.node_of_module();
  }
};

/// Build a VRT from a per-module node assignment (consecutive equal nodes
/// collapse into one group).
VisualizationRoutingTable vrt_from_assignment(const std::vector<int>& node_of_module,
                                              double predicted_delay_s,
                                              std::uint32_t version = 0);

}  // namespace ricsa::pipeline
