#include "pipeline/pipeline.hpp"

#include <stdexcept>

namespace ricsa::pipeline {

const char* to_string(ModuleKind kind) {
  switch (kind) {
    case ModuleKind::kSource: return "source";
    case ModuleKind::kFilter: return "filter";
    case ModuleKind::kIsosurface: return "isosurface";
    case ModuleKind::kRayCast: return "raycast";
    case ModuleKind::kStreamline: return "streamline";
    case ModuleKind::kRender: return "render";
    case ModuleKind::kDisplay: return "display";
  }
  return "?";
}

PipelineSpec::PipelineSpec(std::string name, std::size_t source_bytes,
                           std::vector<ModuleSpec> modules)
    : name_(std::move(name)), source_bytes_(source_bytes),
      modules_(std::move(modules)) {
  if (modules_.size() < 2) {
    throw std::invalid_argument(
        "PipelineSpec: need at least source and display modules");
  }
  if (modules_.front().kind != ModuleKind::kSource) {
    throw std::invalid_argument("PipelineSpec: first module must be kSource");
  }
  if (modules_.back().kind != ModuleKind::kDisplay) {
    throw std::invalid_argument("PipelineSpec: last module must be kDisplay");
  }
}

std::vector<std::size_t> PipelineSpec::message_bytes() const {
  // m_j for j = 1..n (n = modules-1): msgs[0] is the source's output; each
  // intermediate module transforms the previous message; the display module
  // consumes the last one and outputs nothing.
  std::vector<std::size_t> msgs;
  msgs.reserve(modules_.size() - 1);
  std::size_t current = source_bytes_;
  msgs.push_back(current);
  for (std::size_t j = 1; j + 1 < modules_.size(); ++j) {
    const ModuleSpec& m = modules_[j];
    current = m.fixed_output != 0
                  ? m.fixed_output
                  : static_cast<std::size_t>(static_cast<double>(current) *
                                             m.size_factor);
    msgs.push_back(current);
  }
  return msgs;
}

std::vector<double> PipelineSpec::unit_compute_seconds() const {
  const std::vector<std::size_t> msgs = message_bytes();
  std::vector<double> out(modules_.size(), 0.0);
  for (std::size_t j = 1; j < modules_.size(); ++j) {
    // Module j consumes message m_{j} (0-indexed msgs[j-1]).
    out[j] = modules_[j].complexity * static_cast<double>(msgs[j - 1]);
  }
  return out;
}

PipelineSpec make_isosurface_pipeline(std::size_t raw_bytes, double filter_keep,
                                      std::size_t geometry_bytes,
                                      std::size_t framebuffer_bytes) {
  std::vector<ModuleSpec> modules;
  modules.push_back({ModuleKind::kSource, "source", 0.0, 1.0, 0, false});
  modules.push_back({ModuleKind::kFilter, "filter", 2e-9, filter_keep, 0, false});
  modules.push_back({ModuleKind::kIsosurface, "isosurface", 2e-8, 0.0,
                     geometry_bytes, false});
  modules.push_back({ModuleKind::kRender, "render", 1e-8, 0.0,
                     framebuffer_bytes, true});
  modules.push_back({ModuleKind::kDisplay, "display", 1e-9, 1.0, 0, false});
  return PipelineSpec("isosurface", raw_bytes, std::move(modules));
}

PipelineSpec make_raycast_pipeline(std::size_t raw_bytes, double filter_keep,
                                   std::size_t framebuffer_bytes) {
  std::vector<ModuleSpec> modules;
  modules.push_back({ModuleKind::kSource, "source", 0.0, 1.0, 0, false});
  modules.push_back({ModuleKind::kFilter, "filter", 2e-9, filter_keep, 0, false});
  modules.push_back({ModuleKind::kRayCast, "raycast", 5e-8, 0.0,
                     framebuffer_bytes, false});
  modules.push_back({ModuleKind::kDisplay, "display", 1e-9, 1.0, 0, false});
  return PipelineSpec("raycast", raw_bytes, std::move(modules));
}

PipelineSpec make_streamline_pipeline(std::size_t raw_bytes, double filter_keep,
                                      std::size_t polyline_bytes,
                                      std::size_t framebuffer_bytes) {
  std::vector<ModuleSpec> modules;
  modules.push_back({ModuleKind::kSource, "source", 0.0, 1.0, 0, false});
  modules.push_back({ModuleKind::kFilter, "filter", 2e-9, filter_keep, 0, false});
  modules.push_back({ModuleKind::kStreamline, "streamline", 1e-8, 0.0,
                     polyline_bytes, false});
  modules.push_back({ModuleKind::kRender, "render", 1e-8, 0.0,
                     framebuffer_bytes, true});
  modules.push_back({ModuleKind::kDisplay, "display", 1e-9, 1.0, 0, false});
  return PipelineSpec("streamline", raw_bytes, std::move(modules));
}

}  // namespace ricsa::pipeline
