// Refcounted scatter-gather output buffer for reactor connections.
//
// A connection's unsent output used to be one std::string that every
// response was concatenated into — header + body + chunk framing all
// copied per write. A BufferChain instead queues *segments*: small copied
// blocks (status lines, headers, chunk-size framing) interleaved with
// shared immutable payloads (`shared_ptr<const string>` frame bodies that
// every subscriber of a frame references without copying). The writer
// gathers the live segments into an iovec array for Socket::writev;
// consume() advances through partial writes mid-segment and drops fully
// written segments, releasing their payload references at kernel-drain
// time — the earliest moment the bytes can no longer be needed.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <string>
#include <string_view>

struct iovec;

namespace ricsa::net {

class BufferChain {
 public:
  using SharedBuf = std::shared_ptr<const std::string>;

  /// Copy `data` into the chain. Consecutive copied blocks coalesce into
  /// one segment (headers + framing lines land adjacent anyway), so the
  /// iovec stays short even for chatty header assembly.
  void append_copy(std::string_view data);

  /// Reference `buf` (or the slice [off, off+len)) without copying. The
  /// chain holds the refcount until the slice has fully drained. Empty or
  /// out-of-range slices append nothing.
  void append_shared(SharedBuf buf);
  void append_shared(SharedBuf buf, std::size_t off, std::size_t len);

  /// Splice every segment of `other` onto this chain (other is emptied).
  void append_chain(BufferChain&& other);

  /// Drop the first `n` unsent bytes (clamped): a partial writev resumes
  /// mid-segment; fully drained segments release their buffer references.
  void consume(std::size_t n);

  /// Gather up to `max_iov` leading segments into `iov` for writev.
  /// Returns the iovec count (0 when empty).
  int fill_iov(struct iovec* iov, int max_iov) const;

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  void clear();

  /// Live (not fully drained) segment count — mostly for tests asserting
  /// zero-copy assembly and refcount release.
  std::size_t segments() const noexcept { return segs_.size(); }
  /// Pointer to the first unsent byte of segment `i` (test hook: proves a
  /// shared body was referenced, not copied). Precondition: i < segments().
  const char* segment_data(std::size_t i) const;
  std::size_t segment_size(std::size_t i) const;

 private:
  struct Segment {
    SharedBuf buf;                     // keeps the payload alive
    std::shared_ptr<std::string> mut;  // non-null: coalescable copy block
    std::size_t off = 0;
    std::size_t len = 0;
  };

  std::deque<Segment> segs_;
  std::size_t size_ = 0;
};

}  // namespace ricsa::net
