// Epoll reactor: one event loop driving many non-blocking connections.
//
// The thread-per-connection web server parks one kernel-blocked read and a
// full thread stack per idle long-poll client, which caps fan-out around a
// thousand browsers. The reactor inverts that: every connection registers
// an EventHandler for readiness events on one epoll instance, a single loop
// thread dispatches them, and blocking work (route handlers, frame
// rendering) lives on a separate bounded worker pool. Idle clients then
// cost one fd and a few hundred bytes of state — the 10k+ regime the
// ROADMAP's fan-out item asks for.
//
// Three event sources share the loop:
//  * I/O readiness — level-triggered epoll on registered fds;
//  * timers — a hashed TimerWheel (poll timeouts, idle deadlines, pacing);
//  * cross-thread tasks — post() enqueues a closure and wakes the loop via
//    eventfd; hub workers use this to turn "response ready" completions
//    into write-readiness processing on the loop thread.
//
// Threading contract: add/modify/remove and the timer API are loop-thread
// only (or before run() starts); post() and stop() are thread-safe. All
// connection state lives on the loop thread, so connection code needs no
// locks at all.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/timer_wheel.hpp"

namespace ricsa::net {

/// Readiness callback for one registered fd. `events` carries the raw
/// EPOLL* bits (EPOLLIN, EPOLLOUT, EPOLLHUP, EPOLLERR, EPOLLRDHUP).
class EventHandler {
 public:
  virtual ~EventHandler() = default;
  virtual void on_event(std::uint32_t events) = 0;
};

class Reactor {
 public:
  using Clock = std::chrono::steady_clock;
  using Task = std::function<void()>;

  struct Stats {
    std::uint64_t loops = 0;         // epoll_wait returns
    std::uint64_t io_events = 0;     // handler dispatches
    std::uint64_t timers_fired = 0;  // wheel callbacks run
    std::uint64_t tasks_run = 0;     // posted closures run
    std::size_t fds = 0;             // currently registered fds
    std::size_t timers_pending = 0;
  };

  Reactor();
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Run the loop on the calling thread until stop(). Tasks already posted
  /// are drained before the first wait and once more after the loop exits,
  /// so a post() that happened-before stop() is never silently dropped.
  void run();
  /// Thread-safe; wakes the loop. Idempotent. After the loop thread
  /// returns from run(), later post()s are dropped (their closures are
  /// destroyed without running).
  void stop();
  bool running() const noexcept { return running_.load(); }
  bool in_loop_thread() const {
    return std::this_thread::get_id() == loop_thread_;
  }

  // -- fd registration (loop thread, or before run()) ----------------------
  /// False when epoll_ctl(ADD) fails (e.g. ENOSPC against
  /// fs.epoll.max_user_watches at extreme fan-out) — the fd will never
  /// receive events, so the caller must not track the connection as live.
  [[nodiscard]] bool add(int fd, std::uint32_t events, EventHandler* handler);
  void modify(int fd, std::uint32_t events);
  void remove(int fd);

  // -- timers (loop thread only) -------------------------------------------
  std::uint64_t run_at(Clock::time_point when, Task task);
  std::uint64_t run_after(double delay_s, Task task);
  bool cancel(std::uint64_t timer_id);

  // -- cross-thread --------------------------------------------------------
  /// Queue `task` for the loop thread and wake it. Returns false (dropping
  /// the task) once the loop has exited for good.
  bool post(Task task);

  Stats stats() const;

 private:
  void drain_tasks();
  void wake();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd
  TimerWheel wheel_;
  /// fd -> handler. epoll events carry the fd; dispatch goes through this
  /// map so a handler removed earlier in the same batch is skipped instead
  /// of dereferenced. (A same-batch fd reuse can still surface one spurious
  /// level-triggered event to the new handler; non-blocking reads shrug it
  /// off as EAGAIN.)
  std::unordered_map<int, EventHandler*> handlers_;

  std::mutex tasks_mutex_;
  std::vector<Task> tasks_;
  bool drained_ = false;  // loop exited; post() must refuse

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread::id loop_thread_;

  std::atomic<std::uint64_t> loops_{0};
  std::atomic<std::uint64_t> io_events_{0};
  std::atomic<std::uint64_t> timers_fired_{0};
  std::atomic<std::uint64_t> tasks_run_{0};
  /// Cross-thread mirrors of loop-thread-only structures, for stats().
  std::atomic<std::size_t> fds_{0};
  std::atomic<std::size_t> timers_pending_{0};
};

}  // namespace ricsa::net
