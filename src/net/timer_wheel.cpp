#include "net/timer_wheel.hpp"

#include <algorithm>
#include <utility>

namespace ricsa::net {

TimerWheel::TimerWheel(Clock::duration tick, std::size_t slots)
    : tick_(tick.count() > 0 ? tick : std::chrono::milliseconds(1)),
      epoch_(Clock::now()),
      slots_(std::max<std::size_t>(slots, 2)) {}

std::uint64_t TimerWheel::schedule(Clock::time_point when, Callback cb) {
  // Land one tick past the deadline's tick: when advance() processes that
  // slot, the deadline has provably passed, so an entry can never be
  // visited-but-not-yet-due (which would strand it a full revolution).
  // The lower clamp keeps an already-due deadline out of slots the current
  // revolution has already processed, for the same reason.
  const std::uint64_t target = std::max(tick_of(when) + 1, last_tick_ + 1);
  const std::size_t slot = static_cast<std::size_t>(target % slots_.size());
  const std::uint64_t id = next_id_++;
  slots_[slot].push_back(Entry{id, when, std::move(cb)});
  index_.emplace(id, std::make_pair(slot, std::prev(slots_[slot].end())));
  soonest_ = std::min(soonest_, when);
  return id;
}

bool TimerWheel::cancel(std::uint64_t id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  // Cancelling the bound-setting entry leaves soonest_ optimistic; the
  // next next_expiry() recomputes instead of every cancel paying O(n).
  if (it->second.second->deadline <= soonest_) soonest_stale_ = true;
  slots_[it->second.first].erase(it->second.second);
  index_.erase(it);
  return true;
}

TimerWheel::Clock::time_point TimerWheel::next_expiry() {
  if (index_.empty()) {
    soonest_ = Clock::time_point::max();
    soonest_stale_ = false;
    return soonest_;
  }
  if (soonest_stale_) {
    soonest_ = Clock::time_point::max();
    for (const auto& entry : index_) {
      soonest_ = std::min(soonest_, entry.second.second->deadline);
    }
    soonest_stale_ = false;
  }
  // An entry fires when the tick after its deadline's has been processed:
  // report that boundary, not the raw deadline, so a driver sleeping until
  // the returned instant always finds the entry due.
  return epoch_ + (tick_of(soonest_) + 1) * tick_;
}

std::size_t TimerWheel::advance(Clock::time_point now) {
  const std::uint64_t now_tick = tick_of(now);
  if (now_tick <= last_tick_ && !index_.empty()) {
    // Same tick as last time: schedule() clamps fresh entries past
    // last_tick_, so nothing can be due that wasn't already fired.
    return 0;
  }
  // Collect due entries first, fire after: callbacks may re-enter
  // schedule()/cancel() and must not invalidate the slot being walked.
  std::list<Entry> due;
  const std::uint64_t span =
      std::min<std::uint64_t>(now_tick - last_tick_, slots_.size());
  for (std::uint64_t t = 1; t <= span && !index_.empty(); ++t) {
    Slot& slot = slots_[static_cast<std::size_t>((last_tick_ + t) %
                                                 slots_.size())];
    for (auto it = slot.begin(); it != slot.end();) {
      if (it->deadline <= now) {
        index_.erase(it->id);
        auto next = std::next(it);
        due.splice(due.end(), slot, it);
        it = next;
      } else {
        ++it;  // a later revolution's entry sharing the bucket
      }
    }
  }
  last_tick_ = now_tick;
  std::size_t fired = 0;
  if (!due.empty()) soonest_stale_ = true;
  for (Entry& entry : due) {
    ++fired;
    entry.cb();
  }
  return fired;
}

}  // namespace ricsa::net
