// Non-blocking socket wrapper for the epoll reactor.
//
// RAII over a file descriptor plus the handful of readiness-oriented I/O
// primitives a reactor-driven connection state machine needs: read/write
// calls that report "would block" as a first-class outcome instead of an
// errno the caller has to untangle, and a loopback listener factory that
// hands out non-blocking accepted sockets. Loopback/IPv4 only, like the
// rest of the web layer.
#pragma once

#include <cstddef>
#include <string>

struct iovec;

namespace ricsa::net {

/// Outcome of one non-blocking read or write attempt.
enum class IoStatus {
  kOk,          // made progress
  kWouldBlock,  // EAGAIN/EWOULDBLOCK — wait for readiness
  kEof,         // orderly peer shutdown (reads only)
  kError        // anything else; the connection is dead
};

class Socket {
 public:
  Socket() = default;
  /// Takes ownership of `fd` (which should already be non-blocking).
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  int fd() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  void close();
  /// Give up ownership without closing.
  int release() noexcept;

  /// Non-blocking listener on loopback:port (0 = ephemeral). With
  /// `reuse_port`, SO_REUSEPORT is set before bind so N listeners can share
  /// one port and the kernel spreads accepted connections across them (the
  /// multi-reactor accept strategy) — every listener on the port must set
  /// it, including the first. Throws std::runtime_error on failure.
  static Socket listen_loopback(int port, int backlog = 1024,
                                bool reuse_port = false);
  int local_port() const;

  /// Non-blocking connect to loopback:port (TCP_NODELAY set). Returns an
  /// invalid Socket on immediate failure; otherwise the connect is in
  /// flight — wait for writability, then check connect_error().
  static Socket connect_loopback(int port);
  /// Pending connect outcome (SO_ERROR): 0 = established, else the errno.
  int connect_error() const;

  /// Accept one pending connection (non-blocking, TCP_NODELAY set).
  /// kOk: `out` holds the socket and `peer` the remote "ip:port".
  /// kWouldBlock: nothing pending. kError: accept failed; `errno_out`
  /// carries errno (EMFILE/ENFILE mean fd exhaustion, not a dead listener).
  IoStatus accept(Socket& out, std::string& peer, int& errno_out);

  /// Append up to `max_chunk` bytes to `buffer`. kOk means >= 1 byte read.
  IoStatus read_some(std::string& buffer, std::size_t max_chunk = 65536);

  /// Write as much of [data, data+n) as the kernel accepts; `written`
  /// reports the byte count (may be > 0 even when the tail would block,
  /// in which case the status is still kOk — call again on writability).
  IoStatus write_some(const char* data, std::size_t n, std::size_t& written);

  /// One gathered write of `iovcnt` iovecs (sendmsg, SIGPIPE suppressed).
  /// `written` reports the bytes the kernel accepted; kOk means progress
  /// (possibly partial — rebuild the iovec past `written` and call again
  /// on writability), kWouldBlock means zero progress.
  IoStatus writev(const struct iovec* iov, int iovcnt, std::size_t& written);

  static void set_nonblocking(int fd);

  /// Fix the kernel send buffer (SO_SNDBUF) at `bytes`. Setting it
  /// explicitly disables sndbuf autotuning, so a slow peer backs the
  /// socket up after a bounded backlog instead of after megabytes of
  /// kernel-absorbed data — the lever for making write-side backpressure
  /// visible promptly on high-rate streams. No-op when bytes <= 0.
  void set_send_buffer(int bytes);

 private:
  int fd_ = -1;
};

}  // namespace ricsa::net
