#include "net/reactor_pool.hpp"

namespace ricsa::net {

ReactorPool::ReactorPool(std::size_t n) {
  if (n == 0) n = 1;
  reactors_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    reactors_.push_back(std::make_shared<Reactor>());
  }
}

ReactorPool::~ReactorPool() { stop(); }

std::size_t ReactorPool::next_index() {
  return next_.fetch_add(1) % reactors_.size();
}

void ReactorPool::resize(std::size_t n) {
  if (started_) return;
  if (n == 0) n = 1;
  while (reactors_.size() > n) reactors_.pop_back();
  while (reactors_.size() < n) {
    reactors_.push_back(std::make_shared<Reactor>());
  }
}

void ReactorPool::start() {
  if (started_) return;
  started_ = true;
  threads_.reserve(reactors_.size());
  for (const auto& reactor : reactors_) {
    threads_.emplace_back([reactor] { reactor->run(); });
  }
}

void ReactorPool::stop() {
  for (const auto& reactor : reactors_) reactor->stop();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
}

}  // namespace ricsa::net
