#include "net/buffer_chain.hpp"

#include <sys/uio.h>

namespace ricsa::net {

void BufferChain::append_copy(std::string_view data) {
  if (data.empty()) return;
  // Coalesce into the previous copy block when its slice still ends at the
  // string's end (appending cannot disturb bytes a partial write already
  // consumed, because off/len only ever reference a stable prefix).
  if (!segs_.empty()) {
    Segment& back = segs_.back();
    if (back.mut && back.off + back.len == back.mut->size()) {
      back.mut->append(data);
      back.len += data.size();
      size_ += data.size();
      return;
    }
  }
  Segment seg;
  seg.mut = std::make_shared<std::string>(data);
  seg.buf = seg.mut;
  seg.len = seg.mut->size();
  size_ += seg.len;
  segs_.push_back(std::move(seg));
}

void BufferChain::append_shared(SharedBuf buf) {
  if (!buf) return;
  const std::size_t len = buf->size();
  append_shared(std::move(buf), 0, len);
}

void BufferChain::append_shared(SharedBuf buf, std::size_t off,
                                std::size_t len) {
  if (!buf || off >= buf->size()) return;
  if (len > buf->size() - off) len = buf->size() - off;
  if (len == 0) return;
  Segment seg;
  seg.buf = std::move(buf);
  seg.off = off;
  seg.len = len;
  size_ += len;
  segs_.push_back(std::move(seg));
}

void BufferChain::append_chain(BufferChain&& other) {
  for (Segment& seg : other.segs_) {
    size_ += seg.len;
    segs_.push_back(std::move(seg));
  }
  other.segs_.clear();
  other.size_ = 0;
}

void BufferChain::consume(std::size_t n) {
  if (n > size_) n = size_;
  size_ -= n;
  while (n > 0) {
    Segment& front = segs_.front();
    if (n < front.len) {
      front.off += n;
      front.len -= n;
      return;
    }
    n -= front.len;
    segs_.pop_front();  // releases the payload reference
  }
}

int BufferChain::fill_iov(struct iovec* iov, int max_iov) const {
  int count = 0;
  for (const Segment& seg : segs_) {
    if (count >= max_iov) break;
    iov[count].iov_base =
        const_cast<char*>(seg.buf->data() + seg.off);
    iov[count].iov_len = seg.len;
    ++count;
  }
  return count;
}

void BufferChain::clear() {
  segs_.clear();
  size_ = 0;
}

const char* BufferChain::segment_data(std::size_t i) const {
  const Segment& seg = segs_[i];
  return seg.buf->data() + seg.off;
}

std::size_t BufferChain::segment_size(std::size_t i) const {
  return segs_[i].len;
}

}  // namespace ricsa::net
