#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>

namespace ricsa::net {

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

int Socket::release() noexcept {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

Socket Socket::listen_loopback(int port, int backlog, bool reuse_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) throw std::runtime_error("net: socket() failed");
  Socket sock(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuse_port) {
    // Must precede bind(): the balancing group is formed at bind time.
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) < 0) {
      throw std::runtime_error("net: SO_REUSEPORT failed");
    }
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw std::runtime_error("net: bind() failed");
  }
  if (::listen(fd, backlog) < 0) {
    throw std::runtime_error("net: listen() failed");
  }
  return sock;
}

Socket Socket::connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return Socket();
  Socket sock(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  for (;;) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return sock;  // loopback can complete synchronously
    }
    if (errno == EINTR) continue;
    if (errno == EINPROGRESS) return sock;  // await writability
    return Socket();
  }
}

int Socket::connect_error() const {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) < 0) return errno;
  return err;
}

int Socket::local_port() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

IoStatus Socket::accept(Socket& out, std::string& peer, int& errno_out) {
  sockaddr_in peer_addr{};
  socklen_t peer_len = sizeof(peer_addr);
  const int fd = ::accept4(fd_, reinterpret_cast<sockaddr*>(&peer_addr),
                           &peer_len, SOCK_NONBLOCK);
  if (fd < 0) {
    errno_out = errno;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
    return IoStatus::kError;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  out = Socket(fd);
  peer.clear();
  char ip[INET_ADDRSTRLEN] = {0};
  if (peer_len >= sizeof(sockaddr_in) && peer_addr.sin_family == AF_INET &&
      ::inet_ntop(AF_INET, &peer_addr.sin_addr, ip, sizeof(ip))) {
    peer = std::string(ip) + ":" + std::to_string(ntohs(peer_addr.sin_port));
  }
  return IoStatus::kOk;
}

void Socket::set_send_buffer(int bytes) {
  if (fd_ < 0 || bytes <= 0) return;
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
}

IoStatus Socket::read_some(std::string& buffer, std::size_t max_chunk) {
  char chunk[65536];
  if (max_chunk > sizeof(chunk)) max_chunk = sizeof(chunk);
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, max_chunk, 0);
    if (n > 0) {
      buffer.append(chunk, static_cast<std::size_t>(n));
      return IoStatus::kOk;
    }
    if (n == 0) return IoStatus::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
    return IoStatus::kError;
  }
}

IoStatus Socket::write_some(const char* data, std::size_t n,
                            std::size_t& written) {
  written = 0;
  while (written < n) {
    const ssize_t w = ::send(fd_, data + written, n - written, MSG_NOSIGNAL);
    if (w > 0) {
      written += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return written > 0 ? IoStatus::kOk : IoStatus::kWouldBlock;
    }
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus Socket::writev(const struct iovec* iov, int iovcnt,
                        std::size_t& written) {
  written = 0;
  if (iovcnt <= 0) return IoStatus::kOk;
  msghdr msg{};
  msg.msg_iov = const_cast<struct iovec*>(iov);
  msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
  for (;;) {
    const ssize_t w = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (w >= 0) {
      written = static_cast<std::size_t>(w);
      return IoStatus::kOk;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
    return IoStatus::kError;
  }
}

}  // namespace ricsa::net
