// A fixed set of reactor threads — the horizontal axis of the event layer.
//
// One Reactor saturates one core once enough connections are live; a
// ReactorPool owns N reactors and runs each on its own thread. Nothing is
// shared between them: every connection is *owned* by exactly one reactor
// (chosen at accept time) and all of its state, timers, and buffers live on
// that loop thread, so the wire path takes no cross-reactor locks. Work
// that must reach a connection from elsewhere (hub completions, stream
// producers) posts to the connection's home reactor.
//
// The pool is constructed with its reactors but starts their threads
// explicitly, so callers can register fds/timers on reactor(i) before the
// loops run (Reactor's "before run()" registration window).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "net/reactor.hpp"

namespace ricsa::net {

class ReactorPool {
 public:
  /// Create `n` reactors (clamped to >= 1). Threads are not started.
  explicit ReactorPool(std::size_t n = 1);
  ~ReactorPool();
  ReactorPool(const ReactorPool&) = delete;
  ReactorPool& operator=(const ReactorPool&) = delete;

  std::size_t size() const noexcept { return reactors_.size(); }
  Reactor& reactor(std::size_t i) const { return *reactors_[i]; }
  /// Shared handle — completion structs hold this so a post() after stop()
  /// lands in a drained queue instead of a destroyed reactor.
  const std::shared_ptr<Reactor>& reactor_ptr(std::size_t i) const {
    return reactors_[i];
  }

  /// Round-robin pick (thread-safe) — the hand-off accept strategy's
  /// distribution policy.
  std::size_t next_index();

  /// Grow or shrink to `n` reactors (clamped to >= 1). Only before start():
  /// existing reactors keep their identity (callers may already hold
  /// reactor(0) for pre-start timer registration); extras must not have
  /// anything registered when shrunk away.
  void resize(std::size_t n);

  /// Start one loop thread per reactor. Idempotent per pool (single-shot).
  void start();
  /// Stop every reactor and join the loop threads. Callers that need
  /// per-reactor teardown (closing fds where they live) should post those
  /// tasks before calling stop(); Reactor::run drains tasks posted before
  /// stop, so they are guaranteed to execute.
  void stop();
  bool started() const noexcept { return started_; }

 private:
  std::vector<std::shared_ptr<Reactor>> reactors_;
  std::vector<std::thread> threads_;
  std::atomic<std::size_t> next_{0};
  bool started_ = false;
};

}  // namespace ricsa::net
