#include "net/reactor.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <stdexcept>
#include <utility>

namespace ricsa::net {

Reactor::Reactor() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw std::runtime_error("reactor: epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw std::runtime_error("reactor: eventfd failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
}

Reactor::~Reactor() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void Reactor::wake() {
  const std::uint64_t one = 1;
  // A full eventfd counter already guarantees a wakeup; ignore EAGAIN.
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_, &one, sizeof(one));
}

bool Reactor::post(Task task) {
  {
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    if (drained_) return false;
    tasks_.push_back(std::move(task));
  }
  wake();
  return true;
}

void Reactor::drain_tasks() {
  std::vector<Task> batch;
  {
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    batch.swap(tasks_);
  }
  for (Task& task : batch) {
    task();
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Reactor::run() {
  loop_thread_ = std::this_thread::get_id();
  running_.store(true);
  drain_tasks();

  epoll_event events[512];
  while (!stopping_.load(std::memory_order_acquire)) {
    // Sleep until the soonest timer is due (rounded up, so the wake always
    // finds it fireable) or an fd event / posted-task eventfd wakeup —
    // an idle server with parked connections burns no periodic ticks.
    int timeout_ms = -1;
    const Clock::time_point next = wheel_.next_expiry();
    if (next != Clock::time_point::max()) {
      const auto until = next - Clock::now();
      timeout_ms = until.count() <= 0
                       ? 0
                       : static_cast<int>(std::min<std::int64_t>(
                             std::chrono::duration_cast<
                                 std::chrono::milliseconds>(
                                 until + std::chrono::microseconds(999))
                                 .count(),
                             60000));
    }
    const int n = ::epoll_wait(epoll_fd_, events,
                               static_cast<int>(std::size(events)),
                               timeout_ms);
    loops_.fetch_add(1, std::memory_order_relaxed);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd itself is broken; nothing sane left to do
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      // Look the handler up per event: an earlier handler in this batch may
      // have removed this fd (e.g. closed a connection).
      const auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      io_events_.fetch_add(1, std::memory_order_relaxed);
      it->second->on_event(events[i].events);
    }
    timers_fired_.fetch_add(wheel_.advance(Clock::now()),
                            std::memory_order_relaxed);
    timers_pending_.store(wheel_.pending(), std::memory_order_relaxed);
    drain_tasks();
  }

  // Final drain: tasks posted before stop() still run (shutdown sequences
  // rely on this); afterwards post() refuses and closures are simply freed.
  drain_tasks();
  {
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    drained_ = true;
  }
  running_.store(false);
}

void Reactor::stop() {
  stopping_.store(true, std::memory_order_release);
  wake();
}

bool Reactor::add(int fd, std::uint32_t events, EventHandler* handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  handlers_[fd] = handler;
  fds_.store(handlers_.size(), std::memory_order_relaxed);
  return true;
}

void Reactor::modify(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void Reactor::remove(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
  fds_.store(handlers_.size(), std::memory_order_relaxed);
}

std::uint64_t Reactor::run_at(Clock::time_point when, Task task) {
  return wheel_.schedule(when, std::move(task));
}

std::uint64_t Reactor::run_after(double delay_s, Task task) {
  if (delay_s < 0.0) delay_s = 0.0;
  return run_at(Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(delay_s)),
                std::move(task));
}

bool Reactor::cancel(std::uint64_t timer_id) { return wheel_.cancel(timer_id); }

Reactor::Stats Reactor::stats() const {
  Stats s;
  s.loops = loops_.load(std::memory_order_relaxed);
  s.io_events = io_events_.load(std::memory_order_relaxed);
  s.timers_fired = timers_fired_.load(std::memory_order_relaxed);
  s.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  // Mirrors maintained by the loop thread: handlers_/wheel_ themselves are
  // loop-thread-only, but stats() is callable from anywhere.
  s.fds = fds_.load(std::memory_order_relaxed);
  s.timers_pending = timers_pending_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ricsa::net
