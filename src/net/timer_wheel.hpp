// Hashed timer wheel for the reactor's poll/idle timeouts.
//
// Thousands of parked long-poll connections each carry a timeout, and most
// of those timers are cancelled or re-armed long before they fire (every
// received byte pushes an idle deadline out; every completed poll re-arms).
// A wheel makes schedule/cancel O(1) and advance O(slots + due entries) per
// tick, independent of how many timers are parked — the property a sorted
// queue loses at 10k+ connections.
//
// Entries hash into `slots` buckets by expiry tick; each bucket holds its
// entries with their absolute deadlines, so an entry more than one wheel
// revolution out simply stays in its bucket until its round arrives.
// Single-threaded by design: the owning reactor drives advance() from its
// loop thread. Granularity is the tick duration — a timer can fire up to
// one tick late, which is the right trade for connection timeouts measured
// in seconds.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

namespace ricsa::net {

class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;
  using Callback = std::function<void()>;

  explicit TimerWheel(Clock::duration tick = std::chrono::milliseconds(5),
                      std::size_t slots = 512);

  /// Schedule `cb` to fire once `when` has passed (at tick granularity).
  /// Returns a non-zero id usable with cancel().
  std::uint64_t schedule(Clock::time_point when, Callback cb);

  /// Drop a pending timer. False when the id already fired or was cancelled.
  bool cancel(std::uint64_t id);

  /// Fire every entry whose deadline is <= now. Returns the number fired.
  /// Callbacks run on the caller's thread and may schedule/cancel freely.
  std::size_t advance(Clock::time_point now);

  /// Instant by which the soonest pending entry is guaranteed due (its
  /// deadline rounded up to the tick boundary its slot is processed at),
  /// or time_point::max() when nothing is pending — what a driver should
  /// sleep until. A cancel can leave the cached bound stale; that costs
  /// one early wakeup and an O(pending) recompute, never a late fire.
  Clock::time_point next_expiry();

  std::size_t pending() const noexcept { return index_.size(); }
  Clock::duration tick() const noexcept { return tick_; }

 private:
  struct Entry {
    std::uint64_t id = 0;
    Clock::time_point deadline;
    Callback cb;
  };
  using Slot = std::list<Entry>;

  std::uint64_t tick_of(Clock::time_point t) const {
    if (t <= epoch_) return 0;  // pre-epoch deadline: already due
    return static_cast<std::uint64_t>((t - epoch_) / tick_);
  }

  Clock::duration tick_;
  Clock::time_point epoch_;
  std::vector<Slot> slots_;
  /// id -> location, for O(1) cancel.
  std::unordered_map<std::uint64_t, std::pair<std::size_t, Slot::iterator>>
      index_;
  std::uint64_t next_id_ = 1;
  std::uint64_t last_tick_ = 0;  // last tick advance() fully processed
  /// Lower bound on the earliest pending deadline; kMax when none/stale.
  Clock::time_point soonest_ = Clock::time_point::max();
  bool soonest_stale_ = false;
};

}  // namespace ricsa::net
