#include "viz/image.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <stdexcept>

namespace ricsa::viz {

Image::Image(int width, int height, Rgba fill)
    : width_(width), height_(height),
      pixels_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
              fill) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("Image: dimensions must be positive");
  }
}

Rgba& Image::at(int x, int y) {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) {
    throw std::out_of_range("Image::at");
  }
  return pixels_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
}

const Rgba& Image::at(int x, int y) const {
  return const_cast<Image*>(this)->at(x, y);
}

void Image::write_ppm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("Image: cannot open " + path);
  out << "P6\n" << width_ << " " << height_ << "\n255\n";
  for (const Rgba& p : pixels_) {
    out.put(static_cast<char>(p.r));
    out.put(static_cast<char>(p.g));
    out.put(static_cast<char>(p.b));
  }
  if (!out) throw std::runtime_error("Image: write failed " + path);
}

Image downsample(const Image& image, int factor) {
  if (factor <= 0) throw std::invalid_argument("downsample: factor must be >= 1");
  if (factor == 1 || image.width() == 0 || image.height() == 0) return image;
  const int out_w = (image.width() + factor - 1) / factor;
  const int out_h = (image.height() + factor - 1) / factor;
  Image out(out_w, out_h);
  for (int oy = 0; oy < out_h; ++oy) {
    for (int ox = 0; ox < out_w; ++ox) {
      const int x0 = ox * factor, y0 = oy * factor;
      const int x1 = std::min(x0 + factor, image.width());
      const int y1 = std::min(y0 + factor, image.height());
      unsigned r = 0, g = 0, b = 0, a = 0;
      for (int y = y0; y < y1; ++y) {
        for (int x = x0; x < x1; ++x) {
          const Rgba& p = image.at(x, y);
          r += p.r; g += p.g; b += p.b; a += p.a;
        }
      }
      const unsigned count = static_cast<unsigned>((x1 - x0) * (y1 - y0));
      out.at(ox, oy) = Rgba{static_cast<std::uint8_t>(r / count),
                            static_cast<std::uint8_t>(g / count),
                            static_cast<std::uint8_t>(b / count),
                            static_cast<std::uint8_t>(a / count)};
    }
  }
  return out;
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t n,
                    std::uint32_t seed) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t adler32(const std::uint8_t* data, std::size_t n) {
  std::uint32_t a = 1, b = 0;
  for (std::size_t i = 0; i < n; ++i) {
    a = (a + data[i]) % 65521;
    b = (b + a) % 65521;
  }
  return (b << 16) | a;
}

namespace {
void push_be32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void push_chunk(std::vector<std::uint8_t>& out, const char type[5],
                const std::vector<std::uint8_t>& payload) {
  push_be32(out, static_cast<std::uint32_t>(payload.size()));
  std::vector<std::uint8_t> body;
  body.reserve(4 + payload.size());
  for (int i = 0; i < 4; ++i) body.push_back(static_cast<std::uint8_t>(type[i]));
  body.insert(body.end(), payload.begin(), payload.end());
  out.insert(out.end(), body.begin(), body.end());
  push_be32(out, crc32(body.data(), body.size()));
}
}  // namespace

std::vector<std::uint8_t> Image::encode_png() const {
  // Raw scanlines, each prefixed with filter type 0 (None).
  std::vector<std::uint8_t> raw;
  raw.reserve(static_cast<std::size_t>(height_) *
              (1 + 4 * static_cast<std::size_t>(width_)));
  for (int y = 0; y < height_; ++y) {
    raw.push_back(0);
    for (int x = 0; x < width_; ++x) {
      const Rgba& p = at(x, y);
      raw.push_back(p.r);
      raw.push_back(p.g);
      raw.push_back(p.b);
      raw.push_back(p.a);
    }
  }

  // zlib stream: header + stored (BTYPE=00) deflate blocks + adler32.
  std::vector<std::uint8_t> z;
  z.push_back(0x78);
  z.push_back(0x01);
  std::size_t off = 0;
  while (off < raw.size() || raw.empty()) {
    const std::size_t len = std::min<std::size_t>(raw.size() - off, 65535);
    const bool final = off + len >= raw.size();
    z.push_back(final ? 1 : 0);
    z.push_back(static_cast<std::uint8_t>(len & 0xFF));
    z.push_back(static_cast<std::uint8_t>(len >> 8));
    z.push_back(static_cast<std::uint8_t>(~len & 0xFF));
    z.push_back(static_cast<std::uint8_t>((~len >> 8) & 0xFF));
    z.insert(z.end(), raw.begin() + static_cast<std::ptrdiff_t>(off),
             raw.begin() + static_cast<std::ptrdiff_t>(off + len));
    off += len;
    if (raw.empty()) break;
  }
  push_be32(z, adler32(raw.data(), raw.size()));

  std::vector<std::uint8_t> png = {0x89, 'P', 'N', 'G', 0x0D, 0x0A, 0x1A, 0x0A};
  std::vector<std::uint8_t> ihdr;
  push_be32(ihdr, static_cast<std::uint32_t>(width_));
  push_be32(ihdr, static_cast<std::uint32_t>(height_));
  ihdr.push_back(8);   // bit depth
  ihdr.push_back(6);   // color type RGBA
  ihdr.push_back(0);   // compression
  ihdr.push_back(0);   // filter
  ihdr.push_back(0);   // interlace
  push_chunk(png, "IHDR", ihdr);
  push_chunk(png, "IDAT", z);
  push_chunk(png, "IEND", {});
  return png;
}

namespace {

std::uint32_t read_be32(const std::vector<std::uint8_t>& b, std::size_t off) {
  if (off + 4 > b.size()) throw std::runtime_error("png: truncated");
  return (static_cast<std::uint32_t>(b[off]) << 24) |
         (static_cast<std::uint32_t>(b[off + 1]) << 16) |
         (static_cast<std::uint32_t>(b[off + 2]) << 8) |
         static_cast<std::uint32_t>(b[off + 3]);
}

/// Inflate a zlib stream consisting solely of stored (BTYPE=00) deflate
/// blocks — the only kind encode_png emits.
std::vector<std::uint8_t> inflate_stored(const std::vector<std::uint8_t>& z) {
  if (z.size() < 6) throw std::runtime_error("png: zlib stream too short");
  std::vector<std::uint8_t> out;
  std::size_t off = 2;  // past the zlib header
  for (;;) {
    if (off + 5 > z.size()) throw std::runtime_error("png: truncated block");
    const std::uint8_t header = z[off];
    if ((header & 0x06) != 0) {
      throw std::runtime_error("png: only stored deflate blocks supported");
    }
    const std::size_t len = static_cast<std::size_t>(z[off + 1]) |
                            (static_cast<std::size_t>(z[off + 2]) << 8);
    const std::size_t nlen = static_cast<std::size_t>(z[off + 3]) |
                             (static_cast<std::size_t>(z[off + 4]) << 8);
    if ((len ^ nlen) != 0xFFFF) throw std::runtime_error("png: bad block length");
    off += 5;
    if (off + len > z.size()) throw std::runtime_error("png: truncated block");
    out.insert(out.end(), z.begin() + static_cast<std::ptrdiff_t>(off),
               z.begin() + static_cast<std::ptrdiff_t>(off + len));
    off += len;
    if ((header & 1) != 0) break;  // BFINAL
  }
  if (off + 4 > z.size() || adler32(out.data(), out.size()) != read_be32(z, off)) {
    throw std::runtime_error("png: adler32 mismatch");
  }
  return out;
}

}  // namespace

Image Image::decode_png(const std::vector<std::uint8_t>& bytes) {
  static const std::uint8_t kSig[8] = {0x89, 'P', 'N', 'G',
                                       0x0D, 0x0A, 0x1A, 0x0A};
  if (bytes.size() < 8 || !std::equal(kSig, kSig + 8, bytes.begin())) {
    throw std::runtime_error("png: bad signature");
  }
  int width = 0, height = 0;
  std::vector<std::uint8_t> idat;
  std::size_t off = 8;
  bool done = false;
  while (!done) {
    const std::uint32_t len = read_be32(bytes, off);
    if (off + 12 + len > bytes.size()) throw std::runtime_error("png: truncated");
    const std::string type(bytes.begin() + static_cast<std::ptrdiff_t>(off + 4),
                           bytes.begin() + static_cast<std::ptrdiff_t>(off + 8));
    const std::size_t payload = off + 8;
    if (crc32(bytes.data() + off + 4, 4 + len) != read_be32(bytes, payload + len)) {
      throw std::runtime_error("png: chunk crc mismatch");
    }
    if (type == "IHDR") {
      if (len != 13) throw std::runtime_error("png: bad IHDR");
      width = static_cast<int>(read_be32(bytes, payload));
      height = static_cast<int>(read_be32(bytes, payload + 4));
      if (bytes[payload + 8] != 8 || bytes[payload + 9] != 6 ||
          bytes[payload + 12] != 0) {
        throw std::runtime_error("png: only RGBA8 non-interlaced supported");
      }
    } else if (type == "IDAT") {
      idat.insert(idat.end(), bytes.begin() + static_cast<std::ptrdiff_t>(payload),
                  bytes.begin() + static_cast<std::ptrdiff_t>(payload + len));
    } else if (type == "IEND") {
      done = true;
    }
    off = payload + len + 4;
  }
  if (width <= 0 || height <= 0) throw std::runtime_error("png: missing IHDR");
  const std::vector<std::uint8_t> raw = inflate_stored(idat);
  const std::size_t stride = 1 + 4 * static_cast<std::size_t>(width);
  if (raw.size() != stride * static_cast<std::size_t>(height)) {
    throw std::runtime_error("png: scanline size mismatch");
  }
  Image img(width, height);
  for (int y = 0; y < height; ++y) {
    const std::uint8_t* row = raw.data() + static_cast<std::size_t>(y) * stride;
    if (row[0] != 0) throw std::runtime_error("png: only filter 0 supported");
    for (int x = 0; x < width; ++x) {
      const std::uint8_t* p = row + 1 + 4 * static_cast<std::size_t>(x);
      img.at(x, y) = Rgba{p[0], p[1], p[2], p[3]};
    }
  }
  return img;
}

void Image::write_png(const std::string& path) const {
  const auto bytes = encode_png();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("Image: cannot open " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("Image: write failed " + path);
}

std::vector<std::uint8_t> rle_encode(const Image& image) {
  std::vector<std::uint8_t> out;
  const auto& px = image.pixels();
  std::size_t i = 0;
  while (i < px.size()) {
    std::size_t run = 1;
    while (i + run < px.size() && run < 255 && px[i + run] == px[i]) ++run;
    out.push_back(static_cast<std::uint8_t>(run));
    out.push_back(px[i].r);
    out.push_back(px[i].g);
    out.push_back(px[i].b);
    out.push_back(px[i].a);
    i += run;
  }
  return out;
}

Image rle_decode(const std::vector<std::uint8_t>& data, int width, int height) {
  if (data.size() % 5 != 0) throw std::runtime_error("rle: bad length");
  Image img(width, height);
  std::size_t pixel = 0;
  const std::size_t total =
      static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  for (std::size_t i = 0; i < data.size(); i += 5) {
    const std::size_t run = data[i];
    const Rgba c{data[i + 1], data[i + 2], data[i + 3], data[i + 4]};
    for (std::size_t k = 0; k < run; ++k) {
      if (pixel >= total) throw std::runtime_error("rle: pixel overflow");
      img.at(static_cast<int>(pixel % static_cast<std::size_t>(width)),
             static_cast<int>(pixel / static_cast<std::size_t>(width))) = c;
      ++pixel;
    }
  }
  if (pixel != total) throw std::runtime_error("rle: pixel underflow");
  return img;
}

}  // namespace ricsa::viz
