#include "viz/image.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace ricsa::viz {

Image::Image(int width, int height, Rgba fill)
    : width_(width), height_(height),
      pixels_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
              fill) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("Image: dimensions must be positive");
  }
}

Rgba& Image::at(int x, int y) {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) {
    throw std::out_of_range("Image::at");
  }
  return pixels_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
}

const Rgba& Image::at(int x, int y) const {
  return const_cast<Image*>(this)->at(x, y);
}

void Image::write_ppm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("Image: cannot open " + path);
  out << "P6\n" << width_ << " " << height_ << "\n255\n";
  for (const Rgba& p : pixels_) {
    out.put(static_cast<char>(p.r));
    out.put(static_cast<char>(p.g));
    out.put(static_cast<char>(p.b));
  }
  if (!out) throw std::runtime_error("Image: write failed " + path);
}

Image downsample(const Image& image, int factor) {
  if (factor <= 0) throw std::invalid_argument("downsample: factor must be >= 1");
  if (factor == 1 || image.width() == 0 || image.height() == 0) return image;
  const int out_w = (image.width() + factor - 1) / factor;
  const int out_h = (image.height() + factor - 1) / factor;
  Image out(out_w, out_h);
  for (int oy = 0; oy < out_h; ++oy) {
    for (int ox = 0; ox < out_w; ++ox) {
      const int x0 = ox * factor, y0 = oy * factor;
      const int x1 = std::min(x0 + factor, image.width());
      const int y1 = std::min(y0 + factor, image.height());
      unsigned r = 0, g = 0, b = 0, a = 0;
      for (int y = y0; y < y1; ++y) {
        for (int x = x0; x < x1; ++x) {
          const Rgba& p = image.at(x, y);
          r += p.r; g += p.g; b += p.b; a += p.a;
        }
      }
      const unsigned count = static_cast<unsigned>((x1 - x0) * (y1 - y0));
      out.at(ox, oy) = Rgba{static_cast<std::uint8_t>(r / count),
                            static_cast<std::uint8_t>(g / count),
                            static_cast<std::uint8_t>(b / count),
                            static_cast<std::uint8_t>(a / count)};
    }
  }
  return out;
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t n,
                    std::uint32_t seed) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

namespace {
void push_be32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void push_chunk(std::vector<std::uint8_t>& out, const char type[5],
                const std::vector<std::uint8_t>& payload) {
  push_be32(out, static_cast<std::uint32_t>(payload.size()));
  std::vector<std::uint8_t> body;
  body.reserve(4 + payload.size());
  for (int i = 0; i < 4; ++i) body.push_back(static_cast<std::uint8_t>(type[i]));
  body.insert(body.end(), payload.begin(), payload.end());
  out.insert(out.end(), body.begin(), body.end());
  push_be32(out, crc32(body.data(), body.size()));
}

constexpr int kBpp = 4;  // RGBA8

/// PNG Paeth predictor (spec pseudocode, exact tie-break order a/b/c).
std::uint8_t paeth(int a, int b, int c) {
  const int p = a + b - c;
  const int pa = std::abs(p - a), pb = std::abs(p - b), pc = std::abs(p - c);
  if (pa <= pb && pa <= pc) return static_cast<std::uint8_t>(a);
  if (pb <= pc) return static_cast<std::uint8_t>(b);
  return static_cast<std::uint8_t>(c);
}

/// Filter-selection cost: sum of absolute values with filtered bytes read
/// as signed (v < 128 ? v : 256 - v) — the heuristic from the PNG spec.
std::uint64_t filter_sad(const std::uint8_t* row, std::size_t n) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t v = row[i];
    sum += v < 128 ? v : 256u - v;
  }
  return sum;
}
}  // namespace

std::vector<std::uint8_t> Image::encode_png() const {
  // Filtered scanlines: per row, pick among None/Sub/Up/Paeth by minimum
  // sum of absolute differences so the DEFLATE stage sees small residuals
  // instead of raw pixel values.
  const std::size_t row_bytes = kBpp * static_cast<std::size_t>(width_);
  std::vector<std::uint8_t> raw;
  raw.reserve(static_cast<std::size_t>(height_) * (1 + row_bytes));
  std::vector<std::uint8_t> cur(row_bytes), prev(row_bytes, 0);
  std::array<std::vector<std::uint8_t>, 3> trial;
  for (auto& t : trial) t.resize(row_bytes);
  for (int y = 0; y < height_; ++y) {
    std::memcpy(cur.data(),
                pixels_.data() + static_cast<std::size_t>(y) *
                                     static_cast<std::size_t>(width_),
                row_bytes);
    auto& sub = trial[0];
    auto& up = trial[1];
    auto& pth = trial[2];
    for (std::size_t i = 0; i < row_bytes; ++i) {
      const int left = i >= kBpp ? cur[i - kBpp] : 0;
      const int above = prev[i];
      const int upleft = i >= kBpp ? prev[i - kBpp] : 0;
      sub[i] = static_cast<std::uint8_t>(cur[i] - left);
      up[i] = static_cast<std::uint8_t>(cur[i] - above);
      pth[i] = static_cast<std::uint8_t>(cur[i] - paeth(left, above, upleft));
    }
    int best = 0;  // filter type None
    std::uint64_t best_sad = filter_sad(cur.data(), row_bytes);
    const int types[3] = {1, 2, 4};  // Sub, Up, Paeth
    for (int t = 0; t < 3; ++t) {
      const std::uint64_t sad = filter_sad(trial[t].data(), row_bytes);
      if (sad < best_sad) {
        best_sad = sad;
        best = types[t];
      }
    }
    raw.push_back(static_cast<std::uint8_t>(best));
    const std::uint8_t* chosen =
        best == 0 ? cur.data()
                  : trial[best == 1 ? 0 : best == 2 ? 1 : 2].data();
    raw.insert(raw.end(), chosen, chosen + row_bytes);
    std::swap(prev, cur);
  }

  std::vector<std::uint8_t> z = zlib_compress(raw.data(), raw.size());

  std::vector<std::uint8_t> png = {0x89, 'P', 'N', 'G', 0x0D, 0x0A, 0x1A, 0x0A};
  std::vector<std::uint8_t> ihdr;
  push_be32(ihdr, static_cast<std::uint32_t>(width_));
  push_be32(ihdr, static_cast<std::uint32_t>(height_));
  ihdr.push_back(8);   // bit depth
  ihdr.push_back(6);   // color type RGBA
  ihdr.push_back(0);   // compression
  ihdr.push_back(0);   // filter
  ihdr.push_back(0);   // interlace
  push_chunk(png, "IHDR", ihdr);
  push_chunk(png, "IDAT", z);
  push_chunk(png, "IEND", {});
  return png;
}

namespace {

std::uint32_t read_be32(const std::vector<std::uint8_t>& b, std::size_t off) {
  if (off + 4 > b.size()) throw std::runtime_error("png: truncated");
  return (static_cast<std::uint32_t>(b[off]) << 24) |
         (static_cast<std::uint32_t>(b[off + 1]) << 16) |
         (static_cast<std::uint32_t>(b[off + 2]) << 8) |
         static_cast<std::uint32_t>(b[off + 3]);
}

/// Undo a scanline filter in place; `prev` is the reconstructed row above
/// (all zeros for the first row).
void defilter_row(std::uint8_t filter, std::uint8_t* row,
                  const std::uint8_t* prev, std::size_t n) {
  switch (filter) {
    case 0:  // None
      break;
    case 1:  // Sub
      for (std::size_t i = kBpp; i < n; ++i) row[i] += row[i - kBpp];
      break;
    case 2:  // Up
      for (std::size_t i = 0; i < n; ++i) row[i] += prev[i];
      break;
    case 3:  // Average
      for (std::size_t i = 0; i < n; ++i) {
        const int left = i >= kBpp ? row[i - kBpp] : 0;
        row[i] = static_cast<std::uint8_t>(row[i] + (left + prev[i]) / 2);
      }
      break;
    case 4:  // Paeth
      for (std::size_t i = 0; i < n; ++i) {
        const int left = i >= kBpp ? row[i - kBpp] : 0;
        const int upleft = i >= kBpp ? prev[i - kBpp] : 0;
        row[i] = static_cast<std::uint8_t>(row[i] +
                                           paeth(left, prev[i], upleft));
      }
      break;
    default:
      throw std::runtime_error("png: bad filter type");
  }
}

}  // namespace

Image Image::decode_png(const std::vector<std::uint8_t>& bytes) {
  static const std::uint8_t kSig[8] = {0x89, 'P', 'N', 'G',
                                       0x0D, 0x0A, 0x1A, 0x0A};
  if (bytes.size() < 8 || !std::equal(kSig, kSig + 8, bytes.begin())) {
    throw std::runtime_error("png: bad signature");
  }
  int width = 0, height = 0;
  std::vector<std::uint8_t> idat;
  std::size_t off = 8;
  bool done = false;
  while (!done) {
    const std::uint32_t len = read_be32(bytes, off);
    if (off + 12 + len > bytes.size()) throw std::runtime_error("png: truncated");
    const std::string type(bytes.begin() + static_cast<std::ptrdiff_t>(off + 4),
                           bytes.begin() + static_cast<std::ptrdiff_t>(off + 8));
    const std::size_t payload = off + 8;
    if (crc32(bytes.data() + off + 4, 4 + len) != read_be32(bytes, payload + len)) {
      throw std::runtime_error("png: chunk crc mismatch");
    }
    if (type == "IHDR") {
      if (len != 13) throw std::runtime_error("png: bad IHDR");
      width = static_cast<int>(read_be32(bytes, payload));
      height = static_cast<int>(read_be32(bytes, payload + 4));
      if (bytes[payload + 8] != 8 || bytes[payload + 9] != 6 ||
          bytes[payload + 12] != 0) {
        throw std::runtime_error("png: only RGBA8 non-interlaced supported");
      }
    } else if (type == "IDAT") {
      idat.insert(idat.end(), bytes.begin() + static_cast<std::ptrdiff_t>(payload),
                  bytes.begin() + static_cast<std::ptrdiff_t>(payload + len));
    } else if (type == "IEND") {
      done = true;
    }
    off = payload + len + 4;
  }
  if (width <= 0 || height <= 0) throw std::runtime_error("png: missing IHDR");
  const std::size_t stride = 1 + kBpp * static_cast<std::size_t>(width);
  const std::size_t expect = stride * static_cast<std::size_t>(height);
  std::vector<std::uint8_t> raw =
      zlib_decompress(idat.data(), idat.size(), expect);
  if (raw.size() != expect) {
    throw std::runtime_error("png: scanline size mismatch");
  }
  Image img(width, height);
  const std::size_t row_bytes = kBpp * static_cast<std::size_t>(width);
  std::vector<std::uint8_t> zero(row_bytes, 0);
  for (int y = 0; y < height; ++y) {
    std::uint8_t* row = raw.data() + static_cast<std::size_t>(y) * stride;
    const std::uint8_t* prev =
        y == 0 ? zero.data()
               : raw.data() + static_cast<std::size_t>(y - 1) * stride + 1;
    defilter_row(row[0], row + 1, prev, row_bytes);
    std::memcpy(img.pixels_.data() +
                    static_cast<std::size_t>(y) * static_cast<std::size_t>(width),
                row + 1, row_bytes);
  }
  return img;
}

void Image::write_png(const std::string& path) const {
  const auto bytes = encode_png();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("Image: cannot open " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("Image: write failed " + path);
}

std::vector<std::uint8_t> rle_encode(const Image& image) {
  std::vector<std::uint8_t> out;
  const auto& px = image.pixels();
  std::size_t i = 0;
  while (i < px.size()) {
    std::size_t run = 1;
    while (i + run < px.size() && run < 255 && px[i + run] == px[i]) ++run;
    out.push_back(static_cast<std::uint8_t>(run));
    out.push_back(px[i].r);
    out.push_back(px[i].g);
    out.push_back(px[i].b);
    out.push_back(px[i].a);
    i += run;
  }
  return out;
}

Image rle_decode(const std::vector<std::uint8_t>& data, int width, int height) {
  if (data.size() % 5 != 0) throw std::runtime_error("rle: bad length");
  Image img(width, height);
  std::size_t pixel = 0;
  const std::size_t total =
      static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  for (std::size_t i = 0; i < data.size(); i += 5) {
    const std::size_t run = data[i];
    const Rgba c{data[i + 1], data[i + 2], data[i + 3], data[i + 4]};
    for (std::size_t k = 0; k < run; ++k) {
      if (pixel >= total) throw std::runtime_error("rle: pixel overflow");
      img.at(static_cast<int>(pixel % static_cast<std::size_t>(width)),
             static_cast<int>(pixel / static_cast<std::size_t>(width))) = c;
      ++pixel;
    }
  }
  if (pixel != total) throw std::runtime_error("rle: pixel underflow");
  return img;
}

}  // namespace ricsa::viz
