#include "viz/cube_tables.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <map>
#include <set>

#include "data/volume.hpp"

namespace ricsa::viz {

namespace {

using data::Vec3;

Vec3 corner_pos(int c) {
  return Vec3{static_cast<float>(c & 1), static_cast<float>((c >> 1) & 1),
              static_cast<float>((c >> 2) & 1)};
}

/// Kuhn decomposition: six tetrahedra sharing the 0-7 diagonal; the middle
/// two vertices walk the edge cycle 1-3-2-6-4-5. All have positive
/// orientation (checked in the builder).
constexpr std::array<std::array<int, 4>, 6> kTets = {{
    {0, 1, 3, 7},
    {0, 3, 2, 7},
    {0, 2, 6, 7},
    {0, 6, 4, 7},
    {0, 4, 5, 7},
    {0, 5, 1, 7},
}};

struct Builder {
  CubeTables tables;
  std::map<std::pair<int, int>, int> segment_index;

  int segment(int a, int b) {
    if (a > b) std::swap(a, b);
    const auto it = segment_index.find({a, b});
    assert(it != segment_index.end());
    return it->second;
  }

  void collect_segments() {
    std::set<std::pair<int, int>> segs;
    for (const auto& tet : kTets) {
      for (int i = 0; i < 4; ++i) {
        for (int j = i + 1; j < 4; ++j) {
          int a = tet[static_cast<std::size_t>(i)];
          int b = tet[static_cast<std::size_t>(j)];
          if (a > b) std::swap(a, b);
          segs.insert({a, b});
        }
      }
    }
    assert(segs.size() == 19);
    int idx = 0;
    for (const auto& s : segs) {
      tables.segments[static_cast<std::size_t>(idx)] = s;
      segment_index[s] = idx;
      ++idx;
    }
  }

  /// Emit one oriented triangle given three cut segments (as corner pairs)
  /// and a direction the normal must roughly follow (from inside region to
  /// outside region). Midpoints stand in for the interpolated vertices; the
  /// topology (and hence winding) is independent of the interpolation
  /// parameter.
  void emit(std::vector<std::array<int, 3>>& out,
            std::array<std::pair<int, int>, 3> cut, const Vec3& out_dir) {
    const auto mid = [](const std::pair<int, int>& seg) {
      return (corner_pos(seg.first) + corner_pos(seg.second)) * 0.5f;
    };
    const Vec3 a = mid(cut[0]), b = mid(cut[1]), c = mid(cut[2]);
    const Vec3 n = (b - a).cross(c - a);
    std::array<int, 3> tri = {segment(cut[0].first, cut[0].second),
                              segment(cut[1].first, cut[1].second),
                              segment(cut[2].first, cut[2].second)};
    if (n.dot(out_dir) < 0) std::swap(tri[1], tri[2]);
    out.push_back(tri);
  }

  /// Triangulate the isosurface inside one tetrahedron for a given inside
  /// mask over its four vertices.
  void tet_triangles(const std::array<int, 4>& tet, int inside_mask,
                     std::vector<std::array<int, 3>>& out) {
    if (inside_mask == 0 || inside_mask == 15) return;

    std::array<bool, 4> in{};
    for (int i = 0; i < 4; ++i) in[static_cast<std::size_t>(i)] = (inside_mask >> i) & 1;

    // Centroids of the inside / outside vertex sets define the outward
    // direction (inside = high value; normals point towards low value).
    Vec3 in_c{}, out_c{};
    int n_in = 0, n_out = 0;
    for (int i = 0; i < 4; ++i) {
      const Vec3 p = corner_pos(tet[static_cast<std::size_t>(i)]);
      if (in[static_cast<std::size_t>(i)]) {
        in_c = in_c + p;
        ++n_in;
      } else {
        out_c = out_c + p;
        ++n_out;
      }
    }
    in_c = in_c * (1.0f / static_cast<float>(n_in));
    out_c = out_c * (1.0f / static_cast<float>(n_out));
    const Vec3 out_dir = out_c - in_c;

    // Cut segments: tet edges with one endpoint inside, one outside.
    std::vector<std::pair<int, int>> cuts;
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        if (in[static_cast<std::size_t>(i)] != in[static_cast<std::size_t>(j)]) {
          cuts.emplace_back(tet[static_cast<std::size_t>(i)],
                            tet[static_cast<std::size_t>(j)]);
        }
      }
    }

    if (cuts.size() == 3) {
      emit(out, {cuts[0], cuts[1], cuts[2]}, out_dir);
      return;
    }
    assert(cuts.size() == 4);
    // Quad case: order the four cut edges into a cycle. Two cut segments are
    // adjacent on the quad when they share a tet vertex.
    const auto shares_vertex = [](const std::pair<int, int>& a,
                                  const std::pair<int, int>& b) {
      return a.first == b.first || a.first == b.second || a.second == b.first ||
             a.second == b.second;
    };
    std::array<std::pair<int, int>, 4> cycle;
    cycle[0] = cuts[0];
    std::vector<std::pair<int, int>> rest = {cuts[1], cuts[2], cuts[3]};
    for (int k = 1; k < 4; ++k) {
      bool found = false;
      for (std::size_t r = 0; r < rest.size(); ++r) {
        if (shares_vertex(cycle[static_cast<std::size_t>(k - 1)], rest[r])) {
          // Also require it NOT to close the cycle prematurely (for k<3 it
          // must differ from cycle[0]'s pairing only at the last step).
          if (k == 3 || !shares_vertex(cycle[0], rest[r]) ||
              rest.size() == 1) {
            cycle[static_cast<std::size_t>(k)] = rest[r];
            rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(r));
            found = true;
            break;
          }
        }
      }
      if (!found) {
        // Fall back: take any vertex-sharing segment.
        for (std::size_t r = 0; r < rest.size(); ++r) {
          if (shares_vertex(cycle[static_cast<std::size_t>(k - 1)], rest[r])) {
            cycle[static_cast<std::size_t>(k)] = rest[r];
            rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(r));
            found = true;
            break;
          }
        }
      }
      assert(found);
    }
    emit(out, {cycle[0], cycle[1], cycle[2]}, out_dir);
    emit(out, {cycle[0], cycle[2], cycle[3]}, out_dir);
  }

  void build_triangle_table() {
    for (int config = 0; config < 256; ++config) {
      auto& tris = tables.triangles[static_cast<std::size_t>(config)];
      for (const auto& tet : kTets) {
        int mask = 0;
        for (int i = 0; i < 4; ++i) {
          if ((config >> tet[static_cast<std::size_t>(i)]) & 1) mask |= 1 << i;
        }
        tet_triangles(tet, mask, tris);
      }
    }
  }

  // --- MC equivalence classes under rotations + complement ---------------

  static std::array<int, 8> compose(const std::array<int, 8>& f,
                                    const std::array<int, 8>& g) {
    // (f . g)(i) = f(g(i))
    std::array<int, 8> h{};
    for (int i = 0; i < 8; ++i) h[static_cast<std::size_t>(i)] = f[static_cast<std::size_t>(g[static_cast<std::size_t>(i)])];
    return h;
  }

  static std::vector<std::array<int, 8>> rotation_group() {
    // Generators: 90-degree rotations about z and x, expressed as corner
    // permutations perm[i] = image of corner i.
    const auto perm_from_map = [](auto&& point_map) {
      std::array<int, 8> perm{};
      for (int c = 0; c < 8; ++c) {
        const int x = c & 1, y = (c >> 1) & 1, z = (c >> 2) & 1;
        const auto [nx, ny, nz] = point_map(x, y, z);
        perm[static_cast<std::size_t>(c)] = nx | (ny << 1) | (nz << 2);
      }
      return perm;
    };
    const auto rz = perm_from_map([](int x, int y, int z) {
      return std::array<int, 3>{1 - y, x, z};
    });
    const auto rx = perm_from_map([](int x, int y, int z) {
      return std::array<int, 3>{x, 1 - z, y};
    });
    std::array<int, 8> identity{};
    for (int i = 0; i < 8; ++i) identity[static_cast<std::size_t>(i)] = i;

    std::set<std::array<int, 8>> group = {identity};
    bool grew = true;
    while (grew) {
      grew = false;
      std::vector<std::array<int, 8>> current(group.begin(), group.end());
      for (const auto& g : current) {
        for (const auto& gen : {rz, rx}) {
          if (group.insert(compose(gen, g)).second) grew = true;
        }
      }
    }
    return {group.begin(), group.end()};
  }

  static int apply_perm(const std::array<int, 8>& perm, int config) {
    int out = 0;
    for (int i = 0; i < 8; ++i) {
      if ((config >> i) & 1) out |= 1 << perm[static_cast<std::size_t>(i)];
    }
    return out;
  }

  void build_class_map() {
    const auto rotations = rotation_group();
    assert(rotations.size() == 24);
    tables.mc_class.fill(-1);
    int next_class = 0;
    for (int config = 0; config < 256; ++config) {
      if (tables.mc_class[static_cast<std::size_t>(config)] != -1) continue;
      // Orbit of `config` under rotations and complementation.
      std::set<int> orbit;
      std::vector<int> frontier = {config};
      while (!frontier.empty()) {
        const int c = frontier.back();
        frontier.pop_back();
        if (!orbit.insert(c).second) continue;
        frontier.push_back((~c) & 0xFF);
        for (const auto& rot : rotations) frontier.push_back(apply_perm(rot, c));
      }
      for (const int c : orbit) tables.mc_class[static_cast<std::size_t>(c)] = next_class;
      tables.class_representative.push_back(config);
      ++next_class;
    }
    tables.class_count = next_class;
  }

  CubeTables build() {
    collect_segments();
    build_triangle_table();
    build_class_map();
    return std::move(tables);
  }
};

}  // namespace

const CubeTables& cube_tables() {
  static const CubeTables tables = Builder{}.build();
  return tables;
}

}  // namespace ricsa::viz
