#include "viz/isosurface.hpp"

#include <cmath>

#include "viz/cube_tables.hpp"

namespace ricsa::viz {

namespace {

using data::ScalarVolume;
using data::Vec3;

/// Extract one block's cells into `mesh`, accumulating stats.
void extract_block(const ScalarVolume& volume, const data::Block& block,
                   float isovalue, bool gradient_normals, TriangleMesh& mesh,
                   IsosurfaceStats& stats) {
  const CubeTables& tables = cube_tables();

  std::array<float, 8> corner_value;
  std::array<Vec3, 8> corner_pos;

  for (int z = block.z0; z < block.z1; ++z) {
    for (int y = block.y0; y < block.y1; ++y) {
      for (int x = block.x0; x < block.x1; ++x) {
        ++stats.cells_scanned;
        int config = 0;
        for (int c = 0; c < 8; ++c) {
          const int cx = x + (c & 1);
          const int cy = y + ((c >> 1) & 1);
          const int cz = z + ((c >> 2) & 1);
          const float v = volume.at(cx, cy, cz);
          corner_value[static_cast<std::size_t>(c)] = v;
          corner_pos[static_cast<std::size_t>(c)] =
              Vec3{static_cast<float>(cx), static_cast<float>(cy),
                   static_cast<float>(cz)};
          if (v > isovalue) config |= 1 << c;
        }

        const int cls = tables.mc_class[static_cast<std::size_t>(config)];
        ++stats.class_cells[static_cast<std::size_t>(cls)];
        const auto& tris = tables.triangles[static_cast<std::size_t>(config)];
        if (tris.empty()) continue;

        // Interpolated vertex on each referenced segment, computed lazily.
        std::array<Vec3, 19> seg_vertex;
        std::array<bool, 19> seg_done{};
        const auto segment_vertex = [&](int s) -> const Vec3& {
          if (!seg_done[static_cast<std::size_t>(s)]) {
            const auto [a, b] = tables.segments[static_cast<std::size_t>(s)];
            const float va = corner_value[static_cast<std::size_t>(a)];
            const float vb = corner_value[static_cast<std::size_t>(b)];
            float t = 0.5f;
            if (std::abs(vb - va) > 1e-12f) t = (isovalue - va) / (vb - va);
            t = t < 0 ? 0 : (t > 1 ? 1 : t);
            seg_vertex[static_cast<std::size_t>(s)] =
                corner_pos[static_cast<std::size_t>(a)] +
                (corner_pos[static_cast<std::size_t>(b)] -
                 corner_pos[static_cast<std::size_t>(a)]) *
                    t;
            seg_done[static_cast<std::size_t>(s)] = true;
          }
          return seg_vertex[static_cast<std::size_t>(s)];
        };

        for (const auto& tri : tris) {
          const Vec3& a = segment_vertex(tri[0]);
          const Vec3& b = segment_vertex(tri[1]);
          const Vec3& c = segment_vertex(tri[2]);
          // Skip exactly degenerate triangles (interpolation collapsing two
          // segment vertices onto a shared corner).
          if ((b - a).cross(c - a).norm() < 1e-12f) continue;
          mesh.add_triangle(a, b, c);
          ++stats.triangles;
          ++stats.class_triangles[static_cast<std::size_t>(cls)];
        }

        if (gradient_normals) {
          // Replace the just-added flat normals with field-gradient normals
          // (pointing from high to low value, matching triangle winding).
          const std::size_t n = mesh.vertex_count();
          const std::size_t added = 3 * tris.size();
          const std::size_t start = n >= added ? n - added : 0;
          for (std::size_t i = start; i < n; ++i) {
            const Vec3& p = mesh.positions()[i];
            const Vec3 g = volume.gradient(p.x, p.y, p.z);
            if (g.norm() > 1e-12f) {
              mesh.normals()[i] = (g * -1.0f).normalized();
            }
          }
        }
      }
    }
  }
}

}  // namespace

IsosurfaceResult extract_isosurface(const ScalarVolume& volume, float isovalue,
                                    const IsosurfaceOptions& options) {
  const data::BlockDecomposition blocks(volume, options.block_size);
  return extract_isosurface(volume, blocks, isovalue, options);
}

IsosurfaceResult extract_isosurface(const ScalarVolume& volume,
                                    const data::BlockDecomposition& blocks,
                                    float isovalue,
                                    const IsosurfaceOptions& options) {
  IsosurfaceResult result;
  result.stats.blocks_total = blocks.blocks().size();

  // Active blocks only (octree min/max culling).
  std::vector<const data::Block*> active;
  for (const data::Block& b : blocks.blocks()) {
    if (b.spans(isovalue)) active.push_back(&b);
  }
  result.stats.blocks_active = active.size();

  if (options.pool == nullptr || active.size() < 2) {
    for (const data::Block* b : active) {
      extract_block(volume, *b, isovalue, options.gradient_normals,
                    result.mesh, result.stats);
    }
    return result;
  }

  // Block-parallel extraction: thread-local meshes merged afterwards (the
  // paper's cluster CS nodes run exactly this decomposition over MPI ranks).
  const std::size_t workers = options.pool->size();
  std::vector<TriangleMesh> meshes(workers);
  std::vector<IsosurfaceStats> stats(workers);
  const std::size_t per = (active.size() + workers - 1) / workers;
  options.pool->parallel_for(0, workers, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t w = lo; w < hi; ++w) {
      const std::size_t begin = w * per;
      const std::size_t end = std::min(active.size(), begin + per);
      for (std::size_t i = begin; i < end; ++i) {
        extract_block(volume, *active[i], isovalue, options.gradient_normals,
                      meshes[w], stats[w]);
      }
    }
  });
  for (std::size_t w = 0; w < workers; ++w) {
    result.mesh.append(meshes[w]);
    result.stats.cells_scanned += stats[w].cells_scanned;
    result.stats.triangles += stats[w].triangles;
    for (std::size_t c = 0; c < stats[w].class_cells.size(); ++c) {
      result.stats.class_cells[c] += stats[w].class_cells[c];
      result.stats.class_triangles[c] += stats[w].class_triangles[c];
    }
  }
  return result;
}

}  // namespace ricsa::viz
