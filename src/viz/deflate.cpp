#include "viz/deflate.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>

namespace ricsa::viz {

std::uint32_t adler32(const std::uint8_t* data, std::size_t n) {
  // Process in runs short enough that the sums cannot overflow 32 bits
  // before the modulo (5552 is the standard zlib bound).
  std::uint32_t a = 1, b = 0;
  std::size_t i = 0;
  while (i < n) {
    const std::size_t run = std::min<std::size_t>(n - i, 5552);
    for (std::size_t k = 0; k < run; ++k) {
      a += data[i + k];
      b += a;
    }
    a %= 65521;
    b %= 65521;
    i += run;
  }
  return (b << 16) | a;
}

namespace {

// ------------------------------------------------------------ bit I/O ----

/// LSB-first bit accumulator (DEFLATE packs data elements starting at the
/// least significant bit of each byte). Huffman codes go through put_huff,
/// which reverses them: the spec transmits them most-significant-bit first.
class BitWriter {
 public:
  explicit BitWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void put(std::uint32_t bits, int n) {
    acc_ |= bits << nbits_;
    nbits_ += n;
    while (nbits_ >= 8) {
      out_.push_back(static_cast<std::uint8_t>(acc_ & 0xFF));
      acc_ >>= 8;
      nbits_ -= 8;
    }
  }

  void put_huff(std::uint32_t code, int n) {
    std::uint32_t rev = 0;
    for (int i = 0; i < n; ++i) rev = (rev << 1) | ((code >> i) & 1);
    put(rev, n);
  }

  /// Pad to the next byte boundary with zero bits (stored-block prefix).
  void align() {
    if (nbits_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_ & 0xFF));
    }
    acc_ = 0;
    nbits_ = 0;
  }

  /// Bits in the accumulator not yet flushed to a whole byte.
  int pending_bits() const { return nbits_; }

 private:
  std::vector<std::uint8_t>& out_;
  std::uint32_t acc_ = 0;
  int nbits_ = 0;
};

class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t n) : data_(data), n_(n) {}

  std::uint32_t get(int n) {
    while (nbits_ < n) {
      if (pos_ >= n_) throw std::runtime_error("inflate: truncated stream");
      acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << nbits_;
      nbits_ += 8;
    }
    const std::uint32_t out = static_cast<std::uint32_t>(acc_) &
                              ((1u << n) - 1u);
    acc_ >>= n;
    nbits_ -= n;
    return out;
  }

  int get1() { return static_cast<int>(get(1)); }

  /// Drop accumulator bits down to the byte boundary (stored blocks).
  void align() {
    acc_ >>= nbits_ % 8;
    nbits_ -= nbits_ % 8;
  }

  /// Read `count` whole bytes (must be byte-aligned modulo buffered bytes).
  void read_bytes(std::uint8_t* dst, std::size_t count) {
    while (count > 0 && nbits_ > 0) {
      *dst++ = static_cast<std::uint8_t>(acc_ & 0xFF);
      acc_ >>= 8;
      nbits_ -= 8;
      --count;
    }
    if (pos_ + count > n_) throw std::runtime_error("inflate: truncated block");
    std::memcpy(dst, data_ + pos_, count);
    pos_ += count;
  }

  /// Input bytes consumed so far, counting buffered-but-unread bits' bytes
  /// as not consumed.
  std::size_t consumed() const { return pos_ - static_cast<std::size_t>(nbits_ / 8); }

 private:
  const std::uint8_t* data_;
  std::size_t n_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int nbits_ = 0;
};

// -------------------------------------------------- RFC 1951 constants ----

constexpr int kMinMatch = 3;
constexpr int kMaxMatch = 258;
constexpr int kWindowSize = 32768;

/// Length codes 257..285: base length and extra bits.
constexpr std::uint16_t kLengthBase[29] = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::uint8_t kLengthExtra[29] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1,
                                           1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
                                           4, 4, 4, 4, 5, 5, 5, 5, 0};

/// Distance codes 0..29: base distance and extra bits.
constexpr std::uint16_t kDistBase[30] = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,   25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,  769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::uint8_t kDistExtra[30] = {0, 0, 0,  0,  1,  1,  2,  2,  3,  3,
                                         4, 4, 5,  5,  6,  6,  7,  7,  8,  8,
                                         9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

/// Code-length alphabet transmission order (dynamic blocks).
constexpr std::uint8_t kClOrder[19] = {16, 17, 18, 0, 8,  7, 9,  6, 10, 5,
                                       11, 4,  12, 3, 13, 2, 14, 1, 15};

int length_code(int len) {
  // len in [3, 258]; linear scan is fine (29 entries, called per match).
  int code = 28;
  while (code > 0 && kLengthBase[code] > len) --code;
  return code;
}

int dist_code(int dist) {
  int code = 29;
  while (code > 0 && kDistBase[code] > dist) --code;
  return code;
}

/// Fixed-Huffman literal/length code for symbol `sym` (0..287): returns
/// {code, bits} per RFC 1951 section 3.2.6.
struct HuffCode {
  std::uint16_t code;
  std::uint8_t bits;
};

HuffCode fixed_litlen_code(int sym) {
  if (sym < 144) return {static_cast<std::uint16_t>(0x30 + sym), 8};
  if (sym < 256) return {static_cast<std::uint16_t>(0x190 + (sym - 144)), 9};
  if (sym < 280) return {static_cast<std::uint16_t>(sym - 256), 7};
  return {static_cast<std::uint16_t>(0xC0 + (sym - 280)), 8};
}

// ------------------------------------------------------------ deflate ----

/// One LZ77 token: dist == 0 means a literal byte, otherwise a
/// (length, distance) back-reference.
struct Token {
  std::uint16_t dist = 0;
  std::uint16_t len = 0;
  std::uint8_t lit = 0;
};

/// Cost in bits of a token under the fixed-Huffman alphabet.
int fixed_token_bits(const Token& t) {
  if (t.dist == 0) return fixed_litlen_code(t.lit).bits;
  const int lc = length_code(t.len);
  const int dc = dist_code(t.dist);
  return fixed_litlen_code(257 + lc).bits + kLengthExtra[lc] + 5 +
         kDistExtra[dc];
}

void emit_fixed_block(BitWriter& bw, const Token* tokens, std::size_t count,
                      bool final) {
  bw.put(final ? 1 : 0, 1);
  bw.put(1, 2);  // BTYPE=01: fixed Huffman
  for (std::size_t i = 0; i < count; ++i) {
    const Token& t = tokens[i];
    if (t.dist == 0) {
      const HuffCode c = fixed_litlen_code(t.lit);
      bw.put_huff(c.code, c.bits);
    } else {
      const int lc = length_code(t.len);
      const HuffCode c = fixed_litlen_code(257 + lc);
      bw.put_huff(c.code, c.bits);
      bw.put(static_cast<std::uint32_t>(t.len - kLengthBase[lc]),
             kLengthExtra[lc]);
      const int dc = dist_code(t.dist);
      bw.put_huff(static_cast<std::uint32_t>(dc), 5);
      bw.put(static_cast<std::uint32_t>(t.dist - kDistBase[dc]),
             kDistExtra[dc]);
    }
  }
  const HuffCode eob = fixed_litlen_code(256);
  bw.put_huff(eob.code, eob.bits);
}

/// Stored LEN/NLEN is 16 bits, so spans beyond 65535 bytes (a match may
/// carry a block past the boundary) are split into multiple stored blocks,
/// with only the last one carrying the caller's BFINAL flag.
void emit_stored_block(BitWriter& bw, const std::uint8_t* data,
                       std::size_t len, bool final) {
  constexpr std::size_t kMaxStored = 65535;
  do {
    const std::size_t chunk = std::min(len, kMaxStored);
    bw.put((final && chunk == len) ? 1 : 0, 1);
    bw.put(0, 2);  // BTYPE=00: stored
    bw.align();
    const std::vector<std::uint8_t> header = {
        static_cast<std::uint8_t>(chunk & 0xFF),
        static_cast<std::uint8_t>(chunk >> 8),
        static_cast<std::uint8_t>(~chunk & 0xFF),
        static_cast<std::uint8_t>((~chunk >> 8) & 0xFF)};
    for (const std::uint8_t b : header) bw.put(b, 8);
    for (std::size_t i = 0; i < chunk; ++i) bw.put(data[i], 8);
    data += chunk;
    len -= chunk;
  } while (len > 0);
}

/// Hash-chain match finder over a 32 KiB sliding window.
class MatchFinder {
 public:
  static constexpr int kHashBits = 15;
  static constexpr std::size_t kHashSize = 1u << kHashBits;
  /// Chain-walk budget per position: deep enough to find the long runs PNG
  /// scanline filters produce, bounded so worst-case input stays linear-ish.
  static constexpr int kMaxChain = 128;

  MatchFinder(const std::uint8_t* data, std::size_t n)
      : data_(data), n_(n), head_(kHashSize, -1), prev_(kWindowSize, -1) {}

  struct Match {
    int len = 0;
    int dist = 0;
  };

  /// Longest match for `pos` among previously inserted positions.
  Match find(std::size_t pos) const {
    Match best;
    if (pos + kMinMatch > n_) return best;
    const int limit = static_cast<int>(
        pos > kWindowSize ? pos - kWindowSize : 0);
    const int max_len =
        static_cast<int>(std::min<std::size_t>(kMaxMatch, n_ - pos));
    const std::uint8_t* cur = data_ + pos;
    int chain = kMaxChain;
    for (std::int64_t cand = head_[hash(pos)];
         cand >= limit && chain-- > 0;
         cand = prev_[static_cast<std::size_t>(cand) % kWindowSize]) {
      const std::uint8_t* ref = data_ + cand;
      // Quick reject: a longer match must extend past the current best.
      if (best.len > 0 && ref[best.len] != cur[best.len]) continue;
      int len = 0;
      while (len < max_len && ref[len] == cur[len]) ++len;
      if (len > best.len) {
        best.len = len;
        best.dist = static_cast<int>(pos - static_cast<std::size_t>(cand));
        if (len >= max_len) break;  // cannot improve
      }
    }
    if (best.len < kMinMatch) return {};
    return best;
  }

  void insert(std::size_t pos) {
    if (pos + kMinMatch > n_) return;
    const std::size_t h = hash(pos);
    prev_[pos % kWindowSize] = head_[h];
    head_[h] = static_cast<std::int64_t>(pos);
  }

 private:
  std::size_t hash(std::size_t pos) const {
    const std::uint32_t v = static_cast<std::uint32_t>(data_[pos]) |
                            (static_cast<std::uint32_t>(data_[pos + 1]) << 8) |
                            (static_cast<std::uint32_t>(data_[pos + 2]) << 16);
    return (v * 0x9E3779B1u) >> (32 - kHashBits);
  }

  const std::uint8_t* data_;
  std::size_t n_;
  std::vector<std::int64_t> head_;
  std::vector<std::int64_t> prev_;
};

// ------------------------------------------------------------ inflate ----

/// Canonical Huffman decoder built from code lengths (RFC 1951 3.2.2).
class HuffmanTable {
 public:
  void build(const std::uint8_t* lengths, std::size_t n) {
    counts_.fill(0);
    symbols_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (lengths[i] > 15) throw std::runtime_error("inflate: bad code length");
      counts_[lengths[i]]++;
    }
    // All-zero lengths are legal for the distance alphabet of a
    // literal-only dynamic block (HDIST=1 with a single zero length):
    // build an empty table and only fail if a code is actually decoded.
    empty_ = counts_[0] == static_cast<int>(n);
    counts_[0] = 0;
    if (empty_) return;
    // Over-subscribed sets of lengths cannot form a prefix code.
    int left = 1;
    for (int len = 1; len <= 15; ++len) {
      left = (left << 1) - counts_[len];
      if (left < 0) throw std::runtime_error("inflate: over-subscribed code");
    }
    std::array<int, 16> offsets{};
    for (int len = 1; len < 15; ++len) {
      offsets[len + 1] = offsets[len] + counts_[len];
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (lengths[i] != 0) {
        symbols_[static_cast<std::size_t>(offsets[lengths[i]]++)] =
            static_cast<std::uint16_t>(i);
      }
    }
  }

  int decode(BitReader& br) const {
    if (empty_) {
      throw std::runtime_error("inflate: symbol from empty Huffman table");
    }
    int code = 0, first = 0, index = 0;
    for (int len = 1; len <= 15; ++len) {
      code |= br.get1();
      const int count = counts_[len];
      if (code - first < count) return symbols_[static_cast<std::size_t>(
          index + (code - first))];
      index += count;
      first = (first + count) << 1;
      code <<= 1;
    }
    throw std::runtime_error("inflate: invalid Huffman code");
  }

 private:
  std::array<int, 16> counts_{};
  std::vector<std::uint16_t> symbols_;
  bool empty_ = false;
};

const HuffmanTable& fixed_litlen_table() {
  static const HuffmanTable table = [] {
    std::array<std::uint8_t, 288> lengths{};
    for (int i = 0; i < 144; ++i) lengths[static_cast<std::size_t>(i)] = 8;
    for (int i = 144; i < 256; ++i) lengths[static_cast<std::size_t>(i)] = 9;
    for (int i = 256; i < 280; ++i) lengths[static_cast<std::size_t>(i)] = 7;
    for (int i = 280; i < 288; ++i) lengths[static_cast<std::size_t>(i)] = 8;
    HuffmanTable t;
    t.build(lengths.data(), lengths.size());
    return t;
  }();
  return table;
}

const HuffmanTable& fixed_dist_table() {
  static const HuffmanTable table = [] {
    std::array<std::uint8_t, 30> lengths{};
    lengths.fill(5);
    HuffmanTable t;
    t.build(lengths.data(), lengths.size());
    return t;
  }();
  return table;
}

void inflate_block(BitReader& br, const HuffmanTable& litlen,
                   const HuffmanTable& dist, std::vector<std::uint8_t>& out,
                   std::size_t max_output) {
  for (;;) {
    const int sym = litlen.decode(br);
    if (sym < 256) {
      if (max_output != 0 && out.size() >= max_output) {
        throw std::runtime_error("inflate: output limit exceeded");
      }
      out.push_back(static_cast<std::uint8_t>(sym));
      continue;
    }
    if (sym == 256) return;  // end of block
    if (sym > 285) throw std::runtime_error("inflate: bad length symbol");
    const int lc = sym - 257;
    const std::size_t len = kLengthBase[lc] + br.get(kLengthExtra[lc]);
    const int dc = dist.decode(br);
    if (dc > 29) throw std::runtime_error("inflate: bad distance symbol");
    const std::size_t distance = kDistBase[dc] + br.get(kDistExtra[dc]);
    if (distance > out.size()) {
      throw std::runtime_error("inflate: distance past output start");
    }
    if (max_output != 0 && out.size() + len > max_output) {
      throw std::runtime_error("inflate: output limit exceeded");
    }
    // Byte-by-byte: overlapping copies (dist < len) replicate runs.
    std::size_t from = out.size() - distance;
    for (std::size_t i = 0; i < len; ++i) out.push_back(out[from + i]);
  }
}

void inflate_dynamic_block(BitReader& br, std::vector<std::uint8_t>& out,
                           std::size_t max_output) {
  const std::size_t hlit = br.get(5) + 257;
  const std::size_t hdist = br.get(5) + 1;
  const std::size_t hclen = br.get(4) + 4;
  if (hlit > 286 || hdist > 30) {
    throw std::runtime_error("inflate: bad dynamic header");
  }
  std::array<std::uint8_t, 19> cl_lengths{};
  for (std::size_t i = 0; i < hclen; ++i) {
    cl_lengths[kClOrder[i]] = static_cast<std::uint8_t>(br.get(3));
  }
  HuffmanTable cl;
  cl.build(cl_lengths.data(), cl_lengths.size());

  std::vector<std::uint8_t> lengths;
  lengths.reserve(hlit + hdist);
  while (lengths.size() < hlit + hdist) {
    const int sym = cl.decode(br);
    if (sym < 16) {
      lengths.push_back(static_cast<std::uint8_t>(sym));
    } else if (sym == 16) {
      if (lengths.empty()) {
        throw std::runtime_error("inflate: repeat with no previous length");
      }
      const std::uint8_t prev = lengths.back();
      const std::size_t count = 3 + br.get(2);
      lengths.insert(lengths.end(), count, prev);
    } else if (sym == 17) {
      lengths.insert(lengths.end(), 3 + br.get(3), 0);
    } else {
      lengths.insert(lengths.end(), 11 + br.get(7), 0);
    }
  }
  if (lengths.size() != hlit + hdist) {
    throw std::runtime_error("inflate: code length overrun");
  }
  if (lengths[256] == 0) {
    throw std::runtime_error("inflate: no end-of-block code");
  }
  HuffmanTable litlen, dist;
  litlen.build(lengths.data(), hlit);
  dist.build(lengths.data() + hlit, hdist);
  inflate_block(br, litlen, dist, out, max_output);
}

}  // namespace

std::vector<std::uint8_t> deflate(const std::uint8_t* data, std::size_t n) {
  std::vector<std::uint8_t> out;
  out.reserve(n / 2 + 64);
  BitWriter bw(out);
  if (n == 0) {
    // A single empty stored block is the smallest valid empty stream.
    emit_stored_block(bw, data, 0, true);
    bw.align();
    return out;
  }

  MatchFinder finder(data, n);
  std::vector<Token> tokens;
  // Block boundary at the stored-block size limit, so the stored fallback
  // is always available for exactly the block's input span.
  constexpr std::size_t kBlockInput = 65535;
  std::size_t block_start = 0;
  std::size_t pos = 0;

  const auto flush_block = [&](std::size_t block_end, bool final) {
    const std::size_t span = block_end - block_start;
    long long fixed_bits = 3 + 7;  // header + end-of-block
    for (const Token& t : tokens) fixed_bits += fixed_token_bits(t);
    // Stored: header + alignment padding + LEN/NLEN + the bytes. A span
    // past 65535 splits into extra chunks of 40 overhead bits each
    // (3-bit header, 5 padding bits from the aligned position, LEN/NLEN).
    const long long extra_chunks =
        span > 65535 ? static_cast<long long>((span - 1) / 65535) : 0;
    const long long stored_bits =
        3 + ((8 - ((bw.pending_bits() + 3) % 8)) % 8) + 32 +
        extra_chunks * 40 + 8 * static_cast<long long>(span);
    if (fixed_bits < stored_bits) {
      emit_fixed_block(bw, tokens.data(), tokens.size(), final);
    } else {
      emit_stored_block(bw, data + block_start, span, final);
    }
    tokens.clear();
    block_start = block_end;
  };

  while (pos < n) {
    MatchFinder::Match m = finder.find(pos);
    if (m.len >= kMinMatch) {
      // One-step lazy evaluation: when the next position holds a strictly
      // longer match, emit this byte as a literal and let the longer match
      // win — the classic fix for greedy parsing clipping a long run.
      finder.insert(pos);
      if (pos + 1 < n && m.len < kMaxMatch) {
        const MatchFinder::Match next = finder.find(pos + 1);
        if (next.len > m.len) {
          tokens.push_back({0, 0, data[pos]});
          ++pos;
          if (pos - block_start >= kBlockInput) flush_block(pos, false);
          continue;
        }
      }
      tokens.push_back({static_cast<std::uint16_t>(m.dist),
                        static_cast<std::uint16_t>(m.len), 0});
      for (std::size_t k = pos + 1; k < pos + static_cast<std::size_t>(m.len);
           ++k) {
        finder.insert(k);
      }
      pos += static_cast<std::size_t>(m.len);
    } else {
      finder.insert(pos);
      tokens.push_back({0, 0, data[pos]});
      ++pos;
    }
    // A match may overshoot the boundary by up to kMaxMatch bytes; the
    // stored fallback splits any oversized span, but keeping spans near
    // the limit keeps the fallback a single block in the common case.
    if (pos - block_start >= kBlockInput) flush_block(pos, false);
  }
  flush_block(n, true);
  bw.align();
  return out;
}

std::vector<std::uint8_t> inflate(const std::uint8_t* data, std::size_t n,
                                  std::size_t* consumed,
                                  std::size_t max_output) {
  BitReader br(data, n);
  std::vector<std::uint8_t> out;
  for (;;) {
    const int final = br.get1();
    const std::uint32_t type = br.get(2);
    if (type == 0) {
      br.align();
      std::uint8_t header[4];
      br.read_bytes(header, 4);
      const std::size_t len = static_cast<std::size_t>(header[0]) |
                              (static_cast<std::size_t>(header[1]) << 8);
      const std::size_t nlen = static_cast<std::size_t>(header[2]) |
                               (static_cast<std::size_t>(header[3]) << 8);
      if ((len ^ nlen) != 0xFFFF) {
        throw std::runtime_error("inflate: stored block length mismatch");
      }
      if (max_output != 0 && out.size() + len > max_output) {
        throw std::runtime_error("inflate: output limit exceeded");
      }
      const std::size_t at = out.size();
      out.resize(at + len);
      br.read_bytes(out.data() + at, len);
    } else if (type == 1) {
      inflate_block(br, fixed_litlen_table(), fixed_dist_table(), out,
                    max_output);
    } else if (type == 2) {
      inflate_dynamic_block(br, out, max_output);
    } else {
      throw std::runtime_error("inflate: reserved block type");
    }
    if (final) break;
  }
  if (consumed != nullptr) {
    *consumed = br.consumed();
  } else if (br.consumed() < n) {
    throw std::runtime_error("inflate: trailing garbage");
  }
  return out;
}

std::vector<std::uint8_t> zlib_compress(const std::uint8_t* data,
                                        std::size_t n) {
  // CMF/FLG 0x78 0x9C: deflate, 32 KiB window, default compression level;
  // (0x78 * 256 + 0x9C) % 31 == 0 as the header checksum requires.
  std::vector<std::uint8_t> out = {0x78, 0x9C};
  std::vector<std::uint8_t> body = deflate(data, n);
  out.insert(out.end(), body.begin(), body.end());
  const std::uint32_t checksum = adler32(data, n);
  out.push_back(static_cast<std::uint8_t>(checksum >> 24));
  out.push_back(static_cast<std::uint8_t>(checksum >> 16));
  out.push_back(static_cast<std::uint8_t>(checksum >> 8));
  out.push_back(static_cast<std::uint8_t>(checksum));
  return out;
}

std::vector<std::uint8_t> zlib_decompress(const std::uint8_t* data,
                                          std::size_t n,
                                          std::size_t max_output) {
  if (n < 6) throw std::runtime_error("zlib: stream too short");
  if ((data[0] & 0x0F) != 8) throw std::runtime_error("zlib: not deflate");
  if ((data[1] & 0x20) != 0) {
    throw std::runtime_error("zlib: preset dictionary unsupported");
  }
  if ((static_cast<unsigned>(data[0]) * 256 + data[1]) % 31 != 0) {
    throw std::runtime_error("zlib: bad header checksum");
  }
  std::size_t consumed = 0;
  std::vector<std::uint8_t> out =
      inflate(data + 2, n - 2, &consumed, max_output);
  if (2 + consumed + 4 > n) throw std::runtime_error("zlib: missing adler32");
  const std::uint8_t* t = data + 2 + consumed;
  const std::uint32_t expect = (static_cast<std::uint32_t>(t[0]) << 24) |
                               (static_cast<std::uint32_t>(t[1]) << 16) |
                               (static_cast<std::uint32_t>(t[2]) << 8) |
                               static_cast<std::uint32_t>(t[3]);
  if (adler32(out.data(), out.size()) != expect) {
    throw std::runtime_error("zlib: adler32 mismatch");
  }
  return out;
}

}  // namespace ricsa::viz
