// Indexed triangle mesh — the "geometric primitives" stage of the pipeline
// (output of the transformation module, input of the rendering module).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "data/volume.hpp"

namespace ricsa::viz {

using data::Vec3;

class TriangleMesh {
 public:
  std::vector<Vec3>& positions() noexcept { return positions_; }
  const std::vector<Vec3>& positions() const noexcept { return positions_; }
  std::vector<Vec3>& normals() noexcept { return normals_; }
  const std::vector<Vec3>& normals() const noexcept { return normals_; }
  std::vector<std::uint32_t>& indices() noexcept { return indices_; }
  const std::vector<std::uint32_t>& indices() const noexcept { return indices_; }

  std::size_t vertex_count() const noexcept { return positions_.size(); }
  std::size_t triangle_count() const noexcept { return indices_.size() / 3; }

  /// Append a triangle with explicit vertices (soup-style, not welded).
  void add_triangle(const Vec3& a, const Vec3& b, const Vec3& c);

  /// Append another mesh (indices rebased).
  void append(const TriangleMesh& other);

  /// Wire size of the geometry when shipped down the pipeline: positions +
  /// normals (3+3 floats) per vertex plus 32-bit indices.
  std::size_t bytes() const noexcept {
    return positions_.size() * 6 * sizeof(float) +
           indices_.size() * sizeof(std::uint32_t);
  }

  /// Merge vertices closer than eps (grid hash); recomputes smooth normals.
  /// Returns the welded mesh, leaving *this untouched.
  TriangleMesh welded(float eps = 1e-4f) const;

  /// Sum of triangle areas.
  double surface_area() const;

  /// Axis-aligned bounds; returns {0,0,0},{0,0,0} for an empty mesh.
  std::pair<Vec3, Vec3> bounds() const;

  /// True when every edge of the welded mesh is shared by exactly two
  /// triangles (closed 2-manifold — what a correct extractor produces for an
  /// isosurface that doesn't intersect the volume boundary).
  bool is_closed() const;

 private:
  std::vector<Vec3> positions_;
  std::vector<Vec3> normals_;
  std::vector<std::uint32_t> indices_;
};

}  // namespace ricsa::viz
