#include "viz/streamline.hpp"

namespace ricsa::viz {

using data::Vec3;

StreamlineSet trace_streamlines(const data::VectorVolume& field,
                                const std::vector<Vec3>& seeds,
                                const StreamlineOptions& options) {
  StreamlineSet out;
  out.lines.reserve(seeds.size());

  for (const Vec3& seed : seeds) {
    std::vector<Vec3> line;
    line.push_back(seed);
    Vec3 p = seed;
    for (int step = 0; step < options.max_steps; ++step) {
      if (!field.inside(p.x, p.y, p.z)) break;
      // Classic RK4 advection.
      const float h = options.step;
      const Vec3 k1 = field.sample(p.x, p.y, p.z);
      if (k1.norm() < options.min_speed) break;
      const Vec3 p2 = p + k1 * (h * 0.5f);
      const Vec3 k2 = field.sample(p2.x, p2.y, p2.z);
      const Vec3 p3 = p + k2 * (h * 0.5f);
      const Vec3 k3 = field.sample(p3.x, p3.y, p3.z);
      const Vec3 p4 = p + k3 * h;
      const Vec3 k4 = field.sample(p4.x, p4.y, p4.z);
      p = p + (k1 + k2 * 2.0f + k3 * 2.0f + k4) * (h / 6.0f);
      ++out.advection_steps;
      if (!field.inside(p.x, p.y, p.z)) break;
      line.push_back(p);
    }
    out.lines.push_back(std::move(line));
  }
  return out;
}

std::vector<Vec3> grid_seeds(const data::VectorVolume& field, int n) {
  std::vector<Vec3> seeds;
  seeds.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n) *
                static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        seeds.push_back(Vec3{
            (static_cast<float>(i) + 0.5f) * static_cast<float>(field.nx() - 1) /
                static_cast<float>(n),
            (static_cast<float>(j) + 0.5f) * static_cast<float>(field.ny() - 1) /
                static_cast<float>(n),
            (static_cast<float>(k) + 0.5f) * static_cast<float>(field.nz() - 1) /
                static_cast<float>(n)});
      }
    }
  }
  return seeds;
}

}  // namespace ricsa::viz
