// Self-contained DEFLATE (RFC 1951) codec and zlib (RFC 1950) wrappers.
//
// The paper's whole premise is minimizing bytes-per-frame to the browser;
// PNG tiles are the dominant payload, so their IDAT stream deserves real
// compression instead of stored blocks. The compressor runs LZ77 over a
// 32 KiB window (hash-chain match search, greedy with one-step lazy
// evaluation) and emits fixed-Huffman blocks, falling back to a stored
// block whenever entropy coding would expand that block — so the output is
// never materially larger than the input. The decompressor is a full
// inflater (stored + fixed + dynamic Huffman), enough to read any
// conforming stream: round-trip verification in tests, tile reassembly
// checks in the bench, and relay-side assertions all decode through it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ricsa::viz {

/// Adler-32 checksum (RFC 1950) — the zlib trailer; exposed for tests.
std::uint32_t adler32(const std::uint8_t* data, std::size_t n);

/// Compress `n` bytes into a raw DEFLATE stream: LZ77 with hash-chain
/// match search and one-step lazy evaluation, fixed-Huffman entropy
/// coding, per-block stored fallback when coding would expand the data.
std::vector<std::uint8_t> deflate(const std::uint8_t* data, std::size_t n);
inline std::vector<std::uint8_t> deflate(const std::vector<std::uint8_t>& in) {
  return deflate(in.data(), in.size());
}

/// Decompress a raw DEFLATE stream (stored, fixed- and dynamic-Huffman
/// blocks). Throws std::runtime_error on malformed input, on more than
/// `max_output` decoded bytes (0 = unlimited), or on trailing garbage
/// unless `consumed` is non-null (then it receives the number of input
/// bytes the stream actually used, trailing data left to the caller).
std::vector<std::uint8_t> inflate(const std::uint8_t* data, std::size_t n,
                                  std::size_t* consumed = nullptr,
                                  std::size_t max_output = 0);
inline std::vector<std::uint8_t> inflate(const std::vector<std::uint8_t>& in) {
  return inflate(in.data(), in.size());
}

/// DEFLATE wrapped in a zlib stream: 2-byte header, compressed data,
/// big-endian adler32 of the plaintext — what a PNG IDAT chunk carries.
std::vector<std::uint8_t> zlib_compress(const std::uint8_t* data,
                                        std::size_t n);
/// Inverse of zlib_compress; verifies the header and the adler32 trailer.
/// Accepts any conforming zlib stream (all three block types). Throws
/// std::runtime_error on malformed input or a checksum mismatch.
std::vector<std::uint8_t> zlib_decompress(const std::uint8_t* data,
                                          std::size_t n,
                                          std::size_t max_output = 0);

}  // namespace ricsa::viz
