// Dataset filtering / preprocessing — the first module of the visualization
// pipeline (Section 4.1): "extracts the information of interest from the raw
// data and performs necessary preprocessing to improve processing efficiency
// and save communication resources".
#pragma once

#include "data/volume.hpp"

namespace ricsa::viz {

/// Box-average downsample by an integer factor along every axis (the paper's
/// Visible Woman was "downsampled from its original size by 8 times").
data::ScalarVolume downsample(const data::ScalarVolume& volume, int factor);

/// Voxel-aligned crop [x0, x1) x [y0, y1) x [z0, z1).
data::ScalarVolume crop(const data::ScalarVolume& volume, int x0, int y0,
                        int z0, int x1, int y1, int z1);

/// Affinely rescale values so min -> 0 and max -> 1 (constant fields map
/// to 0).
data::ScalarVolume normalize(const data::ScalarVolume& volume);

/// Separable 3-tap binomial smoothing ([1 2 1]/4 along each axis).
data::ScalarVolume smooth(const data::ScalarVolume& volume);

/// Zero all values outside [lo, hi] (band-pass filter for a variable of
/// interest).
data::ScalarVolume band_pass(const data::ScalarVolume& volume, float lo,
                             float hi);

}  // namespace ricsa::viz
