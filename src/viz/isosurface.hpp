// Block-based isosurface extraction (the pipeline's "transformation" module,
// Section 4.1) with the per-case bookkeeping the Section 4.4.1 cost model
// needs: which blocks were active, how many cells fell into each of the 15
// marching-cubes equivalence classes, and how many triangles each produced.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "data/octree.hpp"
#include "data/volume.hpp"
#include "util/thread_pool.hpp"
#include "viz/mesh.hpp"

namespace ricsa::viz {

struct IsosurfaceStats {
  std::size_t blocks_total = 0;
  std::size_t blocks_active = 0;
  std::size_t cells_scanned = 0;
  std::size_t triangles = 0;
  /// Cells per marching-cubes equivalence class (class 0 = empty/full).
  std::array<std::uint64_t, 32> class_cells{};
  /// Triangles emitted per class.
  std::array<std::uint64_t, 32> class_triangles{};
};

struct IsosurfaceResult {
  TriangleMesh mesh;
  IsosurfaceStats stats;
};

struct IsosurfaceOptions {
  /// Octree block edge length (cells). Blocks whose value range excludes the
  /// isovalue are skipped without scanning their cells.
  int block_size = 16;
  /// Optional worker pool for block-parallel extraction (the "MPI-based
  /// visualization module" of the cluster CS nodes). Null = serial.
  util::ThreadPool* pool = nullptr;
  /// Compute smooth per-vertex normals from the field gradient; otherwise
  /// flat face normals are used (cheaper).
  bool gradient_normals = true;
};

/// Extract the isosurface `value` from the volume.
IsosurfaceResult extract_isosurface(const data::ScalarVolume& volume,
                                    float isovalue,
                                    const IsosurfaceOptions& options = {});

/// Same, but reusing a prebuilt decomposition (repeated extractions at
/// different isovalues, as in the cost-model calibration sweep).
IsosurfaceResult extract_isosurface(const data::ScalarVolume& volume,
                                    const data::BlockDecomposition& blocks,
                                    float isovalue,
                                    const IsosurfaceOptions& options = {});

}  // namespace ricsa::viz
