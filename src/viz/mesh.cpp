#include "viz/mesh.hpp"

#include <cmath>
#include <map>
#include <tuple>

namespace ricsa::viz {

void TriangleMesh::add_triangle(const Vec3& a, const Vec3& b, const Vec3& c) {
  const auto base = static_cast<std::uint32_t>(positions_.size());
  positions_.push_back(a);
  positions_.push_back(b);
  positions_.push_back(c);
  const Vec3 n = (b - a).cross(c - a).normalized();
  normals_.push_back(n);
  normals_.push_back(n);
  normals_.push_back(n);
  indices_.push_back(base);
  indices_.push_back(base + 1);
  indices_.push_back(base + 2);
}

void TriangleMesh::append(const TriangleMesh& other) {
  const auto base = static_cast<std::uint32_t>(positions_.size());
  positions_.insert(positions_.end(), other.positions_.begin(),
                    other.positions_.end());
  normals_.insert(normals_.end(), other.normals_.begin(), other.normals_.end());
  indices_.reserve(indices_.size() + other.indices_.size());
  for (const std::uint32_t i : other.indices_) indices_.push_back(base + i);
}

TriangleMesh TriangleMesh::welded(float eps) const {
  TriangleMesh out;
  std::map<std::tuple<long, long, long>, std::uint32_t> grid;
  const float inv = 1.0f / eps;
  std::vector<std::uint32_t> remap(positions_.size());
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    const Vec3& p = positions_[i];
    const auto key = std::make_tuple(std::lround(p.x * inv),
                                     std::lround(p.y * inv),
                                     std::lround(p.z * inv));
    const auto it = grid.find(key);
    if (it != grid.end()) {
      remap[i] = it->second;
    } else {
      const auto id = static_cast<std::uint32_t>(out.positions_.size());
      grid.emplace(key, id);
      out.positions_.push_back(p);
      out.normals_.push_back(Vec3{});
      remap[i] = id;
    }
  }
  for (std::size_t t = 0; t + 2 < indices_.size(); t += 3) {
    const std::uint32_t a = remap[indices_[t]];
    const std::uint32_t b = remap[indices_[t + 1]];
    const std::uint32_t c = remap[indices_[t + 2]];
    if (a == b || b == c || a == c) continue;  // degenerate after welding
    out.indices_.push_back(a);
    out.indices_.push_back(b);
    out.indices_.push_back(c);
    // Accumulate area-weighted face normals for smooth shading.
    const Vec3 n = (out.positions_[b] - out.positions_[a])
                       .cross(out.positions_[c] - out.positions_[a]);
    out.normals_[a] = out.normals_[a] + n;
    out.normals_[b] = out.normals_[b] + n;
    out.normals_[c] = out.normals_[c] + n;
  }
  for (Vec3& n : out.normals_) n = n.normalized();
  return out;
}

double TriangleMesh::surface_area() const {
  double area = 0.0;
  for (std::size_t t = 0; t + 2 < indices_.size(); t += 3) {
    const Vec3& a = positions_[indices_[t]];
    const Vec3& b = positions_[indices_[t + 1]];
    const Vec3& c = positions_[indices_[t + 2]];
    area += 0.5 * static_cast<double>((b - a).cross(c - a).norm());
  }
  return area;
}

std::pair<Vec3, Vec3> TriangleMesh::bounds() const {
  if (positions_.empty()) return {Vec3{}, Vec3{}};
  Vec3 lo = positions_.front();
  Vec3 hi = positions_.front();
  for (const Vec3& p : positions_) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  }
  return {lo, hi};
}

bool TriangleMesh::is_closed() const {
  const TriangleMesh w = welded();
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> edge_count;
  for (std::size_t t = 0; t + 2 < w.indices_.size(); t += 3) {
    for (int e = 0; e < 3; ++e) {
      std::uint32_t a = w.indices_[t + static_cast<std::size_t>(e)];
      std::uint32_t b = w.indices_[t + static_cast<std::size_t>((e + 1) % 3)];
      if (a > b) std::swap(a, b);
      ++edge_count[{a, b}];
    }
  }
  if (edge_count.empty()) return false;
  for (const auto& [edge, count] : edge_count) {
    if (count != 2) return false;
  }
  return true;
}

}  // namespace ricsa::viz
