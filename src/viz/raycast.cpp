#include "viz/raycast.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

namespace ricsa::viz {

using data::Vec3;

TransferFunction::TransferFunction(std::vector<Stop> stops)
    : stops_(std::move(stops)) {
  if (stops_.empty()) {
    throw std::invalid_argument("TransferFunction: need at least one stop");
  }
  for (std::size_t i = 1; i < stops_.size(); ++i) {
    if (stops_[i].value < stops_[i - 1].value) {
      throw std::invalid_argument("TransferFunction: stops must be sorted");
    }
  }
}

TransferFunction::Stop TransferFunction::sample(float value) const {
  if (value <= stops_.front().value) return stops_.front();
  if (value >= stops_.back().value) return stops_.back();
  for (std::size_t i = 1; i < stops_.size(); ++i) {
    if (value <= stops_[i].value) {
      const Stop& a = stops_[i - 1];
      const Stop& b = stops_[i];
      const float span = b.value - a.value;
      const float t = span > 0 ? (value - a.value) / span : 0.0f;
      return Stop{value, a.r + (b.r - a.r) * t, a.g + (b.g - a.g) * t,
                  a.b + (b.b - a.b) * t, a.a + (b.a - a.a) * t};
    }
  }
  return stops_.back();
}

TransferFunction TransferFunction::preset(float lo, float hi) {
  const float span = hi - lo;
  return TransferFunction({
      {lo, 0.05f, 0.05f, 0.3f, 0.0f},
      {lo + 0.4f * span, 0.2f, 0.5f, 0.8f, 0.02f},
      {lo + 0.7f * span, 0.9f, 0.6f, 0.3f, 0.12f},
      {hi, 1.0f, 0.95f, 0.85f, 0.35f},
  });
}

namespace {

struct Basis {
  Vec3 forward, right, up;
};

Basis camera_basis(float azimuth, float elevation) {
  const Vec3 forward{-std::cos(elevation) * std::cos(azimuth),
                     -std::cos(elevation) * std::sin(azimuth),
                     -std::sin(elevation)};
  const Vec3 world_up{0, 0, 1};
  Vec3 right = forward.cross(world_up);
  if (right.norm() < 1e-5f) right = Vec3{1, 0, 0};
  right = right.normalized();
  const Vec3 up = right.cross(forward).normalized();
  return {forward.normalized(), right, up};
}

/// Slab intersection of a ray with the volume AABB [0, n-1]^3.
bool intersect_aabb(const Vec3& origin, const Vec3& dir, const Vec3& hi,
                    float& t0, float& t1) {
  t0 = 0.0f;
  t1 = std::numeric_limits<float>::max();
  const float o[3] = {origin.x, origin.y, origin.z};
  const float d[3] = {dir.x, dir.y, dir.z};
  const float top[3] = {hi.x, hi.y, hi.z};
  for (int axis = 0; axis < 3; ++axis) {
    if (std::abs(d[axis]) < 1e-12f) {
      if (o[axis] < 0 || o[axis] > top[axis]) return false;
      continue;
    }
    float ta = (0 - o[axis]) / d[axis];
    float tb = (top[axis] - o[axis]) / d[axis];
    if (ta > tb) std::swap(ta, tb);
    t0 = std::max(t0, ta);
    t1 = std::min(t1, tb);
  }
  return t0 < t1;
}

}  // namespace

RayCastResult raycast(const data::ScalarVolume& volume,
                      const TransferFunction& tf,
                      const RayCastOptions& options) {
  RayCastResult result;
  result.image = Image(options.width, options.height, options.background);

  const Basis basis = camera_basis(options.azimuth, options.elevation);
  const Vec3 extent{static_cast<float>(volume.nx() - 1),
                    static_cast<float>(volume.ny() - 1),
                    static_cast<float>(volume.nz() - 1)};
  const Vec3 center = extent * 0.5f;
  const float radius = 0.5f * extent.norm();
  const float plane_half = radius * 1.05f;

  std::atomic<std::size_t> rays{0};
  std::atomic<std::size_t> samples{0};

  const auto render_rows = [&](std::size_t row_lo, std::size_t row_hi) {
    std::size_t local_rays = 0, local_samples = 0;
    for (std::size_t y = row_lo; y < row_hi; ++y) {
      for (int x = 0; x < options.width; ++x) {
        const float sx = (2.0f * (static_cast<float>(x) + 0.5f) /
                              static_cast<float>(options.width) -
                          1.0f) *
                         plane_half;
        const float sy = (1.0f - 2.0f * (static_cast<float>(y) + 0.5f) /
                                     static_cast<float>(options.height)) *
                         plane_half;
        const Vec3 origin = center + basis.right * sx + basis.up * sy -
                            basis.forward * (radius * 2.0f);
        float t0, t1;
        if (!intersect_aabb(origin, basis.forward, extent, t0, t1)) continue;
        ++local_rays;

        float acc_r = 0, acc_g = 0, acc_b = 0, acc_a = 0;
        for (float t = t0; t <= t1; t += options.step) {
          const Vec3 p = origin + basis.forward * t;
          const float v = volume.sample(p.x, p.y, p.z);
          ++local_samples;
          const TransferFunction::Stop s = tf.sample(v);
          const float w = (1.0f - acc_a) * s.a;
          acc_r += w * s.r;
          acc_g += w * s.g;
          acc_b += w * s.b;
          acc_a += w;
          if (options.early_termination && acc_a >= options.opacity_cutoff) {
            break;
          }
        }
        if (acc_a > 0.003f) {
          const auto to8 = [](float v8) {
            return static_cast<std::uint8_t>(
                std::clamp(v8 * 255.0f, 0.0f, 255.0f));
          };
          Rgba& px = result.image.at(x, static_cast<int>(y));
          const float bg = 1.0f - acc_a;
          px = Rgba{to8(acc_r + bg * static_cast<float>(px.r) / 255.0f),
                    to8(acc_g + bg * static_cast<float>(px.g) / 255.0f),
                    to8(acc_b + bg * static_cast<float>(px.b) / 255.0f), 255};
        }
      }
    }
    rays += local_rays;
    samples += local_samples;
  };

  if (options.pool) {
    options.pool->parallel_for(0, static_cast<std::size_t>(options.height),
                               render_rows);
  } else {
    render_rows(0, static_cast<std::size_t>(options.height));
  }
  result.rays = rays.load();
  result.samples = samples.load();
  return result;
}

RayGeometry estimate_raycast_counts(int nx, int ny, int nz,
                                    const RayCastOptions& options) {
  RayGeometry out;
  const Basis basis = camera_basis(options.azimuth, options.elevation);
  const Vec3 extent{static_cast<float>(nx - 1), static_cast<float>(ny - 1),
                    static_cast<float>(nz - 1)};
  const Vec3 center = extent * 0.5f;
  const float radius = 0.5f * extent.norm();
  const float plane_half = radius * 1.05f;
  for (int y = 0; y < options.height; ++y) {
    for (int x = 0; x < options.width; ++x) {
      const float sx = (2.0f * (static_cast<float>(x) + 0.5f) /
                            static_cast<float>(options.width) -
                        1.0f) *
                       plane_half;
      const float sy = (1.0f - 2.0f * (static_cast<float>(y) + 0.5f) /
                                   static_cast<float>(options.height)) *
                       plane_half;
      const Vec3 origin = center + basis.right * sx + basis.up * sy -
                          basis.forward * (radius * 2.0f);
      float t0, t1;
      if (!intersect_aabb(origin, basis.forward, extent, t0, t1)) continue;
      ++out.rays;
      // The sampling loop runs for t in [t0, t1] inclusive with the given
      // step: floor((t1 - t0) / step) + 1 samples.
      out.samples += static_cast<std::size_t>((t1 - t0) / options.step) + 1;
    }
  }
  return out;
}

}  // namespace ricsa::viz
