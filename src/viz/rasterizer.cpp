#include "viz/rasterizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ricsa::viz {

Mat4 Mat4::identity() {
  Mat4 r;
  for (int i = 0; i < 4; ++i) r.m[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 1.0f;
  return r;
}

Mat4 Mat4::translation(const Vec3& t) {
  Mat4 r = identity();
  r.m[3][0] = t.x;
  r.m[3][1] = t.y;
  r.m[3][2] = t.z;
  return r;
}

Mat4 Mat4::scale(float s) {
  Mat4 r = identity();
  r.m[0][0] = r.m[1][1] = r.m[2][2] = s;
  return r;
}

Mat4 Mat4::rotation_z(float a) {
  Mat4 r = identity();
  r.m[0][0] = std::cos(a);
  r.m[0][1] = std::sin(a);
  r.m[1][0] = -std::sin(a);
  r.m[1][1] = std::cos(a);
  return r;
}

Mat4 Mat4::rotation_y(float a) {
  Mat4 r = identity();
  r.m[0][0] = std::cos(a);
  r.m[0][2] = -std::sin(a);
  r.m[2][0] = std::sin(a);
  r.m[2][2] = std::cos(a);
  return r;
}

Mat4 Mat4::rotation_x(float a) {
  Mat4 r = identity();
  r.m[1][1] = std::cos(a);
  r.m[1][2] = std::sin(a);
  r.m[2][1] = -std::sin(a);
  r.m[2][2] = std::cos(a);
  return r;
}

Mat4 Mat4::look_at(const Vec3& eye, const Vec3& target, const Vec3& up) {
  const Vec3 f = (target - eye).normalized();
  const Vec3 s = f.cross(up).normalized();
  const Vec3 u = s.cross(f);
  Mat4 r = identity();
  r.m[0][0] = s.x;  r.m[1][0] = s.y;  r.m[2][0] = s.z;
  r.m[0][1] = u.x;  r.m[1][1] = u.y;  r.m[2][1] = u.z;
  r.m[0][2] = -f.x; r.m[1][2] = -f.y; r.m[2][2] = -f.z;
  r.m[3][0] = -s.dot(eye);
  r.m[3][1] = -u.dot(eye);
  r.m[3][2] = f.dot(eye);
  return r;
}

Mat4 Mat4::perspective(float fov_y, float aspect, float near_z, float far_z) {
  const float f = 1.0f / std::tan(fov_y / 2.0f);
  Mat4 r;
  r.m[0][0] = f / aspect;
  r.m[1][1] = f;
  r.m[2][2] = (far_z + near_z) / (near_z - far_z);
  r.m[2][3] = -1.0f;
  r.m[3][2] = 2.0f * far_z * near_z / (near_z - far_z);
  return r;
}

Mat4 Mat4::orthographic(float half_w, float half_h, float near_z, float far_z) {
  Mat4 r = identity();
  r.m[0][0] = 1.0f / half_w;
  r.m[1][1] = 1.0f / half_h;
  r.m[2][2] = -2.0f / (far_z - near_z);
  r.m[3][2] = -(far_z + near_z) / (far_z - near_z);
  return r;
}

Mat4 Mat4::operator*(const Mat4& o) const {
  Mat4 r;
  for (int c = 0; c < 4; ++c) {
    for (int row = 0; row < 4; ++row) {
      float sum = 0;
      for (int k = 0; k < 4; ++k) {
        sum += m[static_cast<std::size_t>(k)][static_cast<std::size_t>(row)] *
               o.m[static_cast<std::size_t>(c)][static_cast<std::size_t>(k)];
      }
      r.m[static_cast<std::size_t>(c)][static_cast<std::size_t>(row)] = sum;
    }
  }
  return r;
}

Vec3 Mat4::transform(const Vec3& p, float* out_w) const {
  const float x = m[0][0] * p.x + m[1][0] * p.y + m[2][0] * p.z + m[3][0];
  const float y = m[0][1] * p.x + m[1][1] * p.y + m[2][1] * p.z + m[3][1];
  const float z = m[0][2] * p.x + m[1][2] * p.y + m[2][2] * p.z + m[3][2];
  const float w = m[0][3] * p.x + m[1][3] * p.y + m[2][3] * p.z + m[3][3];
  if (out_w) *out_w = w;
  const float inv = (w != 0.0f) ? 1.0f / w : 1.0f;
  return Vec3{x * inv, y * inv, z * inv};
}

Vec3 Mat4::rotate(const Vec3& d) const {
  return Vec3{m[0][0] * d.x + m[1][0] * d.y + m[2][0] * d.z,
              m[0][1] * d.x + m[1][1] * d.y + m[2][1] * d.z,
              m[0][2] * d.x + m[1][2] * d.y + m[2][2] * d.z};
}

RenderResult render_mesh(const TriangleMesh& mesh, const RenderOptions& opt) {
  RenderResult result;
  result.image = Image(opt.width, opt.height, opt.background);
  if (mesh.triangle_count() == 0) return result;

  const auto [lo, hi] = mesh.bounds();
  const Vec3 center = (lo + hi) * 0.5f;
  const float radius = std::max(1e-3f, ((hi - lo) * 0.5f).norm());

  const Vec3 eye =
      center + Vec3{std::cos(opt.elevation) * std::cos(opt.azimuth),
                    std::cos(opt.elevation) * std::sin(opt.azimuth),
                    std::sin(opt.elevation)} *
                   (radius * opt.distance);
  const Mat4 view = Mat4::look_at(eye, center, Vec3{0, 0, 1});
  const Mat4 proj = Mat4::perspective(
      opt.fov_y, static_cast<float>(opt.width) / static_cast<float>(opt.height),
      0.1f * radius, 10.0f * radius);
  const Mat4 mvp = proj * view;
  const Vec3 light = opt.light_dir.normalized();

  std::vector<float> zbuf(static_cast<std::size_t>(opt.width) *
                              static_cast<std::size_t>(opt.height),
                          std::numeric_limits<float>::max());

  // Pre-shade vertices (Gouraud): Lambert with two-sided normals + ambient.
  const std::size_t nv = mesh.vertex_count();
  std::vector<Vec3> screen(nv);
  std::vector<float> shade(nv);
  std::vector<bool> valid(nv);
  for (std::size_t i = 0; i < nv; ++i) {
    float w = 1;
    const Vec3 ndc = mvp.transform(mesh.positions()[i], &w);
    valid[i] = w > 0;  // behind-camera vertices are culled with the triangle
    screen[i] = Vec3{(ndc.x * 0.5f + 0.5f) * static_cast<float>(opt.width),
                     (0.5f - ndc.y * 0.5f) * static_cast<float>(opt.height),
                     ndc.z};
    const float lambert = std::abs(mesh.normals()[i].dot(light));
    shade[i] = 0.25f + 0.75f * std::clamp(lambert, 0.0f, 1.0f);
  }

  std::size_t drawn = 0, shaded = 0;
  const auto& idx = mesh.indices();
  for (std::size_t t = 0; t + 2 < idx.size(); t += 3) {
    const std::uint32_t ia = idx[t], ib = idx[t + 1], ic = idx[t + 2];
    if (!valid[ia] || !valid[ib] || !valid[ic]) continue;
    const Vec3& a = screen[ia];
    const Vec3& b = screen[ib];
    const Vec3& c = screen[ic];

    const float min_x = std::min({a.x, b.x, c.x});
    const float max_x = std::max({a.x, b.x, c.x});
    const float min_y = std::min({a.y, b.y, c.y});
    const float max_y = std::max({a.y, b.y, c.y});
    if (max_x < 0 || max_y < 0 || min_x >= static_cast<float>(opt.width) ||
        min_y >= static_cast<float>(opt.height)) {
      continue;
    }
    const float area =
        (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
    if (std::abs(area) < 1e-9f) continue;
    ++drawn;

    const int x0 = std::max(0, static_cast<int>(std::floor(min_x)));
    const int x1 = std::min(opt.width - 1, static_cast<int>(std::ceil(max_x)));
    const int y0 = std::max(0, static_cast<int>(std::floor(min_y)));
    const int y1 = std::min(opt.height - 1, static_cast<int>(std::ceil(max_y)));
    const float inv_area = 1.0f / area;

    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        const float px = static_cast<float>(x) + 0.5f;
        const float py = static_cast<float>(y) + 0.5f;
        const float w0 = ((b.x - px) * (c.y - py) - (b.y - py) * (c.x - px)) * inv_area;
        const float w1 = ((c.x - px) * (a.y - py) - (c.y - py) * (a.x - px)) * inv_area;
        const float w2 = 1.0f - w0 - w1;
        if (w0 < 0 || w1 < 0 || w2 < 0) continue;
        const float z = w0 * a.z + w1 * b.z + w2 * c.z;
        float& zref = zbuf[static_cast<std::size_t>(y) *
                               static_cast<std::size_t>(opt.width) +
                           static_cast<std::size_t>(x)];
        if (z >= zref) continue;
        zref = z;
        const float s = w0 * shade[ia] + w1 * shade[ib] + w2 * shade[ic];
        const auto to8 = [s](std::uint8_t base) {
          return static_cast<std::uint8_t>(
              std::clamp(s * static_cast<float>(base), 0.0f, 255.0f));
        };
        result.image.at(x, y) = Rgba{to8(opt.base_color.r),
                                     to8(opt.base_color.g),
                                     to8(opt.base_color.b), 255};
        ++shaded;
      }
    }
  }
  result.triangles_drawn = drawn;
  result.pixels_shaded = shaded;
  return result;
}

}  // namespace ricsa::viz
