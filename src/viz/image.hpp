// RGBA8 image with PPM/PNG writers and an RLE codec.
//
// The Ajax front end "save[s] the received images as fixed-size files that
// are to be delivered to the browser through the object exchange mechanism
// of XMLHttpRequest" (Section 2). PNG encoding here is fully self-contained
// (real DEFLATE via viz/deflate.hpp, no external zlib dependency); RLE
// gives the cheap framebuffer compression used when shipping images down
// the pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "viz/deflate.hpp"

namespace ricsa::viz {

struct Rgba {
  std::uint8_t r = 0, g = 0, b = 0, a = 255;
  bool operator==(const Rgba&) const = default;
};

class Image {
 public:
  Image() = default;
  Image(int width, int height, Rgba fill = {0, 0, 0, 255});

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  std::size_t bytes() const noexcept { return pixels_.size() * 4; }

  Rgba& at(int x, int y);
  const Rgba& at(int x, int y) const;

  const std::vector<Rgba>& pixels() const noexcept { return pixels_; }

  /// Binary PPM (P6, alpha dropped).
  void write_ppm(const std::string& path) const;

  /// Complete PNG byte stream: per-row scanline filter selection
  /// (None/Sub/Up/Paeth by minimum sum of absolute differences) over a
  /// real DEFLATE stream (LZ77 + fixed Huffman, stored fallback).
  std::vector<std::uint8_t> encode_png() const;
  void write_png(const std::string& path) const;

  /// Decode an RGBA8 non-interlaced PNG: full inflate (stored, fixed- and
  /// dynamic-Huffman blocks) and all five scanline filters, so any
  /// conforming RGBA8 stream round-trips — encoder outputs in particular.
  /// Throws std::runtime_error on malformed input or unsupported formats
  /// (non-RGBA8 color types, interlacing).
  static Image decode_png(const std::vector<std::uint8_t>& bytes);

 private:
  int width_ = 0, height_ = 0;
  std::vector<Rgba> pixels_;
};

/// Box-filtered reduction by an integer factor (>= 1): each output pixel
/// averages the factor x factor source block, edge blocks clamped. Used by
/// the web layer to build cheaper image quality tiers for slow consumers.
Image downsample(const Image& image, int factor);

/// Run-length encode RGBA pixels: stream of (count u8, rgba) runs.
std::vector<std::uint8_t> rle_encode(const Image& image);
/// Decode back; throws std::runtime_error on malformed input or mismatched
/// pixel count.
Image rle_decode(const std::vector<std::uint8_t>& data, int width, int height);

/// CRC-32 (IEEE) — exposed for tests. (Adler-32 lives in viz/deflate.hpp.)
std::uint32_t crc32(const std::uint8_t* data, std::size_t n,
                    std::uint32_t seed = 0);

}  // namespace ricsa::viz
