#include "viz/filters.hpp"

#include <algorithm>
#include <stdexcept>

namespace ricsa::viz {

using data::ScalarVolume;

ScalarVolume downsample(const ScalarVolume& v, int factor) {
  if (factor <= 0) throw std::invalid_argument("downsample: factor must be > 0");
  // Ceiling division: odd extents keep their last partial slab (the inner
  // loops already clamp and average over the pixels that exist) instead of
  // silently dropping the trailing row/column/slice.
  const int nx = (v.nx() + factor - 1) / factor;
  const int ny = (v.ny() + factor - 1) / factor;
  const int nz = (v.nz() + factor - 1) / factor;
  ScalarVolume out(nx, ny, nz, v.variable());
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        double sum = 0;
        int count = 0;
        for (int dz = 0; dz < factor; ++dz) {
          for (int dy = 0; dy < factor; ++dy) {
            for (int dx = 0; dx < factor; ++dx) {
              const int sx = x * factor + dx;
              const int sy = y * factor + dy;
              const int sz = z * factor + dz;
              if (sx < v.nx() && sy < v.ny() && sz < v.nz()) {
                sum += v.at(sx, sy, sz);
                ++count;
              }
            }
          }
        }
        out.at(x, y, z) = static_cast<float>(sum / std::max(count, 1));
      }
    }
  }
  return out;
}

ScalarVolume crop(const ScalarVolume& v, int x0, int y0, int z0, int x1,
                  int y1, int z1) {
  if (x0 < 0 || y0 < 0 || z0 < 0 || x1 > v.nx() || y1 > v.ny() ||
      z1 > v.nz() || x0 >= x1 || y0 >= y1 || z0 >= z1) {
    throw std::invalid_argument("crop: bad bounds");
  }
  ScalarVolume out(x1 - x0, y1 - y0, z1 - z0, v.variable());
  for (int z = z0; z < z1; ++z) {
    for (int y = y0; y < y1; ++y) {
      for (int x = x0; x < x1; ++x) {
        out.at(x - x0, y - y0, z - z0) = v.at(x, y, z);
      }
    }
  }
  return out;
}

ScalarVolume normalize(const ScalarVolume& v) {
  const auto [lo, hi] = v.min_max();
  ScalarVolume out(v.nx(), v.ny(), v.nz(), v.variable());
  const float span = hi - lo;
  if (span <= 0) return out;  // constant -> all zeros
  const float inv = 1.0f / span;
  for (std::size_t i = 0; i < v.raw().size(); ++i) {
    out.raw()[i] = (v.raw()[i] - lo) * inv;
  }
  return out;
}

ScalarVolume smooth(const ScalarVolume& v) {
  ScalarVolume tmp = v;
  ScalarVolume out = v;
  // X pass.
  for (int z = 0; z < v.nz(); ++z) {
    for (int y = 0; y < v.ny(); ++y) {
      for (int x = 0; x < v.nx(); ++x) {
        const float l = v.at(std::max(0, x - 1), y, z);
        const float c = v.at(x, y, z);
        const float r = v.at(std::min(v.nx() - 1, x + 1), y, z);
        tmp.at(x, y, z) = 0.25f * l + 0.5f * c + 0.25f * r;
      }
    }
  }
  // Y pass.
  ScalarVolume tmp2 = tmp;
  for (int z = 0; z < v.nz(); ++z) {
    for (int y = 0; y < v.ny(); ++y) {
      for (int x = 0; x < v.nx(); ++x) {
        const float l = tmp.at(x, std::max(0, y - 1), z);
        const float c = tmp.at(x, y, z);
        const float r = tmp.at(x, std::min(v.ny() - 1, y + 1), z);
        tmp2.at(x, y, z) = 0.25f * l + 0.5f * c + 0.25f * r;
      }
    }
  }
  // Z pass.
  for (int z = 0; z < v.nz(); ++z) {
    for (int y = 0; y < v.ny(); ++y) {
      for (int x = 0; x < v.nx(); ++x) {
        const float l = tmp2.at(x, y, std::max(0, z - 1));
        const float c = tmp2.at(x, y, z);
        const float r = tmp2.at(x, y, std::min(v.nz() - 1, z + 1));
        out.at(x, y, z) = 0.25f * l + 0.5f * c + 0.25f * r;
      }
    }
  }
  return out;
}

ScalarVolume band_pass(const ScalarVolume& v, float lo, float hi) {
  ScalarVolume out = v;
  for (float& value : out.raw()) {
    if (value < lo || value > hi) value = 0.0f;
  }
  return out;
}

}  // namespace ricsa::viz
