// Orthographic volume ray casting (Section 4.4.2).
//
// Cost model inputs are reported alongside the image: the number of rays
// actually intersecting the volume and the number of samples taken, matching
// Eq. 7's n_rays * n_samples accounting. Early ray termination is optional
// and off by default, as the paper's model deliberately excludes it ("we
// simplify our estimation by not considering early ray termination").
#pragma once

#include <vector>

#include "data/volume.hpp"
#include "util/thread_pool.hpp"
#include "viz/image.hpp"

namespace ricsa::viz {

/// Piecewise-linear RGBA transfer function over scalar values.
class TransferFunction {
 public:
  struct Stop {
    float value;
    float r, g, b, a;
  };

  /// Stops must be sorted by value; at least one required.
  explicit TransferFunction(std::vector<Stop> stops);

  /// Interpolated RGBA at a scalar value (clamped to the stop range).
  Stop sample(float value) const;

  /// Grey-blue preset covering [lo, hi] with soft opacity ramp.
  static TransferFunction preset(float lo, float hi);

 private:
  std::vector<Stop> stops_;
};

struct RayCastOptions {
  int width = 256;
  int height = 256;
  /// Viewing direction as azimuth/elevation (radians) around the volume.
  float azimuth = 0.6f;
  float elevation = 0.4f;
  /// Sampling step along the ray, voxel units.
  float step = 1.0f;
  bool early_termination = false;
  float opacity_cutoff = 0.98f;
  Rgba background{12, 12, 24, 255};
  util::ThreadPool* pool = nullptr;
};

struct RayCastResult {
  Image image;
  /// Rays whose footprint intersected the volume AABB.
  std::size_t rays = 0;
  /// Total scalar samples taken (Eq. 7's n_rays * n_samples).
  std::size_t samples = 0;
};

RayCastResult raycast(const data::ScalarVolume& volume,
                      const TransferFunction& tf,
                      const RayCastOptions& options = {});

/// Analytic ray/sample counts for a volume of the given dimensions under
/// `options`, without touching any voxel data: the n_rays and n_samples
/// inputs of the Eq. 7 cost model (exact for early_termination == false).
struct RayGeometry {
  std::size_t rays = 0;
  std::size_t samples = 0;
};
RayGeometry estimate_raycast_counts(int nx, int ny, int nz,
                                    const RayCastOptions& options);

}  // namespace ricsa::viz
