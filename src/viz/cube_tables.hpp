// Per-cube isosurface triangulation tables + the 15-class case map of
// classic marching cubes.
//
// Rather than transcribing the historical 256x16 triangle table (a
// transcription-error hazard with no behavioural payoff), the tables are
// *generated* at first use from the Kuhn 6-tetrahedra decomposition of the
// cube around the 0-7 body diagonal. That decomposition is
// translation-consistent: the face diagonals it induces on opposite cube
// faces coincide between neighbouring cubes, so the extracted surface is
// watertight across cube boundaries (verified by the mesh closure tests).
//
// Independently, the classic Lorensen-Cline equivalence classes — 256 corner
// configurations collapsing to 15 cases under cube symmetry + value
// complement (Section 4.4.1 builds its cost model on exactly these 15
// cases) — are computed from the rotation group and exposed as `mc_class`.
//
// Cube corner numbering: bit 0 = +x, bit 1 = +y, bit 2 = +z, i.e. corner i
// sits at ((i&1), (i>>1)&1, (i>>2)&1).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace ricsa::viz {

struct CubeTables {
  /// The 19 interpolation segments: 12 cube edges, 6 face diagonals, and the
  /// 0-7 body diagonal, as (corner, corner) pairs.
  std::array<std::pair<int, int>, 19> segments;

  /// For each of the 256 corner sign configurations (bit i set = corner i is
  /// inside, i.e. value > isovalue): triangles as triples of segment indices,
  /// wound so normals point from inside (high value) to outside (low value).
  std::array<std::vector<std::array<int, 3>>, 256> triangles;

  /// Marching-cubes equivalence class of each configuration (0 = empty/full),
  /// computed under the 24 cube rotations + complementation.
  std::array<int, 256> mc_class;
  int class_count = 0;

  /// Representative configuration of each class.
  std::vector<int> class_representative;
};

/// Lazily-built process-wide tables.
const CubeTables& cube_tables();

}  // namespace ricsa::viz
