// Fixed-grid tile decomposition of a framebuffer for dirty-rect deltas.
//
// The paper's network optimization ships only what the link needs; the tile
// grid is the image-side analogue of its partial state updates: a frame is
// split into fixed-size tiles (edge tiles clamped to partial width/height),
// two framebuffers are diffed tile-by-tile, and only the dirty tiles are
// re-encoded and shipped. The web hub uses this to serve VNC-style
// incremental image updates to long-poll clients (see web/hub.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "viz/image.hpp"

namespace ricsa::viz {

namespace detail {
/// Byte-wise equality of two `n`-byte row segments, vectorized (SSE2 when
/// the target has it, word-wise otherwise). Exactly equivalent to
/// memcmp(a, b, n) == 0 — exposed for the equivalence tests.
bool rows_equal(const std::uint8_t* a, const std::uint8_t* b, std::size_t n);
}  // namespace detail

/// One tile's pixel rectangle inside the framebuffer.
struct TileRect {
  int x = 0, y = 0, w = 0, h = 0;
  bool operator==(const TileRect&) const = default;
};

/// Bitset over a grid's tile indices (row-major): dirty[i] != 0 means tile i
/// differs between the two diffed framebuffers.
using TileSet = std::vector<std::uint8_t>;

class TileGrid {
 public:
  /// Grid over a width x height framebuffer with square tiles of
  /// `tile_size` pixels; the last column/row of tiles is clamped to the
  /// image edge (partial tiles), so every pixel belongs to exactly one
  /// tile. Throws std::invalid_argument on non-positive dimensions.
  TileGrid(int width, int height, int tile_size = 64);

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  int tile_size() const noexcept { return tile_; }
  int cols() const noexcept { return cols_; }
  int rows() const noexcept { return rows_; }
  std::size_t count() const noexcept {
    return static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_);
  }

  /// Pixel rectangle of tile `index` (row-major), clamped at the edges.
  TileRect rect(std::size_t index) const;

  /// Tile-wise diff: dirty[i] set iff any pixel of tile i differs between
  /// `before` and `after`. Both images must match the grid's dimensions
  /// (std::invalid_argument otherwise).
  TileSet diff(const Image& before, const Image& after) const;

  /// Number of set entries in a dirty set. Entries beyond count() are
  /// ignored — the same bounds clamp dirty_fraction applies, so an
  /// oversized TileSet cannot overcount.
  std::size_t dirty_count(const TileSet& dirty) const;
  /// Fraction of the frame's *pixels* covered by the dirty tiles — the
  /// full-frame-fallback signal (edge tiles weigh less than interior ones).
  double dirty_fraction(const TileSet& dirty) const;

  /// Coalesce adjacent dirty tiles into maximal rectangles: greedy
  /// row-major sweep extending each unclaimed dirty tile rightward, then
  /// downward while every tile in the span is dirty and unclaimed. The
  /// result is a set of disjoint pixel rectangles that together cover
  /// exactly the dirty tiles (never a clean tile — callers rely on each
  /// rectangle carrying only changed content). Fewer, larger rectangles
  /// amortize per-tile PNG/base64/JSON overhead when encoding deltas.
  std::vector<TileRect> coalesce(const TileSet& dirty) const;

  /// Copy tile `r` out of `src` as a standalone image. `src` must contain
  /// the rectangle.
  static Image extract(const Image& src, const TileRect& r);
  /// Paste `tile` into `dst` with its top-left corner at (x, y) — the
  /// client-side reassembly step. The tile must fit inside `dst`.
  static void composite(Image& dst, const Image& tile, int x, int y);

 private:
  int width_ = 0, height_ = 0, tile_ = 0;
  int cols_ = 0, rows_ = 0;
};

}  // namespace ricsa::viz
