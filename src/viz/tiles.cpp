#include "viz/tiles.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace ricsa::viz {

TileGrid::TileGrid(int width, int height, int tile_size)
    : width_(width), height_(height), tile_(tile_size) {
  if (width <= 0 || height <= 0 || tile_size <= 0) {
    throw std::invalid_argument("TileGrid: dimensions must be positive");
  }
  // Ceiling division: a partial edge tile still owns its pixels.
  cols_ = (width + tile_size - 1) / tile_size;
  rows_ = (height + tile_size - 1) / tile_size;
}

TileRect TileGrid::rect(std::size_t index) const {
  if (index >= count()) throw std::out_of_range("TileGrid::rect");
  const int col = static_cast<int>(index) % cols_;
  const int row = static_cast<int>(index) / cols_;
  TileRect r;
  r.x = col * tile_;
  r.y = row * tile_;
  r.w = std::min(tile_, width_ - r.x);
  r.h = std::min(tile_, height_ - r.y);
  return r;
}

TileSet TileGrid::diff(const Image& before, const Image& after) const {
  if (before.width() != width_ || before.height() != height_ ||
      after.width() != width_ || after.height() != height_) {
    throw std::invalid_argument("TileGrid::diff: image/grid dimension mismatch");
  }
  TileSet dirty(count(), 0);
  const Rgba* a = before.pixels().data();
  const Rgba* b = after.pixels().data();
  for (std::size_t i = 0; i < count(); ++i) {
    const TileRect r = rect(i);
    // Row-segment memcmp: each tile row is contiguous in the framebuffer.
    for (int y = r.y; y < r.y + r.h; ++y) {
      const std::size_t off =
          static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
          static_cast<std::size_t>(r.x);
      if (std::memcmp(a + off, b + off,
                      static_cast<std::size_t>(r.w) * sizeof(Rgba)) != 0) {
        dirty[i] = 1;
        break;
      }
    }
  }
  return dirty;
}

std::size_t TileGrid::dirty_count(const TileSet& dirty) {
  std::size_t n = 0;
  for (const std::uint8_t d : dirty) n += d != 0 ? 1 : 0;
  return n;
}

double TileGrid::dirty_fraction(const TileSet& dirty) const {
  std::size_t pixels = 0;
  for (std::size_t i = 0; i < dirty.size() && i < count(); ++i) {
    if (dirty[i] == 0) continue;
    const TileRect r = rect(i);
    pixels += static_cast<std::size_t>(r.w) * static_cast<std::size_t>(r.h);
  }
  const std::size_t total =
      static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  return total == 0 ? 0.0 : static_cast<double>(pixels) / static_cast<double>(total);
}

Image TileGrid::extract(const Image& src, const TileRect& r) {
  if (r.w <= 0 || r.h <= 0 || r.x < 0 || r.y < 0 || r.x + r.w > src.width() ||
      r.y + r.h > src.height()) {
    throw std::invalid_argument("TileGrid::extract: rect outside image");
  }
  Image out(r.w, r.h);
  for (int y = 0; y < r.h; ++y) {
    for (int x = 0; x < r.w; ++x) {
      out.at(x, y) = src.at(r.x + x, r.y + y);
    }
  }
  return out;
}

void TileGrid::composite(Image& dst, const Image& tile, int x, int y) {
  if (x < 0 || y < 0 || x + tile.width() > dst.width() ||
      y + tile.height() > dst.height()) {
    throw std::invalid_argument("TileGrid::composite: tile outside image");
  }
  for (int ty = 0; ty < tile.height(); ++ty) {
    for (int tx = 0; tx < tile.width(); ++tx) {
      dst.at(x + tx, y + ty) = tile.at(tx, ty);
    }
  }
}

}  // namespace ricsa::viz
