#include "viz/tiles.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace ricsa::viz {

namespace detail {

// The diff's hot loop is pure comparison of contiguous row segments; on a
// typical frame most tiles are clean, so the common case scans every byte
// of the tile. Comparing 16 bytes per step (4 RGBA pixels) instead of
// deferring to memcmp's generic prologue roughly quadruples throughput on
// the clean-tile path. The result is bit-identical to memcmp == 0.
bool rows_equal(const std::uint8_t* a, const std::uint8_t* b, std::size_t n) {
  std::size_t i = 0;
#if defined(__SSE2__)
  for (; i + 16 <= n; i += 16) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    if (_mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)) != 0xFFFF) return false;
  }
#else
  // Word-wise fallback: unaligned loads via memcpy (compiles to plain
  // loads on every target this builds for).
  for (; i + 8 <= n; i += 8) {
    std::uint64_t wa;
    std::uint64_t wb;
    std::memcpy(&wa, a + i, 8);
    std::memcpy(&wb, b + i, 8);
    if (wa != wb) return false;
  }
#endif
  for (; i < n; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace detail

TileGrid::TileGrid(int width, int height, int tile_size)
    : width_(width), height_(height), tile_(tile_size) {
  if (width <= 0 || height <= 0 || tile_size <= 0) {
    throw std::invalid_argument("TileGrid: dimensions must be positive");
  }
  // Ceiling division: a partial edge tile still owns its pixels.
  cols_ = (width + tile_size - 1) / tile_size;
  rows_ = (height + tile_size - 1) / tile_size;
}

TileRect TileGrid::rect(std::size_t index) const {
  if (index >= count()) throw std::out_of_range("TileGrid::rect");
  const int col = static_cast<int>(index) % cols_;
  const int row = static_cast<int>(index) / cols_;
  TileRect r;
  r.x = col * tile_;
  r.y = row * tile_;
  r.w = std::min(tile_, width_ - r.x);
  r.h = std::min(tile_, height_ - r.y);
  return r;
}

TileSet TileGrid::diff(const Image& before, const Image& after) const {
  if (before.width() != width_ || before.height() != height_ ||
      after.width() != width_ || after.height() != height_) {
    throw std::invalid_argument("TileGrid::diff: image/grid dimension mismatch");
  }
  TileSet dirty(count(), 0);
  const Rgba* a = before.pixels().data();
  const Rgba* b = after.pixels().data();
  for (std::size_t i = 0; i < count(); ++i) {
    const TileRect r = rect(i);
    // Row-segment compare: each tile row is contiguous in the framebuffer.
    for (int y = r.y; y < r.y + r.h; ++y) {
      const std::size_t off =
          static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
          static_cast<std::size_t>(r.x);
      if (!detail::rows_equal(
              reinterpret_cast<const std::uint8_t*>(a + off),
              reinterpret_cast<const std::uint8_t*>(b + off),
              static_cast<std::size_t>(r.w) * sizeof(Rgba))) {
        dirty[i] = 1;
        break;
      }
    }
  }
  return dirty;
}

std::size_t TileGrid::dirty_count(const TileSet& dirty) const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < dirty.size() && i < count(); ++i) {
    n += dirty[i] != 0 ? 1 : 0;
  }
  return n;
}

double TileGrid::dirty_fraction(const TileSet& dirty) const {
  std::size_t pixels = 0;
  for (std::size_t i = 0; i < dirty.size() && i < count(); ++i) {
    if (dirty[i] == 0) continue;
    const TileRect r = rect(i);
    pixels += static_cast<std::size_t>(r.w) * static_cast<std::size_t>(r.h);
  }
  const std::size_t total =
      static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  return total == 0 ? 0.0 : static_cast<double>(pixels) / static_cast<double>(total);
}

std::vector<TileRect> TileGrid::coalesce(const TileSet& dirty) const {
  std::vector<TileRect> rects;
  std::vector<std::uint8_t> claimed(count(), 0);
  const auto is_dirty = [&](int row, int col) {
    const std::size_t i = static_cast<std::size_t>(row) *
                              static_cast<std::size_t>(cols_) +
                          static_cast<std::size_t>(col);
    return i < dirty.size() && i < count() && dirty[i] != 0 && claimed[i] == 0;
  };
  for (int row = 0; row < rows_; ++row) {
    for (int col = 0; col < cols_; ++col) {
      if (!is_dirty(row, col)) continue;
      // Extend right across the dirty run...
      int span = 1;
      while (col + span < cols_ && is_dirty(row, col + span)) ++span;
      // ...then down while the whole span stays dirty and unclaimed.
      int depth = 1;
      while (row + depth < rows_) {
        bool whole = true;
        for (int c = col; c < col + span; ++c) {
          if (!is_dirty(row + depth, c)) {
            whole = false;
            break;
          }
        }
        if (!whole) break;
        ++depth;
      }
      for (int r = row; r < row + depth; ++r) {
        for (int c = col; c < col + span; ++c) {
          claimed[static_cast<std::size_t>(r) *
                      static_cast<std::size_t>(cols_) +
                  static_cast<std::size_t>(c)] = 1;
        }
      }
      TileRect out;
      out.x = col * tile_;
      out.y = row * tile_;
      out.w = std::min((col + span) * tile_, width_) - out.x;
      out.h = std::min((row + depth) * tile_, height_) - out.y;
      rects.push_back(out);
    }
  }
  return rects;
}

Image TileGrid::extract(const Image& src, const TileRect& r) {
  if (r.w <= 0 || r.h <= 0 || r.x < 0 || r.y < 0 || r.x + r.w > src.width() ||
      r.y + r.h > src.height()) {
    throw std::invalid_argument("TileGrid::extract: rect outside image");
  }
  Image out(r.w, r.h);
  // Row-wise copy: each rect row is contiguous in both framebuffers. This
  // runs per dirty rect per published frame, so no per-pixel bounds checks.
  const Rgba* src_px = src.pixels().data();
  const std::size_t row_bytes = static_cast<std::size_t>(r.w) * sizeof(Rgba);
  for (int y = 0; y < r.h; ++y) {
    const std::size_t off =
        static_cast<std::size_t>(r.y + y) * static_cast<std::size_t>(src.width()) +
        static_cast<std::size_t>(r.x);
    std::memcpy(&out.at(0, y), src_px + off, row_bytes);
  }
  return out;
}

void TileGrid::composite(Image& dst, const Image& tile, int x, int y) {
  if (x < 0 || y < 0 || x + tile.width() > dst.width() ||
      y + tile.height() > dst.height()) {
    throw std::invalid_argument("TileGrid::composite: tile outside image");
  }
  const Rgba* tile_px = tile.pixels().data();
  const std::size_t row_bytes =
      static_cast<std::size_t>(tile.width()) * sizeof(Rgba);
  for (int ty = 0; ty < tile.height(); ++ty) {
    std::memcpy(&dst.at(x, y + ty),
                tile_px + static_cast<std::size_t>(ty) *
                              static_cast<std::size_t>(tile.width()),
                row_bytes);
  }
}

}  // namespace ricsa::viz
