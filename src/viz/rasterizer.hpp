// Software triangle rasterizer — the pipeline's rendering module ("converts
// the transformed geometric data to pixel-based images", Section 4.1). The
// paper's GaTech/OSU hosts lacked graphics cards, which is exactly the
// situation a software rasterizer models; nodes with `has_gpu` simply get a
// larger triangles/second constant in the cost model.
#pragma once

#include <array>

#include "util/thread_pool.hpp"
#include "viz/image.hpp"
#include "viz/mesh.hpp"

namespace ricsa::viz {

/// Column-major 4x4 matrix (m[col][row]).
struct Mat4 {
  std::array<std::array<float, 4>, 4> m{};

  static Mat4 identity();
  static Mat4 translation(const Vec3& t);
  static Mat4 scale(float s);
  static Mat4 rotation_z(float radians);
  static Mat4 rotation_y(float radians);
  static Mat4 rotation_x(float radians);
  static Mat4 look_at(const Vec3& eye, const Vec3& target, const Vec3& up);
  static Mat4 perspective(float fov_y_radians, float aspect, float near_z,
                          float far_z);
  static Mat4 orthographic(float half_width, float half_height, float near_z,
                           float far_z);

  Mat4 operator*(const Mat4& o) const;
  /// Transform a point (w-divide applied); returns w in out_w if non-null.
  Vec3 transform(const Vec3& p, float* out_w = nullptr) const;
  /// Transform a direction (no translation).
  Vec3 rotate(const Vec3& d) const;
};

struct RenderOptions {
  int width = 256;
  int height = 256;
  /// Camera orbit around the mesh bounds: azimuth/elevation (radians) and
  /// distance as a multiple of the bounding radius.
  float azimuth = 0.7f;
  float elevation = 0.35f;
  float distance = 2.6f;
  float fov_y = 0.9f;
  Vec3 light_dir{0.4f, 0.3f, 0.85f};
  Rgba base_color{200, 160, 90, 255};
  Rgba background{12, 12, 24, 255};
  util::ThreadPool* pool = nullptr;
};

struct RenderResult {
  Image image;
  std::size_t triangles_drawn = 0;
  std::size_t pixels_shaded = 0;
};

/// Render the mesh with z-buffering and Lambert shading.
RenderResult render_mesh(const TriangleMesh& mesh,
                         const RenderOptions& options = {});

}  // namespace ricsa::viz
