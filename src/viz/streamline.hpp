// Streamline generation by RK4 advection through a vector field
// (Section 4.4.3: cost = n_seeds * n_steps * T_advection).
#pragma once

#include <vector>

#include "data/volume.hpp"

namespace ricsa::viz {

struct StreamlineOptions {
  /// Integration step in voxel units.
  float step = 0.5f;
  /// Maximum advection steps per seed.
  int max_steps = 1000;
  /// Stop when the local velocity magnitude falls below this.
  float min_speed = 1e-6f;
};

struct StreamlineSet {
  /// One polyline per seed (first point = the seed itself).
  std::vector<std::vector<data::Vec3>> lines;
  /// Total advection (RK4) evaluations actually performed — the n_steps
  /// count of Eq. 8.
  std::size_t advection_steps = 0;

  std::size_t total_points() const {
    std::size_t n = 0;
    for (const auto& line : lines) n += line.size();
    return n;
  }
  /// Wire size when shipped as geometry (3 floats per point).
  std::size_t bytes() const { return total_points() * 3 * sizeof(float); }
};

/// Trace one streamline from each seed (seeds in voxel coordinates).
StreamlineSet trace_streamlines(const data::VectorVolume& field,
                                const std::vector<data::Vec3>& seeds,
                                const StreamlineOptions& options = {});

/// Convenience: regular grid of n^3 seeds across the field interior.
std::vector<data::Vec3> grid_seeds(const data::VectorVolume& field, int n);

}  // namespace ricsa::viz
