#include "cost/network_profile.hpp"

#include <stdexcept>

namespace ricsa::cost {

const LinkEstimate& NetworkProfile::link(int from, int to) const {
  const auto it = links_.find({from, to});
  if (it == links_.end()) {
    throw std::out_of_range("NetworkProfile::link: no such link");
  }
  return it->second;
}

double NetworkProfile::transfer_seconds(int from, int to,
                                        std::size_t bytes) const {
  const LinkEstimate& e = link(from, to);
  if (e.epb_Bps <= 0) return 1e18;
  return static_cast<double>(bytes) / e.epb_Bps + e.min_delay_s;
}

void NetworkProfile::add_node(std::string node_name, double node_power,
                              bool node_gpu,
                              double node_activation_overhead_s) {
  names_.push_back(std::move(node_name));
  power_.push_back(node_power);
  gpu_.push_back(node_gpu);
  activation_.push_back(node_activation_overhead_s);
}

void NetworkProfile::set_link(int from, int to, LinkEstimate estimate) {
  links_[{from, to}] = estimate;
}

NetworkProfile NetworkProfile::from_network(const netsim::Network& net,
                                            double efficiency) {
  NetworkProfile profile;
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const auto& info = net.node(static_cast<netsim::NodeId>(i));
    profile.add_node(info.name, info.power, info.has_gpu,
                     info.distribution_overhead_s);
  }
  for (const auto& [from, to] : net.edges()) {
    const auto& cfg = net.link(from, to).config();
    profile.set_link(from, to,
                     {cfg.bandwidth_Bps * efficiency, cfg.prop_delay_s});
  }
  return profile;
}

NetworkProfile NetworkProfile::measure(netsim::Network& net,
                                       const transport::EpbOptions& options) {
  NetworkProfile profile;
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const auto& info = net.node(static_cast<netsim::NodeId>(i));
    profile.add_node(info.name, info.power, info.has_gpu,
                     info.distribution_overhead_s);
  }
  // Probe links one at a time so measurements don't contend with each other
  // (the paper's measurement daemons run periodically in quiet periods).
  for (const auto& [from, to] : net.edges()) {
    transport::EpbEstimator estimator(net, from, to, options);
    bool done = false;
    transport::EpbResult result;
    estimator.run([&](const transport::EpbResult& r) {
      result = r;
      done = true;
    });
    net.simulator().run();
    if (!done) {
      throw std::runtime_error("NetworkProfile::measure: probe did not finish");
    }
    profile.set_link(from, to, {result.epb_Bps, result.min_delay_s});
  }
  return profile;
}

}  // namespace ricsa::cost
