// Network resource profile consumed by the DP mapper: node powers and GPU
// capability, plus per-link effective path bandwidth and minimum delay.
//
// Two ways to obtain one:
//  * from_network() — read the simulator's ground-truth parameters (what an
//    omniscient CM would know), derated by a transport-efficiency factor;
//  * measure() — run the Section 4.3 active-measurement daemons (EPB probe
//    trains + linear regression) over every overlay link inside the
//    simulation, exactly as the paper's deployment would.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "netsim/network.hpp"
#include "transport/epb.hpp"

namespace ricsa::cost {

struct LinkEstimate {
  double epb_Bps = 0.0;
  double min_delay_s = 0.0;
};

class NetworkProfile {
 public:
  int node_count() const { return static_cast<int>(power_.size()); }
  double power(int node) const { return power_.at(static_cast<std::size_t>(node)); }
  bool has_gpu(int node) const { return gpu_.at(static_cast<std::size_t>(node)); }
  /// Fixed cost of opening a new pipeline group on this node (cluster data
  /// distribution overhead, Section 5.3.1); 0 for plain PCs.
  double activation_overhead(int node) const {
    return activation_.at(static_cast<std::size_t>(node));
  }
  const std::string& name(int node) const { return names_.at(static_cast<std::size_t>(node)); }

  bool has_link(int from, int to) const { return links_.count({from, to}) > 0; }
  const LinkEstimate& link(int from, int to) const;
  const std::map<std::pair<int, int>, LinkEstimate>& links() const {
    return links_;
  }

  /// Predicted transfer time of `bytes` over the overlay link (Eq. 3 model).
  double transfer_seconds(int from, int to, std::size_t bytes) const;

  void add_node(std::string node_name, double node_power, bool node_gpu,
                double node_activation_overhead_s = 0.0);
  void set_link(int from, int to, LinkEstimate estimate);
  void set_power(int node, double p) { power_.at(static_cast<std::size_t>(node)) = p; }

  /// Ground truth from simulator parameters. `efficiency` derates raw link
  /// bandwidth into achievable transport goodput (headers, ACK turnaround).
  static NetworkProfile from_network(const netsim::Network& net,
                                     double efficiency = 0.85);

  /// Active measurement: runs an EpbEstimator over every overlay link in
  /// sequence inside the simulation (advances its virtual clock).
  static NetworkProfile measure(netsim::Network& net,
                                const transport::EpbOptions& options = {});

 private:
  std::vector<double> power_;
  std::vector<bool> gpu_;
  std::vector<double> activation_;
  std::vector<std::string> names_;
  std::map<std::pair<int, int>, LinkEstimate> links_;
};

}  // namespace ricsa::cost
