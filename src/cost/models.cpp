#include "cost/models.hpp"

#include <algorithm>
#include <cmath>

#include "data/generators.hpp"
#include "util/stopwatch.hpp"
#include "viz/filters.hpp"
#include "viz/isosurface.hpp"
#include "viz/rasterizer.hpp"
#include "viz/streamline.hpp"

namespace ricsa::cost {

double IsosurfaceModel::t_block(std::size_t cells) const {
  double per_cell = 0.0;
  for (int i = 0; i < kMcClasses; ++i) {
    per_cell += t_case[static_cast<std::size_t>(i)] *
                p_case[static_cast<std::size_t>(i)];
  }
  return static_cast<double>(cells) * per_cell;
}

double IsosurfaceModel::predict_extraction_s(std::size_t active_blocks,
                                             std::size_t cells_per_block) const {
  // Eq. 4: t = n_blocks * t_block(S_block).
  return static_cast<double>(active_blocks) * t_block(cells_per_block);
}

double IsosurfaceModel::predict_triangles(std::size_t active_blocks,
                                          std::size_t cells_per_block) const {
  // Eq. 6's count: n_blocks * S_block * sum_i ntri(i) * P(i).
  double per_cell = 0.0;
  for (int i = 0; i < kMcClasses; ++i) {
    per_cell += ntri_case[static_cast<std::size_t>(i)] *
                p_case[static_cast<std::size_t>(i)];
  }
  return static_cast<double>(active_blocks) *
         static_cast<double>(cells_per_block) * per_cell;
}

double IsosurfaceModel::predict_render_s(double triangles, bool has_gpu) const {
  const double rate =
      triangles_per_second * (has_gpu ? gpu_speedup : 1.0);
  return triangles / std::max(rate, 1.0);
}

IsosurfaceModel calibrate_isosurface(
    const std::vector<const data::ScalarVolume*>& samples,
    const CalibrationOptions& options) {
  IsosurfaceModel model;

  // Accumulators over all runs.
  std::array<std::uint64_t, kMcClasses> cells{};
  std::array<std::uint64_t, kMcClasses> triangles{};
  // Least squares for T_run = alpha * cells_run + beta * triangles_run.
  double s_cc = 0, s_ct = 0, s_tt = 0, s_cy = 0, s_ty = 0;
  double render_tris = 0, render_seconds = 0;

  for (const data::ScalarVolume* volume : samples) {
    const data::BlockDecomposition blocks(*volume, options.block_size);
    const auto [lo, hi] = volume->min_max();
    for (int s = 0; s < options.isovalue_samples; ++s) {
      const float iso =
          lo + (hi - lo) * (static_cast<float>(s) + 0.5f) /
                   static_cast<float>(options.isovalue_samples);
      viz::IsosurfaceOptions iso_opt;
      iso_opt.block_size = options.block_size;
      iso_opt.gradient_normals = true;

      util::Stopwatch timer;
      const auto result = viz::extract_isosurface(*volume, blocks, iso, iso_opt);
      const double seconds = timer.elapsed();

      for (int i = 0; i < kMcClasses; ++i) {
        cells[static_cast<std::size_t>(i)] +=
            result.stats.class_cells[static_cast<std::size_t>(i)];
        triangles[static_cast<std::size_t>(i)] +=
            result.stats.class_triangles[static_cast<std::size_t>(i)];
      }
      const double c = static_cast<double>(result.stats.cells_scanned);
      const double t = static_cast<double>(result.stats.triangles);
      s_cc += c * c;
      s_ct += c * t;
      s_tt += t * t;
      s_cy += c * seconds;
      s_ty += t * seconds;

      // Rendering throughput from the same meshes.
      if (result.mesh.triangle_count() > 0) {
        viz::RenderOptions render_opt;
        render_opt.width = 128;
        render_opt.height = 128;
        util::Stopwatch rt;
        viz::render_mesh(result.mesh, render_opt);
        render_seconds += rt.elapsed();
        render_tris += static_cast<double>(result.mesh.triangle_count());
      }
    }
  }

  // Solve the 2x2 normal equations; fall back to cells-only if degenerate.
  const double det = s_cc * s_tt - s_ct * s_ct;
  if (det > 1e-30 && s_tt > 0) {
    model.alpha_cell_s = (s_cy * s_tt - s_ty * s_ct) / det;
    model.beta_triangle_s = (s_cc * s_ty - s_ct * s_cy) / det;
  } else if (s_cc > 0) {
    model.alpha_cell_s = s_cy / s_cc;
    model.beta_triangle_s = 0.0;
  }
  // Timing noise can push the tiny per-cell constant slightly negative;
  // clamp to keep predictions monotone.
  model.alpha_cell_s = std::max(model.alpha_cell_s, 1e-10);
  model.beta_triangle_s = std::max(model.beta_triangle_s, 0.0);
  // Express costs in reference-PC seconds (Section 4.2's normalized power).
  model.alpha_cell_s *= options.host_power;
  model.beta_triangle_s *= options.host_power;

  std::uint64_t total_cells = 0;
  for (int i = 0; i < kMcClasses; ++i) total_cells += cells[static_cast<std::size_t>(i)];
  for (int i = 0; i < kMcClasses; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    model.p_case[idx] = total_cells
                            ? static_cast<double>(cells[idx]) /
                                  static_cast<double>(total_cells)
                            : 0.0;
    model.ntri_case[idx] = cells[idx]
                               ? static_cast<double>(triangles[idx]) /
                                     static_cast<double>(cells[idx])
                               : 0.0;
    model.t_case[idx] =
        model.alpha_cell_s + model.beta_triangle_s * model.ntri_case[idx];
  }

  model.triangles_per_second =
      (render_seconds > 0 ? render_tris / render_seconds : 1e6) /
      options.host_power;
  return model;
}

CostModels calibrate(const std::vector<const data::ScalarVolume*>& samples,
                     const CalibrationOptions& options) {
  CostModels models;
  models.isosurface = calibrate_isosurface(samples, options);

  // Ray casting: time real casts, divide by samples taken (Eq. 7's
  // "t_sample can be considered as constant and easily computed by running
  // the ray casting algorithm on a test dataset").
  double cast_seconds = 0;
  std::size_t cast_samples = 0;
  for (const data::ScalarVolume* volume : samples) {
    const auto [lo, hi] = volume->min_max();
    const viz::TransferFunction tf = viz::TransferFunction::preset(lo, hi);
    viz::RayCastOptions opt;
    opt.width = options.raycast_size;
    opt.height = options.raycast_size;
    util::Stopwatch timer;
    const auto result = viz::raycast(*volume, tf, opt);
    cast_seconds += timer.elapsed();
    cast_samples += result.samples;
  }
  models.raycast.t_sample_s =
      (cast_samples ? cast_seconds / static_cast<double>(cast_samples) : 1e-8) *
      options.host_power;

  // Streamlines: trace through the gradient field of each sample volume.
  double trace_seconds = 0;
  std::size_t trace_steps = 0;
  for (const data::ScalarVolume* volume : samples) {
    const int n = std::min({volume->nx(), volume->ny(), volume->nz(), 48});
    data::VectorVolume field(n, n, n);
    for (int z = 0; z < n; ++z) {
      for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) {
          field.at(x, y, z) = volume->gradient(static_cast<float>(x),
                                               static_cast<float>(y),
                                               static_cast<float>(z));
        }
      }
    }
    viz::StreamlineOptions opt;
    opt.max_steps = options.streamline_max_steps;
    const auto seeds = viz::grid_seeds(field, options.streamline_seed_grid);
    util::Stopwatch timer;
    const auto set = viz::trace_streamlines(field, seeds, opt);
    trace_seconds += timer.elapsed();
    trace_steps += set.advection_steps;
  }
  models.streamline.t_advection_s =
      (trace_steps ? trace_seconds / static_cast<double>(trace_steps) : 1e-7) *
      options.host_power;

  // Filtering throughput from a normalize pass.
  {
    double filter_seconds = 0;
    std::size_t filter_bytes = 0;
    for (const data::ScalarVolume* volume : samples) {
      util::Stopwatch timer;
      const auto out = viz::normalize(*volume);
      filter_seconds += timer.elapsed();
      filter_bytes += volume->bytes();
    }
    if (filter_seconds > 0) {
      models.aux.filter_Bps = static_cast<double>(filter_bytes) /
                              filter_seconds / options.host_power;
    }
  }
  return models;
}

}  // namespace ricsa::cost
