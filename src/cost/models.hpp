// Visualization cost models of Section 4.4, calibrated by running the real
// visualization code and timing it.
//
//  * Isosurface extraction (Eq. 4/5): t = n_blocks * t_block(S_block) with
//    t_block = S_block * sum_i T_case(i) * P_case(i) over the 15 marching-
//    cubes classes; rendering cost from the predicted triangle count (Eq. 6).
//  * Ray casting (Eq. 7): t = n_rays * n_samples * t_sample (block count
//    folded into the exact ray geometry; early termination excluded, as the
//    paper's model prescribes).
//  * Streamlines (Eq. 8): t = n_seeds * n_steps * T_advection.
//
// Calibration mirrors the paper's statistical method: sample datasets are
// processed at many isovalues; per-class probabilities and triangle yields
// are tallied, and the per-class time constants are fitted by least squares
// (cell-visit cost + per-triangle cost), since per-cell wall-clock cannot be
// attributed to classes directly.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "data/octree.hpp"
#include "data/volume.hpp"
#include "viz/raycast.hpp"

namespace ricsa::cost {

inline constexpr int kMcClasses = 15;

struct IsosurfaceModel {
  /// T_case(i): expected seconds per cell of class i (unit-power node).
  std::array<double, kMcClasses> t_case{};
  /// P_case(i): probability a scanned cell falls in class i.
  std::array<double, kMcClasses> p_case{};
  /// Average triangles emitted per cell of class i.
  std::array<double, kMcClasses> ntri_case{};
  /// Fitted primitives: per-cell visit cost and per-triangle cost.
  double alpha_cell_s = 0.0;
  double beta_triangle_s = 0.0;
  /// Rendering throughput (triangles/second) of the software rasterizer on a
  /// unit-power node, and the speedup factor of a graphics card.
  double triangles_per_second = 1.0;
  double gpu_speedup = 25.0;

  /// Eq. 5: expected extraction seconds for one block of `cells` cells.
  double t_block(std::size_t cells) const;
  /// Eq. 4: extraction seconds for n_blocks active blocks.
  double predict_extraction_s(std::size_t active_blocks,
                              std::size_t cells_per_block) const;
  /// Eq. 6's triangle count: expected triangles over the active blocks.
  double predict_triangles(std::size_t active_blocks,
                           std::size_t cells_per_block) const;
  /// Rendering seconds for a triangle count on a unit-power node.
  double predict_render_s(double triangles, bool has_gpu) const;
};

struct RayCastModel {
  /// t_sample: seconds per scalar sample on a unit-power node (Eq. 7).
  double t_sample_s = 0.0;

  double predict_s(const viz::RayGeometry& geometry) const {
    return static_cast<double>(geometry.samples) * t_sample_s;
  }
};

struct StreamlineModel {
  /// T_advection: seconds per RK4 advection step (Eq. 8).
  double t_advection_s = 0.0;

  double predict_s(std::size_t seeds, std::size_t steps_per_seed) const {
    return static_cast<double>(seeds) * static_cast<double>(steps_per_seed) *
           t_advection_s;
  }
};

/// Generic throughput constants for the cheap pipeline stages.
struct AuxiliaryModel {
  /// Filtering throughput, bytes/second (unit power).
  double filter_Bps = 1e8;
  /// Client-side display handling, bytes/second.
  double display_Bps = 5e8;
};

struct CostModels {
  IsosurfaceModel isosurface;
  RayCastModel raycast;
  StreamlineModel streamline;
  AuxiliaryModel aux;
};

struct CalibrationOptions {
  /// Isovalues sampled per volume, spread over its value range.
  int isovalue_samples = 6;
  int block_size = 16;
  /// Raycast probe image size.
  int raycast_size = 96;
  /// Streamline probe seeds (n^3 grid) and cap.
  int streamline_seed_grid = 4;
  int streamline_max_steps = 200;
  /// Normalized computing power of the calibration host relative to the
  /// testbed's reference PC. The paper's deployment is 2008-era hardware
  /// (power 1.0 ~ a single-core Linux PC); a modern machine is roughly 45x
  /// that per core, so wall-clock measurements here are multiplied by this
  /// factor to express module costs in reference-PC seconds. Set to 1.0 to
  /// model the calibration host itself.
  double host_power = 45.0;
};

/// Calibrate all models by running the real extractors/renderers/tracers on
/// the given sample volumes (wall-clock timing; deterministic inputs).
CostModels calibrate(const std::vector<const data::ScalarVolume*>& samples,
                     const CalibrationOptions& options = {});

/// Calibrate only the isosurface model (cheaper; used in tests).
IsosurfaceModel calibrate_isosurface(
    const std::vector<const data::ScalarVolume*>& samples,
    const CalibrationOptions& options = {});

}  // namespace ricsa::cost
