// Builds a calibrated PipelineSpec for a concrete visualization request:
// turns the Section 4.4 model predictions into the c_j coefficients and m_j
// message sizes the DP mapper consumes.
#pragma once

#include "cost/models.hpp"
#include "pipeline/pipeline.hpp"

namespace ricsa::cost {

struct VizRequest {
  enum class Technique { kIsosurface, kRayCast, kStreamline };
  Technique technique = Technique::kIsosurface;
  float isovalue = 0.5f;
  int image_width = 512;
  int image_height = 512;
  /// Streamline parameters.
  int seeds = 125;
  int steps_per_seed = 500;
  /// Fraction of the raw data the filter stage keeps.
  double filter_keep = 1.0;
};

/// Dataset statistics the DS node derives from its cached data (block
/// decomposition ranges), shipped to the CM with the request.
struct DatasetProperties {
  std::size_t bytes = 0;
  int nx = 0, ny = 0, nz = 0;
  /// Blocks whose range spans the requested isovalue.
  std::size_t active_blocks = 0;
  std::size_t cells_per_block = 0;
};

/// Derive DatasetProperties for an isovalue from a real volume.
DatasetProperties dataset_properties(const data::ScalarVolume& volume,
                                     float isovalue, int block_size = 16);

/// Paper-scale synthetic properties (for experiments that must use the full
/// 16/64/108 MB datasets without allocating them): extrapolates the active-
/// block ratio and dimensions of a measured scaled-down volume to the full
/// byte size.
DatasetProperties scale_properties(const DatasetProperties& measured,
                                   std::size_t full_bytes);

/// Build the calibrated pipeline for the request. Every module's complexity
/// c_j is set so that c_j * m_{j-1} equals the model-predicted seconds on a
/// unit-power node; message sizes follow the predicted data reduction.
pipeline::PipelineSpec build_pipeline(const VizRequest& request,
                                      const DatasetProperties& dataset,
                                      const CostModels& models);

/// Bytes of a triangle mesh with `triangles` triangles in the wire format
/// used down the pipeline (3 vertices x (position+normal) + indices).
std::size_t geometry_bytes(double triangles);

/// Bytes of a rendered framebuffer (RGBA8).
std::size_t framebuffer_bytes(int width, int height);

}  // namespace ricsa::cost
