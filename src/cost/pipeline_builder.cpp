#include "cost/pipeline_builder.hpp"

#include <algorithm>
#include <cmath>

namespace ricsa::cost {

DatasetProperties dataset_properties(const data::ScalarVolume& volume,
                                     float isovalue, int block_size) {
  DatasetProperties out;
  out.bytes = volume.bytes();
  out.nx = volume.nx();
  out.ny = volume.ny();
  out.nz = volume.nz();
  const data::BlockDecomposition blocks(volume, block_size);
  out.active_blocks = blocks.active_blocks(isovalue);
  out.cells_per_block = static_cast<std::size_t>(block_size) *
                        static_cast<std::size_t>(block_size) *
                        static_cast<std::size_t>(block_size);
  return out;
}

DatasetProperties scale_properties(const DatasetProperties& measured,
                                   std::size_t full_bytes) {
  DatasetProperties out = measured;
  const double ratio = static_cast<double>(full_bytes) /
                       static_cast<double>(std::max<std::size_t>(measured.bytes, 1));
  const double linear = std::cbrt(ratio);
  out.bytes = full_bytes;
  out.nx = static_cast<int>(std::lround(measured.nx * linear));
  out.ny = static_cast<int>(std::lround(measured.ny * linear));
  out.nz = static_cast<int>(std::lround(measured.nz * linear));
  // Active blocks scale with the isosurface area ~ linear^2: at paper scale
  // the datasets' dominant structures (plume envelope, blast shell, tissue
  // interfaces) are smooth, so a surface through an N^3 volume spans O(N^2)
  // of its blocks. (The small procedural samples are noisier than that;
  // scaling by area rather than volume keeps full-scale geometry realistic.)
  out.active_blocks = static_cast<std::size_t>(
      std::lround(static_cast<double>(measured.active_blocks) * linear * linear));
  return out;
}

std::size_t geometry_bytes(double triangles) {
  // The extractor emits triangle soup: 3 vertices x 6 floats (position +
  // normal) + 3 u32 indices = 84 B per triangle — the exact wire size of
  // viz::TriangleMesh::bytes() for an unwelded mesh.
  return static_cast<std::size_t>(std::max(0.0, triangles) * 84.0);
}

std::size_t framebuffer_bytes(int width, int height) {
  return static_cast<std::size_t>(width) * static_cast<std::size_t>(height) * 4;
}

pipeline::PipelineSpec build_pipeline(const VizRequest& request,
                                      const DatasetProperties& dataset,
                                      const CostModels& models) {
  using pipeline::ModuleKind;
  using pipeline::ModuleSpec;

  const double raw_bytes = static_cast<double>(dataset.bytes);
  const double filtered_bytes = raw_bytes * request.filter_keep;
  const std::size_t fb_bytes =
      framebuffer_bytes(request.image_width, request.image_height);

  std::vector<ModuleSpec> modules;
  modules.push_back({ModuleKind::kSource, "source", 0.0, 1.0, 0, false});

  // Filter: throughput model; c = 1 / filter_Bps (seconds per input byte).
  modules.push_back({ModuleKind::kFilter, "filter", 1.0 / models.aux.filter_Bps,
                     request.filter_keep, 0, false});

  switch (request.technique) {
    case VizRequest::Technique::kIsosurface: {
      const double extract_s = models.isosurface.predict_extraction_s(
          dataset.active_blocks, dataset.cells_per_block);
      const double triangles = models.isosurface.predict_triangles(
          dataset.active_blocks, dataset.cells_per_block);
      const std::size_t geom = std::max<std::size_t>(geometry_bytes(triangles), 1);
      modules.push_back({ModuleKind::kIsosurface, "isosurface",
                         extract_s / std::max(filtered_bytes, 1.0), 0.0, geom,
                         false});
      // Render is feasibility-restricted to GPU nodes (the paper's GaTech and
      // OSU hosts had no graphics card), so its cost is priced for a GPU.
      const double render_s =
          models.isosurface.predict_render_s(triangles, /*has_gpu=*/true);
      modules.push_back({ModuleKind::kRender, "render",
                         render_s / static_cast<double>(geom), 0.0, fb_bytes,
                         true});
      break;
    }
    case VizRequest::Technique::kRayCast: {
      viz::RayCastOptions opt;
      opt.width = request.image_width;
      opt.height = request.image_height;
      const viz::RayGeometry geom =
          viz::estimate_raycast_counts(dataset.nx, dataset.ny, dataset.nz, opt);
      const double cast_s = models.raycast.predict_s(geom);
      modules.push_back({ModuleKind::kRayCast, "raycast",
                         cast_s / std::max(filtered_bytes, 1.0), 0.0, fb_bytes,
                         false});
      break;
    }
    case VizRequest::Technique::kStreamline: {
      const double trace_s = models.streamline.predict_s(
          static_cast<std::size_t>(request.seeds),
          static_cast<std::size_t>(request.steps_per_seed));
      // Polyline bytes: seeds * steps * 12 B per point (upper bound).
      const std::size_t poly =
          std::max<std::size_t>(static_cast<std::size_t>(request.seeds) *
                                    static_cast<std::size_t>(request.steps_per_seed) * 12,
                                1);
      modules.push_back({ModuleKind::kStreamline, "streamline",
                         trace_s / std::max(filtered_bytes, 1.0), 0.0, poly,
                         false});
      // Rendering polylines ~ triangles at half throughput.
      const double render_s = models.isosurface.predict_render_s(
          static_cast<double>(request.seeds * request.steps_per_seed) * 0.5,
          false);
      modules.push_back({ModuleKind::kRender, "render",
                         render_s / static_cast<double>(poly), 0.0, fb_bytes,
                         true});
      break;
    }
  }

  // Display: client-side handling of the final framebuffer.
  modules.push_back({ModuleKind::kDisplay, "display",
                     1.0 / models.aux.display_Bps, 1.0, 0, false});

  const char* names[] = {"isosurface", "raycast", "streamline"};
  return pipeline::PipelineSpec(
      names[static_cast<int>(request.technique)],
      static_cast<std::size_t>(raw_bytes), std::move(modules));
}

}  // namespace ricsa::cost
