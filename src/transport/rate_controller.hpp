// Source-rate controllers for the window-based UDP transport of Section 3.
//
// The sender emits a congestion window of Wc datagrams, sleeps Ts, repeats;
// its source rate is r_S = Wc / (Ts + Tc). Controllers observe the goodput
// reported by the receiver and produce the next sleep time.
//
//  * RmsaController — the paper's Robbins-Monro stochastic approximation
//    (Eq. 1): converges to the target goodput g* under random losses, with
//    monotonically decaying gain a / (Wc * n^alpha).
//  * AimdController — a TCP-Reno-like additive-increase/multiplicative-
//    decrease baseline used to demonstrate the jitter the paper is avoiding.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>

namespace ricsa::transport {

struct RateFeedback {
  /// Receiver-measured goodput, bytes/second.
  double goodput_Bps = 0.0;
  /// True when the receiver reported missing datagrams in this interval.
  bool loss_detected = false;
};

class RateController {
 public:
  virtual ~RateController() = default;
  /// Consume one feedback sample, return the next sleep time Ts (seconds).
  virtual double update(const RateFeedback& feedback) = 0;
  virtual double sleep_time() const = 0;
  virtual std::string name() const = 0;
};

struct RmsaConfig {
  /// Target goodput g*, bytes/second.
  double target_Bps = 5e5;
  /// Dimensionless gain numerator `a` of Eq. 1. With the Wc*n^alpha
  /// denominator, a = 1 corrects the full rate error in one step at n = 1.
  double gain_a = 1.0;
  /// Robbins-Monro decay exponent alpha in (0.5, 1].
  double alpha = 0.8;
  /// Window size Wc in datagrams and payload bytes per datagram; both enter
  /// the gain normalization (goodput is measured in bytes/s, Eq. 1's g in
  /// datagrams/s — the Wc * datagram_bytes factor converts).
  int window = 32;
  std::size_t datagram_bytes = 1400;
  double initial_sleep_s = 0.05;
  double min_sleep_s = 1e-4;
  double max_sleep_s = 2.0;
  /// Optional lower bound on the decaying gain; 0 reproduces the paper's
  /// pure Robbins-Monro schedule. A small floor lets the controller keep
  /// tracking non-stationary conditions (ablation knob).
  double gain_floor = 0.0;
};

class RmsaController final : public RateController {
 public:
  explicit RmsaController(RmsaConfig config);

  double update(const RateFeedback& feedback) override;
  double sleep_time() const override { return sleep_s_; }
  std::string name() const override { return "rmsa"; }

  int steps() const noexcept { return n_; }
  double target() const noexcept { return config_.target_Bps; }
  /// Change g* mid-flight (steering a control channel to a new rate).
  void set_target(double target_Bps) noexcept { config_.target_Bps = target_Bps; }

 private:
  RmsaConfig config_;
  double sleep_s_;
  int n_ = 1;
};

struct AimdConfig {
  /// Additive increase of the send rate per feedback epoch, bytes/second.
  double increase_Bps = 1e5;
  /// Multiplicative decrease factor applied on loss.
  double decrease_factor = 0.5;
  int window = 32;
  std::size_t datagram_bytes = 1400;
  double initial_rate_Bps = 2e5;
  double min_rate_Bps = 1e4;
  double max_rate_Bps = 1e9;
  double min_sleep_s = 1e-4;
  double max_sleep_s = 2.0;
};

class AimdController final : public RateController {
 public:
  explicit AimdController(AimdConfig config);

  double update(const RateFeedback& feedback) override;
  double sleep_time() const override { return sleep_from_rate(rate_Bps_); }
  std::string name() const override { return "aimd"; }

  double rate() const noexcept { return rate_Bps_; }

 private:
  double sleep_from_rate(double rate_Bps) const;

  AimdConfig config_;
  double rate_Bps_;
};

}  // namespace ricsa::transport
