#include "transport/epb.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace ricsa::transport {

EpbResult fit_epb(const std::vector<std::pair<std::size_t, double>>& samples) {
  EpbResult out;
  out.samples = samples;
  out.probes = static_cast<int>(samples.size());
  util::LinearRegression reg;
  for (const auto& [size, delay] : samples) {
    reg.add(static_cast<double>(size), delay);
  }
  const util::LinearFit fit = reg.fit();
  out.r_squared = fit.r_squared;
  out.epb_Bps = fit.slope > 0 ? 1.0 / fit.slope : 0.0;
  out.min_delay_s = std::max(0.0, fit.intercept);
  return out;
}

EpbEstimator::EpbEstimator(netsim::Network& net, netsim::NodeId src,
                           netsim::NodeId dst, EpbOptions options)
    : net_(net), src_(src), dst_(dst), options_(std::move(options)) {
  if (!options_.make_controller) {
    options_.make_controller = [] {
      // Probe channel starts warm (as a long-lived measurement daemon's
      // connection would be) so small probes aren't dominated by ramp-up.
      AimdConfig cfg;
      cfg.initial_rate_Bps = 2e6;
      cfg.increase_Bps = 5e5;
      return std::make_unique<AimdController>(cfg);
    };
  }
}

void EpbEstimator::run(std::function<void(const EpbResult&)> done) {
  done_ = std::move(done);
  samples_.clear();
  size_index_ = 0;
  repeat_index_ = 0;
  next_probe();
}

void EpbEstimator::next_probe() {
  if (size_index_ >= options_.probe_sizes.size()) {
    if (done_) done_(fit_epb(samples_));
    return;
  }
  const std::size_t bytes = options_.probe_sizes[size_index_];
  probe_start_ = net_.simulator().now();
  active_flow_ = make_message_flow(
      net_, src_, dst_, bytes, options_.make_controller(),
      [this, bytes](netsim::SimTime completed_at) {
        samples_.emplace_back(bytes, completed_at - probe_start_);
        if (++repeat_index_ >= options_.repeats) {
          repeat_index_ = 0;
          ++size_index_;
        }
        // Tear down the finished flow before starting the next one; deleting
        // it from within its own completion callback is unsafe, so defer.
        net_.simulator().after(1e-6, [this] { next_probe(); });
      },
      options_.flow);
}

}  // namespace ricsa::transport
