#include "transport/goodput_meter.hpp"

namespace ricsa::transport {

void GoodputMeter::record(netsim::SimTime now, std::size_t bytes) {
  events_.emplace_back(now, bytes);
  window_bytes_ += bytes;
  total_ += bytes;
  evict(now);
}

double GoodputMeter::rate(netsim::SimTime now) {
  evict(now);
  return static_cast<double>(window_bytes_) / window_s_;
}

void GoodputMeter::evict(netsim::SimTime now) {
  const netsim::SimTime horizon = now - window_s_;
  while (!events_.empty() && events_.front().first < horizon) {
    window_bytes_ -= events_.front().second;
    events_.pop_front();
  }
}

}  // namespace ricsa::transport
