#include "transport/goodput_meter.hpp"

#include <algorithm>

namespace ricsa::transport {

void GoodputMeter::start(netsim::SimTime now) {
  if (started_) return;
  started_ = true;
  first_record_ = now;
}

void GoodputMeter::record(netsim::SimTime now, std::size_t bytes) {
  start(now);
  events_.emplace_back(now, bytes);
  window_bytes_ += bytes;
  total_ += bytes;
  evict(now);
}

double GoodputMeter::rate(netsim::SimTime now) {
  evict(now);
  if (!started_) return 0.0;
  // Warm-up: average over the time actually observed, floored so a burst
  // recorded "right now" reads as a very high rate instead of dividing by
  // zero (optimistically fast, never artificially slow).
  constexpr double kMinElapsed = 1e-3;
  const double elapsed = now - first_record_;
  const double denom = std::min(std::max(elapsed, kMinElapsed), window_s_);
  return static_cast<double>(window_bytes_) / denom;
}

void GoodputMeter::evict(netsim::SimTime now) {
  const netsim::SimTime horizon = now - window_s_;
  while (!events_.empty() && events_.front().first < horizon) {
    window_bytes_ -= events_.front().second;
    events_.pop_front();
  }
}

}  // namespace ricsa::transport
