// Window-based reliable datagram transport over the simulated network,
// mirroring Fig. 2 of the paper: the sender emits a congestion window of UDP
// datagrams, sleeps Ts(t) (set by a pluggable rate controller), and reacts to
// ACK/NACK feedback; the receiver reorders, acknowledges cumulatively, NACKs
// holes, and reports its measured goodput back to the sender.
//
// Two modes:
//  * message mode — reliably transfer exactly N bytes, then report the
//    completion time (used for visualization data transfers and EPB probes);
//  * stream mode — send indefinitely at the controller's rate (used for the
//    control-channel stabilization experiments).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <set>

#include "netsim/network.hpp"
#include "transport/goodput_meter.hpp"
#include "transport/rate_controller.hpp"

namespace ricsa::transport {

/// Process-wide port allocator for simulated flows.
int allocate_port();

struct FlowConfig {
  std::size_t datagram_payload = 1400;
  std::size_t header_bytes = 40;
  int window = 32;
  /// Receiver ACK cadence: an ACK is emitted at least this often while data
  /// arrives, and immediately on detecting a (new) hole.
  double ack_interval_s = 0.02;
  /// Sender retransmission timeout: if no ACK progress for this long, all
  /// unacknowledged datagrams are requeued.
  double rto_s = 0.3;
  /// Cap on explicit NACKs carried per ACK packet.
  std::size_t max_nacks_per_ack = 64;
  std::size_t ack_wire_bytes = 60;
};

struct SenderStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t bursts = 0;
};

struct ReceiverStats {
  std::uint64_t datagrams_received = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t acks_sent = 0;
};

class TransportReceiver {
 public:
  /// Listens on (node, data_port); ACKs go to (peer, ack_port).
  TransportReceiver(netsim::Network& net, netsim::NodeId node, int data_port,
                    netsim::NodeId peer, int ack_port, FlowConfig config);
  ~TransportReceiver();
  TransportReceiver(const TransportReceiver&) = delete;
  TransportReceiver& operator=(const TransportReceiver&) = delete;

  /// Message mode: invoke on_complete when datagrams [0, total) have all
  /// arrived. Stream mode: leave total at the default (unbounded).
  void expect(std::uint64_t total_datagrams,
              std::function<void(netsim::SimTime)> on_complete = {});

  /// Receiver-side goodput (new bytes only), bytes/second.
  double goodput(netsim::SimTime now) { return meter_.rate(now); }
  const ReceiverStats& stats() const noexcept { return stats_; }
  std::uint64_t cumulative_ack() const noexcept { return cum_ack_; }

 private:
  void on_datagram(const netsim::Packet& p);
  void send_ack();
  void schedule_ack_timer();

  netsim::Network& net_;
  netsim::NodeId node_;
  int data_port_;
  netsim::NodeId peer_;
  int ack_port_;
  FlowConfig config_;
  GoodputMeter meter_;
  ReceiverStats stats_;

  std::uint64_t total_ = UINT64_MAX;
  std::function<void(netsim::SimTime)> on_complete_;
  bool completed_ = false;

  /// First not-yet-received sequence number (cumulative ACK point).
  std::uint64_t cum_ack_ = 0;
  /// Out-of-order datagrams above cum_ack_.
  std::set<std::uint64_t> ooo_;
  netsim::SimTime last_ack_time_ = -1.0;
  bool ack_timer_armed_ = false;
  bool alive_ = true;
  std::shared_ptr<bool> liveness_;
};

class TransportSender {
 public:
  TransportSender(netsim::Network& net, netsim::NodeId src, netsim::NodeId dst,
                  int data_port, int ack_port, FlowConfig config,
                  std::unique_ptr<RateController> controller);
  ~TransportSender();
  TransportSender(const TransportSender&) = delete;
  TransportSender& operator=(const TransportSender&) = delete;

  /// Message mode: reliably transfer `bytes`; on_complete(now) fires when the
  /// receiver has acknowledged everything.
  void send_message(std::size_t bytes,
                    std::function<void(netsim::SimTime)> on_complete);

  /// Stream mode: send until stop().
  void start_stream();

  void stop();

  const SenderStats& stats() const noexcept { return stats_; }
  RateController& controller() noexcept { return *controller_; }
  double sleep_time() const { return controller_->sleep_time(); }
  /// Datagrams needed for a message of `bytes` under this config.
  std::uint64_t datagram_count(std::size_t bytes) const;

 private:
  void on_ack(const netsim::Packet& p);
  void burst();
  void arm_rto();
  void send_datagram(std::uint64_t seq);

  netsim::Network& net_;
  netsim::NodeId src_;
  netsim::NodeId dst_;
  int data_port_;
  int ack_port_;
  FlowConfig config_;
  std::unique_ptr<RateController> controller_;
  SenderStats stats_;

  bool running_ = false;
  bool burst_scheduled_ = false;
  std::uint64_t total_ = 0;  // datagrams in current message; UINT64_MAX = stream
  std::uint64_t next_seq_ = 0;
  std::set<std::uint64_t> unacked_;
  std::deque<std::uint64_t> retx_queue_;
  std::set<std::uint64_t> retx_pending_;  // membership mirror of retx_queue_
  std::uint64_t cum_ack_seen_ = 0;
  netsim::SimTime last_progress_ = 0.0;
  bool rto_armed_ = false;
  std::function<void(netsim::SimTime)> on_complete_;
  std::shared_ptr<bool> liveness_;
};

/// Convenience: one-shot reliable transfer of `bytes` from src to dst over the
/// direct overlay link, driving completion through the given controller.
/// Returns the receiver/sender pair (kept alive until completion).
struct Flow {
  std::unique_ptr<TransportReceiver> receiver;
  std::unique_ptr<TransportSender> sender;
};

Flow make_message_flow(netsim::Network& net, netsim::NodeId src,
                       netsim::NodeId dst, std::size_t bytes,
                       std::unique_ptr<RateController> controller,
                       std::function<void(netsim::SimTime)> on_complete,
                       FlowConfig config = {});

}  // namespace ricsa::transport
