// Pluggable per-session congestion controllers for the web pacing stack.
//
// The paper's Robbins-Monro controller (Eq. 1, rate_controller.hpp) reacts
// to goodput utilization only: it cannot see queue growth until throughput
// has already collapsed, so slow-WAN sessions flap between quality tiers
// instead of settling. Both web transports (long-poll and SSE) measure a
// per-delivery round trip — response dispatch to kernel drain — that a
// delay-based law can steer on *before* the queue overflows.
//
// This interface abstracts the control law behind the per-session pacing in
// web/session.hpp. One feedback sample per completed delivery carries the
// rate signals (offered/achieved frame rate), the delay signals (RTT and
// kernel-drain time), the body size, and a loss flag; the controller
// proposes the next minimum inter-frame interval.
//
//  * RmsaPacingController — the paper's Eq. 1 in the frame-rate domain,
//    bit-identical to the previously hard-wired RmsaController usage.
//  * DelayGradientController — TIMELY-style RTT-gradient control: additive
//    increase below T_low, multiplicative decrease above T_high or on a
//    rising gradient, hyperactive increase after a run of falling RTTs.
//  * TrendlineController — GCC-style least-squares slope of the smoothed
//    delay series feeding an overuse detector driving AIMD.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <string>

#include "transport/rate_controller.hpp"

namespace ricsa::transport {

/// One completed-delivery feedback sample.
struct CongestionSample {
  double now_s = 0.0;
  /// Frame rate the session's pacing currently offers (frames/s).
  double offered_fps = 0.0;
  /// Frame rate the client demonstrably drains (frames/s).
  double achieved_fps = 0.0;
  /// Dispatch-to-drain round trip for this delivery, seconds; < 0 when the
  /// transport produced no sample.
  double rtt_s = -1.0;
  /// Kernel-drain time of this body (enqueue to socket-buffer empty),
  /// seconds; < 0 when unknown.
  double drain_s = -1.0;
  /// Body bytes written.
  std::size_t bytes = 0;
  /// Delivery contract violated (drop, disconnect mid-write).
  bool loss = false;
};

/// Controller telemetry surfaced per session in /api/stats.
struct ControllerTelemetry {
  /// Most recent delay signal consumed (RTT or drain), seconds; < 0 when
  /// none has been seen yet.
  double last_rtt_s = -1.0;
  /// Law-specific delay derivative: normalized RTT gradient (TIMELY) or
  /// trendline slope in delay-seconds per second (GCC). 0 for RMSA.
  double gradient = 0.0;
};

class CongestionController {
 public:
  virtual ~CongestionController() = default;

  /// Consume one delivery sample; returns the proposed minimum inter-frame
  /// interval in seconds, within the [min, max] bounds of the last reset().
  virtual double update(const CongestionSample& sample) = 0;

  /// Restart the law (new tier, upward probe): interval bounds and the
  /// starting point, clamped into [min, max].
  virtual void reset(double initial_interval_s, double min_interval_s,
                     double max_interval_s) = 0;

  /// Current interval proposal without consuming a sample.
  virtual double interval_s() const = 0;

  /// True when the law's interval proposal applies at every quality tier.
  /// False reproduces the legacy RMSA placement: the interval is stretched
  /// only once the session already sits on the cheapest tier.
  virtual bool paces_all_tiers() const { return false; }

  /// Gate for upward probes: delay-based laws veto a tier/rate probe while
  /// the network still shows rising delay.
  virtual bool probe_ok() const { return true; }

  virtual std::string name() const = 0;
  virtual ControllerTelemetry telemetry() const { return {}; }
};

enum class ControllerKind { kRmsa, kDelayGradient, kTrendline };

const char* controller_kind_name(ControllerKind kind);
/// Parse a `controller=` knob value ("rmsa", "gradient"/"timely",
/// "trendline"/"gcc"). Returns false on an unknown name.
bool parse_controller_kind(const std::string& name, ControllerKind* out);

struct ControllerConfig {
  ControllerKind kind = ControllerKind::kRmsa;

  /// Robbins-Monro gain template (Eq. 1, frame-rate domain).
  double rmsa_gain_a = 1.0;
  double rmsa_alpha = 0.8;

  /// Delay-gradient (TIMELY) law.
  double dg_ewma_alpha = 0.3;    ///< RTT-diff EWMA weight.
  double dg_t_low_s = 0.02;      ///< RTT below: additive increase always.
  double dg_t_high_s = 0.25;     ///< RTT above: level-based MD.
  double dg_beta = 0.8;          ///< multiplicative-decrease weight.
  double dg_addstep_fps = 0.5;   ///< additive increase step, frames/s.
  int dg_hai_after = 5;          ///< falling-RTT run length entering HAI.
  int dg_hai_factor = 5;         ///< HAI multiplier on the additive step.
  double dg_min_rtt_s = 1e-3;    ///< gradient normalization floor.
  /// Offered-rate ceiling as a multiple of the achieved rate. TIMELY's
  /// rate is an end-to-end pacing rate: offering far beyond what the path
  /// demonstrably delivers only feeds the queue, so additive increase is
  /// tethered to the measured drain rate plus this headroom.
  double dg_headroom = 1.15;
  /// Upward-probe gate: the queue counts as empty when the last RTT is
  /// within this factor of the minimum RTT seen (TIMELY's RTT-above-min
  /// is the queue-depth estimate).
  double dg_probe_rtt_factor = 1.5;

  /// Trendline (GCC-style) law.
  int tl_window = 20;                ///< regression window, samples.
  double tl_smoothing = 0.6;         ///< delay EWMA retention weight.
  double tl_slope_threshold = 0.02;  ///< overuse slope, delay-s per second.
  double tl_beta = 0.85;             ///< MD factor on overuse.
  double tl_addstep_fps = 0.5;       ///< additive increase step, frames/s.
  /// Offered-rate ceiling as a multiple of the achieved (incoming) rate —
  /// GCC caps the target bitrate relative to the incoming-rate estimate.
  double tl_headroom = 1.5;
};

/// The paper's Eq. 1 behind the pluggable interface. Wraps RmsaController
/// exactly the way web/session.hpp historically drove it: frame-rate
/// domain (window = 1, datagram_bytes = 1), the achieved rate as the
/// moving target g*, the offered rate as the measured goodput.
class RmsaPacingController final : public CongestionController {
 public:
  explicit RmsaPacingController(const ControllerConfig& config);

  double update(const CongestionSample& sample) override;
  void reset(double initial_interval_s, double min_interval_s,
             double max_interval_s) override;
  double interval_s() const override;
  std::string name() const override { return "rmsa"; }
  ControllerTelemetry telemetry() const override;

 private:
  ControllerConfig config_;
  std::unique_ptr<RmsaController> inner_;
  double last_rtt_s_ = -1.0;
};

/// TIMELY-style RTT-gradient controller over the session frame rate.
class DelayGradientController final : public CongestionController {
 public:
  explicit DelayGradientController(const ControllerConfig& config);

  double update(const CongestionSample& sample) override;
  void reset(double initial_interval_s, double min_interval_s,
             double max_interval_s) override;
  double interval_s() const override;
  bool paces_all_tiers() const override { return true; }
  bool probe_ok() const override;
  std::string name() const override { return "gradient"; }
  ControllerTelemetry telemetry() const override;

  /// Normalized RTT gradient after the last sample (unit-free).
  double gradient() const { return gradient_; }

 private:
  double clamp_rate(double rate_fps) const;

  ControllerConfig config_;
  double min_interval_s_ = 1e-3;
  double max_interval_s_ = 2.0;
  double rate_fps_ = 1.0;
  double prev_rtt_s_ = -1.0;
  double last_rtt_s_ = -1.0;
  double min_rtt_s_ = -1.0;
  double rtt_diff_ewma_s_ = 0.0;
  double gradient_ = 0.0;
  int negative_run_ = 0;
};

/// GCC-style trendline estimator: least-squares slope of the smoothed
/// delay series drives an overuse detector driving AIMD on the frame rate.
class TrendlineController final : public CongestionController {
 public:
  explicit TrendlineController(const ControllerConfig& config);

  double update(const CongestionSample& sample) override;
  void reset(double initial_interval_s, double min_interval_s,
             double max_interval_s) override;
  double interval_s() const override;
  bool paces_all_tiers() const override { return true; }
  bool probe_ok() const override { return !overusing_; }
  std::string name() const override { return "trendline"; }
  ControllerTelemetry telemetry() const override;

  /// Fitted delay slope after the last sample, delay-seconds per second.
  double slope() const { return slope_; }

 private:
  double clamp_rate(double rate_fps) const;

  ControllerConfig config_;
  double min_interval_s_ = 1e-3;
  double max_interval_s_ = 2.0;
  double rate_fps_ = 1.0;
  double smoothed_delay_s_ = -1.0;
  double last_rtt_s_ = -1.0;
  double slope_ = 0.0;
  bool overusing_ = false;
  std::deque<std::pair<double, double>> window_;  // (now_s, smoothed delay)
};

/// Build the configured controller. The returned controller still needs a
/// reset() with the session's interval bounds before the first update().
std::unique_ptr<CongestionController> make_controller(
    const ControllerConfig& config);

}  // namespace ricsa::transport
