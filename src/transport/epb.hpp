// Effective path bandwidth (EPB) estimation, Section 4.3 (Eq. 3).
//
// "The active measurement technique generates a set of test messages of
// various sizes, sends them to a destination node through a transport channel
// such as a TCP flow, and measures the end-to-end delays, on which we apply a
// linear regression to estimate the EPB": d(P, r) ~= r / EPB(P) + d0.
//
// The regression slope is 1/EPB; the intercept estimates the minimum path
// delay (propagation + fixed processing). These two numbers are exactly what
// the DP mapper's transport-time terms consume.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "netsim/network.hpp"
#include "transport/datagram_transport.hpp"

namespace ricsa::transport {

struct EpbResult {
  /// Estimated effective path bandwidth, bytes/second (1 / slope).
  double epb_Bps = 0.0;
  /// Estimated fixed path delay d0, seconds (regression intercept, >= 0).
  double min_delay_s = 0.0;
  double r_squared = 0.0;
  int probes = 0;
  /// Raw (size, delay) samples for inspection.
  std::vector<std::pair<std::size_t, double>> samples;
};

struct EpbOptions {
  /// Probe message sizes. Defaults span 64 KB .. 4 MB.
  std::vector<std::size_t> probe_sizes = {64 * 1024,  256 * 1024, 512 * 1024,
                                          1024 * 1024, 2 * 1024 * 1024,
                                          4 * 1024 * 1024};
  /// Repetitions per size (delays are averaged).
  int repeats = 2;
  FlowConfig flow;
  /// Controller factory for the probe flows; defaults to an AIMD ("TCP
  /// flow") channel as in the paper.
  std::function<std::unique_ptr<RateController>()> make_controller;
};

/// Asynchronously measures EPB from src to dst inside the simulation; calls
/// done(result) when all probes complete. The caller must keep the returned
/// object alive until then.
class EpbEstimator {
 public:
  EpbEstimator(netsim::Network& net, netsim::NodeId src, netsim::NodeId dst,
               EpbOptions options = {});

  void run(std::function<void(const EpbResult&)> done);

 private:
  void next_probe();

  netsim::Network& net_;
  netsim::NodeId src_;
  netsim::NodeId dst_;
  EpbOptions options_;
  std::function<void(const EpbResult&)> done_;
  std::vector<std::pair<std::size_t, double>> samples_;
  std::size_t size_index_ = 0;
  int repeat_index_ = 0;
  netsim::SimTime probe_start_ = 0.0;
  Flow active_flow_;
};

/// Pure computation: fit Eq. 3 to (bytes, seconds) samples.
EpbResult fit_epb(const std::vector<std::pair<std::size_t, double>>& samples);

}  // namespace ricsa::transport
