#include "transport/congestion_controller.hpp"

#include <algorithm>
#include <cmath>

namespace ricsa::transport {
namespace {

/// The delay signal a law steers on: the measured round trip when the
/// transport produced one, else the kernel-drain time (an SSE stream whose
/// reader stalls shows backpressure there first), else nothing.
double delay_signal(const CongestionSample& sample) {
  if (sample.rtt_s >= 0.0) return sample.rtt_s;
  if (sample.drain_s >= 0.0) return sample.drain_s;
  return -1.0;
}

}  // namespace

const char* controller_kind_name(ControllerKind kind) {
  switch (kind) {
    case ControllerKind::kRmsa:
      return "rmsa";
    case ControllerKind::kDelayGradient:
      return "gradient";
    case ControllerKind::kTrendline:
      return "trendline";
  }
  return "rmsa";
}

bool parse_controller_kind(const std::string& name, ControllerKind* out) {
  if (name == "rmsa") {
    *out = ControllerKind::kRmsa;
  } else if (name == "gradient" || name == "delay-gradient" ||
             name == "timely") {
    *out = ControllerKind::kDelayGradient;
  } else if (name == "trendline" || name == "gcc") {
    *out = ControllerKind::kTrendline;
  } else {
    return false;
  }
  return true;
}

// ------------------------------------------------------------------ RMSA --

RmsaPacingController::RmsaPacingController(const ControllerConfig& config)
    : config_(config) {
  reset(0.2, 0.2, 1.0);
}

void RmsaPacingController::reset(double initial_interval_s,
                                 double min_interval_s,
                                 double max_interval_s) {
  // Re-initializing restarts the Robbins-Monro gain schedule — the right
  // move whenever conditions changed (new tier, upward probe): the decayed
  // gain of the old schedule would barely track the new regime.
  RmsaConfig rmsa;
  rmsa.gain_a = config_.rmsa_gain_a;
  rmsa.alpha = config_.rmsa_alpha;
  // Frame-rate domain (the paper's Eq. 1 measures g in datagrams/s;
  // frames/s is the web analogue): one frame per burst.
  rmsa.window = 1;
  rmsa.datagram_bytes = 1;
  rmsa.initial_sleep_s =
      std::clamp(initial_interval_s, min_interval_s, max_interval_s);
  rmsa.min_sleep_s = min_interval_s;
  rmsa.max_sleep_s = max_interval_s;
  inner_ = std::make_unique<RmsaController>(rmsa);
}

double RmsaPacingController::update(const CongestionSample& sample) {
  const double delay = delay_signal(sample);
  if (delay >= 0.0) last_rtt_s_ = delay;
  // Eq. 1 with the web-layer roles: the rate under our control is the
  // offered frame rate and the reference it must converge to is the
  // client's achieved frame rate — offering more than the client drains
  // lengthens the sleep, offering less shortens it, and the fixed point is
  // offered == achieved (serve at the client's pace).
  inner_->set_target(sample.achieved_fps);
  return inner_->update(RateFeedback{sample.offered_fps, sample.loss});
}

double RmsaPacingController::interval_s() const {
  return inner_->sleep_time();
}

ControllerTelemetry RmsaPacingController::telemetry() const {
  ControllerTelemetry t;
  t.last_rtt_s = last_rtt_s_;
  return t;
}

// -------------------------------------------------- delay gradient (TIMELY)

DelayGradientController::DelayGradientController(const ControllerConfig& config)
    : config_(config) {
  reset(0.2, 0.2, 2.0);
}

void DelayGradientController::reset(double initial_interval_s,
                                    double min_interval_s,
                                    double max_interval_s) {
  min_interval_s_ = std::max(min_interval_s, 1e-6);
  max_interval_s_ = std::max(max_interval_s, min_interval_s_);
  rate_fps_ = 1.0 / std::clamp(initial_interval_s, min_interval_s_,
                               max_interval_s_);
  prev_rtt_s_ = -1.0;
  last_rtt_s_ = -1.0;
  // min_rtt_s_ survives reset() on purpose: the minimum RTT is a property
  // of the path, not of the law's state, and the probe gate needs it
  // immediately after a tier change (re-learning it at a congested level
  // would declare the standing queue "empty").
  rtt_diff_ewma_s_ = 0.0;
  gradient_ = 0.0;
  negative_run_ = 0;
}

double DelayGradientController::clamp_rate(double rate_fps) const {
  return std::clamp(rate_fps, 1.0 / max_interval_s_, 1.0 / min_interval_s_);
}

double DelayGradientController::update(const CongestionSample& sample) {
  const double rtt = delay_signal(sample);
  if (sample.loss) {
    // Delay-blind failure signal (drop, disconnect mid-write): treat like a
    // full-weight gradient excursion.
    rate_fps_ = clamp_rate(rate_fps_ * (1.0 - config_.dg_beta * 0.5));
    negative_run_ = 0;
    return 1.0 / rate_fps_;
  }
  if (rtt < 0.0) {
    // No delay signal from this transport: hold the rate (the tier/streak
    // machinery above still reacts to utilization).
    return 1.0 / rate_fps_;
  }
  last_rtt_s_ = rtt;
  min_rtt_s_ = min_rtt_s_ < 0.0 ? rtt : std::min(min_rtt_s_, rtt);
  if (prev_rtt_s_ < 0.0) {
    prev_rtt_s_ = rtt;
    return 1.0 / rate_fps_;
  }
  const double diff = rtt - prev_rtt_s_;
  prev_rtt_s_ = rtt;
  rtt_diff_ewma_s_ = (1.0 - config_.dg_ewma_alpha) * rtt_diff_ewma_s_ +
                     config_.dg_ewma_alpha * diff;
  // Normalize the smoothed per-sample RTT change by the minimum RTT seen:
  // the TIMELY gradient, unit-free.
  const double floor_rtt =
      std::max(config_.dg_min_rtt_s, min_rtt_s_ > 0.0 ? min_rtt_s_ : 0.0);
  gradient_ = rtt_diff_ewma_s_ / floor_rtt;

  if (rtt < config_.dg_t_low_s) {
    // Below the low guard band the queue is empty regardless of gradient:
    // additive increase.
    negative_run_ = 0;
    rate_fps_ = clamp_rate(rate_fps_ + config_.dg_addstep_fps);
  } else if (rtt > config_.dg_t_high_s) {
    // Above the high guard band the level itself is the emergency; decrease
    // proportionally to how far past the band the RTT sits.
    negative_run_ = 0;
    rate_fps_ = clamp_rate(
        rate_fps_ * (1.0 - config_.dg_beta * (1.0 - config_.dg_t_high_s / rtt)));
  } else if (gradient_ <= 0.0) {
    // Falling (or flat) RTT: additive increase, hyperactive after a run of
    // consecutive falling samples (TIMELY's HAI mode).
    ++negative_run_;
    const double step = negative_run_ >= config_.dg_hai_after
                            ? config_.dg_addstep_fps * config_.dg_hai_factor
                            : config_.dg_addstep_fps;
    rate_fps_ = clamp_rate(rate_fps_ + step);
  } else {
    // Rising RTT: multiplicative decrease weighted by the gradient — the
    // queue is building and throughput has not collapsed yet, which is
    // exactly the window the utilization-only law misses.
    negative_run_ = 0;
    rate_fps_ =
        clamp_rate(rate_fps_ * (1.0 - config_.dg_beta * std::min(gradient_, 1.0)));
  }
  if (sample.achieved_fps > 0.0) {
    // Tether the pacing rate to the drain rate: a long-poll/SSE session
    // cannot push the path faster than the client drains it, so offering
    // beyond achieved * headroom only builds queue. This is what keeps the
    // offered/achieved ratio near 1 at *every* tier — the tier machinery
    // then sees steady utilization instead of a collapse-and-flap cycle.
    rate_fps_ = clamp_rate(
        std::min(rate_fps_, sample.achieved_fps * config_.dg_headroom));
  }
  return 1.0 / rate_fps_;
}

double DelayGradientController::interval_s() const { return 1.0 / rate_fps_; }

bool DelayGradientController::probe_ok() const {
  // Probing up while delay still rises would re-create the flap the law
  // exists to remove. Beyond the gradient, require the queue itself to be
  // empty: RTT-above-min is TIMELY's queue-depth estimate, so a last RTT
  // well above the path minimum means a standing queue an upgrade would
  // only deepen — even if the gradient is momentarily flat.
  if (gradient_ > 0.0) return false;
  if (last_rtt_s_ < 0.0 || min_rtt_s_ < 0.0) return true;
  const double empty_rtt = std::max(
      config_.dg_t_low_s, min_rtt_s_ * config_.dg_probe_rtt_factor);
  return last_rtt_s_ <= empty_rtt;
}

ControllerTelemetry DelayGradientController::telemetry() const {
  ControllerTelemetry t;
  t.last_rtt_s = last_rtt_s_;
  t.gradient = gradient_;
  return t;
}

// -------------------------------------------------------- trendline (GCC) --

TrendlineController::TrendlineController(const ControllerConfig& config)
    : config_(config) {
  reset(0.2, 0.2, 2.0);
}

void TrendlineController::reset(double initial_interval_s,
                                double min_interval_s,
                                double max_interval_s) {
  min_interval_s_ = std::max(min_interval_s, 1e-6);
  max_interval_s_ = std::max(max_interval_s, min_interval_s_);
  rate_fps_ = 1.0 / std::clamp(initial_interval_s, min_interval_s_,
                               max_interval_s_);
  smoothed_delay_s_ = -1.0;
  last_rtt_s_ = -1.0;
  slope_ = 0.0;
  overusing_ = false;
  window_.clear();
}

double TrendlineController::clamp_rate(double rate_fps) const {
  return std::clamp(rate_fps, 1.0 / max_interval_s_, 1.0 / min_interval_s_);
}

double TrendlineController::update(const CongestionSample& sample) {
  const double delay = delay_signal(sample);
  if (sample.loss) {
    rate_fps_ = clamp_rate(rate_fps_ * config_.tl_beta);
    return 1.0 / rate_fps_;
  }
  if (delay < 0.0) return 1.0 / rate_fps_;
  last_rtt_s_ = delay;
  smoothed_delay_s_ = smoothed_delay_s_ < 0.0
                          ? delay
                          : config_.tl_smoothing * smoothed_delay_s_ +
                                (1.0 - config_.tl_smoothing) * delay;
  window_.emplace_back(sample.now_s, smoothed_delay_s_);
  while (window_.size() > static_cast<std::size_t>(config_.tl_window)) {
    window_.pop_front();
  }
  if (window_.size() >= 3) {
    // Least-squares slope of smoothed delay over arrival time: positive
    // trend = the bottleneck queue is filling.
    double mean_t = 0.0, mean_d = 0.0;
    for (const auto& [t, d] : window_) {
      mean_t += t;
      mean_d += d;
    }
    mean_t /= static_cast<double>(window_.size());
    mean_d /= static_cast<double>(window_.size());
    double num = 0.0, den = 0.0;
    for (const auto& [t, d] : window_) {
      num += (t - mean_t) * (d - mean_d);
      den += (t - mean_t) * (t - mean_t);
    }
    slope_ = den > 0.0 ? num / den : 0.0;
  }
  if (slope_ > config_.tl_slope_threshold) {
    overusing_ = true;
    // GCC's decrease acts on the *incoming-rate estimate*, not the target:
    // beta times what the path actually delivered. Decreasing the target
    // multiplicatively against itself ratchets to the floor whenever the
    // delay series stays noisy, regardless of real capacity.
    const double incoming =
        sample.achieved_fps > 0.0 ? sample.achieved_fps : rate_fps_;
    rate_fps_ =
        clamp_rate(std::min(rate_fps_, config_.tl_beta * incoming));
    // A decrease invalidates the trend it was computed from: rebuild the
    // regression window (and the fitted slope) before the next decrease so
    // one queue excursion costs one MD, not one per sample.
    window_.clear();
    slope_ = 0.0;
  } else if (slope_ < -config_.tl_slope_threshold) {
    // Underuse: the queue is draining after an overuse episode. Hold and
    // let the drain finish.
    overusing_ = false;
  } else {
    overusing_ = false;
    rate_fps_ = clamp_rate(rate_fps_ + config_.tl_addstep_fps);
  }
  if (sample.achieved_fps > 0.0) {
    // Cap the target relative to the incoming-rate estimate (GCC's
    // 1.5x-incoming ceiling): probing is allowed, runaway targets are not.
    rate_fps_ = clamp_rate(
        std::min(rate_fps_, sample.achieved_fps * config_.tl_headroom));
  }
  return 1.0 / rate_fps_;
}

double TrendlineController::interval_s() const { return 1.0 / rate_fps_; }

ControllerTelemetry TrendlineController::telemetry() const {
  ControllerTelemetry t;
  t.last_rtt_s = last_rtt_s_;
  t.gradient = slope_;
  return t;
}

std::unique_ptr<CongestionController> make_controller(
    const ControllerConfig& config) {
  switch (config.kind) {
    case ControllerKind::kDelayGradient:
      return std::make_unique<DelayGradientController>(config);
    case ControllerKind::kTrendline:
      return std::make_unique<TrendlineController>(config);
    case ControllerKind::kRmsa:
      break;
  }
  return std::make_unique<RmsaPacingController>(config);
}

}  // namespace ricsa::transport
