// Sliding-window goodput measurement.
//
// "The goodput rate ... is the data receiving rate at the receiver ignoring
// the duplicates" (Section 3). The receiver feeds every *new* payload byte
// into this meter; the current rate is reported back to the sender in ACKs
// and drives the Robbins-Monro update.
#pragma once

#include <cstdint>
#include <deque>

#include "netsim/simulator.hpp"

namespace ricsa::transport {

class GoodputMeter {
 public:
  /// window_s: averaging horizon. Short windows track transients (and jitter);
  /// the paper's stabilization target is judged over ~100 ms - 1 s scales.
  explicit GoodputMeter(double window_s = 0.5) : window_s_(window_s) {}

  /// Anchor the warm-up epoch: rate() averages over the time since start()
  /// (capped at the window), so idle time before/between the first payloads
  /// counts against the rate. Without an explicit start the first record()
  /// anchors it. Idempotent; only the first call wins.
  void start(netsim::SimTime now);

  void record(netsim::SimTime now, std::size_t bytes);

  /// Bytes per second over the trailing window ending at `now`. During
  /// warm-up (less than a full window since the first record) the divisor is
  /// the elapsed time, not the full window — otherwise every fresh receiver
  /// looks slower than it is until the window fills.
  double rate(netsim::SimTime now);

  std::uint64_t total_bytes() const noexcept { return total_; }

 private:
  void evict(netsim::SimTime now);

  double window_s_;
  std::deque<std::pair<netsim::SimTime, std::size_t>> events_;
  std::size_t window_bytes_ = 0;
  std::uint64_t total_ = 0;
  netsim::SimTime first_record_ = 0;
  bool started_ = false;
};

}  // namespace ricsa::transport
