#include "transport/rate_controller.hpp"

#include <cmath>

namespace ricsa::transport {

RmsaController::RmsaController(RmsaConfig config)
    : config_(config), sleep_s_(config.initial_sleep_s) {}

double RmsaController::update(const RateFeedback& feedback) {
  // Eq. 1:  Ts(t_{n+1}) = 1 / ( 1/Ts(t_n) - a_n * (g(t_n) - g*) )
  // with a_n = a / (Wc * n^alpha). 1/Ts is the burst frequency; dividing the
  // byte-rate error by the window payload (Wc * datagram_bytes) converts it
  // into a burst-frequency correction.
  const double window_payload = static_cast<double>(config_.window) *
                                static_cast<double>(config_.datagram_bytes);
  double gain = config_.gain_a /
                (window_payload * std::pow(static_cast<double>(n_), config_.alpha));
  if (config_.gain_floor > 0.0) {
    gain = std::max(gain, config_.gain_floor / window_payload);
  }
  ++n_;

  const double error = feedback.goodput_Bps - config_.target_Bps;
  const double inv_sleep = 1.0 / sleep_s_ - gain * error;
  if (inv_sleep <= 1.0 / config_.max_sleep_s) {
    sleep_s_ = config_.max_sleep_s;  // rate driven to (or below) the floor
  } else {
    sleep_s_ = std::clamp(1.0 / inv_sleep, config_.min_sleep_s,
                          config_.max_sleep_s);
  }
  return sleep_s_;
}

AimdController::AimdController(AimdConfig config)
    : config_(config), rate_Bps_(config.initial_rate_Bps) {}

double AimdController::sleep_from_rate(double rate_Bps) const {
  // Rate = window_payload / Ts  =>  Ts = window_payload / rate. (Tc is paid
  // on top by the sender; AIMD's coarse dynamics dominate regardless.)
  const double window_payload = static_cast<double>(config_.window) *
                                static_cast<double>(config_.datagram_bytes);
  const double sleep = window_payload / rate_Bps;
  return std::clamp(sleep, config_.min_sleep_s, config_.max_sleep_s);
}

double AimdController::update(const RateFeedback& feedback) {
  if (feedback.loss_detected) {
    rate_Bps_ *= config_.decrease_factor;
  } else {
    rate_Bps_ += config_.increase_Bps;
  }
  rate_Bps_ = std::clamp(rate_Bps_, config_.min_rate_Bps, config_.max_rate_Bps);
  return sleep_from_rate(rate_Bps_);
}

}  // namespace ricsa::transport
