#include "transport/datagram_transport.hpp"

#include <algorithm>
#include <atomic>

#include "util/bytes.hpp"

namespace ricsa::transport {

int allocate_port() {
  static std::atomic<int> next{1000};
  return next++;
}

// ------------------------------------------------------------- Receiver ----

TransportReceiver::TransportReceiver(netsim::Network& net, netsim::NodeId node,
                                     int data_port, netsim::NodeId peer,
                                     int ack_port, FlowConfig config)
    : net_(net), node_(node), data_port_(data_port), peer_(peer),
      ack_port_(ack_port), config_(config),
      liveness_(std::make_shared<bool>(true)) {
  // Warm-up epoch at transfer start: the goodput reported in early ACKs
  // averages over the whole observation (including pre-arrival latency and
  // inter-burst gaps), not just the in-burst receive rate.
  meter_.start(net_.simulator().now());
  net_.listen(node_, data_port_,
              [this](const netsim::Packet& p) { on_datagram(p); });
}

TransportReceiver::~TransportReceiver() {
  *liveness_ = false;
  alive_ = false;
  net_.unlisten(node_, data_port_);
}

void TransportReceiver::expect(std::uint64_t total_datagrams,
                               std::function<void(netsim::SimTime)> on_complete) {
  total_ = total_datagrams;
  on_complete_ = std::move(on_complete);
  completed_ = false;
  if (total_ == 0 && on_complete_) {
    completed_ = true;
    auto alive = liveness_;
    net_.simulator().after(0, [this, alive] {
      if (*alive && on_complete_) on_complete_(net_.simulator().now());
    });
  }
}

void TransportReceiver::on_datagram(const netsim::Packet& p) {
  ++stats_.datagrams_received;
  const std::uint64_t seq = p.seq;
  if (seq < cum_ack_ || ooo_.count(seq)) {
    ++stats_.duplicates;
  } else {
    meter_.record(net_.simulator().now(), config_.datagram_payload);
    if (seq == cum_ack_) {
      ++cum_ack_;
      while (!ooo_.empty() && *ooo_.begin() == cum_ack_) {
        ooo_.erase(ooo_.begin());
        ++cum_ack_;
      }
    } else {
      ooo_.insert(seq);
    }
  }

  if (!completed_ && cum_ack_ >= total_) {
    completed_ = true;
    send_ack();  // final cumulative ACK lets the sender finish
    if (on_complete_) on_complete_(net_.simulator().now());
    return;
  }
  schedule_ack_timer();
}

void TransportReceiver::schedule_ack_timer() {
  if (ack_timer_armed_) return;
  ack_timer_armed_ = true;
  auto alive = liveness_;
  net_.simulator().after(config_.ack_interval_s, [this, alive] {
    if (!*alive) return;
    ack_timer_armed_ = false;
    send_ack();
  });
}

void TransportReceiver::send_ack() {
  ++stats_.acks_sent;
  last_ack_time_ = net_.simulator().now();

  util::ByteWriter w;
  w.u64(cum_ack_);
  w.f64(meter_.rate(net_.simulator().now()));

  // Collect the holes between cum_ack_ and the highest out-of-order seq.
  std::vector<std::uint64_t> nacks;
  std::uint64_t expect_seq = cum_ack_;
  for (const std::uint64_t got : ooo_) {
    for (std::uint64_t missing = expect_seq;
         missing < got && nacks.size() < config_.max_nacks_per_ack; ++missing) {
      nacks.push_back(missing);
    }
    expect_seq = got + 1;
    if (nacks.size() >= config_.max_nacks_per_ack) break;
  }
  w.u32(static_cast<std::uint32_t>(nacks.size()));
  for (const std::uint64_t n : nacks) w.u64(n);

  netsim::Packet ack;
  ack.src = node_;
  ack.dst = peer_;
  ack.port = ack_port_;
  ack.wire_bytes = config_.ack_wire_bytes + 8 * nacks.size();
  ack.payload = w.take();
  net_.send(std::move(ack));
}

// --------------------------------------------------------------- Sender ----

TransportSender::TransportSender(netsim::Network& net, netsim::NodeId src,
                                 netsim::NodeId dst, int data_port,
                                 int ack_port, FlowConfig config,
                                 std::unique_ptr<RateController> controller)
    : net_(net), src_(src), dst_(dst), data_port_(data_port),
      ack_port_(ack_port), config_(config), controller_(std::move(controller)),
      liveness_(std::make_shared<bool>(true)) {
  net_.listen(src_, ack_port_, [this](const netsim::Packet& p) { on_ack(p); });
}

TransportSender::~TransportSender() {
  *liveness_ = false;
  net_.unlisten(src_, ack_port_);
}

std::uint64_t TransportSender::datagram_count(std::size_t bytes) const {
  if (bytes == 0) return 1;
  return (bytes + config_.datagram_payload - 1) / config_.datagram_payload;
}

void TransportSender::send_message(std::size_t bytes,
                                   std::function<void(netsim::SimTime)> on_complete) {
  total_ = datagram_count(bytes);
  next_seq_ = 0;
  cum_ack_seen_ = 0;
  unacked_.clear();
  retx_queue_.clear();
  retx_pending_.clear();
  on_complete_ = std::move(on_complete);
  running_ = true;
  last_progress_ = net_.simulator().now();
  burst();
}

void TransportSender::start_stream() {
  total_ = UINT64_MAX;
  next_seq_ = 0;
  cum_ack_seen_ = 0;
  unacked_.clear();
  retx_queue_.clear();
  retx_pending_.clear();
  running_ = true;
  last_progress_ = net_.simulator().now();
  burst();
}

void TransportSender::stop() { running_ = false; }

void TransportSender::send_datagram(std::uint64_t seq) {
  ++stats_.datagrams_sent;
  netsim::Packet p;
  p.src = src_;
  p.dst = dst_;
  p.port = data_port_;
  p.seq = seq;
  p.flow = static_cast<std::uint64_t>(data_port_);
  p.wire_bytes = config_.datagram_payload + config_.header_bytes;
  net_.send(std::move(p));
}

void TransportSender::burst() {
  burst_scheduled_ = false;
  if (!running_) return;

  std::vector<std::uint64_t> batch;
  batch.reserve(static_cast<std::size_t>(config_.window));
  // Retransmissions first (they gate the receiver's cumulative progress).
  while (batch.size() < static_cast<std::size_t>(config_.window) &&
         !retx_queue_.empty()) {
    const std::uint64_t seq = retx_queue_.front();
    retx_queue_.pop_front();
    retx_pending_.erase(seq);
    if (!unacked_.count(seq)) continue;  // acked since being queued
    batch.push_back(seq);
    ++stats_.retransmissions;
  }
  while (batch.size() < static_cast<std::size_t>(config_.window) &&
         next_seq_ < total_) {
    unacked_.insert(next_seq_);
    batch.push_back(next_seq_++);
  }

  if (batch.empty()) {
    // Nothing to send right now; wait for ACK/RTO to wake us up.
    arm_rto();
    return;
  }

  for (const std::uint64_t seq : batch) send_datagram(seq);
  ++stats_.bursts;

  // Next burst after Tc (window serialization at the first-hop rate) + Ts.
  const double link_bw = net_.link(src_, dst_).config().bandwidth_Bps;
  const double wire = static_cast<double>(
      batch.size() * (config_.datagram_payload + config_.header_bytes));
  const double tc = wire / link_bw;
  const double ts = controller_->sleep_time();
  burst_scheduled_ = true;
  auto alive = liveness_;
  net_.simulator().after(tc + ts, [this, alive] {
    if (*alive) burst();
  });
  arm_rto();
}

void TransportSender::arm_rto() {
  if (rto_armed_ || !running_) return;
  rto_armed_ = true;
  auto alive = liveness_;
  net_.simulator().after(config_.rto_s, [this, alive] {
    if (!*alive) return;
    rto_armed_ = false;
    if (!running_) return;
    const netsim::SimTime now = net_.simulator().now();
    if (!unacked_.empty() && now - last_progress_ >= config_.rto_s) {
      for (const std::uint64_t seq : unacked_) {
        if (retx_pending_.insert(seq).second) retx_queue_.push_back(seq);
      }
      last_progress_ = now;  // back off: one full requeue per quiet RTO
    }
    if (!burst_scheduled_) {
      burst();
    } else {
      arm_rto();
    }
  });
}

void TransportSender::on_ack(const netsim::Packet& p) {
  ++stats_.acks_received;
  util::ByteReader r(p.payload);
  const std::uint64_t cum = r.u64();
  const double goodput = r.f64();
  const std::uint32_t nack_count = r.u32();
  bool new_nacks = false;
  for (std::uint32_t i = 0; i < nack_count; ++i) {
    const std::uint64_t seq = r.u64();
    if (unacked_.count(seq) && retx_pending_.insert(seq).second) {
      retx_queue_.push_back(seq);
      new_nacks = true;
    }
  }

  if (cum > cum_ack_seen_) {
    cum_ack_seen_ = cum;
    last_progress_ = net_.simulator().now();
    unacked_.erase(unacked_.begin(), unacked_.lower_bound(cum));
  }

  RateFeedback fb;
  fb.goodput_Bps = goodput;
  fb.loss_detected = nack_count > 0;
  controller_->update(fb);

  if (total_ != UINT64_MAX && cum >= total_ && running_) {
    running_ = false;
    if (on_complete_) on_complete_(net_.simulator().now());
    return;
  }
  if (new_nacks && !burst_scheduled_ && running_) burst();
}

// ----------------------------------------------------------------- Flow ----

Flow make_message_flow(netsim::Network& net, netsim::NodeId src,
                       netsim::NodeId dst, std::size_t bytes,
                       std::unique_ptr<RateController> controller,
                       std::function<void(netsim::SimTime)> on_complete,
                       FlowConfig config) {
  const int data_port = allocate_port();
  const int ack_port = allocate_port();
  Flow flow;
  flow.receiver = std::make_unique<TransportReceiver>(net, dst, data_port, src,
                                                      ack_port, config);
  flow.sender = std::make_unique<TransportSender>(
      net, src, dst, data_port, ack_port, config, std::move(controller));
  flow.receiver->expect(flow.sender->datagram_count(bytes));
  flow.sender->send_message(bytes, std::move(on_complete));
  return flow;
}

}  // namespace ricsa::transport
