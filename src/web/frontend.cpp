#include "web/frontend.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <string>

#include "util/strings.hpp"

namespace ricsa::web {

namespace {

/// The embedded dashboard: no frameworks. Prefers the SSE push channel
/// (/api/stream — one request, events forever) and falls back to plain XHR
/// long-polling when EventSource is missing or the stream fails before its
/// first event. Both transports ask for delta=1 and merge partial state
/// updates client-side — only the UI elements that contain new information
/// change, the partial-update behaviour the paper highlights about Ajax
/// UIs.
constexpr const char* kDashboardHtml = R"HTML(<!doctype html>
<html><head><meta charset="utf-8"><title>RICSA monitor</title>
<style>
 body{font-family:sans-serif;background:#101018;color:#dde;margin:20px}
 #frame{border:1px solid #446;image-rendering:pixelated;width:384px;height:384px}
 .row{margin:6px 0} label{display:inline-block;width:120px}
 input{width:80px} button{margin-left:4px}
 #status{white-space:pre;font-family:monospace;font-size:12px;color:#9fb}
</style></head><body>
<h2>RICSA &mdash; computational monitoring &amp; steering</h2>
<div style="display:flex;gap:24px">
 <div><canvas id="frame" width="384" height="384"></canvas></div>
 <div>
  <div class="row"><label>watch view</label>
   <select id="viewsel"><option>main</option></select></div>
  <div class="row"><label>variable</label>
   <select id="variable"><option>density</option><option>pressure</option>
   <option>velocity</option><option>energy</option></select></div>
  <div class="row"><label>isovalue</label><input id="isovalue" value="0.5"/></div>
  <div class="row"><label>azimuth</label><input id="azimuth" value="0.7"/></div>
  <div class="row"><label>zoom</label><input id="zoom" value="1.0"/></div>
  <div class="row"><label>octant</label><input id="octant" value="-1"/></div>
  <div class="row"><button onclick="postView()">apply view</button></div>
  <hr/>
  <div class="row"><label>parameter</label><input id="pname" value="gamma"/></div>
  <div class="row"><label>value</label><input id="pvalue" value="1.4"/></div>
  <div class="row"><button onclick="steer()">steer</button></div>
 </div>
</div>
<div id="status">connecting...</div>
<script>
// Sharded hubs: every published view is its own server-side stream with
// its own seq space and tile-delta chain, so the dashboard keeps one
// cursor record per view — switching back to a view resumes its stream
// instead of restarting it.
//   since      last seq received (the poll cursor)
//   composited seq of the frame last painted for this view (what tile
//              deltas patch)
//   needFull   resync escape hatch: when a delta cannot be composited, the
//              next poll asks for a complete frame with full=1
let currentView = 'main';
const viewRecs = {};
function rec(name){
  if (!viewRecs[name]) {
    viewRecs[name] = {since: 0, composited: 0, needFull: true, state: {},
                      tier: 'full'};
  }
  return viewRecs[name];
}
let tier = 'full';
// Frame generation: image decodes are async, so a slow decode from frame N
// must never paint over a frame accepted after it — stale generations are
// dropped on decode completion. A view switch also bumps it, so decodes of
// the previous view never paint over the new one. Within the surviving
// generation the composite cursor is assigned *unconditionally* (never
// max()-guarded): after a server restart the resync frame carries a
// smaller seq than the stale cursor, and refusing to move backwards would
// wedge the client out of tile deltas forever.
let frameGen = 0;
// Poll epoch: a view switch aborts the in-flight long-poll and starts a
// fresh loop; the aborted handler sees a stale epoch and exits instead of
// double-looping.
let pollEpoch = 0;
let pollXhr = null;
// Preferred transport: the SSE push channel when the browser has
// EventSource; demoted to 'poll' the moment a stream fails before its
// first event (startStream's negotiation).
let transport = (typeof EventSource !== 'undefined') ? 'sse' : 'poll';
let es = null;
const canvas = document.getElementById('frame');
const ctx = canvas.getContext('2d');
// Per-client session identity: the server meters this client's goodput and
// adapts its quality tier / frame rate (the paper's network optimization,
// applied per browser). One identity across every view this browser
// watches — the server paces the client, not each stream.
const client = 'c' + Math.random().toString(36).slice(2, 10) +
               Date.now().toString(36);
function drawFull(v, b64, seq){
  const gen = ++frameGen;
  const im = new Image();
  im.onload = function(){
    if (gen !== frameGen) return;  // a newer frame superseded this decode
    if (canvas.width !== im.width || canvas.height !== im.height) {
      canvas.width = im.width; canvas.height = im.height;
    }
    ctx.drawImage(im, 0, 0);
    v.composited = seq;
    v.needFull = false;
  };
  im.onerror = function(){ v.needFull = true; };
  im.src = 'data:image/png;base64,' + b64;
}
function drawTiles(v, r){
  // Decode every tile first, then paint all of them in one synchronous
  // pass: the visible canvas never shows a partially patched frame, and
  // the composite cursor advances atomically with the paint. Any decode
  // failure falls back to full=1.
  const gen = ++frameGen;
  let pending = r.tiles.length;
  if (pending === 0) { v.composited = r.seq; return; }
  const decoded = new Array(pending);
  r.tiles.forEach(function(t, i){
    const im = new Image();
    im.onload = function(){
      if (gen !== frameGen) return;
      decoded[i] = im;
      if (--pending === 0) {
        r.tiles.forEach(function(t2, j){
          ctx.drawImage(decoded[j], t2.x, t2.y);
        });
        v.composited = r.seq;
      }
    };
    im.onerror = function(){ v.needFull = true; };
    im.src = 'data:image/png;base64,' + t.png_b64;
  });
}
// One frame body — the transports carry identical JSON, so SSE events and
// poll responses land in the same handler.
function handleFrame(v, view, r){
  // Accept any non-timeout frame — including a resync whose seq is
  // *below* a stale cursor (server restarted — or the idle shard was
  // reaped and revived — and its seq re-counts from 1).
  if (!r.seq || r.timeout) return;
  // Delta responses carry only the changed keys; merge them.
  if (r.delta && r.seq === v.since + 1) Object.assign(v.state, r.state);
  else v.state = r.state;
  v.since = r.seq;
  if (r.tier) { tier = r.tier; v.tier = r.tier; }
  if (r.tiles) {
    // Tiles patch the frame named by base_seq; anything else on the
    // canvas would yield a franken-frame — resync instead.
    if (r.base_seq === v.composited) drawTiles(v, r);
    else v.needFull = true;
  } else if (r.image_b64) {
    drawFull(v, r.image_b64, r.seq);
  } else {
    // No tiles and no image: the frame's pixels are byte-identical
    // to what the canvas already shows (or this is a state-only
    // tier, where a later tier switch forces a full frame anyway) —
    // advance the composite cursor so the tile chain survives idle
    // frames instead of forcing a needless full resync. A decode
    // still in flight may re-assign its own (older) seq afterwards;
    // that costs at most one transient full resync.
    v.composited = r.seq;
  }
  document.getElementById('status').textContent =
      'view: ' + view + '  tier: ' + tier + ' (' + transport + ')\n' +
      JSON.stringify(v.state, null, 1);
}
function poll(){
  const epoch = pollEpoch;
  const view = currentView;
  const v = rec(view);
  const xhr = new XMLHttpRequest();
  pollXhr = xhr;
  // The cursor echoes the seq last *composited* for this view: the server
  // anchors tile deltas at the frame this client actually shows.
  xhr.open('GET', '/api/poll?since=' + v.since + '&delta=1&client=' + client +
           '&view=' + encodeURIComponent(view) +
           (v.needFull ? '&full=1' : ''), true);
  xhr.onload = function(){
    if (epoch !== pollEpoch) return;  // superseded by a view switch
    try { handleFrame(v, view, JSON.parse(xhr.responseText)); } catch(e) {}
    poll();
  };
  xhr.onerror = function(){
    if (epoch !== pollEpoch) return;
    setTimeout(function(){ if (epoch === pollEpoch) poll(); }, 1000);
  };
  xhr.send();
}
// Transport negotiation: one EventSource replaces the whole poll loop —
// same query contract, same bodies, one `data:` event per frame. Any
// failure before the first event means no server-side stream support (or a
// proxy eating chunked responses): fall back to long-poll for good. A
// failure *after* events flowed is a reap/restart; reconnect over SSE and
// take the stale-cursor resync.
function startStream(){
  const epoch = pollEpoch;
  const view = currentView;
  const v = rec(view);
  let gotEvent = false;
  es = new EventSource('/api/stream?since=' + v.since + '&delta=1&client=' +
                       client + '&view=' + encodeURIComponent(view) +
                       (v.needFull ? '&full=1' : ''));
  es.onmessage = function(e){
    if (epoch !== pollEpoch) return;
    gotEvent = true;
    try { handleFrame(v, view, JSON.parse(e.data)); } catch(err) {}
    if (v.needFull) {
      // A delta could not be composited mid-stream: reconnect asking the
      // first event to be a complete frame (the stream's full=1 resync).
      ++pollEpoch;
      es.close(); es = null;
      startTransport();
    }
  };
  es.onerror = function(){
    if (epoch !== pollEpoch) return;
    ++pollEpoch;
    es.close(); es = null;
    if (!gotEvent) transport = 'poll';
    setTimeout(function(){ startTransport(); }, gotEvent ? 250 : 0);
  };
}
function startTransport(){
  if (transport === 'sse') startStream(); else poll();
}
function switchView(){
  currentView = document.getElementById('viewsel').value;
  // The canvas holds another view's pixels: tile deltas must not patch
  // them. Ask for a complete frame and invalidate in-flight decodes.
  rec(currentView).needFull = true;
  ++frameGen;
  ++pollEpoch;
  if (pollXhr) pollXhr.abort();
  if (es) { es.close(); es = null; }
  startTransport();
}
function refreshViews(){
  // The registry's live shards populate the selector: what the publisher
  // declares is what a browser can watch.
  const xhr = new XMLHttpRequest();
  xhr.open('GET', '/api/stats', true);
  xhr.onload = function(){
    try {
      const names = Object.keys(JSON.parse(xhr.responseText).views || {});
      const sel = document.getElementById('viewsel');
      const have = {};
      for (let i = 0; i < sel.options.length; i++) {
        have[sel.options[i].value] = true;
      }
      names.forEach(function(n){
        if (!have[n]) {
          const opt = document.createElement('option');
          opt.value = n; opt.textContent = n;
          sel.appendChild(opt);
        }
      });
    } catch(e) {}
    setTimeout(refreshViews, 5000);
  };
  xhr.onerror = function(){ setTimeout(refreshViews, 5000); };
  xhr.send();
}
document.getElementById('viewsel').onchange = switchView;
refreshViews();
function steer(){
  const body = {};
  body[document.getElementById('pname').value] =
      parseFloat(document.getElementById('pvalue').value);
  const xhr = new XMLHttpRequest();
  xhr.open('POST', '/api/steer', true);
  xhr.send(JSON.stringify(body));
}
function postView(){
  const body = {
    variable: document.getElementById('variable').value,
    isovalue: parseFloat(document.getElementById('isovalue').value),
    azimuth: parseFloat(document.getElementById('azimuth').value),
    zoom: parseFloat(document.getElementById('zoom').value),
    octant: parseInt(document.getElementById('octant').value)
  };
  const xhr = new XMLHttpRequest();
  xhr.open('POST', '/api/view', true);
  xhr.send(JSON.stringify(body));
}
startTransport();
</script></body></html>)HTML";

}  // namespace

namespace {

PacingConfig pacing_of(const FrontEndConfig& config) {
  PacingConfig pacing = config.pacing;
  pacing.frame_interval_s = config.frame_interval_s;
  return pacing;
}

HubRegistry::Config registry_config_of(const FrontEndConfig& config,
                                       net::Reactor* reactor) {
  HubRegistry::Config registry;
  registry.hub.window = config.frame_window;
  registry.hub.raw_window = config.raw_window;
  registry.hub.workers = config.hub_workers;
  registry.hub.max_wait_s = config.poll_timeout_s;
  registry.hub.tile_size = config.tile_size;
  registry.hub.reactor = reactor;
  registry.pacing = pacing_of(config);
  registry.idle_reap_s = config.view_idle_reap_s;
  registry.idle_publish_divisor = config.idle_publish_divisor;
  registry.idle_publish_after_s = config.idle_publish_after_s;
  return registry;
}

}  // namespace

AjaxFrontEnd::AjaxFrontEnd(FrontEndConfig config)
    : config_(config),
      session_(config.session),
      registry_(registry_config_of(config, &server_.reactor())),
      main_hub_(registry_.default_hub()) {
  // The connection idle-read timeout must exceed the longest long-poll wait
  // any route can hand out (poll timeout == hub max wait here), else a
  // legal configuration silently kills keep-alive connections mid-poll.
  server_.set_idle_read_timeout(config_.poll_timeout_s + 15.0);
  server_.set_workers(config_.http_workers);
  server_.set_max_connections(config_.max_connections);
  server_.set_sndbuf(config_.sndbuf);
  // set_reactors keeps reactor(0)'s identity, so the hub sweeps the
  // registry registered on it above stay valid.
  server_.set_reactors(config_.reactors);
  server_.set_accept_mode(config_.accept_hand_off
                              ? HttpServer::AcceptMode::kHandOff
                              : HttpServer::AcceptMode::kReusePort);
  register_routes();
}

AjaxFrontEnd::~AjaxFrontEnd() { stop(); }

int AjaxFrontEnd::start() {
  const int port = server_.start(config_.port);
  running_ = true;
  loop_thread_ = std::thread([this] { frame_loop(); });
  return port;
}

void AjaxFrontEnd::stop() {
  if (!running_.exchange(false)) return;
  if (loop_thread_.joinable()) loop_thread_.join();
  // Order matters: close every connection first so hub callbacks flushed by
  // shutdown() hit dead sockets instead of re-entering live poll loops.
  server_.stop();
  registry_.shutdown();
}

void AjaxFrontEnd::register_routes() {
  server_.route("GET", "/", [this](const HttpRequest& r) { return handle_index(r); });
  server_.route("GET", "/api/state", [this](const HttpRequest& r) { return handle_state(r); });
  server_.route("GET", "/api/stats", [this](const HttpRequest& r) { return handle_stats(r); });
  server_.route("GET", "/api/image", [this](const HttpRequest& r) { return handle_image(r); });
  server_.route("POST", "/api/steer", [this](const HttpRequest& r) { return handle_steer(r); });
  server_.route("POST", "/api/view", [this](const HttpRequest& r) { return handle_view(r); });
  server_.route_async("GET", "/api/poll",
                      [this](const HttpRequest& r, HttpServer::ResponseSink s) {
                        handle_poll_async(r, std::move(s));
                      });
  server_.route_stream("GET", "/api/stream",
                       [this](const HttpRequest& r, HttpServer::StreamSink s) {
                         handle_stream(r, std::move(s));
                       });
}

void AjaxFrontEnd::frame_loop() {
  frame_period_s_.store(config_.frame_interval_s);
  auto last_publish = std::chrono::steady_clock::now();
  while (running_.load()) {
    // Apply client-posted view/viz changes on the session's thread.
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      while (!pending_view_.empty()) {
        const util::Json op = pending_view_.front();
        pending_view_.pop_front();
        if (op.contains("variable")) {
          session_.set_variable(op.at("variable").as_string());
        }
        if (op.contains("isovalue")) {
          session_.viz_request().isovalue =
              static_cast<float>(op.at("isovalue").as_number(0.5));
        }
        if (op.contains("azimuth")) {
          session_.view().azimuth =
              static_cast<float>(op.at("azimuth").as_number(0.7));
        }
        if (op.contains("elevation")) {
          session_.view().elevation =
              static_cast<float>(op.at("elevation").as_number(0.35));
        }
        if (op.contains("zoom")) {
          session_.view().zoom =
              static_cast<float>(op.at("zoom").as_number(1.0));
        }
        if (op.contains("octant")) {
          session_.view().octant =
              static_cast<int>(op.at("octant").as_int(-1));
        }
        if (op.contains("technique")) {
          const std::string t = op.at("technique").as_string();
          auto& technique = session_.viz_request().technique;
          if (t == "isosurface") technique = cost::VizRequest::Technique::kIsosurface;
          if (t == "raycast") technique = cost::VizRequest::Technique::kRayCast;
          if (t == "streamline") technique = cost::VizRequest::Technique::kStreamline;
        }
      }
    }

    const auto frame = session_.next_frame();

    util::Json state;
    state["view"] = registry_.default_view_name();
    state["cycle"] = frame.cycle;
    state["sim_time"] = frame.sim_time;
    state["variable"] = frame.variable;
    state["vrt"] = frame.vrt.to_string();
    state["predicted_delay_s"] = frame.vrt.predicted_delay_s;
    state["filter_s"] = frame.exec.filter_s;
    state["transform_s"] = frame.exec.transform_s;
    state["render_s"] = frame.exec.render_s;
    state["geometry_bytes"] = static_cast<double>(frame.exec.geometry_bytes);
    // Wall-clock publish stamp so clients (and the fan-out bench) can
    // measure publish-to-delivery latency.
    state["published_ms"] = static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count()) / 1000.0;
    util::JsonObject params;
    for (const auto& [key, value] : session_.parameters()) {
      params[key] = util::Json(value);
    }
    state["parameters"] = util::Json(params);

    // One snapshot, one encode per quality tier, one base64 per image tier,
    // one JSON render per tier body — per *view*, however many clients are
    // watching it. Each view publishes into its own hub shard, which fans
    // out to that shard's parked pollers. The reduced image is only built
    // while some client actually occupies the half tier (session-global:
    // tiers are per client, not per view).
    const bool build_half = registry_.sessions().wants_half_tier();
    registry_.publish(registry_.default_view_name(), std::move(state),
                      frame.image, build_half);
    for (const ViewSpec& spec : config_.views) {
      // An idle-decimated view skips the rasterization itself, not just the
      // hub-side snapshot/encode: wants_publish advances the same skip
      // counter the publish path checks, keeping the 1-in-N cadence exact.
      if (!registry_.wants_publish(spec.name)) continue;
      const auto exec = session_.render_view(spec.viz, spec.camera);
      if (!exec) continue;
      util::Json view_state;
      view_state["view"] = spec.name;
      view_state["cycle"] = frame.cycle;
      view_state["sim_time"] = frame.sim_time;
      view_state["variable"] = frame.variable;
      view_state["filter_s"] = exec->filter_s;
      view_state["transform_s"] = exec->transform_s;
      view_state["render_s"] = exec->render_s;
      view_state["geometry_bytes"] =
          static_cast<double>(exec->geometry_bytes);
      // Per-view publish stamp: delivery latency is measured against the
      // instant THIS shard's frame became available, not the main view's.
      view_state["published_ms"] = static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count()) / 1000.0;
      registry_.publish(spec.name, std::move(view_state), exec->image,
                        build_half);
    }

    const auto now = std::chrono::steady_clock::now();
    const double period =
        std::chrono::duration<double>(now - last_publish).count();
    last_publish = now;
    // EWMA of the real publish period (sim + render + sleep): pacing must
    // judge clients against what is actually published, not the nominal
    // cadence.
    frame_period_s_.store(0.8 * frame_period_s_.load() + 0.2 * period);

    std::this_thread::sleep_for(
        std::chrono::duration<double>(config_.frame_interval_s));
  }
}

namespace {

/// Strict cursor parse shared by /api/poll and /api/stream: std::stoull
/// silently negates a leading '-' ("-1" wraps to 2^64-1) and ignores
/// trailing garbage, so insist on a digit up front and a full parse.
bool parse_since(const std::string& raw, std::uint64_t& out) {
  if (raw.empty() || raw[0] < '0' || raw[0] > '9') return false;
  try {
    std::size_t parsed = 0;
    out = static_cast<std::uint64_t>(std::stoull(raw, &parsed));
    return parsed == raw.size();
  } catch (const std::exception&) {
    return false;
  }
}

/// Strict wait-timeout parse: std::stod accepts "nan" and negatives
/// without throwing, and either would poison the hub's deadline
/// arithmetic. Clamps to [0, ceiling].
bool parse_timeout(const std::string& raw, double ceiling, double& out) {
  try {
    std::size_t parsed = 0;
    const double value = std::stod(raw, &parsed);
    if (parsed != raw.size() || std::isnan(value)) return false;
    out = std::clamp(value, 0.0, ceiling);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

std::shared_ptr<FrameHub> AjaxFrontEnd::resolve_view(
    const HttpRequest& request, std::string* resolved) {
  const std::string view = request.query_param("view");
  if (view.empty() || view == registry_.default_view_name()) {
    // Missing view: the single-hub contract, served by the default shard.
    if (resolved != nullptr) *resolved = registry_.default_view_name();
    return main_hub_;
  }
  if (resolved != nullptr) *resolved = view;
  // subscribe() revives reaped shards of known names; unknown names (the
  // publisher never declared them) stay null — the caller's 404.
  return registry_.subscribe(view);
}

void AjaxFrontEnd::handle_poll_async(const HttpRequest& request,
                                     HttpServer::ResponseSink sink) {
  std::string view;
  const std::shared_ptr<FrameHub> hub = resolve_view(request, &view);
  if (!hub) {
    sink(HttpResponse::not_found());
    return;
  }
  std::uint64_t since = 0;
  if (!parse_since(request.query_param("since", "0"), since)) {
    sink(HttpResponse::bad_request("since must be a non-negative integer"));
    return;
  }
  double timeout = config_.poll_timeout_s;
  const std::string timeout_raw = request.query_param("timeout");
  if (!timeout_raw.empty() &&
      !parse_timeout(timeout_raw, config_.poll_timeout_s, timeout)) {
    sink(HttpResponse::bad_request("timeout must be a number, not NaN"));
    return;
  }
  // `full=1` is the client's resync escape hatch: a browser whose canvas
  // composite failed (or that otherwise lost track of what it shows) asks
  // for a complete frame regardless of its cursor.
  const bool want_delta = request.query_param("delta", "0") == "1" &&
                          request.query_param("full", "0") != "1";

  // Per-client adaptive pacing: a `client` identifier opts the poll into a
  // session whose measured goodput picks the quality tier and the minimum
  // inter-frame interval. Identifier-less polls keep the legacy contract
  // (full tier, gap-free window replay).
  std::shared_ptr<ClientSession> session;
  Tier tier = Tier::kFull;
  bool tier_delta_ok = true;
  FrameHub::WaitOptions options;
  options.timeout_s = timeout;
  // The id is attacker-chosen input that becomes a map key: an invalid one
  // (over-long, bad charset) is treated as absent, i.e. the unpaced path.
  const std::string client = sanitize_client_id(request.query_param("client"));
  if (!client.empty()) {
    const double now = mono_now_s();
    // A null session (table at its cap for this flood of distinct ids)
    // falls through to the unpaced legacy path. One table for every view:
    // the same browser polling two shards shares one meter/controller.
    session = registry_.sessions().acquire(client, request.peer, now);
    if (session) {
      const ClientSession::Decision decision =
          session->decide(now, frame_period_s_.load(), view);
      tier = decision.tier;
      tier_delta_ok = decision.allow_delta;
      options.latest_only = decision.skip_to_latest;
      if (decision.not_before_s > now) {
        options.not_before =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(decision.not_before_s - now));
      }
    }
  }

  // The completion captures the hub shared_ptr: a shard reaped mid-wait
  // stays alive (shut down, but valid) until its last parked completion ran.
  hub->wait_async(
      since, options,
      [hub, view, since, want_delta, tier, tier_delta_ok,
       session = std::move(session), cadence = frame_period_s_.load(),
       sink = std::move(sink)](FramePtr frame) {
        if (!frame) {
          // Echo the client's own cursor, not the current head: a publish
          // racing this timeout must not let the client advance past a
          // frame it never received.
          util::Json out;
          out["seq"] = static_cast<double>(since);
          out["timeout"] = true;
          sink(HttpResponse::json(out.dump()));
          if (session) session->on_timeout(mono_now_s());
          return;
        }
        // Delta selection, cheapest first. A cursor exactly one frame
        // behind (same tier as its previous delivery) gets the prebuilt
        // sequential delta body. A cursor further behind — the paced /
        // skipping client — gets a delta assembled against its *actual*
        // cursor frame, from the publish-time tile encodes, while that
        // frame remains in the retention window. Everyone else (fresh
        // clients, cursors past the window edge, tier changes, full=1
        // resyncs, stale-epoch resyncs) gets the full snapshot.
        // Prebuilt bodies ride as aliased frame buffers (body_shared): the
        // HTTP layer scatter-gathers them into the response, so N watchers
        // of one frame share one allocation. Only a cursor-anchored
        // assembled delta — unique to this client — is a fresh string.
        std::shared_ptr<const std::string> body;
        if (want_delta && tier_delta_ok && frame->seq == since + 1) {
          body = body_shared(frame, tier, true);
        } else if (want_delta && tier_delta_ok && since > 0 &&
                   frame->seq > since + 1) {
          std::string assembled = hub->delta_body_for(frame, since, tier);
          if (!assembled.empty()) {
            body = std::make_shared<const std::string>(std::move(assembled));
          }
        }
        if (!body || body->empty()) body = body_shared(frame, tier, false);
        const std::size_t bytes = body->size();
        if (!session) {
          sink(HttpResponse::json_shared(std::move(body)));
          return;
        }
        // Stamp the dispatch instant, then account the delivery from the
        // kernel-drain callback: the pair brackets enqueue → socket-buffer
        // empty, the per-delivery RTT the delay-based controllers steer
        // on. TCP backpressure from a slow reader shows up as drain
        // latency, exactly like the SSE path's chunk callback.
        const std::uint64_t skipped =
            (since != 0 && frame->seq > since + 1) ? frame->seq - since - 1
                                                   : 0;
        session->note_dispatch(mono_now_s(), view);
        sink(HttpResponse::json_shared(std::move(body)),
             [session, bytes, skipped, tier, cadence, view] {
               session->on_delivered(mono_now_s(), bytes, skipped, tier,
                                     cadence, view);
             });
      });
}

namespace {

/// One SSE subscription: the stream-side twin of a long-poll loop. The
/// raw pointers (registry, frame period) are owned by the AjaxFrontEnd,
/// whose stop() order guarantees no pump step runs after they die: the
/// server stops first (every stream connection closes, chunk() starts
/// refusing), then the registry shuts its hubs down, which completes any
/// still-parked waiter before returning.
struct SseStream {
  std::shared_ptr<FrameHub> hub;
  HubRegistry* registry = nullptr;
  const std::atomic<double>* frame_period = nullptr;
  std::string view;
  std::shared_ptr<ClientSession> session;
  HttpServer::StreamSink sink;
  std::uint64_t since = 0;
  bool want_delta = false;
  /// full=1 resync: the first event carries a complete frame no matter
  /// where the cursor stands; deltas resume from there.
  bool force_full = false;
  /// Per-wait bound: when it elapses without a frame the stream emits a
  /// keepalive comment and waits again.
  double timeout_s = 15.0;
};

/// One step of the push loop: make the same pacing decision a poll would,
/// park on the hub, and on completion push the same body a poll would have
/// carried. The next step is armed only from the chunk's drained callback,
/// so a slow consumer paces its own stream through TCP backpressure — and
/// feeds the goodput meter drain-time timestamps, exactly what on_delivered
/// sees on the poll path. No unbounded recursion: chunk() always defers
/// through a reactor post, so each event breaks the call chain.
void sse_pump(const std::shared_ptr<SseStream>& s) {
  if (!s->sink.alive()) return;
  const double now = mono_now_s();
  const double cadence = s->frame_period->load();
  Tier tier = Tier::kFull;
  bool tier_delta_ok = true;
  FrameHub::WaitOptions options;
  options.timeout_s = s->timeout_s;
  if (s->session) {
    const ClientSession::Decision decision =
        s->session->decide(now, cadence, s->view);
    tier = decision.tier;
    tier_delta_ok = decision.allow_delta;
    options.latest_only = decision.skip_to_latest;
    if (decision.not_before_s > now) {
      options.not_before =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(decision.not_before_s - now));
    }
  }
  s->hub->wait_async(s->since, options, [s, tier, tier_delta_ok,
                                         cadence](FramePtr frame) {
    if (!frame) {
      if (s->hub->is_shutdown()) {
        // The shard is gone — reaped idle or server stopping. End the
        // stream cleanly (terminal chunk, close); a reconnecting client
        // brings its stale cursor and takes the same clamp-to-head resync
        // long-pollers take against a revived shard.
        s->sink.end();
        return;
      }
      if (s->session) s->session->on_timeout(mono_now_s());
      // Comment line: feeds the client's liveness timer without touching
      // onmessage, the SSE idiom for "still here, nothing new".
      s->sink.chunk(": keepalive\n\n", [s] { sse_pump(s); });
      return;
    }
    // Identical body selection to /api/poll's completion: sequential
    // prebuilt delta, cursor-anchored assembled delta, else the full
    // snapshot at the session's tier.
    std::shared_ptr<const std::string> body;
    const std::uint64_t since = s->since;
    const bool want_delta = s->want_delta && tier_delta_ok && !s->force_full;
    if (want_delta && frame->seq == since + 1) {
      body = body_shared(frame, tier, true);
    } else if (want_delta && since > 0 && frame->seq > since + 1) {
      std::string assembled = s->hub->delta_body_for(frame, since, tier);
      if (!assembled.empty()) {
        body = std::make_shared<const std::string>(std::move(assembled));
      }
    }
    if (!body || body->empty()) body = body_shared(frame, tier, false);
    s->force_full = false;
    const std::uint64_t skipped =
        (since != 0 && frame->seq > since + 1) ? frame->seq - since - 1 : 0;
    s->since = frame->seq;
    // The event is a chain, not a concatenation: tiny copied framing lines
    // bracket the shared body buffer (compact JSON: never carries a raw
    // newline), which rides to the socket without being copied per client.
    const std::size_t bytes = body->size();
    net::BufferChain event;
    event.append_copy("id: " + std::to_string(frame->seq) + "\ndata: ");
    event.append_shared(std::move(body));
    event.append_copy("\n\n");
    // Dispatch stamp at chunk issue; the drained callback below completes
    // the RTT bracket the delay-based controllers consume.
    if (s->session) s->session->note_dispatch(mono_now_s(), s->view);
    s->sink.chunk(std::move(event), [s, bytes, skipped, tier, cadence] {
      if (s->session) {
        s->session->on_delivered(mono_now_s(), bytes, skipped, tier, cadence,
                                 s->view);
      }
      // A stream subscribes once but consumes continuously; each drained
      // event counts as subscriber activity for the shard's idle-reap
      // clock, as each poll's subscribe() does.
      s->registry->touch(s->view);
      sse_pump(s);
    });
  });
}

const std::map<std::string, std::string> kSseHeaders = {
    {"Content-Type", "text/event-stream"}, {"Cache-Control", "no-cache"}};
const std::map<std::string, std::string> kTextHeaders = {
    {"Content-Type", "text/plain; charset=utf-8"}};

/// Error path for a stream route: a non-200 chunked response with a short
/// text body. EventSource treats any non-200 as a fatal error, which is
/// what drives the dashboard's fallback to long-poll.
void stream_error(const HttpServer::StreamSink& sink, int status,
                  const std::string& message) {
  sink.begin(kTextHeaders, status);
  sink.chunk(message + "\n");
  sink.end();
}

}  // namespace

void AjaxFrontEnd::handle_stream(const HttpRequest& request,
                                 HttpServer::StreamSink sink) {
  std::string view;
  const std::shared_ptr<FrameHub> hub = resolve_view(request, &view);
  if (!hub) {
    stream_error(sink, 404, "not found");
    return;
  }
  std::uint64_t since = 0;
  if (!parse_since(request.query_param("since", "0"), since)) {
    stream_error(sink, 400, "since must be a non-negative integer");
    return;
  }
  double timeout = config_.poll_timeout_s;
  const std::string timeout_raw = request.query_param("timeout");
  if (!timeout_raw.empty() &&
      !parse_timeout(timeout_raw, config_.poll_timeout_s, timeout)) {
    stream_error(sink, 400, "timeout must be a number, not NaN");
    return;
  }
  // Unlike a poll — where the client pays a round-trip per retry — the
  // keepalive loop here is server-driven, so a zero timeout would spin it
  // at wire speed. Floor it.
  timeout = std::max(timeout, 0.05);

  sink.begin(kSseHeaders);
  // HEAD: the headers a stream would carry were sent and the connection
  // closed — never a parked suppressed infinite body.
  if (sink.head_only()) return;

  auto s = std::make_shared<SseStream>();
  s->hub = hub;
  s->registry = &registry_;
  s->frame_period = &frame_period_s_;
  s->view = std::move(view);
  s->sink = std::move(sink);
  s->since = since;
  s->want_delta = request.query_param("delta", "0") == "1";
  s->force_full = request.query_param("full", "0") == "1";
  s->timeout_s = timeout;
  const std::string client = sanitize_client_id(request.query_param("client"));
  if (!client.empty()) {
    // Same table as /api/poll: a browser that switches transports keeps
    // its meters, and pacing tiers span both channels.
    s->session =
        registry_.sessions().acquire(client, request.peer, mono_now_s());
  }
  sse_pump(s);
}

HttpResponse AjaxFrontEnd::handle_index(const HttpRequest&) {
  return HttpResponse::html(kDashboardHtml);
}

HttpResponse AjaxFrontEnd::handle_state(const HttpRequest& request) {
  const std::shared_ptr<FrameHub> hub = resolve_view(request, nullptr);
  if (!hub) return HttpResponse::not_found();
  util::Json out;
  const FramePtr frame = hub->latest();
  out["seq"] = static_cast<double>(frame ? frame->seq : 0);
  out["state"] = frame ? frame->state : util::Json();
  return HttpResponse::json(out.dump());
}

namespace {

util::Json hub_stats_json(const FrameHub& hub) {
  const FrameHub::Stats s = hub.stats();
  util::Json out;
  out["seq"] = static_cast<double>(hub.seq());
  out["published"] = static_cast<double>(s.published);
  out["served"] = static_cast<double>(s.served);
  out["timeouts"] = static_cast<double>(s.timeouts);
  out["waiting"] = static_cast<double>(s.waiting);
  out["waiting_peak"] = static_cast<double>(s.waiting_peak);
  out["image_encodes"] = static_cast<double>(s.image_encodes);
  out["preencoded_publishes"] = static_cast<double>(s.preencoded_publishes);
  out["image_bytes_in"] = static_cast<double>(s.image_bytes_in);
  out["image_bytes_out"] = static_cast<double>(s.image_bytes_out);
  return out;
}

}  // namespace

HttpResponse AjaxFrontEnd::handle_stats(const HttpRequest& request) {
  // Monitoring must observe, not revive: resolve_view()'s subscribe()
  // would refresh a reaped shard's idle clock and rebuild its hub, so a
  // stats scraper alone could keep an unwatched view alive forever. Look
  // up without revival instead; a known-but-reaped view reports live=false
  // with zeroed hub counters, only unknown names are a 404.
  std::string view = request.query_param("view");
  if (view.empty()) view = registry_.default_view_name();
  std::shared_ptr<FrameHub> hub;
  if (view == registry_.default_view_name()) {
    hub = main_hub_;
  } else {
    if (!registry_.known(view)) return HttpResponse::not_found();
    hub = registry_.find(view);
  }
  // Top level keeps the pre-sharding shape, describing the requested (or
  // default) view's shard; the `views` block carries every *live* shard so
  // dashboards can enumerate what is watchable, and `registry` the shard
  // lifecycle counters.
  util::Json out = hub ? hub_stats_json(*hub) : util::Json();
  out["view"] = view;
  out["live"] = hub != nullptr;
  out["connections_open"] = static_cast<double>(server_.connections_open());
  out["bytes_sent"] = static_cast<double>(server_.bytes_sent());
  out["requests_served"] = static_cast<double>(server_.requests_served());
  out["steers"] = static_cast<double>(steers_.load());
  {
    util::Json views;
    for (const std::string& name : registry_.view_names()) {
      const std::shared_ptr<FrameHub> shard = registry_.find(name);
      if (shard) views[name] = hub_stats_json(*shard);
    }
    out["views"] = views;
  }
  {
    const HubRegistry::Stats rs = registry_.stats();
    util::Json registry;
    registry["live"] = static_cast<double>(rs.live);
    registry["known"] = static_cast<double>(rs.known);
    registry["created"] = static_cast<double>(rs.created);
    registry["reaped"] = static_cast<double>(rs.reaped);
    out["registry"] = registry;
  }
  // Per-client adaptive pacing: session count, tier occupancy, and the
  // per-session goodput/interval/tier detail. Registry-level — sessions
  // span views.
  out["pacing"] = registry_.sessions().stats_json(mono_now_s());
  return HttpResponse::json(out.dump());
}

namespace {

enum class RangeParse { kNone, kOk, kUnsatisfiable };

/// RFC 7233 single byte-range parser for `Range: bytes=a-b` / `a-` / `-N`.
/// kNone means "serve the full 200": absent, malformed, or multi-range
/// headers are all legally ignorable; only a parsable-but-out-of-bounds
/// range earns the 416.
RangeParse parse_byte_range(const std::string& header, std::size_t total,
                            std::size_t* first, std::size_t* last) {
  if (!util::starts_with(header, "bytes=")) return RangeParse::kNone;
  const std::string spec = header.substr(6);
  if (spec.empty() || spec.find(',') != std::string::npos) {
    return RangeParse::kNone;  // multi-range: out of scope, full body
  }
  const std::size_t dash = spec.find('-');
  if (dash == std::string::npos) return RangeParse::kNone;
  const std::string a = spec.substr(0, dash);
  const std::string b = spec.substr(dash + 1);
  const auto digits = [](const std::string& str) {
    return !str.empty() &&
           str.find_first_not_of("0123456789") == std::string::npos;
  };
  if (a.empty()) {
    // Suffix form `-N`: the final N bytes.
    if (!digits(b)) return RangeParse::kNone;
    const std::size_t n = std::stoull(b);
    if (n == 0) return RangeParse::kUnsatisfiable;
    *first = n >= total ? 0 : total - n;
    *last = total - 1;
    return RangeParse::kOk;
  }
  if (!digits(a) || (!b.empty() && !digits(b))) return RangeParse::kNone;
  *first = std::stoull(a);
  if (*first >= total) return RangeParse::kUnsatisfiable;
  *last = b.empty() ? total - 1 : std::stoull(b);
  if (*last < *first) return RangeParse::kNone;  // malformed, not a miss
  if (*last >= total) *last = total - 1;
  return RangeParse::kOk;
}

}  // namespace

HttpResponse AjaxFrontEnd::handle_image(const HttpRequest& request) {
  const std::shared_ptr<FrameHub> hub = resolve_view(request, nullptr);
  if (!hub) return HttpResponse::not_found();
  const FramePtr frame = hub->latest();
  if (!frame || frame->png.empty()) return HttpResponse::not_found();
  HttpResponse response = HttpResponse::binary(frame->png, "image/png");
  response.headers["Accept-Ranges"] = "bytes";
  const auto range = request.headers.find("range");
  if (range == request.headers.end()) return response;
  const std::size_t total = response.body.size();
  std::size_t first = 0;
  std::size_t last = 0;
  switch (parse_byte_range(range->second, total, &first, &last)) {
    case RangeParse::kNone:
      return response;
    case RangeParse::kUnsatisfiable: {
      HttpResponse miss = HttpResponse::text("range not satisfiable", 416);
      miss.headers["Content-Range"] = "bytes */" + std::to_string(total);
      miss.headers["Accept-Ranges"] = "bytes";
      return miss;
    }
    case RangeParse::kOk:
      break;
  }
  response.status = 206;
  response.headers["Content-Range"] = "bytes " + std::to_string(first) + "-" +
                                      std::to_string(last) + "/" +
                                      std::to_string(total);
  response.body = response.body.substr(first, last - first + 1);
  return response;
}

HttpResponse AjaxFrontEnd::handle_steer(const HttpRequest& request) {
  util::Json body;
  try {
    body = util::Json::parse(request.body);
  } catch (const std::exception& e) {
    return HttpResponse::bad_request(e.what());
  }
  if (!body.is_object()) return HttpResponse::bad_request("expected object");
  util::JsonArray applied;
  for (const auto& [name, value] : body.as_object()) {
    if (!value.is_number()) continue;
    session_.steer(name, value.as_number());  // thread-safe mailbox post
    applied.push_back(util::Json(name));
    ++steers_;
  }
  util::Json out;
  out["posted"] = util::Json(applied);
  return HttpResponse::json(out.dump());
}

HttpResponse AjaxFrontEnd::handle_view(const HttpRequest& request) {
  util::Json body;
  try {
    body = util::Json::parse(request.body);
  } catch (const std::exception& e) {
    return HttpResponse::bad_request(e.what());
  }
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_view_.push_back(std::move(body));
  }
  return HttpResponse::json("{\"ok\":true}");
}

}  // namespace ricsa::web
