#include "web/frontend.hpp"

#include <chrono>

#include "util/base64.hpp"
#include "util/strings.hpp"

namespace ricsa::web {

namespace {

/// The embedded dashboard: plain XHR long-polling, no frameworks. Only the
/// image and status elements update when a poll returns — the partial-update
/// behaviour the paper highlights about Ajax UIs.
constexpr const char* kDashboardHtml = R"HTML(<!doctype html>
<html><head><meta charset="utf-8"><title>RICSA monitor</title>
<style>
 body{font-family:sans-serif;background:#101018;color:#dde;margin:20px}
 #frame{border:1px solid #446;image-rendering:pixelated;width:384px;height:384px}
 .row{margin:6px 0} label{display:inline-block;width:120px}
 input{width:80px} button{margin-left:4px}
 #status{white-space:pre;font-family:monospace;font-size:12px;color:#9fb}
</style></head><body>
<h2>RICSA &mdash; computational monitoring &amp; steering</h2>
<div style="display:flex;gap:24px">
 <div><img id="frame" alt="waiting for first frame"/></div>
 <div>
  <div class="row"><label>variable</label>
   <select id="variable"><option>density</option><option>pressure</option>
   <option>velocity</option><option>energy</option></select></div>
  <div class="row"><label>isovalue</label><input id="isovalue" value="0.5"/></div>
  <div class="row"><label>azimuth</label><input id="azimuth" value="0.7"/></div>
  <div class="row"><label>zoom</label><input id="zoom" value="1.0"/></div>
  <div class="row"><label>octant</label><input id="octant" value="-1"/></div>
  <div class="row"><button onclick="postView()">apply view</button></div>
  <hr/>
  <div class="row"><label>parameter</label><input id="pname" value="gamma"/></div>
  <div class="row"><label>value</label><input id="pvalue" value="1.4"/></div>
  <div class="row"><button onclick="steer()">steer</button></div>
 </div>
</div>
<div id="status">connecting...</div>
<script>
let since = 0;
function poll(){
  const xhr = new XMLHttpRequest();
  xhr.open('GET', '/api/poll?since=' + since, true);
  xhr.onload = function(){
    try {
      const r = JSON.parse(xhr.responseText);
      if (r.seq > since) {
        since = r.seq;
        if (r.image_b64) document.getElementById('frame').src =
            'data:image/png;base64,' + r.image_b64;
        document.getElementById('status').textContent =
            JSON.stringify(r.state, null, 1);
      }
    } catch(e) {}
    poll();
  };
  xhr.onerror = function(){ setTimeout(poll, 1000); };
  xhr.send();
}
function steer(){
  const body = {};
  body[document.getElementById('pname').value] =
      parseFloat(document.getElementById('pvalue').value);
  const xhr = new XMLHttpRequest();
  xhr.open('POST', '/api/steer', true);
  xhr.send(JSON.stringify(body));
}
function postView(){
  const body = {
    variable: document.getElementById('variable').value,
    isovalue: parseFloat(document.getElementById('isovalue').value),
    azimuth: parseFloat(document.getElementById('azimuth').value),
    zoom: parseFloat(document.getElementById('zoom').value),
    octant: parseInt(document.getElementById('octant').value)
  };
  const xhr = new XMLHttpRequest();
  xhr.open('POST', '/api/view', true);
  xhr.send(JSON.stringify(body));
}
poll();
</script></body></html>)HTML";

}  // namespace

AjaxFrontEnd::AjaxFrontEnd(FrontEndConfig config)
    : config_(config), session_(config.session) {
  register_routes();
}

AjaxFrontEnd::~AjaxFrontEnd() { stop(); }

int AjaxFrontEnd::start() {
  const int port = server_.start(config_.port);
  running_ = true;
  loop_thread_ = std::thread([this] { frame_loop(); });
  return port;
}

void AjaxFrontEnd::stop() {
  if (!running_.exchange(false)) return;
  state_cv_.notify_all();
  if (loop_thread_.joinable()) loop_thread_.join();
  server_.stop();
}

std::uint64_t AjaxFrontEnd::frame_seq() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return seq_;
}

void AjaxFrontEnd::register_routes() {
  server_.route("GET", "/", [this](const HttpRequest& r) { return handle_index(r); });
  server_.route("GET", "/api/state", [this](const HttpRequest& r) { return handle_state(r); });
  server_.route("GET", "/api/poll", [this](const HttpRequest& r) { return handle_poll(r); });
  server_.route("GET", "/api/image", [this](const HttpRequest& r) { return handle_image(r); });
  server_.route("POST", "/api/steer", [this](const HttpRequest& r) { return handle_steer(r); });
  server_.route("POST", "/api/view", [this](const HttpRequest& r) { return handle_view(r); });
}

void AjaxFrontEnd::frame_loop() {
  while (running_.load()) {
    // Apply client-posted view/viz changes on the session's thread.
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      while (!pending_view_.empty()) {
        const util::Json op = pending_view_.front();
        pending_view_.pop_front();
        if (op.contains("variable")) {
          session_.set_variable(op.at("variable").as_string());
        }
        if (op.contains("isovalue")) {
          session_.viz_request().isovalue =
              static_cast<float>(op.at("isovalue").as_number(0.5));
        }
        if (op.contains("azimuth")) {
          session_.view().azimuth =
              static_cast<float>(op.at("azimuth").as_number(0.7));
        }
        if (op.contains("elevation")) {
          session_.view().elevation =
              static_cast<float>(op.at("elevation").as_number(0.35));
        }
        if (op.contains("zoom")) {
          session_.view().zoom =
              static_cast<float>(op.at("zoom").as_number(1.0));
        }
        if (op.contains("octant")) {
          session_.view().octant =
              static_cast<int>(op.at("octant").as_int(-1));
        }
        if (op.contains("technique")) {
          const std::string t = op.at("technique").as_string();
          auto& technique = session_.viz_request().technique;
          if (t == "isosurface") technique = cost::VizRequest::Technique::kIsosurface;
          if (t == "raycast") technique = cost::VizRequest::Technique::kRayCast;
          if (t == "streamline") technique = cost::VizRequest::Technique::kStreamline;
        }
      }
    }

    const auto frame = session_.next_frame();

    util::Json state;
    state["cycle"] = frame.cycle;
    state["sim_time"] = frame.sim_time;
    state["variable"] = frame.variable;
    state["vrt"] = frame.vrt.to_string();
    state["predicted_delay_s"] = frame.vrt.predicted_delay_s;
    state["filter_s"] = frame.exec.filter_s;
    state["transform_s"] = frame.exec.transform_s;
    state["render_s"] = frame.exec.render_s;
    state["geometry_bytes"] = static_cast<double>(frame.exec.geometry_bytes);
    util::JsonObject params;
    for (const auto& [key, value] : session_.parameters()) {
      params[key] = util::Json(value);
    }
    state["parameters"] = util::Json(params);

    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      ++seq_;
      latest_state_ = std::move(state);
      latest_png_ = frame.image.encode_png();
    }
    state_cv_.notify_all();

    std::this_thread::sleep_for(
        std::chrono::duration<double>(config_.frame_interval_s));
  }
}

util::Json AjaxFrontEnd::state_locked() const {
  util::Json out;
  out["seq"] = static_cast<double>(seq_);
  out["state"] = latest_state_;
  return out;
}

HttpResponse AjaxFrontEnd::handle_index(const HttpRequest&) {
  return HttpResponse::html(kDashboardHtml);
}

HttpResponse AjaxFrontEnd::handle_state(const HttpRequest&) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return HttpResponse::json(state_locked().dump());
}

HttpResponse AjaxFrontEnd::handle_poll(const HttpRequest& request) {
  const auto since =
      static_cast<std::uint64_t>(std::stoull(request.query_param("since", "0")));
  const double timeout = std::min(
      config_.poll_timeout_s,
      std::stod(request.query_param("timeout", "15")));

  std::unique_lock<std::mutex> lock(state_mutex_);
  state_cv_.wait_for(lock, std::chrono::duration<double>(timeout), [&] {
    return seq_ > since || !running_.load();
  });

  util::Json out = state_locked();
  if (seq_ > since && !latest_png_.empty()) {
    // The partial update: image + state ride one XHR response.
    out["image_b64"] = util::base64_encode(latest_png_);
  } else {
    out["timeout"] = true;
  }
  return HttpResponse::json(out.dump());
}

HttpResponse AjaxFrontEnd::handle_image(const HttpRequest&) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (latest_png_.empty()) return HttpResponse::not_found();
  return HttpResponse::binary(latest_png_, "image/png");
}

HttpResponse AjaxFrontEnd::handle_steer(const HttpRequest& request) {
  util::Json body;
  try {
    body = util::Json::parse(request.body);
  } catch (const std::exception& e) {
    return HttpResponse::bad_request(e.what());
  }
  if (!body.is_object()) return HttpResponse::bad_request("expected object");
  util::JsonArray applied;
  for (const auto& [name, value] : body.as_object()) {
    if (!value.is_number()) continue;
    session_.steer(name, value.as_number());  // thread-safe mailbox post
    applied.push_back(util::Json(name));
    ++steers_;
  }
  util::Json out;
  out["posted"] = util::Json(applied);
  return HttpResponse::json(out.dump());
}

HttpResponse AjaxFrontEnd::handle_view(const HttpRequest& request) {
  util::Json body;
  try {
    body = util::Json::parse(request.body);
  } catch (const std::exception& e) {
    return HttpResponse::bad_request(e.what());
  }
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_view_.push_back(std::move(body));
  }
  return HttpResponse::json("{\"ok\":true}");
}

}  // namespace ricsa::web
