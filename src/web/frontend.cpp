#include "web/frontend.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <string>

#include "util/strings.hpp"

namespace ricsa::web {

namespace {

/// The embedded dashboard: plain XHR long-polling, no frameworks. Polls with
/// delta=1 and merges partial state updates client-side — only the UI
/// elements that contain new information change, the partial-update
/// behaviour the paper highlights about Ajax UIs.
constexpr const char* kDashboardHtml = R"HTML(<!doctype html>
<html><head><meta charset="utf-8"><title>RICSA monitor</title>
<style>
 body{font-family:sans-serif;background:#101018;color:#dde;margin:20px}
 #frame{border:1px solid #446;image-rendering:pixelated;width:384px;height:384px}
 .row{margin:6px 0} label{display:inline-block;width:120px}
 input{width:80px} button{margin-left:4px}
 #status{white-space:pre;font-family:monospace;font-size:12px;color:#9fb}
</style></head><body>
<h2>RICSA &mdash; computational monitoring &amp; steering</h2>
<div style="display:flex;gap:24px">
 <div><canvas id="frame" width="384" height="384"></canvas></div>
 <div>
  <div class="row"><label>variable</label>
   <select id="variable"><option>density</option><option>pressure</option>
   <option>velocity</option><option>energy</option></select></div>
  <div class="row"><label>isovalue</label><input id="isovalue" value="0.5"/></div>
  <div class="row"><label>azimuth</label><input id="azimuth" value="0.7"/></div>
  <div class="row"><label>zoom</label><input id="zoom" value="1.0"/></div>
  <div class="row"><label>octant</label><input id="octant" value="-1"/></div>
  <div class="row"><button onclick="postView()">apply view</button></div>
  <hr/>
  <div class="row"><label>parameter</label><input id="pname" value="gamma"/></div>
  <div class="row"><label>value</label><input id="pvalue" value="1.4"/></div>
  <div class="row"><button onclick="steer()">steer</button></div>
 </div>
</div>
<div id="status">connecting...</div>
<script>
let since = 0;
let state = {};
let tier = 'full';
// Seq of the frame the canvas currently shows (what tile deltas patch) and
// the resync escape hatch: when a delta cannot be composited, the next poll
// asks the server for a complete frame with full=1.
let composited = 0;
let needFull = false;
// Frame generation: image decodes are async, so a slow decode from frame N
// must never paint over a frame accepted after it — stale generations are
// dropped on decode completion. Within the surviving generation the
// composite cursor is assigned *unconditionally* (never max()-guarded):
// after a server restart the resync frame carries a smaller seq than the
// stale cursor, and refusing to move backwards would wedge the client out
// of tile deltas forever.
let frameGen = 0;
const canvas = document.getElementById('frame');
const ctx = canvas.getContext('2d');
// Per-client session identity: the server meters this client's goodput and
// adapts its quality tier / frame rate (the paper's network optimization,
// applied per browser).
const client = 'c' + Math.random().toString(36).slice(2, 10) +
               Date.now().toString(36);
function drawFull(b64, seq){
  const gen = ++frameGen;
  const im = new Image();
  im.onload = function(){
    if (gen !== frameGen) return;  // a newer frame superseded this decode
    if (canvas.width !== im.width || canvas.height !== im.height) {
      canvas.width = im.width; canvas.height = im.height;
    }
    ctx.drawImage(im, 0, 0);
    composited = seq;
    needFull = false;
  };
  im.onerror = function(){ needFull = true; };
  im.src = 'data:image/png;base64,' + b64;
}
function drawTiles(r){
  // Decode every tile first, then paint all of them in one synchronous
  // pass: the visible canvas never shows a partially patched frame, and
  // the composite cursor advances atomically with the paint. Any decode
  // failure falls back to full=1.
  const gen = ++frameGen;
  let pending = r.tiles.length;
  if (pending === 0) { composited = r.seq; return; }
  const decoded = new Array(pending);
  r.tiles.forEach(function(t, i){
    const im = new Image();
    im.onload = function(){
      if (gen !== frameGen) return;
      decoded[i] = im;
      if (--pending === 0) {
        r.tiles.forEach(function(t2, j){
          ctx.drawImage(decoded[j], t2.x, t2.y);
        });
        composited = r.seq;
      }
    };
    im.onerror = function(){ needFull = true; };
    im.src = 'data:image/png;base64,' + t.png_b64;
  });
}
function poll(){
  const xhr = new XMLHttpRequest();
  // The cursor echoes the seq last *composited*: the server anchors tile
  // deltas at the frame this client actually shows.
  xhr.open('GET', '/api/poll?since=' + since + '&delta=1&client=' + client +
           (needFull ? '&full=1' : ''), true);
  xhr.onload = function(){
    try {
      const r = JSON.parse(xhr.responseText);
      // Accept any non-timeout frame — including a resync whose seq is
      // *below* a stale cursor (server restarted and re-counts from 1).
      if (r.seq && !r.timeout) {
        // Delta responses carry only the changed keys; merge them.
        if (r.delta && r.seq === since + 1) Object.assign(state, r.state);
        else state = r.state;
        since = r.seq;
        if (r.tier) tier = r.tier;
        if (r.tiles) {
          // Tiles patch the frame named by base_seq; anything else on the
          // canvas would yield a franken-frame — resync instead.
          if (r.base_seq === composited) drawTiles(r);
          else needFull = true;
        } else if (r.image_b64) {
          drawFull(r.image_b64, r.seq);
        } else {
          // No tiles and no image: the frame's pixels are byte-identical
          // to what the canvas already shows (or this is a state-only
          // tier, where a later tier switch forces a full frame anyway) —
          // advance the composite cursor so the tile chain survives idle
          // frames instead of forcing a needless full resync. A decode
          // still in flight may re-assign its own (older) seq afterwards;
          // that costs at most one transient full resync.
          composited = r.seq;
        }
        document.getElementById('status').textContent =
            'tier: ' + tier + '\n' + JSON.stringify(state, null, 1);
      }
    } catch(e) {}
    poll();
  };
  xhr.onerror = function(){ setTimeout(poll, 1000); };
  xhr.send();
}
function steer(){
  const body = {};
  body[document.getElementById('pname').value] =
      parseFloat(document.getElementById('pvalue').value);
  const xhr = new XMLHttpRequest();
  xhr.open('POST', '/api/steer', true);
  xhr.send(JSON.stringify(body));
}
function postView(){
  const body = {
    variable: document.getElementById('variable').value,
    isovalue: parseFloat(document.getElementById('isovalue').value),
    azimuth: parseFloat(document.getElementById('azimuth').value),
    zoom: parseFloat(document.getElementById('zoom').value),
    octant: parseInt(document.getElementById('octant').value)
  };
  const xhr = new XMLHttpRequest();
  xhr.open('POST', '/api/view', true);
  xhr.send(JSON.stringify(body));
}
poll();
</script></body></html>)HTML";

}  // namespace

namespace {

PacingConfig pacing_of(const FrontEndConfig& config) {
  PacingConfig pacing = config.pacing;
  pacing.frame_interval_s = config.frame_interval_s;
  return pacing;
}

FrameHub::Config hub_config_of(const FrontEndConfig& config,
                               net::Reactor* reactor) {
  FrameHub::Config hub;
  hub.window = config.frame_window;
  hub.workers = config.hub_workers;
  hub.max_wait_s = config.poll_timeout_s;
  hub.tile_size = config.tile_size;
  hub.reactor = reactor;
  return hub;
}

}  // namespace

AjaxFrontEnd::AjaxFrontEnd(FrontEndConfig config)
    : config_(config),
      session_(config.session),
      hub_(hub_config_of(config, &server_.reactor())),
      sessions_(pacing_of(config)) {
  // The connection idle-read timeout must exceed the longest long-poll wait
  // any route can hand out (poll timeout == hub max wait here), else a
  // legal configuration silently kills keep-alive connections mid-poll.
  server_.set_idle_read_timeout(config_.poll_timeout_s + 15.0);
  server_.set_workers(config_.http_workers);
  server_.set_max_connections(config_.max_connections);
  register_routes();
}

AjaxFrontEnd::~AjaxFrontEnd() { stop(); }

int AjaxFrontEnd::start() {
  const int port = server_.start(config_.port);
  running_ = true;
  loop_thread_ = std::thread([this] { frame_loop(); });
  return port;
}

void AjaxFrontEnd::stop() {
  if (!running_.exchange(false)) return;
  if (loop_thread_.joinable()) loop_thread_.join();
  // Order matters: close every connection first so hub callbacks flushed by
  // shutdown() hit dead sockets instead of re-entering live poll loops.
  server_.stop();
  hub_.shutdown();
}

void AjaxFrontEnd::register_routes() {
  server_.route("GET", "/", [this](const HttpRequest& r) { return handle_index(r); });
  server_.route("GET", "/api/state", [this](const HttpRequest& r) { return handle_state(r); });
  server_.route("GET", "/api/stats", [this](const HttpRequest& r) { return handle_stats(r); });
  server_.route("GET", "/api/image", [this](const HttpRequest& r) { return handle_image(r); });
  server_.route("POST", "/api/steer", [this](const HttpRequest& r) { return handle_steer(r); });
  server_.route("POST", "/api/view", [this](const HttpRequest& r) { return handle_view(r); });
  server_.route_async("GET", "/api/poll",
                      [this](const HttpRequest& r, HttpServer::ResponseSink s) {
                        handle_poll_async(r, std::move(s));
                      });
}

void AjaxFrontEnd::frame_loop() {
  frame_period_s_.store(config_.frame_interval_s);
  auto last_publish = std::chrono::steady_clock::now();
  while (running_.load()) {
    // Apply client-posted view/viz changes on the session's thread.
    {
      std::lock_guard<std::mutex> lock(pending_mutex_);
      while (!pending_view_.empty()) {
        const util::Json op = pending_view_.front();
        pending_view_.pop_front();
        if (op.contains("variable")) {
          session_.set_variable(op.at("variable").as_string());
        }
        if (op.contains("isovalue")) {
          session_.viz_request().isovalue =
              static_cast<float>(op.at("isovalue").as_number(0.5));
        }
        if (op.contains("azimuth")) {
          session_.view().azimuth =
              static_cast<float>(op.at("azimuth").as_number(0.7));
        }
        if (op.contains("elevation")) {
          session_.view().elevation =
              static_cast<float>(op.at("elevation").as_number(0.35));
        }
        if (op.contains("zoom")) {
          session_.view().zoom =
              static_cast<float>(op.at("zoom").as_number(1.0));
        }
        if (op.contains("octant")) {
          session_.view().octant =
              static_cast<int>(op.at("octant").as_int(-1));
        }
        if (op.contains("technique")) {
          const std::string t = op.at("technique").as_string();
          auto& technique = session_.viz_request().technique;
          if (t == "isosurface") technique = cost::VizRequest::Technique::kIsosurface;
          if (t == "raycast") technique = cost::VizRequest::Technique::kRayCast;
          if (t == "streamline") technique = cost::VizRequest::Technique::kStreamline;
        }
      }
    }

    const auto frame = session_.next_frame();

    util::Json state;
    state["cycle"] = frame.cycle;
    state["sim_time"] = frame.sim_time;
    state["variable"] = frame.variable;
    state["vrt"] = frame.vrt.to_string();
    state["predicted_delay_s"] = frame.vrt.predicted_delay_s;
    state["filter_s"] = frame.exec.filter_s;
    state["transform_s"] = frame.exec.transform_s;
    state["render_s"] = frame.exec.render_s;
    state["geometry_bytes"] = static_cast<double>(frame.exec.geometry_bytes);
    // Wall-clock publish stamp so clients (and the fan-out bench) can
    // measure publish-to-delivery latency.
    state["published_ms"] = static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count()) / 1000.0;
    util::JsonObject params;
    for (const auto& [key, value] : session_.parameters()) {
      params[key] = util::Json(value);
    }
    state["parameters"] = util::Json(params);

    // One snapshot, one encode per quality tier, one base64 per image tier,
    // one JSON render per tier body — however many clients are watching.
    // The hub fans out to the parked pollers. The reduced image is only
    // built while some client actually occupies the half tier.
    hub_.publish(std::move(state), frame.image, sessions_.wants_half_tier());

    const auto now = std::chrono::steady_clock::now();
    const double period =
        std::chrono::duration<double>(now - last_publish).count();
    last_publish = now;
    // EWMA of the real publish period (sim + render + sleep): pacing must
    // judge clients against what is actually published, not the nominal
    // cadence.
    frame_period_s_.store(0.8 * frame_period_s_.load() + 0.2 * period);

    std::this_thread::sleep_for(
        std::chrono::duration<double>(config_.frame_interval_s));
  }
}

void AjaxFrontEnd::handle_poll_async(const HttpRequest& request,
                                     HttpServer::ResponseSink sink) {
  std::uint64_t since = 0;
  const std::string since_raw = request.query_param("since", "0");
  // std::stoull silently negates a leading '-' ("-1" wraps to 2^64-1) and
  // ignores trailing garbage, so insist on a digit up front and a full
  // parse.
  if (since_raw.empty() || since_raw[0] < '0' || since_raw[0] > '9') {
    sink(HttpResponse::bad_request("since must be a non-negative integer"));
    return;
  }
  try {
    std::size_t parsed = 0;
    since = static_cast<std::uint64_t>(std::stoull(since_raw, &parsed));
    if (parsed != since_raw.size()) throw std::invalid_argument(since_raw);
  } catch (const std::exception&) {
    sink(HttpResponse::bad_request("since must be a non-negative integer"));
    return;
  }
  // The timeout is untrusted input: std::stod accepts "nan" and negatives
  // without throwing, and either would poison the hub's deadline arithmetic.
  double timeout = config_.poll_timeout_s;
  const std::string timeout_raw = request.query_param("timeout");
  if (!timeout_raw.empty()) {
    try {
      std::size_t parsed = 0;
      timeout = std::stod(timeout_raw, &parsed);
      if (parsed != timeout_raw.size()) throw std::invalid_argument(timeout_raw);
    } catch (const std::exception&) {
      sink(HttpResponse::bad_request("timeout must be a number"));
      return;
    }
    if (std::isnan(timeout)) {
      sink(HttpResponse::bad_request("timeout must not be NaN"));
      return;
    }
    timeout = std::clamp(timeout, 0.0, config_.poll_timeout_s);
  }
  // `full=1` is the client's resync escape hatch: a browser whose canvas
  // composite failed (or that otherwise lost track of what it shows) asks
  // for a complete frame regardless of its cursor.
  const bool want_delta = request.query_param("delta", "0") == "1" &&
                          request.query_param("full", "0") != "1";

  // Per-client adaptive pacing: a `client` identifier opts the poll into a
  // session whose measured goodput picks the quality tier and the minimum
  // inter-frame interval. Identifier-less polls keep the legacy contract
  // (full tier, gap-free window replay).
  std::shared_ptr<ClientSession> session;
  Tier tier = Tier::kFull;
  bool tier_delta_ok = true;
  FrameHub::WaitOptions options;
  options.timeout_s = timeout;
  const std::string client = request.query_param("client");
  if (!client.empty()) {
    const double now = mono_now_s();
    // A null session (table at its cap for this flood of distinct ids)
    // falls through to the unpaced legacy path.
    session = sessions_.acquire(client, request.peer, now);
    if (session) {
      const ClientSession::Decision decision =
          session->decide(now, frame_period_s_.load());
      tier = decision.tier;
      tier_delta_ok = decision.allow_delta;
      options.latest_only = decision.skip_to_latest;
      if (decision.not_before_s > now) {
        options.not_before =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(decision.not_before_s - now));
      }
    }
  }

  hub_.wait_async(
      since, options,
      [this, since, want_delta, tier, tier_delta_ok,
       session = std::move(session), cadence = frame_period_s_.load(),
       sink = std::move(sink)](FramePtr frame) {
        if (!frame) {
          // Echo the client's own cursor, not the current head: a publish
          // racing this timeout must not let the client advance past a
          // frame it never received.
          util::Json out;
          out["seq"] = static_cast<double>(since);
          out["timeout"] = true;
          sink(HttpResponse::json(out.dump()));
          if (session) session->on_timeout(mono_now_s());
          return;
        }
        // Delta selection, cheapest first. A cursor exactly one frame
        // behind (same tier as its previous delivery) gets the prebuilt
        // sequential delta body. A cursor further behind — the paced /
        // skipping client — gets a delta assembled against its *actual*
        // cursor frame, from the publish-time tile encodes, while that
        // frame remains in the retention window. Everyone else (fresh
        // clients, cursors past the window edge, tier changes, full=1
        // resyncs, stale-epoch resyncs) gets the full snapshot.
        std::string assembled;
        const std::string* body = nullptr;
        if (want_delta && tier_delta_ok && frame->seq == since + 1) {
          body = &frame->body(tier, true);
        } else if (want_delta && tier_delta_ok && since > 0 &&
                   frame->seq > since + 1) {
          assembled = hub_.delta_body_for(frame, since, tier);
          if (!assembled.empty()) body = &assembled;
        }
        if (body == nullptr || body->empty()) body = &frame->body(tier, false);
        sink(HttpResponse::json(*body));
        if (session) {
          // Record the delivery after the (possibly blocking) socket write:
          // the timestamp then reflects when the client actually drained
          // the body, which is what the goodput meter must see.
          const std::uint64_t skipped =
              (since != 0 && frame->seq > since + 1) ? frame->seq - since - 1
                                                     : 0;
          session->on_delivered(mono_now_s(), body->size(), skipped, tier,
                                cadence);
        }
      });
}

HttpResponse AjaxFrontEnd::handle_index(const HttpRequest&) {
  return HttpResponse::html(kDashboardHtml);
}

HttpResponse AjaxFrontEnd::handle_state(const HttpRequest&) {
  util::Json out;
  const FramePtr frame = hub_.latest();
  out["seq"] = static_cast<double>(frame ? frame->seq : 0);
  out["state"] = frame ? frame->state : util::Json();
  return HttpResponse::json(out.dump());
}

HttpResponse AjaxFrontEnd::handle_stats(const HttpRequest&) {
  const FrameHub::Stats s = hub_.stats();
  util::Json out;
  out["seq"] = static_cast<double>(hub_.seq());
  out["published"] = static_cast<double>(s.published);
  out["served"] = static_cast<double>(s.served);
  out["timeouts"] = static_cast<double>(s.timeouts);
  out["waiting"] = static_cast<double>(s.waiting);
  out["waiting_peak"] = static_cast<double>(s.waiting_peak);
  out["connections_open"] = static_cast<double>(server_.connections_open());
  out["requests_served"] = static_cast<double>(server_.requests_served());
  out["steers"] = static_cast<double>(steers_.load());
  // Per-client adaptive pacing: session count, tier occupancy, and the
  // per-session goodput/interval/tier detail.
  out["pacing"] = sessions_.stats_json(mono_now_s());
  return HttpResponse::json(out.dump());
}

HttpResponse AjaxFrontEnd::handle_image(const HttpRequest&) {
  const FramePtr frame = hub_.latest();
  if (!frame || frame->png.empty()) return HttpResponse::not_found();
  return HttpResponse::binary(frame->png, "image/png");
}

HttpResponse AjaxFrontEnd::handle_steer(const HttpRequest& request) {
  util::Json body;
  try {
    body = util::Json::parse(request.body);
  } catch (const std::exception& e) {
    return HttpResponse::bad_request(e.what());
  }
  if (!body.is_object()) return HttpResponse::bad_request("expected object");
  util::JsonArray applied;
  for (const auto& [name, value] : body.as_object()) {
    if (!value.is_number()) continue;
    session_.steer(name, value.as_number());  // thread-safe mailbox post
    applied.push_back(util::Json(name));
    ++steers_;
  }
  util::Json out;
  out["posted"] = util::Json(applied);
  return HttpResponse::json(out.dump());
}

HttpResponse AjaxFrontEnd::handle_view(const HttpRequest& request) {
  util::Json body;
  try {
    body = util::Json::parse(request.body);
  } catch (const std::exception& e) {
    return HttpResponse::bad_request(e.what());
  }
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    pending_view_.push_back(std::move(body));
  }
  return HttpResponse::json("{\"ok\":true}");
}

}  // namespace ricsa::web
