// Per-client adaptive pacing sessions for the Ajax web layer.
//
// The paper's pipeline is *network-optimized*: the sender adapts its rate to
// each receiver's measured goodput. Applied per browser: every /api/poll
// carrying a `client` identifier gets a session that feeds delivery
// timestamps and body sizes into a transport::GoodputMeter and runs a
// per-session congestion controller (transport::CongestionController — the
// paper's Robbins-Monro Eq. 1 by default, or a delay-gradient/trendline law
// steering on measured per-delivery RTT). The session maps the measured
// goodput to
//
//  * a quality Tier (full image / half-resolution image / state-only) —
//    slow consumers are transparently downgraded to cheaper frame bodies
//    instead of eating bandwidth they cannot drain, and upgraded back once
//    they demonstrably keep up; and
//  * a minimum inter-frame interval — when even the cheapest tier exceeds
//    the client's goodput, frames are skipped (FrameHub pacing) rather than
//    queued.
//
// Sessions expire after an idle period, so the table is bounded by the
// number of *recently active* clients, not by everyone who ever connected.
//
// Sessions also span *transports*: an /api/stream SSE subscription with the
// same `client` identifier feeds the identical session its polls would —
// delivery samples are taken when the connection's output buffer actually
// drains into the kernel, so a push stream whose reader stalls (TCP
// backpressure) collapses utilization and is downgraded/paced mid-stream
// exactly like a slow poller.
//
// Sharded hubs (web/registry.hpp) do NOT shard the sessions: pacing state
// is keyed by the client identity alone, so one browser polling several
// views feeds a single GoodputMeter/RmsaController. The session tracks
// which views the client is actively polling and judges utilization
// against `active_views / interval` — without that normalization a client
// draining only one of its two views would count every delivery toward one
// stream's budget and look prompt while actually keeping up with half the
// offered frames. Tier decisions are session-global (a slow pipe is slow
// for every view); the delta contract (last served tier) and the pacing
// interval anchor (last delivery instant) are per view.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "transport/congestion_controller.hpp"
#include "transport/goodput_meter.hpp"
#include "util/json.hpp"
#include "web/hub.hpp"

namespace ricsa::web {

/// Monotonic wall time in seconds (steady_clock) for pacing timestamps.
double mono_now_s();

/// Validate an attacker-chosen `client=` query parameter before it keys the
/// session table: at most 64 bytes of [A-Za-z0-9._-]. Returns the id
/// unchanged when valid, the empty string otherwise — the caller treats an
/// invalid id exactly like an absent one (the unpaced legacy contract), so
/// an unbounded or binary string never becomes a map key.
std::string sanitize_client_id(const std::string& raw);

struct PacingConfig {
  /// Nominal publisher cadence: the fastest any client can be served. The
  /// frontend passes the *measured* publish period into decide() and
  /// on_delivered(), floored by this, so a render loop running slower than
  /// configured does not make prompt clients look slow.
  double frame_interval_s = 0.2;
  /// Goodput averaging horizon per session.
  double meter_window_s = 2.0;
  /// Sessions idle longer than this are evicted.
  double idle_expiry_s = 60.0;
  /// Utilization (measured goodput / offered rate at the current tier)
  /// below which a sample counts toward a downgrade...
  double low_util = 0.5;
  /// ...and above which it counts toward an upgrade probe.
  double high_util = 0.85;
  /// Consecutive low samples before dropping a tier (jitter tolerance).
  int downgrade_streak = 2;
  /// Consecutive prompt samples before probing a cheaper pace / richer tier.
  int upgrade_streak = 4;
  /// Probe backoff cap: each upward probe that gets knocked back down
  /// doubles the prompt-sample count required before the next probe (up to
  /// upgrade_streak * max_probe_backoff); a probe that sticks resets it.
  /// Keeps a client parked at its capacity boundary from re-probing and
  /// re-downgrading every upgrade_streak samples forever.
  int max_probe_backoff = 8;
  /// Ceiling on the per-client inter-frame interval (frame-rate floor).
  double max_interval_s = 1.0;
  /// Hard cap on live sessions: beyond it new `client` ids are served
  /// unpaced (full tier) instead of allocating — an attacker-chosen id per
  /// request must not grow the table without bound.
  std::size_t max_sessions = 4096;
  /// Robbins-Monro gain template for the per-session controllers (Eq. 1).
  /// Mirrored into `controller` at session construction, so existing code
  /// tuning these knobs keeps working with the default (rmsa) law.
  double rmsa_gain_a = 1.0;
  double rmsa_alpha = 0.8;
  /// Which congestion-control law paces each session, plus its parameters
  /// (transport/congestion_controller.hpp). The default kRmsa reproduces
  /// the historical hard-wired RmsaController behavior bit for bit.
  transport::ControllerConfig controller;
};

/// One client's adaptive pacing state. Thread-safe: polls arrive on
/// connection threads, deliveries complete on hub workers.
class ClientSession {
 public:
  ClientSession(const PacingConfig& config, std::string id, std::string peer,
                double now_s);

  struct Decision {
    Tier tier = Tier::kFull;
    /// Absolute monotonic time before which no frame should be served
    /// (0 = unpaced): last delivery + the minimum inter-frame interval.
    double not_before_s = 0.0;
    /// Serve the newest frame, skipping stale ones, instead of replaying
    /// the retention window frame by frame.
    bool skip_to_latest = false;
    /// Delta bodies are only valid when the previous delivery used the same
    /// tier: a delta omits an unchanged image, which is wrong for a client
    /// whose last frame was a different resolution.
    bool allow_delta = true;
  };

  /// Pacing decision for a poll arriving now; `cadence_s` is the measured
  /// publish period and `view` names the shard being polled (empty = the
  /// single-hub legacy contract — one unnamed view). Marks the session
  /// live and the view active.
  Decision decide(double now_s, double cadence_s,
                  const std::string& view = std::string());

  /// Stamp the dispatch instant of a response/chunk for `view`: the moment
  /// the body is handed to the wire (long-poll response enqueue, SSE chunk
  /// issue). Paired with the kernel-drain timestamp in on_delivered it
  /// yields the per-delivery RTT sample the delay-based controllers steer
  /// on.
  void note_dispatch(double now_s, const std::string& view = std::string());

  /// Account a completed delivery: `bytes` of the `tier` body written at
  /// `now_s` for `view`, plus how many `skipped` frames the served one
  /// jumped over. `cadence_s` is the measured publish period the
  /// utilization and control-law judgments are made against. `rtt_s` is
  /// the transport-measured dispatch-to-drain round trip and `drain_s` the
  /// kernel-drain time of this body (< 0 = no sample; when `rtt_s` is
  /// absent but a dispatch was stamped via note_dispatch, the session
  /// derives it from the stamp).
  void on_delivered(double now_s, std::size_t bytes, std::uint64_t skipped,
                    Tier tier, double cadence_s,
                    const std::string& view = std::string(),
                    double rtt_s = -1.0, double drain_s = -1.0);

  /// A poll that timed out without a frame still marks the session live.
  void on_timeout(double now_s);

  Tier tier() const;
  double interval_s() const;
  double goodput_Bps() const;
  double last_touch_s() const;
  /// Views this client polled within the activity horizon (>= 1 once any
  /// poll was decided) — the utilization normalizer.
  std::size_t active_views(double now_s) const;
  /// Current failed-probe backoff multiplier (1 = no failed probes).
  int probe_backoff() const;
  util::Json stats_json(double now_s) const;

 private:
  /// Per-view slice of the session: the delta contract and the pacing
  /// interval anchor follow the individual stream; everything else (tier,
  /// meters, controller) is shared across views.
  struct ViewState {
    double last_delivery_s = -1.0;
    Tier last_served_tier = Tier::kFull;
    double last_touch_s = 0.0;
    /// Dispatch stamp of the in-flight body (note_dispatch); -1 when no
    /// delivery is in flight. Consumed by on_delivered as the RTT anchor.
    double last_dispatch_s = -1.0;
  };

  void reset_meters_locked(double now_s);                // requires mutex_
  void reset_controller_locked(double initial_interval_s);  // requires mutex_
  ViewState& view_state_locked(const std::string& view, double now_s);
  std::size_t active_views_locked(double now_s) const;   // requires mutex_

  mutable std::mutex mutex_;
  const PacingConfig config_;
  const std::string id_;
  const std::string peer_;

  Tier tier_ = Tier::kFull;
  /// Lock-free mirror of tier_ for hot-path probes (publisher's
  /// wants_half_tier walk must not take every session's mutex).
  std::atomic<Tier> tier_snapshot_{Tier::kFull};
  /// Per-view stream state, keyed by the view name ("" for the single-hub
  /// contract). Bounded: entries idle past idle_expiry_s are swept on
  /// access, and view names only exist for publisher-declared shards.
  std::map<std::string, ViewState> views_;
  double interval_s_;  // current minimum inter-frame interval
  transport::GoodputMeter meter_;        // bytes/s: reported goodput
  transport::GoodputMeter frame_meter_;  // frames/s: drives tier + pacing
  std::unique_ptr<transport::CongestionController> controller_;
  int low_streak_ = 0;
  int prompt_streak_ = 0;
  /// Probe backoff state: an upward probe is "outstanding" until it either
  /// survives a full upgrade_streak of prompt samples (success — backoff
  /// resets) or the next downgrade knocks it back (failure — backoff
  /// doubles, capped).
  int probe_backoff_ = 1;
  bool probe_outstanding_ = false;
  double last_touch_s_ = 0.0;
  double goodput_Bps_ = 0.0;

  std::uint64_t delivered_frames_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t skipped_frames_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t downgrades_ = 0;
  std::uint64_t upgrades_ = 0;
};

/// Registry of live client sessions, keyed by the dashboard-generated
/// `client` query parameter. Expired sessions are swept on access.
class SessionTable {
 public:
  explicit SessionTable(PacingConfig config);

  /// Find-or-create the session for `id` (sweeping expired ones first).
  /// Returns null when the table is at max_sessions and `id` is new — the
  /// caller serves such polls unpaced rather than allocating.
  std::shared_ptr<ClientSession> acquire(const std::string& id,
                                         const std::string& peer,
                                         double now_s);

  std::size_t size() const;
  std::uint64_t expired() const;
  /// True when any live session currently sits on the half tier — the
  /// publisher's cue to build the reduced image this frame.
  bool wants_half_tier() const;
  /// Aggregate + per-session pacing stats for /api/stats.
  util::Json stats_json(double now_s) const;

 private:
  void sweep_locked(double now_s);

  PacingConfig config_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<ClientSession>> sessions_;
  std::uint64_t expired_ = 0;
  double last_sweep_s_ = -1.0;
};

}  // namespace ricsa::web
