// Minimal HTTP/1.1 server and client over loopback TCP.
//
// The paper's front end serves the GWT-built Ajax application and answers
// XMLHttpRequest calls (Section 5.1); this is the equivalent embedded web
// server. Since the epoll port it is *event-driven*: N net::Reactor
// threads (a ReactorPool, default 1) multiplex the connections — accept,
// request parsing, and response writes are state machines advanced by
// readiness events — and a small worker pool runs the route handlers.
// Every connection is owned end-to-end by the reactor that accepted it
// (SO_REUSEPORT listeners, or round-robin hand-off), so the wire path
// needs no cross-reactor locks; responses leave through a refcounted
// BufferChain gathered into writev, so a frame body fanned out to N
// clients is never copied per client. An idle long-poll client costs one
// fd plus a few hundred bytes of connection state instead of a parked
// thread stack, which is what pushes fan-out from ~1k clients to 10k+.
// No TLS, loopback-oriented.
//
// Long-poll endpoints use *async routes*: the handler receives a
// ResponseSink instead of returning a response. Whichever thread later
// invokes the sink — typically a broadcast-hub worker — posts the response
// to the reactor, where it becomes a write-readiness event on the owning
// connection. Requests pipelined behind an in-flight response are parsed
// only after that response is serialized, so responses always leave in
// request order.
//
// *Stream routes* go one step further: the handler receives a StreamSink
// and the response is an unbounded sequence of HTTP/1.1 chunks
// (Transfer-Encoding: chunked) — the wire format Server-Sent Events rides
// on. A streaming response converts the connection: it never returns to
// request parsing (bytes pipelined behind the converting request are
// drained and discarded), partial chunk writes resume on EPOLLOUT like any
// response, and the producer paces itself off the drained callback, so a
// slow consumer exerts TCP backpressure instead of growing the buffer.
//
// HTTP/1.1 surface: keep-alive with pipelining, HEAD (headers +
// Content-Length, no body), chunked streaming responses, 405 + Allow for
// known paths asked with the wrong or an unknown method, 503 when the
// connection cap (or the process's fd table) is exhausted.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "net/buffer_chain.hpp"
#include "net/reactor.hpp"
#include "net/reactor_pool.hpp"
#include "net/socket.hpp"
#include "util/thread_pool.hpp"

namespace ricsa::web {

struct HttpRequest {
  std::string method;
  std::string path;        // without the query string
  std::string query;       // raw query string (after '?')
  std::map<std::string, std::string> headers;  // lower-cased keys
  std::string body;
  /// Remote peer of the connection this request arrived on ("ip:port") —
  /// a per-connection identity handlers can use as a client-session key.
  std::string peer;

  /// Value of a query parameter (URL-decoded), or fallback.
  std::string query_param(const std::string& key,
                          const std::string& fallback = "") const;
};

struct HttpResponse {
  int status = 200;
  std::map<std::string, std::string> headers;
  std::string body;
  /// Zero-copy body: when set, the response *references* this immutable
  /// string instead of carrying bytes in `body` (which is then ignored).
  /// The connection's buffer chain appends it as a shared segment, so a
  /// frame body fanned out to N subscribers is serialized with N small
  /// header blocks and zero body copies.
  std::shared_ptr<const std::string> shared_body;

  std::size_t body_size() const noexcept {
    return shared_body ? shared_body->size() : body.size();
  }

  static HttpResponse text(std::string body, int status = 200);
  static HttpResponse json(std::string body, int status = 200);
  /// JSON response referencing `body` without copying — the fan-out path
  /// for hub frame bodies shared across every subscriber of a frame.
  static HttpResponse json_shared(std::shared_ptr<const std::string> body,
                                  int status = 200);
  static HttpResponse html(std::string body);
  static HttpResponse binary(std::vector<std::uint8_t> bytes,
                             std::string content_type);
  static HttpResponse not_found();
  static HttpResponse bad_request(const std::string& why);
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Deferred reply for async routes. Copyable; the first invocation wins
  /// (it posts the response to the reactor, which writes it when the
  /// connection is writable), later invocations are no-ops. Every sink
  /// handed to an async handler should eventually be invoked; otherwise
  /// the client side of the poll hangs until its timeout. Safe to invoke
  /// from any thread, including after the server stopped (the response is
  /// then dropped).
  class ResponseSink {
   public:
    void operator()(const HttpResponse& response) const;
    /// As operator(), plus a one-shot `drained` callback fired on the
    /// connection's reactor thread once the response has fully drained
    /// into the kernel socket buffer — the long-poll twin of the
    /// StreamSink chunk callback (TCP backpressure shows up as drain
    /// latency). Never fired when the connection died before the drain.
    void operator()(const HttpResponse& response,
                    std::function<void()> drained) const;

   private:
    friend class HttpServer;
    std::shared_ptr<struct AsyncReply> reply_;
  };
  using AsyncHandler = std::function<void(const HttpRequest&, ResponseSink)>;

  /// Producer handle for a streaming (chunked) response. Copyable; safe to
  /// use from any thread — every operation posts to the reactor, where the
  /// connection state lives. Lifecycle: begin() once (first call wins),
  /// then chunk() repeatedly, then end(); the connection always closes
  /// when the stream finishes (a converted connection never parses another
  /// request, so keep-alive would strand it).
  class StreamSink {
   public:
    /// Send the status line + headers and convert the connection to stream
    /// mode (Transfer-Encoding: chunked, Connection: close). For a HEAD
    /// request the headers are sent as-is and the connection closes —
    /// head_only() turns true and chunk() refuses — so streaming resources
    /// answer HEAD instead of parking an infinite suppressed body.
    void begin(std::map<std::string, std::string> headers = {},
               int status = 200) const;
    /// Queue one chunk of payload (already application-framed; this only
    /// adds the chunked-transfer envelope). `drained`, if given, fires on
    /// the loop thread once the connection's output buffer has fully
    /// drained to the socket — the producer's backpressure signal; issue
    /// the next chunk from there and a slow consumer paces the stream via
    /// TCP instead of ballooning server memory. Returns false once the
    /// stream is dead (connection gone or end() called): the producer
    /// should stop. Empty payloads are dropped (a zero-length chunk is the
    /// terminator on the wire — only end() may emit it).
    bool chunk(std::string payload,
               std::function<void()> drained = nullptr) const;
    /// Zero-copy variant: the payload arrives as a pre-assembled buffer
    /// chain (e.g. SSE framing around a shared frame body); only the
    /// chunked-transfer envelope is added around it. Same return/drained
    /// semantics as the string overload.
    bool chunk(net::BufferChain payload,
               std::function<void()> drained = nullptr) const;
    /// Terminal zero-length chunk; the connection closes once it drains.
    void end() const;
    /// The connection can still accept chunks. Advisory (the connection
    /// can die between the check and the write); chunk()'s return is the
    /// authoritative signal.
    bool alive() const;
    /// True once begin() ran for a HEAD request: the response is complete
    /// and the handler should produce nothing.
    bool head_only() const;

   private:
    friend class HttpServer;
    std::shared_ptr<struct StreamReply> reply_;
  };
  using StreamHandler = std::function<void(const HttpRequest&, StreamSink)>;

  HttpServer();
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Route an exact path for a method ("GET", "POST"). Longest-prefix
  /// fallback routes can be added with `prefix = true`. HEAD requests fall
  /// back to the matching GET route with the body suppressed.
  void route(const std::string& method, const std::string& path,
             Handler handler, bool prefix = false);

  /// Route whose handler completes asynchronously via the ResponseSink.
  void route_async(const std::string& method, const std::string& path,
                   AsyncHandler handler);

  /// Route whose handler produces a chunked streaming response via the
  /// StreamSink. HEAD requests reach the handler too (head_only() sinks).
  void route_stream(const std::string& method, const std::string& path,
                    StreamHandler handler);

  /// Bind loopback:port (0 = ephemeral), start the reactor thread and the
  /// worker pool. Returns the bound port. Throws std::runtime_error on
  /// failure. Single-shot: a stopped server cannot be restarted.
  int start(int port = 0);
  void stop();
  int port() const noexcept { return port_; }
  bool running() const noexcept { return running_.load(); }
  std::uint64_t requests_served() const noexcept { return served_.load(); }
  /// Total bytes written to client sockets (headers + bodies, all
  /// connections). The relay bench's origin-egress measurement.
  std::uint64_t bytes_sent() const noexcept { return bytes_sent_.load(); }
  /// Connections accepted with a 503 (connection cap / fd exhaustion).
  std::uint64_t connections_rejected() const noexcept {
    return rejected_.load();
  }
  /// Connections currently open (reading, handling, or parked async).
  std::size_t connections_open() const noexcept {
    return connections_open_.load();
  }

  /// Idle read deadline: a connection that receives no bytes for this long
  /// is closed, whether it is between requests, trickling a partial request
  /// (slow-loris), or waiting on an async response. The application derives
  /// this from its route configuration (see AjaxFrontEnd) so a legal
  /// long-poll wait is never killed mid-poll; call before start().
  void set_idle_read_timeout(double seconds);
  double idle_read_timeout_s() const noexcept { return read_timeout_s_; }

  /// Handler worker-pool size (the only thread count that scales with
  /// load; connections never get threads). Call before start().
  void set_workers(std::size_t workers);
  std::size_t workers() const noexcept { return workers_; }

  /// Accepted-connection cap: connections beyond it receive 503 and are
  /// closed immediately. Call before start(). With several reactors the
  /// cap is enforced against a shared atomic count, so a simultaneous
  /// accept burst on two reactors can overshoot it by a few connections.
  void set_max_connections(std::size_t max_connections);

  /// Reactor thread count (call before start()). With n > 1 the wire path
  /// shards: each reactor *owns* the connections it accepted — their
  /// buffers, timers, and epoll registration all live on that loop thread,
  /// and completions from elsewhere post to the connection's home reactor.
  /// No cross-reactor locking anywhere on the wire path.
  void set_reactors(std::size_t n);
  std::size_t reactor_count() const noexcept { return reactors_.size(); }

  /// How a new connection finds its owning reactor when reactor_count()>1.
  enum class AcceptMode {
    /// One SO_REUSEPORT listener per reactor; the kernel balances accepts
    /// across them (default — no hand-off hop, no shared accept state).
    kReusePort,
    /// Single listener on reactor 0; accepted sockets are handed to their
    /// owner round-robin via task posting. Fallback for stacks without
    /// usable SO_REUSEPORT balancing.
    kHandOff
  };
  void set_accept_mode(AcceptMode mode);

  /// Fix SO_SNDBUF on every accepted connection (0 = kernel default with
  /// autotuning). Bounding the kernel's send backlog makes write-side
  /// backpressure from a slow consumer surface after `bytes` of queued
  /// data instead of after megabytes of autotuned buffering — which is
  /// what lets the per-session pacing meters react within a few frames.
  /// Call before start().
  void set_sndbuf(int bytes);

  /// The *primary* event loop (reactor 0). Valid for the server's
  /// lifetime; loop threads run between start() and stop(). Exposed so
  /// co-located subsystems (FrameHub pacing/timeout sweeps) can register
  /// timers on a server loop instead of spawning their own timer threads.
  net::Reactor& reactor() noexcept { return reactors_.reactor(0); }

 private:
  struct Connection;
  struct Shard;
  friend struct AsyncReply;
  friend struct StreamReply;

  struct AcceptHandler : net::EventHandler {
    Shard* shard = nullptr;
    void on_event(std::uint32_t events) override;
  };

  // All of the following run on the owning shard's loop thread only.
  void on_acceptable(Shard* shard);
  void adopt_connection(Shard* shard, net::Socket sock, std::string peer);
  void reject_with_503(Shard* shard, net::Socket socket);
  void conn_event(Connection* conn, std::uint32_t events);
  void finish_after_eof(const std::shared_ptr<Connection>& conn);
  net::Reactor::Clock::time_point read_deadline_from_now() const;
  void try_dispatch(const std::shared_ptr<Connection>& conn);
  void dispatch(const std::shared_ptr<Connection>& conn, HttpRequest request);
  void enqueue_response(const std::shared_ptr<Connection>& conn,
                        HttpResponse response, bool keep_alive,
                        bool suppress_body,
                        std::function<void()> drained = nullptr);
  void begin_stream(const std::shared_ptr<Connection>& conn,
                    const std::shared_ptr<StreamReply>& reply, int status,
                    const std::map<std::string, std::string>& headers);
  void stream_chunk(const std::shared_ptr<StreamReply>& reply,
                    net::BufferChain payload, std::function<void()> drained);
  void end_stream(const std::shared_ptr<StreamReply>& reply);
  void continue_write(const std::shared_ptr<Connection>& conn);
  void update_events(const std::shared_ptr<Connection>& conn);
  void arm_idle_timer(const std::shared_ptr<Connection>& conn);
  void close_conn(const std::shared_ptr<Connection>& conn);

  std::map<std::pair<std::string, std::string>, Handler> exact_;
  std::map<std::pair<std::string, std::string>, AsyncHandler> async_;
  std::map<std::pair<std::string, std::string>, StreamHandler> stream_;
  std::vector<std::tuple<std::string, std::string, Handler>> prefix_;
  std::mutex routes_mutex_;

  /// The event loops. Reactor 0 exists from construction (pre-start timer
  /// registration); set_reactors() grows the pool before start().
  net::ReactorPool reactors_;
  /// Per-reactor accept/connection state; built at start(), stable
  /// addresses for the server's lifetime (Connections point into it).
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<util::ThreadPool> pool_;
  AcceptMode accept_mode_ = AcceptMode::kReusePort;
  int sndbuf_ = 0;

  int port_ = 0;
  double read_timeout_s_ = 30.0;
  std::size_t workers_ = 4;
  std::size_t max_connections_ = 8192;
  bool started_ = false;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::size_t> connections_open_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
};

/// Client-side failure with the phase it happened in: callers that retry
/// (the relay subscriber, the bench fleet) treat a refused connect or a
/// broken exchange as transient but a malformed response as fatal. Derives
/// from std::runtime_error, so existing catch sites keep working.
class HttpError : public std::runtime_error {
 public:
  enum class Kind {
    kConnect,   // could not establish the connection
    kIo,        // send/recv failed or the peer vanished mid-response
    kProtocol,  // response arrived but could not be parsed
  };
  HttpError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

/// Blocking HTTP/1.1 client. Keeps its connection alive across requests
/// (reconnecting transparently when the server closed it), so a long-poll
/// loop costs one TCP connection total instead of one per poll.
class HttpClient {
 public:
  explicit HttpClient(int port) : port_(port) {}
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  HttpClient(HttpClient&& other) noexcept;

  struct Response {
    int status = 0;
    std::map<std::string, std::string> headers;
    std::string body;
  };

  /// Throws HttpError (an std::runtime_error) on connect/IO failure or
  /// timeout; kind() says which phase failed.
  Response get(const std::string& path_and_query, double timeout_s = 30.0);
  Response post(const std::string& path, const std::string& body,
                const std::string& content_type = "application/json",
                double timeout_s = 30.0);

  /// Capped-exponential retry schedule for transient failures: refused
  /// connects, broken exchanges, and 503 responses. A 503 carrying a
  /// fully numeric Retry-After is honored (capped at max_backoff_s); one
  /// without it — including the HTTP-date form, which is not parsed —
  /// falls back to the schedule. Protocol errors never retry.
  struct RetryPolicy {
    int max_attempts = 4;  // total attempts, including the first
    double initial_backoff_s = 0.05;
    double max_backoff_s = 1.0;
  };
  /// get()/post() wrapped in the retry schedule. Returns the final
  /// response (which may still be a 503 when attempts ran out); throws the
  /// last HttpError when every attempt failed below HTTP.
  Response get_with_retry(const std::string& path_and_query,
                          const RetryPolicy& policy, double timeout_s = 30.0);
  Response post_with_retry(const std::string& path, const std::string& body,
                           const RetryPolicy& policy,
                           const std::string& content_type = "application/json",
                           double timeout_s = 30.0);
  void close();
  int reconnects() const noexcept { return reconnects_; }

  /// Raw request exchange; get()/post() are the usual entry points.
  Response exchange(const std::string& request_text, double timeout_s,
                    bool retry_on_stale);

 private:
  void ensure_connected(double timeout_s);

  int port_ = 0;
  int fd_ = -1;
  int reconnects_ = -1;  // first connect is not a reconnect
  std::string buffer_;   // bytes read past the previous response
};

/// One-shot helpers (Connection: close) for tests and simple tooling.
struct HttpClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;
  std::string body;
};
HttpClientResponse http_get(int port, const std::string& path_and_query,
                            double timeout_s = 10.0);
HttpClientResponse http_post(int port, const std::string& path,
                             const std::string& body,
                             const std::string& content_type = "application/json",
                             double timeout_s = 10.0);

std::string url_decode(const std::string& text);

namespace detail {
/// Append one HTTP/1.1 chunk (hex size line, payload, CRLF) to `out`.
/// Empty payloads are dropped: a zero-length chunk is the stream
/// terminator on the wire, which only append_last_chunk may emit.
void append_chunk(std::string& out, const std::string& payload);
/// Append the terminal zero-length chunk ("0\r\n\r\n", no trailers).
void append_last_chunk(std::string& out);
/// Serialize `response` onto a connection's buffer chain: one small copied
/// header block, then the body as its own segment — shared (zero-copy)
/// when the response carries a shared_body, moved into a refcounted
/// segment otherwise. Header and body are never concatenated into a fresh
/// string. HEAD (suppress_body) keeps the suppressed body's Content-Length
/// and appends zero body segments.
void append_response_chain(net::BufferChain& out, HttpResponse response,
                           bool keep_alive, bool suppress_body);
/// send() loop for *blocking* sockets (HttpClient and tests): retries EINTR
/// (a signal is not a dead peer) and keeps writing across send-timeout
/// expiries (EAGAIN under SO_SNDTIMEO) as long as the peer keeps accepting
/// bytes — only a full timeout with zero progress drops the connection.
/// The reactor server does not use this; its writes are readiness-driven.
bool write_all(int fd, const char* data, std::size_t n);
}  // namespace detail

}  // namespace ricsa::web
