// Minimal HTTP/1.1 server and client over loopback TCP.
//
// The paper's front end serves the GWT-built Ajax application and answers
// XMLHttpRequest calls (Section 5.1); this is the equivalent embedded web
// server: blocking accept loop + thread-per-connection with keep-alive,
// enough of HTTP/1.1 for browsers and for the in-process load generators
// used in tests and bench. No TLS, loopback-oriented.
//
// Long-poll endpoints use *async routes*: the handler receives a
// ResponseSink instead of returning a response. The connection thread goes
// straight back to reading (blocking cheaply in the kernel until the
// client's next request), and whichever thread later invokes the sink —
// typically a broadcast-hub worker — writes the response. Reads and writes
// of one connection proceed on different threads; a per-connection write
// lock keeps responses from interleaving. This is what lets hundreds of
// idle long-poll clients cost nothing but a parked kernel read each, while
// fan-out work stays on a bounded worker pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

namespace ricsa::web {

struct HttpRequest {
  std::string method;
  std::string path;        // without the query string
  std::string query;       // raw query string (after '?')
  std::map<std::string, std::string> headers;  // lower-cased keys
  std::string body;
  /// Remote peer of the connection this request arrived on ("ip:port") —
  /// a per-connection identity handlers can use as a client-session key.
  std::string peer;

  /// Value of a query parameter (URL-decoded), or fallback.
  std::string query_param(const std::string& key,
                          const std::string& fallback = "") const;
};

struct HttpResponse {
  int status = 200;
  std::map<std::string, std::string> headers;
  std::string body;

  static HttpResponse text(std::string body, int status = 200);
  static HttpResponse json(std::string body, int status = 200);
  static HttpResponse html(std::string body);
  static HttpResponse binary(std::vector<std::uint8_t> bytes,
                             std::string content_type);
  static HttpResponse not_found();
  static HttpResponse bad_request(const std::string& why);
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Deferred reply for async routes. Copyable; the first invocation writes
  /// the response (on the invoking thread), later invocations are no-ops.
  /// Every sink handed to an async handler should eventually be invoked;
  /// otherwise the client side of the poll hangs until its timeout.
  class ResponseSink {
   public:
    void operator()(const HttpResponse& response) const;

   private:
    friend class HttpServer;
    std::shared_ptr<struct AsyncReply> reply_;
  };
  using AsyncHandler = std::function<void(const HttpRequest&, ResponseSink)>;

  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Route an exact path for a method ("GET", "POST"). Longest-prefix
  /// fallback routes can be added with `prefix = true`.
  void route(const std::string& method, const std::string& path,
             Handler handler, bool prefix = false);

  /// Route whose handler completes asynchronously via the ResponseSink.
  void route_async(const std::string& method, const std::string& path,
                   AsyncHandler handler);

  /// Bind loopback:port (0 = ephemeral) and start serving. Returns the
  /// bound port. Throws std::runtime_error on failure.
  int start(int port = 0);
  void stop();
  int port() const noexcept { return port_; }
  bool running() const noexcept { return running_.load(); }
  std::uint64_t requests_served() const noexcept { return served_.load(); }
  /// Connections currently open (attached to a thread or parked async).
  std::size_t connections_open() const;

  /// Idle read timeout for keep-alive connection threads. MUST exceed the
  /// longest async (long-poll) response delay the routes can produce:
  /// while such a response is pending, the connection thread is already
  /// blocked reading the client's *next* request, and a read timeout kills
  /// the connection mid-poll. The application derives this from its route
  /// configuration (see AjaxFrontEnd); call before start().
  void set_idle_read_timeout(double seconds);
  double idle_read_timeout_s() const noexcept { return read_timeout_s_; }

 private:
  struct Connection;
  friend struct AsyncReply;

  void accept_loop();
  void spawn_dedicated(std::shared_ptr<Connection> conn);
  void serve(std::shared_ptr<Connection> conn);
  void track(const std::shared_ptr<Connection>& conn);
  void untrack_and_close(const std::shared_ptr<Connection>& conn);

  std::map<std::pair<std::string, std::string>, Handler> exact_;
  std::map<std::pair<std::string, std::string>, AsyncHandler> async_;
  std::vector<std::tuple<std::string, std::string, Handler>> prefix_;
  std::mutex routes_mutex_;

  int listen_fd_ = -1;
  int port_ = 0;
  double read_timeout_s_ = 30.0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> served_{0};
  std::thread accept_thread_;

  /// Registry of live connections; stop() shutdown(2)s every fd to wake
  /// blocked reads, the owning serve/resume path closes it.
  mutable std::mutex conns_mutex_;
  std::set<std::shared_ptr<Connection>> conns_;

  /// Count of detached serve threads; stop() waits for it to drain.
  std::mutex active_mutex_;
  std::condition_variable active_cv_;
  std::size_t active_ = 0;
};

/// Blocking HTTP/1.1 client. Keeps its connection alive across requests
/// (reconnecting transparently when the server closed it), so a long-poll
/// loop costs one TCP connection total instead of one per poll.
class HttpClient {
 public:
  explicit HttpClient(int port) : port_(port) {}
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  HttpClient(HttpClient&& other) noexcept;

  struct Response {
    int status = 0;
    std::map<std::string, std::string> headers;
    std::string body;
  };

  /// Throws std::runtime_error on connect/IO failure or timeout.
  Response get(const std::string& path_and_query, double timeout_s = 30.0);
  Response post(const std::string& path, const std::string& body,
                const std::string& content_type = "application/json",
                double timeout_s = 30.0);
  void close();
  int reconnects() const noexcept { return reconnects_; }

  /// Raw request exchange; get()/post() are the usual entry points.
  Response exchange(const std::string& request_text, double timeout_s,
                    bool retry_on_stale);

 private:
  void ensure_connected(double timeout_s);

  int port_ = 0;
  int fd_ = -1;
  int reconnects_ = -1;  // first connect is not a reconnect
  std::string buffer_;   // bytes read past the previous response
};

/// One-shot helpers (Connection: close) for tests and simple tooling.
struct HttpClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;
  std::string body;
};
HttpClientResponse http_get(int port, const std::string& path_and_query,
                            double timeout_s = 10.0);
HttpClientResponse http_post(int port, const std::string& path,
                             const std::string& body,
                             const std::string& content_type = "application/json",
                             double timeout_s = 10.0);

std::string url_decode(const std::string& text);

namespace detail {
/// send() loop used for every response write: retries EINTR (a signal is
/// not a dead peer) and keeps writing across send-timeout expiries (EAGAIN
/// under SO_SNDTIMEO) as long as the peer keeps accepting bytes — only a
/// full timeout with zero progress drops the connection. Exposed for tests.
bool write_all(int fd, const char* data, std::size_t n);
}  // namespace detail

}  // namespace ricsa::web
