// Minimal HTTP/1.1 server and client over loopback TCP.
//
// The paper's front end serves the GWT-built Ajax application and answers
// XMLHttpRequest calls (Section 5.1); this is the equivalent embedded web
// server: blocking accept loop + thread-per-connection with keep-alive,
// enough of HTTP/1.1 for browsers and for the in-process AjaxClientEmulator
// used in tests. No TLS, loopback-oriented.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ricsa::web {

struct HttpRequest {
  std::string method;
  std::string path;        // without the query string
  std::string query;       // raw query string (after '?')
  std::map<std::string, std::string> headers;  // lower-cased keys
  std::string body;

  /// Value of a query parameter (URL-decoded), or fallback.
  std::string query_param(const std::string& key,
                          const std::string& fallback = "") const;
};

struct HttpResponse {
  int status = 200;
  std::map<std::string, std::string> headers;
  std::string body;

  static HttpResponse text(std::string body, int status = 200);
  static HttpResponse json(std::string body, int status = 200);
  static HttpResponse html(std::string body);
  static HttpResponse binary(std::vector<std::uint8_t> bytes,
                             std::string content_type);
  static HttpResponse not_found();
  static HttpResponse bad_request(const std::string& why);
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Route an exact path for a method ("GET", "POST"). Longest-prefix
  /// fallback routes can be added with `prefix = true`.
  void route(const std::string& method, const std::string& path,
             Handler handler, bool prefix = false);

  /// Bind loopback:port (0 = ephemeral) and start serving. Returns the
  /// bound port. Throws std::runtime_error on failure.
  int start(int port = 0);
  void stop();
  int port() const noexcept { return port_; }
  bool running() const noexcept { return running_.load(); }
  std::uint64_t requests_served() const noexcept { return served_.load(); }

 private:
  void accept_loop();
  void serve_connection(int fd);
  HttpResponse dispatch(const HttpRequest& request);

  std::map<std::pair<std::string, std::string>, Handler> exact_;
  std::vector<std::tuple<std::string, std::string, Handler>> prefix_;
  std::mutex routes_mutex_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> served_{0};
  std::thread accept_thread_;
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
};

/// Tiny blocking HTTP/1.1 client for tests and the client emulator.
struct HttpClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;
  std::string body;
};
HttpClientResponse http_get(int port, const std::string& path_and_query,
                            double timeout_s = 10.0);
HttpClientResponse http_post(int port, const std::string& path,
                             const std::string& body,
                             const std::string& content_type = "application/json",
                             double timeout_s = 10.0);

std::string url_decode(const std::string& text);

}  // namespace ricsa::web
