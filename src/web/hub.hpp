// Broadcast hub between the monitor loop and any number of long-polling
// Ajax clients.
//
// The paper's claim is that "any number of clients" can watch and steer a
// running computation; the hub is what makes that scale. Each frame is
// snapshotted ONCE into an immutable, seq-numbered Frame — state JSON,
// encoded image, and the fully rendered poll response bodies (full and
// delta-encoded) — and every waiting /api/poll?since=N cursor is then served
// that shared object by a util::ThreadPool, never by the monitor thread and
// never with per-client re-encoding. A sliding window of retained frames
// lets clients that fall briefly behind catch up gap-free while bounding
// memory regardless of how many clients attach or how slow they are.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace ricsa::web {

/// One published monitoring frame. Immutable after publish; shared between
/// the hub's retention window and every in-flight response.
struct Frame {
  std::uint64_t seq = 0;
  util::Json state;                // full monitoring state (JSON object)
  std::vector<std::uint8_t> png;   // encoded image (may be empty)
  /// Fully rendered /api/poll JSON bodies, built once per frame:
  /// body_full carries the whole state, body_delta only the keys that
  /// changed since the previous frame (and omits the image when its bytes
  /// are identical) — the paper's partial update, applied to the payload.
  std::string body_full;
  std::string body_delta;
  std::size_t delta_keys = 0;      // state keys that changed vs predecessor
  bool image_changed = true;
};
using FramePtr = std::shared_ptr<const Frame>;

class FrameHub {
 public:
  struct Config {
    /// Frames retained for catch-up replay (per-client memory bound: a
    /// client cursor is just an integer; the window is the only buffer).
    std::size_t window = 128;
    /// Fan-out worker threads (0 = one per hardware thread).
    std::size_t workers = 4;
    /// Ceiling on any single long-poll wait.
    double max_wait_s = 60.0;
  };

  struct Stats {
    std::uint64_t published = 0;
    std::uint64_t served = 0;    // waiter completions carrying a frame
    std::uint64_t timeouts = 0;  // waiter completions without one
    std::size_t waiting = 0;     // cursors currently parked
    std::size_t waiting_peak = 0;
  };

  FrameHub();  // default Config
  explicit FrameHub(Config config);
  ~FrameHub();
  FrameHub(const FrameHub&) = delete;
  FrameHub& operator=(const FrameHub&) = delete;

  /// Snapshot a new frame (delta-encode vs the previous one, render the
  /// poll bodies, base64 the image once), append it to the window, and fan
  /// out to every satisfied waiter on the worker pool. Returns the new seq.
  std::uint64_t publish(util::Json state, std::vector<std::uint8_t> png);

  FramePtr latest() const;
  /// Oldest retained frame with seq > since (the catch-up step), or null.
  FramePtr next_after(std::uint64_t since) const;
  std::uint64_t seq() const;
  std::uint64_t oldest_retained() const;
  Stats stats() const;

  /// Long-poll: invoke done(frame) as soon as a frame newer than `since`
  /// exists — synchronously on the caller if one already does, else on a
  /// worker thread when it is published. done(nullptr) on timeout or
  /// shutdown. `done` must be invocable from any thread.
  void wait_async(std::uint64_t since, double timeout_s,
                  std::function<void(FramePtr)> done);

  /// Blocking flavour for in-process consumers.
  FramePtr wait(std::uint64_t since, double timeout_s);

  /// Complete all parked waiters with nullptr, refuse new ones, and join
  /// the timer thread and worker pool. Idempotent.
  void shutdown();

 private:
  struct Waiter {
    std::uint64_t since = 0;
    std::chrono::steady_clock::time_point deadline;
    std::function<void(FramePtr)> done;
  };

  FramePtr next_after_locked(std::uint64_t since) const;  // requires mutex_
  void timer_loop();

  Config config_;
  /// Serializes publishers so frame building happens outside mutex_.
  std::mutex publish_mutex_;
  mutable std::mutex mutex_;
  std::condition_variable timer_cv_;  // wakes the timeout sweeper
  std::condition_variable sync_cv_;   // wakes blocking wait()ers
  std::deque<FramePtr> window_;
  std::uint64_t seq_ = 0;
  std::vector<Waiter> waiters_;
  bool shutdown_ = false;
  Stats stats_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::thread timer_;
};

}  // namespace ricsa::web
