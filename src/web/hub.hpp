// Broadcast hub between the monitor loop and any number of long-polling
// Ajax clients.
//
// The paper's claim is that "any number of clients" can watch and steer a
// running computation; the hub is what makes that scale. Each frame is
// snapshotted ONCE into an immutable, seq-numbered Frame — state JSON,
// encoded image, and the fully rendered poll response bodies — and every
// waiting /api/poll?since=N cursor is then served that shared object by a
// util::ThreadPool, never by the monitor thread and never with per-client
// re-encoding. A sliding window of retained frames lets clients that fall
// briefly behind catch up gap-free while bounding memory regardless of how
// many clients attach or how slow they are.
//
// Network optimization (the paper's per-receiver rate adaptation, applied
// per browser): each frame is rendered into a small set of quality *tiers*
// — full image + full state, half-resolution image, state-only — still one
// encode per frame per tier, shared by every client on that tier. The
// per-client session layer (web/session.hpp) maps each client's measured
// goodput to a tier and a minimum inter-frame interval; the hub enforces
// the interval via WaitOptions::not_before and serves paced clients the
// newest frame (skipping stale ones) instead of replaying the window.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hpp"
#include "util/thread_pool.hpp"
#include "viz/image.hpp"
#include "viz/tiles.hpp"

namespace ricsa::net {
class Reactor;
}

namespace ricsa::web {

/// Frame quality tiers, cheapest-to-serve last. Every frame carries all
/// tiers; which one a client receives is the session layer's decision.
enum class Tier : std::uint8_t {
  kFull = 0,      // full-resolution PNG + full monitoring state
  kHalf = 1,      // half-resolution PNG + full monitoring state
  kStateOnly = 2  // monitoring state only, no image
};
inline constexpr std::size_t kTierCount = 3;
const char* tier_name(Tier tier);

/// Image tiers that carry pixels (and therefore tile-delta data): kFull and
/// kHalf. kStateOnly has no image.
inline constexpr std::size_t kImageTierCount = 2;

/// One published monitoring frame. Immutable after publish; shared between
/// the hub's retention window and every in-flight response.
struct Frame {
  std::uint64_t seq = 0;
  util::Json state;                     // full monitoring state (JSON object)
  std::vector<std::uint8_t> png;        // encoded full-resolution image
  std::vector<std::uint8_t> png_half;   // encoded half-resolution image
  /// Fully rendered /api/poll JSON bodies, built once per frame per tier:
  /// `full` carries the whole state, `delta` only the keys that changed
  /// since the previous frame — and, for the image, only the dirty tiles vs
  /// the predecessor (`tiles` + `base_seq`), omitting the image entirely
  /// when its bytes are identical. The paper's partial update, applied to
  /// both halves of the payload.
  struct Body {
    std::string full;
    std::string delta;
  };
  std::array<Body, kTierCount> bodies;

  /// Tile-delta data for one image tier. The raw framebuffer is retained
  /// while the frame sits inside the hub's raw window (Config::raw_window;
  /// by default the whole retention window), so poll completions can diff a
  /// retained cursor frame against the served one — the cursor-anchored
  /// delta that lets paced/skipping clients receive tiles instead of full
  /// bodies. Frames carrying an unchanged image share the predecessor's raw
  /// buffer instead of copying it.
  struct TileData {
    viz::TileSet dirty;  // dirty tiles vs the predecessor
    /// Coalesced dirty rectangles (TileGrid::coalesce over `dirty`): each
    /// covers only dirty tiles, so a rect carries exactly this frame's
    /// then-current content for every tile inside it — the invariant the
    /// cursor-anchored rect closure in delta_body_for relies on.
    std::vector<viz::TileRect> rects;
    /// base64(PNG) per entry of `rects`. One encode per coalesced rect per
    /// frame, shared by every client whose delta includes it. Kept for the
    /// frame's whole window lifetime even after the raw buffer is dropped:
    /// the prebuilt sequential delta body needs no raw pixels at serve time.
    std::vector<std::string> rect_b64;
    /// Tile index -> index into `rects` of the rect covering it, or -1 for
    /// clean tiles. Sized to the grid when rects exist, empty otherwise.
    std::vector<std::int32_t> tile_rect;
    /// No usable per-tile delta vs the predecessor exists (first frame,
    /// dimension change, dirty area above the fallback threshold, or the
    /// predecessor had no raw for this tier). Cursor-anchored deltas whose
    /// range crosses such a frame must fall back to a full image.
    bool full_change = true;

    /// Raw framebuffer snapshot; null when no pixels were published for
    /// this tier or the frame aged past the raw window. The one mutable
    /// exception to Frame immutability: the publisher drops it early
    /// (bounded raw retention) while poll completions may be reading it, so
    /// access goes through an atomic shared_ptr.
    std::shared_ptr<const viz::Image> raw() const {
      return raw_.load(std::memory_order_acquire);
    }
    void set_raw(std::shared_ptr<const viz::Image> image) {
      raw_.store(std::move(image), std::memory_order_release);
    }
    /// Publisher-side early release once the frame leaves the raw window.
    /// `const` because retained frames are shared as `const Frame` — the
    /// raw buffer is cache, not contract: readers must tolerate null.
    void drop_raw() const { raw_.store(nullptr, std::memory_order_release); }

   private:
    mutable std::atomic<std::shared_ptr<const viz::Image>> raw_;
  };
  std::array<TileData, kImageTierCount> tiles;

  std::size_t delta_keys = 0;  // state keys that changed vs predecessor
  bool image_changed = true;

  /// Body to serve for a tier. A half tier that was not built for this
  /// frame (no client demanded it at publish time) falls back to the full
  /// tier's *full* body — never its delta: the full tier's delta may carry
  /// tiles diffed against the full-resolution reference, which would be
  /// composited onto a half-resolution canvas.
  const std::string& body(Tier tier, bool delta) const {
    const Body& b = bodies[static_cast<std::size_t>(tier)];
    const std::string& chosen = delta ? b.delta : b.full;
    if (chosen.empty() && tier == Tier::kHalf) {
      return body(Tier::kFull, false);
    }
    return chosen;
  }
};
using FramePtr = std::shared_ptr<const Frame>;

/// A frame body as a shareable buffer: the aliasing constructor makes a
/// shared_ptr whose pointee is the frame's own body string and whose
/// control block keeps the whole frame alive. Response paths hand this to
/// the HTTP layer's buffer chains, so a body fanned out to N clients is
/// one allocation scatter-gathered N times — never copied per client.
inline std::shared_ptr<const std::string> body_shared(const FramePtr& frame,
                                                      Tier tier, bool delta) {
  return std::shared_ptr<const std::string>(frame, &frame->body(tier, delta));
}

class FrameHub {
 public:
  struct Config {
    /// Frames retained for catch-up replay (per-client memory bound: a
    /// client cursor is just an integer; the window is the only buffer).
    std::size_t window = 128;
    /// Fan-out worker threads (0 = one per hardware thread).
    std::size_t workers = 4;
    /// Ceiling on any single long-poll wait.
    double max_wait_s = 60.0;
    /// Tile edge (pixels) of the dirty-rect grid image deltas are encoded
    /// on. Edge tiles are clamped to partial width/height.
    int tile_size = 64;
    /// Dirty-pixel fraction at or above which an image delta falls back to
    /// the full image: when most of the frame changed, per-tile bookkeeping
    /// costs more than it saves.
    double full_tile_fraction = 0.85;
    /// When set, waiter timeouts and pacing `not_before` sweeps become
    /// timer registrations on this reactor instead of a dedicated hub
    /// timer thread — one event loop serves connection readiness and hub
    /// deadlines alike. The reactor's loop must be stopped before the hub
    /// is destroyed (AjaxFrontEnd stops the HTTP server first, which
    /// guarantees it). Null keeps the self-contained timer thread.
    net::Reactor* reactor = nullptr;
    /// Frames that keep their raw framebuffers (0 = the whole window). Raw
    /// retention is what makes hub memory scale as `window × W×H×4` per
    /// image tier; capping it separately drops the pixels early while
    /// keeping the per-frame tile encodes, so sequential clients still get
    /// tile deltas from the prebuilt bodies at any window size. Cursor-
    /// anchored deltas need the *cursor frame's* raw buffer as reference,
    /// so clients skipping further back than this fall back to a full
    /// frame (delta_body_for declines).
    std::size_t raw_window = 0;
  };

  struct Stats {
    std::uint64_t published = 0;
    std::uint64_t served = 0;    // waiter completions carrying a frame
    std::uint64_t timeouts = 0;  // waiter completions without one
    std::size_t waiting = 0;     // cursors currently parked
    std::size_t waiting_peak = 0;
    /// Image encodes performed at publish time (full/half base64 + dirty
    /// tiles). A relay hub fed exclusively through publish_encoded() must
    /// hold this at zero — the forwarding-without-decoding assertion.
    std::uint64_t image_encodes = 0;
    /// Frames injected through publish_encoded() (the relay path).
    std::uint64_t preencoded_publishes = 0;
    /// Raw RGBA bytes fed into PNG encodes at publish time (full + half
    /// frames and dirty rects) and the PNG bytes they produced — the
    /// codec's compression ratio as actually exercised by this hub
    /// (image_bytes_in / image_bytes_out), surfaced by the bench.
    std::uint64_t image_bytes_in = 0;
    std::uint64_t image_bytes_out = 0;
  };

  /// Per-waiter delivery policy (the session layer's pacing decision).
  struct WaitOptions {
    double timeout_s = 0.0;
    /// Serve no frame before this instant, even if one is already
    /// available — the per-client minimum inter-frame interval. Default
    /// (epoch) means no pacing.
    std::chrono::steady_clock::time_point not_before{};
    /// Serve the newest retained frame instead of the next one after
    /// `since`: paced/downgraded clients skip frames they cannot drain
    /// rather than replaying the whole window.
    bool latest_only = false;
  };

  FrameHub();  // default Config
  explicit FrameHub(Config config);
  ~FrameHub();
  FrameHub(const FrameHub&) = delete;
  FrameHub& operator=(const FrameHub&) = delete;

  /// Snapshot a new frame: delta-encode vs the previous one, render the
  /// tier bodies (one PNG encode + base64 per image tier), append it to the
  /// window, and fan out to every satisfied waiter on the worker pool.
  /// `build_half` skips the downsample + second encode when no client
  /// currently occupies the half tier (the common all-fast case) — such
  /// frames serve the full body to half-tier requests. Returns the new seq.
  std::uint64_t publish(util::Json state, const viz::Image& image,
                        bool build_half = true);
  /// Pre-encoded flavour (tests, image-less publishers): no reduced image
  /// exists, so the half tier serves the full body.
  std::uint64_t publish(util::Json state, std::vector<std::uint8_t> png);

  /// A frame received from an upstream hub over the wire, already rendered
  /// into poll-body JSON (seq fields rebased into this hub's seq space by
  /// the caller). Bodies land on the full tier; the relay serves every
  /// downstream client at full tier, so no other tier is built.
  struct PreEncoded {
    util::Json state;        // optional (may be null): /api/state payload
    std::string full_body;   // complete poll body, or empty (delta frame)
    std::string delta_body;  // sequential delta body, or empty (full frame)
  };

  /// Inject a pre-encoded frame: the relay's forwarding-without-decoding
  /// path. No pixels are touched, no PNG/base64/tile encoding happens —
  /// the received body strings become the frame's serve-time bodies
  /// verbatim. The caller must have rebased the bodies' top-level `seq`
  /// (and `base_seq`) to seq()+1 before publishing; this hub's window and
  /// waiter fan-out behave exactly as for a locally rendered frame.
  /// Returns the new seq.
  std::uint64_t publish_encoded(PreEncoded pre);

  FramePtr latest() const;
  /// Oldest retained frame with seq > since (the catch-up step), or null.
  FramePtr next_after(std::uint64_t since) const;

  /// Render a delta poll body for serving `frame` at `tier` to a client
  /// whose last composited frame is `since` — the cursor-anchored delta:
  /// the dirty-tile set is diffed against the client's *actual* cursor
  /// frame (not just the predecessor), so paced/skipping clients receive
  /// only the tiles that changed across the whole skipped range. Every tile
  /// payload is a pre-encoded publish-time string; no per-client encoding
  /// happens here. Returns an empty string whenever no valid tile delta
  /// exists — cursor frame aged out of the window, raw framebuffer missing
  /// for the tier, a full-change frame inside the range, or dirty area at
  /// or above the full-frame threshold — in which case the caller serves
  /// the full body.
  std::string delta_body_for(const FramePtr& frame, std::uint64_t since,
                             Tier tier) const;
  std::uint64_t seq() const;
  std::uint64_t oldest_retained() const;
  Stats stats() const;

  /// Long-poll: invoke done(frame) as soon as a frame newer than `since`
  /// exists AND options.not_before has passed — synchronously on the caller
  /// if both already hold, else on a worker thread. done(nullptr) on timeout
  /// or shutdown. `done` must be invocable from any thread. Non-finite or
  /// negative timeouts are treated as 0. A `since` ahead of the newest seq
  /// (a stale client from a previous server epoch) is clamped to the head:
  /// the waiter receives a full-frame resync at the *next publish* — never
  /// parking forever against a seq that will not arrive under this epoch,
  /// and never answering instantly either (an instant sub-cursor response
  /// would spin pre-resync clients at wire speed).
  void wait_async(std::uint64_t since, const WaitOptions& options,
                  std::function<void(FramePtr)> done);
  void wait_async(std::uint64_t since, double timeout_s,
                  std::function<void(FramePtr)> done);

  /// Blocking flavour for in-process consumers.
  FramePtr wait(std::uint64_t since, double timeout_s);

  /// Complete all parked waiters with nullptr, refuse new ones, and join
  /// the timer thread and worker pool. Idempotent.
  void shutdown();

  /// True once shutdown() began: lets a long-lived subscriber (an SSE
  /// stream) distinguish a done(nullptr) that means "timed out, wait
  /// again" from one that means "this hub is gone, end the stream".
  bool is_shutdown() const;

 private:
  struct Waiter {
    std::uint64_t since = 0;
    std::chrono::steady_clock::time_point deadline;
    std::chrono::steady_clock::time_point not_before{};
    bool latest_only = false;
    std::function<void(FramePtr)> done;
  };

  /// Liveness guard between the hub and reactor-posted closures: tasks and
  /// timers capture the link (shared), never the hub; shutdown() nulls
  /// `hub` under the link mutex, after which stragglers are no-ops.
  struct ReactorLink {
    std::mutex mutex;
    FrameHub* hub = nullptr;
  };

  std::uint64_t publish_impl(util::Json state, std::vector<std::uint8_t> png,
                             std::vector<std::uint8_t> png_half,
                             std::shared_ptr<const viz::Image> raw_full,
                             std::shared_ptr<const viz::Image> raw_half);
  /// Stats deltas a frame build accumulates for commit_frame.
  struct EncodeCost {
    std::uint64_t encodes = 0;    // PNG/base64 encodes performed
    std::uint64_t bytes_in = 0;   // raw RGBA bytes fed to those encodes
    std::uint64_t bytes_out = 0;  // PNG bytes produced
  };

  /// Shared publish tail: append `frame` to the window, age raws past the
  /// raw window, satisfy waiters, update stats, fan out on the pool.
  /// Requires publish_mutex_ held; takes mutex_ itself. `cost` is the
  /// encode work the build performed; `preencoded` marks a
  /// publish_encoded() frame.
  std::uint64_t commit_frame(std::shared_ptr<Frame> frame,
                             const EncodeCost& cost, bool preencoded);
  FramePtr next_after_locked(std::uint64_t since) const;  // requires mutex_
  FramePtr frame_for_locked(const Waiter& waiter) const;  // requires mutex_
  /// Earliest actionable instant over the parked waiters. Requires mutex_
  /// and a non-empty waiter list.
  std::chrono::steady_clock::time_point next_event_locked() const;
  /// Complete every waiter that is due at `now` (timeout or pacing
  /// interval elapsed with a frame available). Requires mutex_.
  void sweep_due_locked(std::chrono::steady_clock::time_point now);
  void timer_loop();
  // Reactor-mode scheduling (reactor loop thread only, under link mutex).
  /// `hint` is the event instant that prompted the call: when the armed
  /// timer already fires no later than it, nothing needs rescheduling —
  /// the common case for each new waiter, avoiding an O(waiters) rescan
  /// per poll. time_point::min() forces the authoritative rescan.
  void reschedule_on_reactor(std::chrono::steady_clock::time_point hint);
  /// Any thread: ask the reactor to re-derive its sweep timer.
  void request_reschedule(std::chrono::steady_clock::time_point hint);

  Config config_;
  /// Serializes publishers so frame building happens outside mutex_.
  std::mutex publish_mutex_;
  mutable std::mutex mutex_;
  std::condition_variable timer_cv_;  // wakes the timeout/pacing sweeper
  std::condition_variable sync_cv_;   // wakes blocking wait()ers
  std::deque<FramePtr> window_;
  std::uint64_t seq_ = 0;
  std::vector<Waiter> waiters_;
  bool shutdown_ = false;
  Stats stats_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::thread timer_;  // thread mode only
  // Reactor mode only:
  std::shared_ptr<ReactorLink> link_;
  std::uint64_t reactor_timer_ = 0;  // reactor loop thread only
  /// Expiry the armed reactor timer targets (loop thread only).
  std::chrono::steady_clock::time_point armed_at_{};
};

}  // namespace ricsa::web
