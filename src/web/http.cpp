#include "web/http.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/strings.hpp"

namespace ricsa::web {

namespace detail {

bool write_all(int fd, const char* data, std::size_t n) {
  std::size_t sent = 0;
  bool stalled = false;  // hit a send timeout with no progress since
  int timeouts = 0;      // total SO_SNDTIMEO expiries for this response
  while (sent < n) {
    const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      stalled = false;
      continue;
    }
    if (w < 0 && errno == EINTR) continue;  // a signal is not a dead peer
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // SO_SNDTIMEO expired. One retry after progress keeps a slow-but-
      // steady consumer alive; a second consecutive timeout with zero
      // bytes accepted means the peer is gone. The total budget is capped
      // so a peer trickling one byte per timeout window cannot pin the
      // calling thread forever.
      if (stalled || ++timeouts > 2) return false;
      stalled = true;
      continue;
    }
    return false;
  }
  return true;
}

void append_chunk(std::string& out, const std::string& payload) {
  if (payload.empty()) return;  // "0\r\n" would terminate the stream
  char size_line[32];
  const int n = std::snprintf(size_line, sizeof(size_line), "%zx\r\n",
                              payload.size());
  out.append(size_line, static_cast<std::size_t>(n));
  out += payload;
  out += "\r\n";
}

void append_last_chunk(std::string& out) { out += "0\r\n\r\n"; }

}  // namespace detail

namespace {

using detail::write_all;

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 206: return "Partial Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 416: return "Range Not Satisfiable";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

/// Strict digits-only Content-Length parse. A malformed header from a
/// remote peer must reject the request, never throw.
bool parse_content_length(const std::string& text, std::size_t& out) {
  if (text.empty() || text.size() > 12) return false;
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  out = value;
  return true;
}

enum class ParseResult { kOk, kNeedMore, kBad };

constexpr std::size_t kMaxHeaderBytes = 1u << 20;
constexpr std::size_t kMaxBodyBytes = 64u << 20;
/// Bytes a client may pipeline behind an in-flight response before the
/// connection is dropped (nothing is parsed while a response is pending,
/// so this is the only bound on that buffer).
constexpr std::size_t kMaxPipelinedBytes = 1u << 20;
/// Ceiling on unsent bytes queued to a streaming connection. A producer
/// honoring the drained callback stays far below this; hitting it means
/// the producer ignores backpressure while the consumer is effectively
/// dead, and the connection is dropped rather than growing without bound.
constexpr std::size_t kMaxStreamBuffered = 16u << 20;

/// Parse one request out of the front of `buffer`. Consumes the request's
/// bytes only on kOk; on kNeedMore the buffer is left intact for the next
/// readiness event (the incremental half of the connection state machine).
ParseResult parse_request(std::string& buffer, HttpRequest& out) {
  const std::size_t header_end = buffer.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return buffer.size() > kMaxHeaderBytes ? ParseResult::kBad
                                           : ParseResult::kNeedMore;
  }
  if (header_end > kMaxHeaderBytes) return ParseResult::kBad;

  std::istringstream lines(buffer.substr(0, header_end));
  std::string line;
  if (!std::getline(lines, line)) return ParseResult::kBad;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  {
    std::istringstream first(line);
    std::string target, version;
    if (!(first >> out.method >> target >> version)) return ParseResult::kBad;
    const auto q = target.find('?');
    if (q == std::string::npos) {
      out.path = target;
    } else {
      out.path = target.substr(0, q);
      out.query = target.substr(q + 1);
    }
  }
  while (std::getline(lines, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    const std::string key = util::to_lower(util::trim(line.substr(0, colon)));
    out.headers[key] = std::string(util::trim(line.substr(colon + 1)));
  }

  std::size_t content_length = 0;
  if (const auto it = out.headers.find("content-length");
      it != out.headers.end()) {
    if (!parse_content_length(it->second, content_length)) {
      return ParseResult::kBad;
    }
    if (content_length > kMaxBodyBytes) return ParseResult::kBad;
  }
  const std::size_t total = header_end + 4 + content_length;
  if (buffer.size() < total) return ParseResult::kNeedMore;
  out.body = buffer.substr(header_end + 4, content_length);
  buffer.erase(0, total);
  return ParseResult::kOk;
}

/// Flat-string serialization, used only for the pre-connection 503 reject
/// (a fresh socket, one small write). Live connections serialize onto
/// their BufferChain via detail::append_response_chain instead.
void append_response(std::string& out, const HttpResponse& response,
                     bool keep_alive, bool suppress_body) {
  out += util::strprintf(
      "HTTP/1.1 %d %s\r\nContent-Length: %zu\r\nConnection: %s\r\n",
      response.status, status_text(response.status), response.body_size(),
      keep_alive ? "keep-alive" : "close");
  for (const auto& [key, value] : response.headers) {
    out += key + ": " + value + "\r\n";
  }
  out += "\r\n";
  if (suppress_body) return;
  if (response.shared_body) {
    out += *response.shared_body;
  } else {
    out += response.body;
  }
}

/// iovec batch per sendmsg. Far above a typical response's segment count
/// (header + body = 2); a long streaming backlog just loops.
constexpr int kMaxWriteIov = 64;

bool is_known_method(const std::string& method) {
  static const std::set<std::string> kKnown = {
      "GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS", "PATCH", "TRACE"};
  return kKnown.count(method) > 0;
}

}  // namespace

namespace detail {

void append_response_chain(net::BufferChain& out, HttpResponse response,
                           bool keep_alive, bool suppress_body) {
  std::string head = util::strprintf(
      "HTTP/1.1 %d %s\r\nContent-Length: %zu\r\nConnection: %s\r\n",
      response.status, status_text(response.status), response.body_size(),
      keep_alive ? "keep-alive" : "close");
  for (const auto& [key, value] : response.headers) {
    head += key + ": " + value + "\r\n";
  }
  head += "\r\n";
  out.append_copy(head);
  if (suppress_body) return;  // HEAD: zero body segments
  if (response.shared_body) {
    out.append_shared(std::move(response.shared_body));
  } else if (!response.body.empty()) {
    out.append_shared(
        std::make_shared<const std::string>(std::move(response.body)));
  }
}

}  // namespace detail

std::string url_decode(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '%' && i + 2 < text.size()) {
      const auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      const int hi = hex(text[i + 1]), lo = hex(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(text[i] == '+' ? ' ' : text[i]);
  }
  return out;
}

std::string HttpRequest::query_param(const std::string& key,
                                     const std::string& fallback) const {
  for (const std::string& pair : util::split(query, '&')) {
    if (pair.empty()) continue;
    const auto eq = pair.find('=');
    // Decode before comparing: %66ull=1 names the parameter "full". A
    // valueless key (?foo&bar=1) is present with the empty value, not
    // absent — and never its own name as the value.
    const std::string name =
        url_decode(eq == std::string::npos ? pair : pair.substr(0, eq));
    if (name != key) continue;
    return eq == std::string::npos ? std::string()
                                   : url_decode(pair.substr(eq + 1));
  }
  return fallback;
}

HttpResponse HttpResponse::text(std::string body, int status) {
  HttpResponse r;
  r.status = status;
  r.headers["Content-Type"] = "text/plain; charset=utf-8";
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::json(std::string body, int status) {
  HttpResponse r;
  r.status = status;
  r.headers["Content-Type"] = "application/json";
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::json_shared(std::shared_ptr<const std::string> body,
                                       int status) {
  HttpResponse r;
  r.status = status;
  r.headers["Content-Type"] = "application/json";
  r.shared_body = std::move(body);
  return r;
}

HttpResponse HttpResponse::html(std::string body) {
  HttpResponse r;
  r.headers["Content-Type"] = "text/html; charset=utf-8";
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::binary(std::vector<std::uint8_t> bytes,
                                  std::string content_type) {
  HttpResponse r;
  r.headers["Content-Type"] = std::move(content_type);
  r.body.assign(bytes.begin(), bytes.end());
  return r;
}

HttpResponse HttpResponse::not_found() { return text("not found", 404); }
HttpResponse HttpResponse::bad_request(const std::string& why) {
  return text("bad request: " + why, 400);
}

// ---------------------------------------------------------------- server --

/// One client connection: a state machine advanced by the reactor. All
/// fields are loop-thread-only; cross-thread completions (worker-pool
/// handlers, async sinks) re-enter via Reactor::post. The fd closes with
/// the object, so a sink holding a weak_ptr can never write into a reused
/// descriptor.
struct HttpServer::Connection : net::EventHandler,
                                std::enable_shared_from_this<Connection> {
  HttpServer* server = nullptr;
  /// Home shard: the reactor that accepted (or adopted) this connection
  /// owns it exclusively — buffers, timers, epoll registration. Never
  /// changes after adoption.
  Shard* shard = nullptr;
  net::Socket sock;
  std::string peer;     // remote "ip:port", fixed at accept
  std::string in;       // received bytes not yet parsed (pipelining-safe)
  /// Unsent response bytes: refcounted segments (copied header blocks,
  /// shared frame bodies, chunk framing) gathered into writev.
  net::BufferChain out;
  std::uint32_t events = EPOLLIN | EPOLLRDHUP;
  /// A handler or async sink is outstanding for the current request; the
  /// next pipelined request is not parsed until its response is enqueued,
  /// which keeps responses in request order.
  bool response_pending = false;
  bool close_after_write = false;
  bool closed = false;
  /// Peer half-closed its write side (EOF/EPOLLRDHUP). Requests already
  /// received are still served — a request-then-FIN client is legal HTTP —
  /// and the connection closes once the last response has drained.
  bool peer_eof = false;
  /// Re-entrancy guard: an inline response (404/405) re-enters
  /// try_dispatch via enqueue_response; the outer parse loop continues
  /// instead of recursing once per pipelined request.
  bool dispatching = false;
  /// Streaming (chunked) response in progress: the connection never
  /// returns to request parsing. Further received bytes are drained and
  /// discarded, the idle read deadline is retired (an SSE subscriber
  /// legally sends nothing for hours), and the stream ends by closing.
  bool streaming = false;
  /// The stream's producer handle state; close paths mark it dead so the
  /// producer stops. Set together with `streaming`.
  std::shared_ptr<StreamReply> stream;
  /// One-shot callback fired when `out` fully drains to the socket — the
  /// streaming producer's cue to build the next chunk (TCP backpressure).
  std::function<void()> on_drain;
  /// Closes when no bytes arrive by this instant — covers idle keep-alive
  /// gaps, slow-loris partial requests, and clients gone mid-long-poll.
  net::Reactor::Clock::time_point read_deadline{};
  std::uint64_t idle_timer = 0;

  void on_event(std::uint32_t ev) override { server->conn_event(this, ev); }
};

/// Per-reactor slice of the server: the listener (when this shard
/// accepts), the connections this reactor owns, and the EMFILE reserve
/// descriptor. Everything here except `reactor` itself is touched only on
/// the shard's loop thread.
struct HttpServer::Shard {
  HttpServer* server = nullptr;
  std::size_t index = 0;
  std::shared_ptr<net::Reactor> reactor;
  AcceptHandler accept_handler;
  net::Socket listen;  // invalid on non-accepting shards (hand-off mode)
  /// Reserve descriptor: on EMFILE it is closed so the offending
  /// connection can still be accepted, told 503, and closed — instead of
  /// the listener spinning on an un-acceptable backlog.
  int reserve_fd = -1;
  /// Open connections owned by this reactor, keyed by fd.
  std::unordered_map<int, std::shared_ptr<Connection>> conns;
};

/// Shared state of one in-flight async response. Holds the reactor (not
/// the server's loop thread) alive so a sink fired after stop() still has
/// a queue to post into — the task is then simply never run.
struct AsyncReply {
  std::shared_ptr<net::Reactor> reactor;
  HttpServer* server = nullptr;
  std::weak_ptr<HttpServer::Connection> conn;
  bool keep_alive = true;
  bool suppress_body = false;
  std::atomic<bool> written{false};
};

void HttpServer::ResponseSink::operator()(const HttpResponse& response) const {
  (*this)(response, nullptr);
}

void HttpServer::ResponseSink::operator()(
    const HttpResponse& response, std::function<void()> drained) const {
  if (!reply_) return;
  AsyncReply& r = *reply_;
  if (r.written.exchange(true)) return;
  // The hub worker's completion becomes a reactor task: serialization and
  // the actual write happen on the loop thread where the connection state
  // lives, driven by write readiness from there on.
  r.reactor->post([server = r.server, conn = r.conn, keep_alive = r.keep_alive,
                   suppress = r.suppress_body, response,
                   drained = std::move(drained)]() mutable {
    if (const auto c = conn.lock()) {
      server->enqueue_response(c, std::move(response), keep_alive, suppress,
                               std::move(drained));
    }
  });
}

/// Shared state of one streaming response. Like AsyncReply it holds the
/// reactor alive so a producer firing after stop() posts into a drained
/// queue instead of a destroyed one. `dead` flows loop→producer only: any
/// close path sets it, and the producer reads it through alive()/chunk().
struct StreamReply {
  std::shared_ptr<net::Reactor> reactor;
  HttpServer* server = nullptr;
  std::weak_ptr<HttpServer::Connection> conn;
  bool head = false;  // HEAD request: begin() answers headers and closes
  std::atomic<bool> begun{false};
  std::atomic<bool> ended{false};
  std::atomic<bool> dead{false};
};

void HttpServer::StreamSink::begin(std::map<std::string, std::string> headers,
                                   int status) const {
  if (!reply_) return;
  StreamReply& r = *reply_;
  if (r.begun.exchange(true)) return;
  const bool posted =
      r.reactor->post([server = r.server, reply = reply_, status,
                       headers = std::move(headers)] {
        const auto c = reply->conn.lock();
        if (!c || c->closed) {
          reply->dead.store(true);
          return;
        }
        server->begin_stream(c, reply, status, headers);
      });
  // Reactor already drained (mid-shutdown): there is no loop to serve this
  // stream; mark it dead so alive()/chunk() refuse instead of the producer
  // spinning against a silently dropped task.
  if (!posted) r.dead.store(true);
}

bool HttpServer::StreamSink::chunk(std::string payload,
                                   std::function<void()> drained) const {
  net::BufferChain chain;
  if (!payload.empty()) {
    chain.append_shared(
        std::make_shared<const std::string>(std::move(payload)));
  }
  return chunk(std::move(chain), std::move(drained));
}

bool HttpServer::StreamSink::chunk(net::BufferChain payload,
                                   std::function<void()> drained) const {
  if (!reply_) return false;
  StreamReply& r = *reply_;
  if (r.dead.load() || r.ended.load() || !r.begun.load()) return false;
  const bool posted =
      r.reactor->post([server = r.server, reply = reply_,
                       payload = std::move(payload),
                       drained = std::move(drained)]() mutable {
        server->stream_chunk(reply, std::move(payload), std::move(drained));
      });
  if (!posted) {
    // The connection's home reactor exited (server stopping): the chunk
    // can never be written. Fail cleanly — dead, false — so the producer
    // stops instead of believing the chunk was queued.
    r.dead.store(true);
    return false;
  }
  return true;
}

void HttpServer::StreamSink::end() const {
  if (!reply_) return;
  StreamReply& r = *reply_;
  if (r.ended.exchange(true)) return;
  const bool posted = r.reactor->post(
      [server = r.server, reply = reply_] { server->end_stream(reply); });
  if (!posted) r.dead.store(true);
}

bool HttpServer::StreamSink::alive() const {
  return reply_ && !reply_->dead.load() && !reply_->ended.load();
}

bool HttpServer::StreamSink::head_only() const {
  return reply_ && reply_->head && reply_->begun.load();
}

HttpServer::HttpServer() = default;

HttpServer::~HttpServer() { stop(); }

void HttpServer::route(const std::string& method, const std::string& path,
                       Handler handler, bool prefix) {
  std::lock_guard<std::mutex> lock(routes_mutex_);
  if (prefix) {
    prefix_.emplace_back(method, path, std::move(handler));
  } else {
    exact_[{method, path}] = std::move(handler);
  }
}

void HttpServer::route_async(const std::string& method, const std::string& path,
                             AsyncHandler handler) {
  std::lock_guard<std::mutex> lock(routes_mutex_);
  async_[{method, path}] = std::move(handler);
}

void HttpServer::route_stream(const std::string& method,
                              const std::string& path, StreamHandler handler) {
  std::lock_guard<std::mutex> lock(routes_mutex_);
  stream_[{method, path}] = std::move(handler);
}

void HttpServer::set_idle_read_timeout(double seconds) {
  if (seconds > 0.0) read_timeout_s_ = seconds;
}

void HttpServer::set_workers(std::size_t workers) {
  if (workers > 0) workers_ = workers;
}

void HttpServer::set_max_connections(std::size_t max_connections) {
  if (max_connections > 0) max_connections_ = max_connections;
}

void HttpServer::set_reactors(std::size_t n) {
  if (!started_) reactors_.resize(n);
}

void HttpServer::set_accept_mode(AcceptMode mode) {
  if (!started_) accept_mode_ = mode;
}

void HttpServer::set_sndbuf(int bytes) {
  if (!started_ && bytes >= 0) sndbuf_ = bytes;
}

int HttpServer::start(int port) {
  if (started_) throw std::runtime_error("http: server cannot be restarted");
  started_ = true;
  const std::size_t n = reactors_.size();
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->server = this;
    shard->index = i;
    shard->reactor = reactors_.reactor_ptr(i);
    shard->accept_handler.shard = shard.get();
    shards_.push_back(std::move(shard));
  }
  // Accept strategy. SO_REUSEPORT: every shard binds its own listener on
  // the same port (the option must be set on all of them, including the
  // first) and the kernel spreads connections across the group. Hand-off:
  // one plain listener on shard 0, accepted sockets posted round-robin to
  // their owners. A single reactor needs neither — one plain listener.
  const bool reuse_port = accept_mode_ == AcceptMode::kReusePort && n > 1;
  shards_[0]->listen = net::Socket::listen_loopback(port, 1024, reuse_port);
  port_ = shards_[0]->listen.local_port();
  if (reuse_port) {
    for (std::size_t i = 1; i < n; ++i) {
      shards_[i]->listen = net::Socket::listen_loopback(port_, 1024, true);
    }
  }
  pool_ = std::make_unique<util::ThreadPool>(workers_);
  running_.store(true);
  for (const auto& owner : shards_) {
    Shard* shard = owner.get();
    if (!shard->listen.valid()) continue;
    shard->reserve_fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
    shard->reactor->post([shard] {
      if (!shard->reactor->add(shard->listen.fd(), EPOLLIN,
                               &shard->accept_handler)) {
        // No watch for the listener means no acceptor on this shard: close
        // it so the REUSEPORT group stops routing connections here.
        shard->listen.close();
      }
    });
  }
  reactors_.start();
  return port_;
}

void HttpServer::stop() {
  if (!running_.exchange(false)) return;
  // Teardown runs where the state lives: each loop closes its listener and
  // its own connections, then stops itself (Reactor::run drains tasks
  // posted before stop, so these are guaranteed to execute).
  for (const auto& owner : shards_) {
    Shard* shard = owner.get();
    shard->reactor->post([this, shard] {
      if (shard->listen.valid()) {
        shard->reactor->remove(shard->listen.fd());
        shard->listen.close();
      }
      std::vector<std::shared_ptr<Connection>> open;
      open.reserve(shard->conns.size());
      for (const auto& [fd, conn] : shard->conns) open.push_back(conn);
      for (const auto& conn : open) close_conn(conn);
      shard->reactor->stop();
    });
  }
  reactors_.stop();  // joins every loop thread
  // Joining the pool after the loops: in-flight handlers finish, and their
  // completion posts land in drained reactors as no-ops.
  pool_.reset();
  for (const auto& owner : shards_) {
    if (owner->reserve_fd >= 0) {
      ::close(owner->reserve_fd);
      owner->reserve_fd = -1;
    }
  }
}

void HttpServer::AcceptHandler::on_event(std::uint32_t) {
  shard->server->on_acceptable(shard);
}

net::Reactor::Clock::time_point HttpServer::read_deadline_from_now() const {
  return net::Reactor::Clock::now() +
         std::chrono::duration_cast<net::Reactor::Clock::duration>(
             std::chrono::duration<double>(read_timeout_s_));
}

void HttpServer::on_acceptable(Shard* shard) {
  for (;;) {
    net::Socket sock;
    std::string peer;
    int err = 0;
    const net::IoStatus status = shard->listen.accept(sock, peer, err);
    if (status == net::IoStatus::kWouldBlock) return;
    if (status == net::IoStatus::kError) {
      if (err == EMFILE || err == ENFILE) {
        // fd table exhausted. Release the reserve descriptor so the
        // connection can still be accepted, told 503, and closed — the
        // alternative is a backlog the listener can never drain.
        if (shard->reserve_fd >= 0) {
          ::close(shard->reserve_fd);
          shard->reserve_fd = -1;
        }
        if (shard->listen.accept(sock, peer, err) == net::IoStatus::kOk) {
          reject_with_503(shard, std::move(sock));
          shard->reserve_fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
          continue;
        }
        shard->reserve_fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
        return;  // still exhausted; level-triggered epoll will retry
      }
      if (err == ECONNABORTED || err == EINTR) continue;
      return;
    }
    // The cap reads the cross-shard counter: exact with one reactor,
    // approximate (racy by at most a few accepts) across many — an
    // admission limit, not an invariant.
    if (connections_open_.load() >= max_connections_) {
      reject_with_503(shard, std::move(sock));
      continue;
    }
    if (accept_mode_ == AcceptMode::kHandOff && shards_.size() > 1) {
      Shard* target = shards_[reactors_.next_index()].get();
      if (target != shard) {
        // Reactor::Task must be copyable; a Socket is move-only, so the
        // accepted fd rides the post inside a shared_ptr.
        auto held = std::make_shared<net::Socket>(std::move(sock));
        target->reactor->post(
            [this, target, held, peer = std::move(peer)]() mutable {
              adopt_connection(target, std::move(*held), std::move(peer));
            });
        continue;
      }
    }
    adopt_connection(shard, std::move(sock), std::move(peer));
  }
}

/// Register an accepted socket with its owning shard. Runs on the shard's
/// loop thread (directly from its acceptor, or via post in hand-off mode).
void HttpServer::adopt_connection(Shard* shard, net::Socket sock,
                                  std::string peer) {
  if (!running_.load()) return;  // raced with stop(); RAII closes the fd
  sock.set_send_buffer(sndbuf_);
  auto conn = std::make_shared<Connection>();
  conn->server = this;
  conn->shard = shard;
  conn->sock = std::move(sock);
  conn->peer = std::move(peer);
  conn->read_deadline = read_deadline_from_now();
  const int fd = conn->sock.fd();
  if (!shard->reactor->add(fd, conn->events, conn.get())) {
    // epoll watch exhaustion (fs.epoll.max_user_watches): the fd would
    // never receive events, so tell the client 503 instead of tracking
    // a connection that can only hang.
    reject_with_503(shard, std::move(conn->sock));
    return;
  }
  shard->conns[fd] = conn;
  connections_open_.fetch_add(1);
  arm_idle_timer(conn);
}

void HttpServer::reject_with_503(Shard* shard, net::Socket sock) {
  rejected_.fetch_add(1);
  std::string wire;
  append_response(wire,
                  HttpResponse::text("service unavailable: connection limit",
                                     503),
                  /*keep_alive=*/false, /*suppress_body=*/false);
  std::size_t written = 0;
  sock.write_some(wire.data(), wire.size(), written);  // fresh socket: fits
  // Half-close instead of close: an immediate close() with the client's
  // request sitting unread in our receive buffer turns into an RST that
  // can destroy the 503 before the client reads it. The fd is reaped
  // shortly after; under EMFILE pressure that delay is the price of the
  // client seeing an answer at all. The socket rides the timer closure as
  // a shared_ptr so server teardown (which destroys pending timers
  // without running them) still closes the fd via RAII.
  ::shutdown(sock.fd(), SHUT_WR);
  auto held = std::make_shared<net::Socket>(std::move(sock));
  shard->reactor->run_after(1.0, [held] { held->close(); });
}

void HttpServer::arm_idle_timer(const std::shared_ptr<Connection>& conn) {
  if (conn->closed || conn->idle_timer != 0) return;
  // One timer per connection, re-armed lazily: received bytes just move
  // read_deadline; the callback chases it instead of rescheduling per byte.
  conn->idle_timer = conn->shard->reactor->run_at(
      conn->read_deadline, [this, weak = std::weak_ptr<Connection>(conn)] {
        const auto c = weak.lock();
        if (!c || c->closed) return;
        c->idle_timer = 0;
        // A streaming subscriber legally sends nothing for the stream's
        // whole life; its death shows up as a write error or HUP instead.
        if (c->streaming) return;
        if (net::Reactor::Clock::now() >= c->read_deadline) {
          close_conn(c);
        } else {
          arm_idle_timer(c);
        }
      });
}

void HttpServer::close_conn(const std::shared_ptr<Connection>& conn) {
  if (conn->closed) return;
  conn->closed = true;
  if (conn->stream) {
    // Tell the producer its consumer is gone; the next chunk() refuses.
    conn->stream->dead.store(true);
    conn->stream.reset();
  }
  conn->on_drain = nullptr;
  if (conn->idle_timer != 0) {
    conn->shard->reactor->cancel(conn->idle_timer);
    conn->idle_timer = 0;
  }
  conn->shard->reactor->remove(conn->sock.fd());
  conn->shard->conns.erase(conn->sock.fd());
  conn->sock.close();
  connections_open_.fetch_sub(1);
}

void HttpServer::conn_event(Connection* raw, std::uint32_t events) {
  // Keep the connection alive across close_conn (which drops the registry
  // reference) for the rest of this dispatch.
  const std::shared_ptr<Connection> conn = raw->shared_from_this();
  if (conn->closed) return;
  if (events & EPOLLERR) {
    close_conn(conn);
    return;
  }
  if (events & EPOLLIN) {
    bool got_bytes = false;
    // Bounded burst so one firehose connection cannot starve the loop.
    for (int burst = 0; burst < 8; ++burst) {
      const net::IoStatus status = conn->sock.read_some(conn->in);
      if (status == net::IoStatus::kOk) {
        got_bytes = true;
        continue;
      }
      if (status == net::IoStatus::kWouldBlock) break;
      if (status == net::IoStatus::kEof) {
        // Half-close, not abandonment: a request-then-FIN client still
        // expects its responses. Serve what arrived, then close below.
        conn->peer_eof = true;
        break;
      }
      close_conn(conn);
      return;
    }
    if (got_bytes) {
      conn->read_deadline = read_deadline_from_now();
      if (conn->streaming) {
        // A converted connection never parses again: bytes pipelined
        // behind the converting request — or sent later — are drained and
        // discarded deterministically instead of being interpreted as
        // requests against a response channel that no longer exists.
        conn->in.clear();
      } else if (!conn->response_pending) {
        try_dispatch(conn);
        if (conn->closed) return;
      } else if (conn->in.size() > kMaxPipelinedBytes) {
        close_conn(conn);  // flooding behind a parked response
        return;
      }
    }
  }
  // EPOLLRDHUP only wakes the loop; EOF itself is detected by recv()
  // returning 0 above, which guarantees every byte the peer sent before
  // its FIN has been drained first (level-triggered EPOLLIN re-fires
  // until then, so a burst-capped read never loses the tail).
  if (conn->peer_eof) {
    finish_after_eof(conn);
    if (conn->closed) return;
    // Drop read interest: an EOF'd fd stays readable under level-triggered
    // epoll and would spin the loop for as long as a response is pending.
    update_events(conn);
  }
  if (events & EPOLLHUP) {
    // Both directions gone: nothing can be delivered anymore.
    close_conn(conn);
    return;
  }
  if (events & EPOLLOUT) continue_write(conn);
}

/// Reconcile the epoll interest mask with the connection's state: reads
/// while the peer can still send, writes while output is queued.
void HttpServer::update_events(const std::shared_ptr<Connection>& conn) {
  if (conn->closed) return;
  std::uint32_t want = conn->peer_eof ? 0u : (EPOLLIN | EPOLLRDHUP);
  if (!conn->out.empty()) want |= EPOLLOUT;
  if (want != conn->events) {
    conn->events = want;
    conn->shard->reactor->modify(conn->sock.fd(), want);
  }
}

/// A half-closed peer sends no further requests: once nothing is in
/// flight, close as soon as the output buffer drains. Complete requests
/// already buffered keep being served first (try_dispatch runs before
/// this on every path that can make response_pending false).
void HttpServer::finish_after_eof(const std::shared_ptr<Connection>& conn) {
  if (conn->closed || !conn->peer_eof) return;
  if (conn->streaming) {
    // A streaming peer that half-closed is gone for our purposes: the only
    // traffic left flows our way, and EventSource aborts by closing.
    close_conn(conn);
    return;
  }
  if (conn->response_pending) return;
  if (conn->out.empty()) {
    close_conn(conn);
  } else {
    conn->close_after_write = true;
  }
}

void HttpServer::try_dispatch(const std::shared_ptr<Connection>& conn) {
  if (conn->dispatching) return;
  conn->dispatching = true;
  while (!conn->closed && !conn->response_pending && !conn->streaming &&
         !conn->close_after_write) {
    HttpRequest request;
    const ParseResult result = parse_request(conn->in, request);
    if (result == ParseResult::kNeedMore) break;
    if (result == ParseResult::kBad) {
      close_conn(conn);
      break;
    }
    request.peer = conn->peer;
    conn->response_pending = true;
    dispatch(conn, std::move(request));
  }
  conn->dispatching = false;
}

void HttpServer::dispatch(const std::shared_ptr<Connection>& conn,
                          HttpRequest request) {
  const bool keep_alive =
      !util::iequals(request.headers.count("connection")
                         ? request.headers.at("connection")
                         : "keep-alive",
                     "close");
  const bool is_head = request.method == "HEAD";
  bool suppress_body = is_head;

  AsyncHandler async_handler;
  StreamHandler stream_handler;
  Handler handler;
  std::string allow;  // populated when the path exists under other methods
  {
    std::lock_guard<std::mutex> lock(routes_mutex_);
    const auto find_for = [&](const std::string& method) {
      if (const auto it = async_.find({method, request.path});
          it != async_.end()) {
        async_handler = it->second;
        return true;
      }
      if (const auto st = stream_.find({method, request.path});
          st != stream_.end()) {
        stream_handler = st->second;
        return true;
      }
      if (const auto jt = exact_.find({method, request.path});
          jt != exact_.end()) {
        handler = jt->second;
        return true;
      }
      for (const auto& [m, prefix, h] : prefix_) {
        if (m == method && util::starts_with(request.path, prefix)) {
          handler = h;
          return true;
        }
      }
      return false;
    };
    // HEAD falls back to the GET route with the body suppressed. For a
    // stream route the sink answers HEAD itself (headers, then close) —
    // it must never park a suppressed infinite body.
    if (!find_for(request.method) && !(is_head && find_for("GET"))) {
      std::set<std::string> methods;
      for (const auto& [key, h] : exact_) {
        if (key.second == request.path) methods.insert(key.first);
      }
      for (const auto& [key, h] : async_) {
        if (key.second == request.path) methods.insert(key.first);
      }
      for (const auto& [key, h] : stream_) {
        if (key.second == request.path) methods.insert(key.first);
      }
      for (const auto& [m, prefix, h] : prefix_) {
        if (util::starts_with(request.path, prefix)) methods.insert(m);
      }
      if (methods.count("GET")) methods.insert("HEAD");
      for (const std::string& m : methods) {
        allow += (allow.empty() ? "" : ", ") + m;
      }
    }
  }

  if (!handler && !async_handler && !stream_handler) {
    HttpResponse response;
    if (!allow.empty()) {
      // The resource exists, the method is wrong (RFC 7231 §6.5.5).
      response = HttpResponse::text("method not allowed", 405);
      response.headers["Allow"] = allow;
    } else if (!is_known_method(request.method)) {
      // An unrecognized method is a method problem, not a missing page.
      response = HttpResponse::text("method not allowed", 405);
    } else {
      response = HttpResponse::not_found();
    }
    enqueue_response(conn, std::move(response), keep_alive, suppress_body);
    return;
  }

  if (stream_handler) {
    auto reply = std::make_shared<StreamReply>();
    reply->reactor = conn->shard->reactor;
    reply->server = this;
    reply->conn = conn;
    reply->head = is_head;
    StreamSink sink;
    sink.reply_ = std::move(reply);
    pool_->submit([handler = std::move(stream_handler),
                   request = std::move(request), sink] {
      try {
        handler(request, sink);
      } catch (const std::exception&) {
        // Best effort: an empty chunked 500 if the stream never began, a
        // truncating terminator if it did. begin() is a no-op once begun.
        sink.begin({{"Content-Type", "text/plain; charset=utf-8"}}, 500);
        sink.end();
      }
    });
    return;
  }

  if (async_handler) {
    auto reply = std::make_shared<AsyncReply>();
    reply->reactor = conn->shard->reactor;
    reply->server = this;
    reply->conn = conn;
    reply->keep_alive = keep_alive;
    reply->suppress_body = suppress_body;
    ResponseSink sink;
    sink.reply_ = std::move(reply);
    pool_->submit([handler = std::move(async_handler),
                   request = std::move(request), sink] {
      try {
        handler(request, sink);
      } catch (const std::exception& e) {
        sink(HttpResponse::text(std::string("internal error: ") + e.what(),
                                500));
      }
    });
    return;
  }

  // Sync handlers run on the worker pool — the loop thread never blocks on
  // application code — and complete by posting back to the connection's
  // home reactor, exactly like a sink.
  pool_->submit([this, handler = std::move(handler),
                 request = std::move(request), conn, keep_alive,
                 suppress_body, reactor = conn->shard->reactor] {
    HttpResponse response;
    try {
      response = handler(request);
    } catch (const std::exception& e) {
      response =
          HttpResponse::text(std::string("internal error: ") + e.what(), 500);
    }
    reactor->post([this, conn, response = std::move(response), keep_alive,
                   suppress_body]() mutable {
      enqueue_response(conn, std::move(response), keep_alive, suppress_body);
    });
  });
}

void HttpServer::enqueue_response(const std::shared_ptr<Connection>& conn,
                                  HttpResponse response, bool keep_alive,
                                  bool suppress_body,
                                  std::function<void()> drained) {
  if (conn->closed) return;
  detail::append_response_chain(conn->out, std::move(response), keep_alive,
                                suppress_body);
  served_.fetch_add(1);
  conn->response_pending = false;
  // Same latest-wins slot the streaming producers use; a non-stream
  // connection has at most one response in flight, so there is no contest.
  if (drained) conn->on_drain = std::move(drained);
  if (!keep_alive) conn->close_after_write = true;
  // The response window is over; the client gets a fresh full read timeout
  // for its next request (matches the old per-recv SO_RCVTIMEO behaviour).
  conn->read_deadline = read_deadline_from_now();
  continue_write(conn);
  // A pipelined request may already be buffered; its response will simply
  // append behind the bytes still draining.
  if (!conn->closed) try_dispatch(conn);
  if (!conn->closed) finish_after_eof(conn);
}

void HttpServer::begin_stream(
    const std::shared_ptr<Connection>& conn,
    const std::shared_ptr<StreamReply>& reply, int status,
    const std::map<std::string, std::string>& headers) {
  // The stream head: chunked framing delimits the body, so no
  // Content-Length; Connection: close because a converted connection
  // never parses another request — keep-alive would strand the client.
  std::string head = util::strprintf(
      "HTTP/1.1 %d %s\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n",
      status, status_text(status));
  for (const auto& [key, value] : headers) {
    head += key + ": " + value + "\r\n";
  }
  head += "\r\n";
  conn->out.append_copy(head);
  served_.fetch_add(1);
  conn->response_pending = false;
  if (reply->head) {
    // HEAD of a streaming resource: the headers it would carry, then
    // close. The producer sees head_only()/refused chunks and stops.
    reply->dead.store(true);
    conn->close_after_write = true;
    continue_write(conn);
    return;
  }
  conn->streaming = true;
  conn->stream = reply;
  // Bytes pipelined behind the converting request are discarded, never
  // parsed into a stream-mode connection (conn_event drains later ones).
  conn->in.clear();
  if (conn->idle_timer != 0) {
    conn->shard->reactor->cancel(conn->idle_timer);
    conn->idle_timer = 0;
  }
  continue_write(conn);
  // A peer that already half-closed is gone (see finish_after_eof); close
  // now rather than holding an un-watched fd forever.
  if (!conn->closed && conn->peer_eof) close_conn(conn);
}

void HttpServer::stream_chunk(const std::shared_ptr<StreamReply>& reply,
                              net::BufferChain payload,
                              std::function<void()> drained) {
  const auto conn = reply->conn.lock();
  if (!conn || conn->closed || !conn->streaming) {
    reply->dead.store(true);
    return;
  }
  if (conn->out.size() + payload.size() > kMaxStreamBuffered) {
    close_conn(conn);  // producer ignoring backpressure on a dead consumer
    return;
  }
  if (!payload.empty()) {
    // Chunk framing brackets the payload chain in place — the body segments
    // (often shared frame buffers) are never copied into a wire string.
    char size_line[32];
    const int n = std::snprintf(size_line, sizeof(size_line), "%zx\r\n",
                                payload.size());
    conn->out.append_copy(std::string_view(size_line,
                                           static_cast<std::size_t>(n)));
    conn->out.append_chain(std::move(payload));
    conn->out.append_copy("\r\n");
  }
  // Latest-wins: the producer re-arms one continuation per burst of
  // chunks; pacing decisions belong to it, not to a callback queue.
  if (drained) conn->on_drain = std::move(drained);
  continue_write(conn);
}

void HttpServer::end_stream(const std::shared_ptr<StreamReply>& reply) {
  const auto conn = reply->conn.lock();
  reply->dead.store(true);
  if (!conn || conn->closed || !conn->streaming) return;
  conn->out.append_copy("0\r\n\r\n");
  conn->on_drain = nullptr;
  conn->close_after_write = true;
  continue_write(conn);
}

void HttpServer::continue_write(const std::shared_ptr<Connection>& conn) {
  if (conn->closed) return;
  while (!conn->out.empty()) {
    struct iovec iov[kMaxWriteIov];
    const int iovcnt = conn->out.fill_iov(iov, kMaxWriteIov);
    std::size_t written = 0;
    const net::IoStatus status = conn->sock.writev(iov, iovcnt, written);
    // consume() releases fully-drained segments (dropping their refcounts)
    // and advances the offset inside a partially-written one, so a resumed
    // write picks up mid-segment without shifting bytes.
    conn->out.consume(written);
    bytes_sent_.fetch_add(written, std::memory_order_relaxed);
    if (status == net::IoStatus::kError) {
      close_conn(conn);
      return;
    }
    if (status == net::IoStatus::kWouldBlock || written == 0) break;
  }
  if (conn->out.empty()) {
    if (conn->on_drain) {
      // Everything queued reached the kernel: the streaming producer's
      // cue for the next chunk, or a response's drain accounting. Fired
      // before any close-after-write below so the final response of a
      // closing connection is still accounted. One-shot; any further work
      // it wants arrives as reactor posts, so firing inline cannot
      // recurse here.
      const auto drained = std::move(conn->on_drain);
      conn->on_drain = nullptr;
      drained();
    }
    if (conn->close_after_write && !conn->response_pending) {
      close_conn(conn);
      return;
    }
  }
  update_events(conn);
}

// ---------------------------------------------------------------- client --

namespace {

void set_recv_timeout(int fd, double timeout_s) {
  timeval tv{static_cast<time_t>(timeout_s),
             static_cast<suseconds_t>(
                 (timeout_s - static_cast<time_t>(timeout_s)) * 1e6)};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

HttpClient::~HttpClient() { close(); }

HttpClient::HttpClient(HttpClient&& other) noexcept
    : port_(other.port_),
      fd_(other.fd_),
      reconnects_(other.reconnects_),
      buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

void HttpClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

void HttpClient::ensure_connected(double timeout_s) {
  if (fd_ >= 0) return;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw HttpError(HttpError::Kind::kConnect, "http client: socket() failed");
  }
  set_recv_timeout(fd_, timeout_s);
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw HttpError(HttpError::Kind::kConnect, "http client: connect() failed");
  }
  ++reconnects_;
  buffer_.clear();
}

HttpClient::Response HttpClient::exchange(const std::string& request_text,
                                          double timeout_s,
                                          bool retry_on_stale) {
  ensure_connected(timeout_s);
  set_recv_timeout(fd_, timeout_s);
  if (!write_all(fd_, request_text.data(), request_text.size())) {
    // Server closed the idle keep-alive connection; retry on a fresh one.
    close();
    if (retry_on_stale) return exchange(request_text, timeout_s, false);
    throw HttpError(HttpError::Kind::kIo, "http client: send failed");
  }

  char chunk[8192];
  std::size_t header_end;
  bool got_bytes = !buffer_.empty();
  while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      const bool stale = n == 0 || errno == ECONNRESET;
      close();
      if (!got_bytes && retry_on_stale && stale) {
        // EOF/reset before any response bytes: stale keep-alive connection.
        return exchange(request_text, timeout_s, false);
      }
      throw HttpError(HttpError::Kind::kIo, "http client: no response");
    }
    got_bytes = true;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }

  Response out;
  {
    std::istringstream lines(buffer_.substr(0, header_end));
    std::string line;
    std::getline(lines, line);
    std::istringstream status_line(line);
    std::string version;
    status_line >> version >> out.status;
    while (std::getline(lines, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const auto colon = line.find(':');
      if (colon == std::string::npos) continue;
      out.headers[util::to_lower(util::trim(line.substr(0, colon)))] =
          std::string(util::trim(line.substr(colon + 1)));
    }
  }
  buffer_.erase(0, header_end + 4);

  std::size_t content_length = 0;
  if (out.headers.count("content-length") &&
      !parse_content_length(out.headers.at("content-length"),
                            content_length)) {
    close();
    throw HttpError(HttpError::Kind::kProtocol,
                    "http client: bad content-length");
  }
  while (buffer_.size() < content_length) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      close();
      throw HttpError(HttpError::Kind::kIo, "http client: truncated response");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
  out.body = buffer_.substr(0, content_length);
  buffer_.erase(0, content_length);

  if (out.headers.count("connection") &&
      util::iequals(out.headers.at("connection"), "close")) {
    close();
  }
  return out;
}

HttpClient::Response HttpClient::get(const std::string& path_and_query,
                                     double timeout_s) {
  const std::string req =
      "GET " + path_and_query +
      " HTTP/1.1\r\nHost: localhost\r\nConnection: keep-alive\r\n\r\n";
  return exchange(req, timeout_s, true);
}

HttpClient::Response HttpClient::post(const std::string& path,
                                      const std::string& body,
                                      const std::string& content_type,
                                      double timeout_s) {
  const std::string req =
      util::strprintf(
          "POST %s HTTP/1.1\r\nHost: localhost\r\nConnection: keep-alive\r\n"
          "Content-Type: %s\r\nContent-Length: %zu\r\n\r\n",
          path.c_str(), content_type.c_str(), body.size()) +
      body;
  return exchange(req, timeout_s, true);
}

namespace {

/// Backoff before attempt `attempt` (1-based count of failures so far):
/// initial * 2^(attempt-1), capped. A 503's numeric Retry-After overrides
/// the schedule but stays under the same cap — a relay must not let an
/// overloaded origin park it for minutes. Only a fully numeric value
/// counts: the HTTP-date form ("Fri, 08 Aug 2026 …") and any other junk
/// fall back to the exponential schedule. A lax strtod here is an actual
/// bug, twice over — a date's leading day-of-month would parse as a
/// seconds value, and "nan" would survive the cap (std::min(nan, cap)
/// returns nan) and poison the sleep.
double retry_delay_s(const HttpClient::RetryPolicy& policy, int attempt,
                     const HttpClient::Response* response) {
  double delay = policy.initial_backoff_s;
  for (int i = 1; i < attempt; ++i) delay *= 2.0;
  if (response != nullptr) {
    const auto it = response->headers.find("retry-after");
    if (it != response->headers.end()) {
      const char* s = it->second.c_str();
      char* end = nullptr;
      const double after = std::strtod(s, &end);
      while (end != nullptr && (*end == ' ' || *end == '\t')) ++end;
      const bool fully_numeric =
          end != s && end != nullptr && *end == '\0' && std::isfinite(after);
      if (fully_numeric && after >= 0.0) delay = after;
    }
  }
  return std::min(delay, policy.max_backoff_s);
}

HttpClient::Response exchange_with_retry(
    const HttpClient::RetryPolicy& policy,
    const std::function<HttpClient::Response()>& attempt_fn) {
  const int attempts = std::max(policy.max_attempts, 1);
  for (int attempt = 1;; ++attempt) {
    HttpClient::Response response;
    try {
      response = attempt_fn();
    } catch (const HttpError& error) {
      // Transport-level failures are transient (the server may be
      // restarting); a response we cannot parse is not.
      if (error.kind() == HttpError::Kind::kProtocol || attempt >= attempts) {
        throw;
      }
      std::this_thread::sleep_for(std::chrono::duration<double>(
          retry_delay_s(policy, attempt, nullptr)));
      continue;
    }
    if (response.status != 503 || attempt >= attempts) return response;
    std::this_thread::sleep_for(std::chrono::duration<double>(
        retry_delay_s(policy, attempt, &response)));
  }
}

}  // namespace

HttpClient::Response HttpClient::get_with_retry(
    const std::string& path_and_query, const RetryPolicy& policy,
    double timeout_s) {
  return exchange_with_retry(policy,
                             [&] { return get(path_and_query, timeout_s); });
}

HttpClient::Response HttpClient::post_with_retry(const std::string& path,
                                                 const std::string& body,
                                                 const RetryPolicy& policy,
                                                 const std::string& content_type,
                                                 double timeout_s) {
  return exchange_with_retry(
      policy, [&] { return post(path, body, content_type, timeout_s); });
}

// ----------------------------------------------------- one-shot helpers --

namespace {
HttpClientResponse http_exchange(int port, const std::string& request_text,
                                 double timeout_s) {
  HttpClient client(port);
  const HttpClient::Response r = client.exchange(request_text, timeout_s, false);
  return HttpClientResponse{r.status, r.headers, r.body};
}
}  // namespace

HttpClientResponse http_get(int port, const std::string& path_and_query,
                            double timeout_s) {
  const std::string req = "GET " + path_and_query +
                          " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  return http_exchange(port, req, timeout_s);
}

HttpClientResponse http_post(int port, const std::string& path,
                             const std::string& body,
                             const std::string& content_type,
                             double timeout_s) {
  const std::string req = util::strprintf(
      "POST %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n"
      "Content-Type: %s\r\nContent-Length: %zu\r\n\r\n",
      path.c_str(), content_type.c_str(), body.size()) + body;
  return http_exchange(port, req, timeout_s);
}

}  // namespace ricsa::web
