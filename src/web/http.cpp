#include "web/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace ricsa::web {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

/// Read until the full header block is present; then read the body per
/// Content-Length. Returns false on EOF / malformed input.
bool read_request(int fd, HttpRequest& out) {
  std::string buffer;
  char chunk[4096];
  std::size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer.append(chunk, static_cast<std::size_t>(n));
    header_end = buffer.find("\r\n\r\n");
    if (buffer.size() > 1 << 20) return false;  // header bomb
  }

  const std::string head = buffer.substr(0, header_end);
  std::string rest = buffer.substr(header_end + 4);

  std::istringstream lines(head);
  std::string line;
  if (!std::getline(lines, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  {
    std::istringstream first(line);
    std::string target, version;
    if (!(first >> out.method >> target >> version)) return false;
    const auto q = target.find('?');
    if (q == std::string::npos) {
      out.path = target;
    } else {
      out.path = target.substr(0, q);
      out.query = target.substr(q + 1);
    }
  }
  while (std::getline(lines, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    const std::string key = util::to_lower(util::trim(line.substr(0, colon)));
    out.headers[key] = std::string(util::trim(line.substr(colon + 1)));
  }

  std::size_t content_length = 0;
  const auto it = out.headers.find("content-length");
  if (it != out.headers.end()) {
    content_length = static_cast<std::size_t>(std::stoul(it->second));
    if (content_length > (64u << 20)) return false;
  }
  while (rest.size() < content_length) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    rest.append(chunk, static_cast<std::size_t>(n));
  }
  out.body = rest.substr(0, content_length);
  return true;
}

bool write_all(int fd, const char* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w <= 0) return false;
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

std::string url_decode(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '%' && i + 2 < text.size()) {
      const auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      const int hi = hex(text[i + 1]), lo = hex(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(text[i] == '+' ? ' ' : text[i]);
  }
  return out;
}

std::string HttpRequest::query_param(const std::string& key,
                                     const std::string& fallback) const {
  for (const std::string& pair : util::split(query, '&')) {
    const auto eq = pair.find('=');
    if (eq == std::string::npos) continue;
    if (pair.substr(0, eq) == key) return url_decode(pair.substr(eq + 1));
  }
  return fallback;
}

HttpResponse HttpResponse::text(std::string body, int status) {
  HttpResponse r;
  r.status = status;
  r.headers["Content-Type"] = "text/plain; charset=utf-8";
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::json(std::string body, int status) {
  HttpResponse r;
  r.status = status;
  r.headers["Content-Type"] = "application/json";
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::html(std::string body) {
  HttpResponse r;
  r.headers["Content-Type"] = "text/html; charset=utf-8";
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::binary(std::vector<std::uint8_t> bytes,
                                  std::string content_type) {
  HttpResponse r;
  r.headers["Content-Type"] = std::move(content_type);
  r.body.assign(bytes.begin(), bytes.end());
  return r;
}

HttpResponse HttpResponse::not_found() { return text("not found", 404); }
HttpResponse HttpResponse::bad_request(const std::string& why) {
  return text("bad request: " + why, 400);
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::route(const std::string& method, const std::string& path,
                       Handler handler, bool prefix) {
  std::lock_guard<std::mutex> lock(routes_mutex_);
  if (prefix) {
    prefix_.emplace_back(method, path, std::move(handler));
  } else {
    exact_[{method, path}] = std::move(handler);
  }
}

int HttpServer::start(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("http: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error("http: bind() failed");
  }
  if (::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error("http: listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  running_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  return port_;
}

void HttpServer::stop() {
  if (!running_.exchange(false)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(workers_mutex_);
    workers.swap(workers_);
  }
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
}

void HttpServer::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) return;
      continue;
    }
    std::lock_guard<std::mutex> lock(workers_mutex_);
    workers_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void HttpServer::serve_connection(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval tv{30, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  while (running_.load()) {
    HttpRequest request;
    if (!read_request(fd, request)) break;
    HttpResponse response = dispatch(request);
    ++served_;

    const bool keep_alive =
        !util::iequals(request.headers.count("connection")
                           ? request.headers.at("connection")
                           : "keep-alive",
                       "close");
    std::string head = util::strprintf(
        "HTTP/1.1 %d %s\r\nContent-Length: %zu\r\nConnection: %s\r\n",
        response.status, status_text(response.status), response.body.size(),
        keep_alive ? "keep-alive" : "close");
    for (const auto& [key, value] : response.headers) {
      head += key + ": " + value + "\r\n";
    }
    head += "\r\n";
    if (!write_all(fd, head.data(), head.size())) break;
    if (!write_all(fd, response.body.data(), response.body.size())) break;
    if (!keep_alive) break;
  }
  ::close(fd);
}

HttpResponse HttpServer::dispatch(const HttpRequest& request) {
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(routes_mutex_);
    const auto it = exact_.find({request.method, request.path});
    if (it != exact_.end()) {
      handler = it->second;
    } else {
      for (const auto& [method, prefix, h] : prefix_) {
        if (method == request.method &&
            util::starts_with(request.path, prefix)) {
          handler = h;
          break;
        }
      }
    }
  }
  if (!handler) return HttpResponse::not_found();
  try {
    return handler(request);
  } catch (const std::exception& e) {
    return HttpResponse::text(std::string("internal error: ") + e.what(), 500);
  }
}

namespace {
HttpClientResponse http_exchange(int port, const std::string& request_text,
                                 double timeout_s) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("http client: socket() failed");
  timeval tv{static_cast<time_t>(timeout_s),
             static_cast<suseconds_t>((timeout_s - static_cast<time_t>(timeout_s)) * 1e6)};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw std::runtime_error("http client: connect() failed");
  }
  if (!write_all(fd, request_text.data(), request_text.size())) {
    ::close(fd);
    throw std::runtime_error("http client: send failed");
  }

  std::string buffer;
  char chunk[8192];
  std::size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      ::close(fd);
      throw std::runtime_error("http client: no response");
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    header_end = buffer.find("\r\n\r\n");
  }

  HttpClientResponse out;
  {
    std::istringstream lines(buffer.substr(0, header_end));
    std::string line;
    std::getline(lines, line);
    std::istringstream status_line(line);
    std::string version;
    status_line >> version >> out.status;
    while (std::getline(lines, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const auto colon = line.find(':');
      if (colon == std::string::npos) continue;
      out.headers[util::to_lower(util::trim(line.substr(0, colon)))] =
          std::string(util::trim(line.substr(colon + 1)));
    }
  }
  std::string body = buffer.substr(header_end + 4);
  std::size_t content_length = 0;
  if (out.headers.count("content-length")) {
    content_length = std::stoul(out.headers.at("content-length"));
  }
  while (body.size() < content_length) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    body.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  out.body = body.substr(0, std::min(body.size(), content_length));
  return out;
}
}  // namespace

HttpClientResponse http_get(int port, const std::string& path_and_query,
                            double timeout_s) {
  const std::string req = "GET " + path_and_query +
                          " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  return http_exchange(port, req, timeout_s);
}

HttpClientResponse http_post(int port, const std::string& path,
                             const std::string& body,
                             const std::string& content_type,
                             double timeout_s) {
  const std::string req = util::strprintf(
      "POST %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n"
      "Content-Type: %s\r\nContent-Length: %zu\r\n\r\n",
      path.c_str(), content_type.c_str(), body.size()) + body;
  return http_exchange(port, req, timeout_s);
}

}  // namespace ricsa::web
