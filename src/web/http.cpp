#include "web/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace ricsa::web {

namespace detail {

bool write_all(int fd, const char* data, std::size_t n) {
  std::size_t sent = 0;
  bool stalled = false;  // hit a send timeout with no progress since
  int timeouts = 0;      // total SO_SNDTIMEO expiries for this response
  while (sent < n) {
    const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      stalled = false;
      continue;
    }
    if (w < 0 && errno == EINTR) continue;  // a signal is not a dead peer
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // SO_SNDTIMEO expired. One retry after progress keeps a slow-but-
      // steady consumer alive; a second consecutive timeout with zero
      // bytes accepted means the peer is gone. The total budget is capped
      // so a peer trickling one byte per timeout window cannot pin this
      // (possibly hub-worker) thread forever.
      if (stalled || ++timeouts > 2) return false;
      stalled = true;
      continue;
    }
    return false;
  }
  return true;
}

}  // namespace detail

namespace {

using detail::write_all;

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

void set_recv_timeout(int fd, double timeout_s) {
  timeval tv{static_cast<time_t>(timeout_s),
             static_cast<suseconds_t>(
                 (timeout_s - static_cast<time_t>(timeout_s)) * 1e6)};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

bool write_response(int fd, const HttpResponse& response, bool keep_alive) {
  std::string head = util::strprintf(
      "HTTP/1.1 %d %s\r\nContent-Length: %zu\r\nConnection: %s\r\n",
      response.status, status_text(response.status), response.body.size(),
      keep_alive ? "keep-alive" : "close");
  for (const auto& [key, value] : response.headers) {
    head += key + ": " + value + "\r\n";
  }
  head += "\r\n";
  return write_all(fd, head.data(), head.size()) &&
         write_all(fd, response.body.data(), response.body.size());
}

/// Strict digits-only Content-Length parse. A malformed header from a
/// remote peer must reject the request, never throw (these run on
/// connection threads where an escaped exception would terminate).
bool parse_content_length(const std::string& text, std::size_t& out) {
  if (text.empty() || text.size() > 12) return false;
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  out = value;
  return true;
}

enum class ReadResult { kOk, kClosed, kTimeout };

/// Parse one request out of `buffer`, topping it up from `fd` as needed.
/// Bytes beyond the parsed request stay in `buffer` (pipelining-safe).
ReadResult read_request(int fd, std::string& buffer, HttpRequest& out) {
  char chunk[8192];
  std::size_t header_end;
  while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) return ReadResult::kClosed;
    if (n < 0) {
      return (errno == EAGAIN || errno == EWOULDBLOCK) ? ReadResult::kTimeout
                                                       : ReadResult::kClosed;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > 1 << 20) return ReadResult::kClosed;  // header bomb
  }

  const std::string head = buffer.substr(0, header_end);
  buffer.erase(0, header_end + 4);

  std::istringstream lines(head);
  std::string line;
  if (!std::getline(lines, line)) return ReadResult::kClosed;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  {
    std::istringstream first(line);
    std::string target, version;
    if (!(first >> out.method >> target >> version)) return ReadResult::kClosed;
    const auto q = target.find('?');
    if (q == std::string::npos) {
      out.path = target;
    } else {
      out.path = target.substr(0, q);
      out.query = target.substr(q + 1);
    }
  }
  while (std::getline(lines, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    const std::string key = util::to_lower(util::trim(line.substr(0, colon)));
    out.headers[key] = std::string(util::trim(line.substr(colon + 1)));
  }

  std::size_t content_length = 0;
  const auto it = out.headers.find("content-length");
  if (it != out.headers.end()) {
    if (!parse_content_length(it->second, content_length)) {
      return ReadResult::kClosed;
    }
    if (content_length > (64u << 20)) return ReadResult::kClosed;
  }
  while (buffer.size() < content_length) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return ReadResult::kClosed;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  out.body = buffer.substr(0, content_length);
  buffer.erase(0, content_length);
  return ReadResult::kOk;
}

}  // namespace

std::string url_decode(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '%' && i + 2 < text.size()) {
      const auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      const int hi = hex(text[i + 1]), lo = hex(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(text[i] == '+' ? ' ' : text[i]);
  }
  return out;
}

std::string HttpRequest::query_param(const std::string& key,
                                     const std::string& fallback) const {
  for (const std::string& pair : util::split(query, '&')) {
    const auto eq = pair.find('=');
    if (eq == std::string::npos) continue;
    if (pair.substr(0, eq) == key) return url_decode(pair.substr(eq + 1));
  }
  return fallback;
}

HttpResponse HttpResponse::text(std::string body, int status) {
  HttpResponse r;
  r.status = status;
  r.headers["Content-Type"] = "text/plain; charset=utf-8";
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::json(std::string body, int status) {
  HttpResponse r;
  r.status = status;
  r.headers["Content-Type"] = "application/json";
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::html(std::string body) {
  HttpResponse r;
  r.headers["Content-Type"] = "text/html; charset=utf-8";
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::binary(std::vector<std::uint8_t> bytes,
                                  std::string content_type) {
  HttpResponse r;
  r.headers["Content-Type"] = std::move(content_type);
  r.body.assign(bytes.begin(), bytes.end());
  return r;
}

HttpResponse HttpResponse::not_found() { return text("not found", 404); }
HttpResponse HttpResponse::bad_request(const std::string& why) {
  return text("bad request: " + why, 400);
}

// ---------------------------------------------------------------- server --

struct HttpServer::Connection {
  int fd = -1;
  std::string peer;    // remote "ip:port", fixed at accept
  std::string buffer;  // carry-over bytes between requests
  /// The connection thread reads; sink invocations (hub workers) write.
  /// This lock keeps two completing responses from interleaving bytes.
  std::mutex write_mutex;

  /// The fd is closed only when the last reference (connection thread or a
  /// late-firing AsyncReply) lets go, so nobody ever writes into a reused
  /// descriptor. Teardown paths shutdown(2) instead of closing.
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
};

/// Shared state of one in-flight async response.
struct AsyncReply {
  HttpServer* server = nullptr;
  std::shared_ptr<HttpServer::Connection> conn;
  bool keep_alive = true;
  std::mutex mutex;
  bool written = false;  // a sink invocation already handled the response
};

void HttpServer::ResponseSink::operator()(const HttpResponse& response) const {
  if (!reply_) return;
  AsyncReply& r = *reply_;
  {
    std::lock_guard<std::mutex> once(r.mutex);
    if (r.written) return;
    r.written = true;
  }
  {
    std::lock_guard<std::mutex> write(r.conn->write_mutex);
    write_response(r.conn->fd, response, r.keep_alive);
  }
  r.server->served_.fetch_add(1);
  // A failed write needs no cleanup here: the connection thread is blocked
  // reading this same socket and observes the error/EOF itself.
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::route(const std::string& method, const std::string& path,
                       Handler handler, bool prefix) {
  std::lock_guard<std::mutex> lock(routes_mutex_);
  if (prefix) {
    prefix_.emplace_back(method, path, std::move(handler));
  } else {
    exact_[{method, path}] = std::move(handler);
  }
}

void HttpServer::route_async(const std::string& method, const std::string& path,
                             AsyncHandler handler) {
  std::lock_guard<std::mutex> lock(routes_mutex_);
  async_[{method, path}] = std::move(handler);
}

int HttpServer::start(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("http: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error("http: bind() failed");
  }
  if (::listen(listen_fd_, 128) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error("http: listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  running_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  return port_;
}

void HttpServer::set_idle_read_timeout(double seconds) {
  if (seconds > 0.0) read_timeout_s_ = seconds;
}

void HttpServer::stop() {
  if (!running_.exchange(false)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Wake every blocked read; the owning serve path closes the fd. Parked
    // async connections are buried when their sink eventually fires.
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const auto& conn : conns_) ::shutdown(conn->fd, SHUT_RDWR);
  }
  std::unique_lock<std::mutex> lock(active_mutex_);
  active_cv_.wait(lock, [this] { return active_ == 0; });
}

std::size_t HttpServer::connections_open() const {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  return conns_.size();
}

void HttpServer::accept_loop() {
  while (running_.load()) {
    sockaddr_in peer_addr{};
    socklen_t peer_len = sizeof(peer_addr);
    const int fd = ::accept(listen_fd_,
                            reinterpret_cast<sockaddr*>(&peer_addr), &peer_len);
    if (fd < 0) {
      if (!running_.load()) return;
      continue;
    }
    if (!running_.load()) {
      ::close(fd);
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // A consumer that stops reading must not pin a writer thread forever.
    timeval snd{30, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &snd, sizeof(snd));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    char ip[INET_ADDRSTRLEN] = {0};
    if (peer_len >= sizeof(sockaddr_in) && peer_addr.sin_family == AF_INET &&
        ::inet_ntop(AF_INET, &peer_addr.sin_addr, ip, sizeof(ip))) {
      conn->peer = std::string(ip) + ":" +
                   std::to_string(ntohs(peer_addr.sin_port));
    }
    track(conn);
    spawn_dedicated(std::move(conn));
  }
}

void HttpServer::spawn_dedicated(std::shared_ptr<Connection> conn) {
  {
    std::lock_guard<std::mutex> lock(active_mutex_);
    ++active_;  // before detaching, so stop() cannot miss the thread
  }
  std::thread([this, conn = std::move(conn)]() mutable {
    serve(std::move(conn));
    std::lock_guard<std::mutex> lock(active_mutex_);
    --active_;
    active_cv_.notify_all();
  }).detach();
}

void HttpServer::track(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns_.insert(conn);
  }
  // stop() may have swept the registry between accept and insert.
  if (!running_.load()) ::shutdown(conn->fd, SHUT_RDWR);
}

void HttpServer::untrack_and_close(const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  if (conns_.erase(conn) > 0) ::shutdown(conn->fd, SHUT_RDWR);
}

void HttpServer::serve(std::shared_ptr<Connection> conn) {
  set_recv_timeout(conn->fd, read_timeout_s_);

  while (running_.load()) {
    HttpRequest request;
    if (read_request(conn->fd, conn->buffer, request) != ReadResult::kOk) break;
    request.peer = conn->peer;

    const bool keep_alive =
        !util::iequals(request.headers.count("connection")
                           ? request.headers.at("connection")
                           : "keep-alive",
                       "close");

    AsyncHandler async_handler;
    Handler handler;
    {
      std::lock_guard<std::mutex> lock(routes_mutex_);
      if (const auto it = async_.find({request.method, request.path});
          it != async_.end()) {
        async_handler = it->second;
      } else if (const auto jt = exact_.find({request.method, request.path});
                 jt != exact_.end()) {
        handler = jt->second;
      } else {
        for (const auto& [method, prefix, h] : prefix_) {
          if (method == request.method &&
              util::starts_with(request.path, prefix)) {
            handler = h;
            break;
          }
        }
      }
    }

    if (async_handler) {
      auto reply = std::make_shared<AsyncReply>();
      reply->server = this;
      reply->conn = conn;
      reply->keep_alive = keep_alive;
      ResponseSink sink;
      sink.reply_ = reply;
      try {
        async_handler(request, sink);
      } catch (const std::exception& e) {
        sink(HttpResponse::text(std::string("internal error: ") + e.what(),
                                500));
      }
      // Whether the sink already fired inline or fires later from a hub
      // worker, this thread's job is identical: read the client's next
      // request. The read blocks cheaply in the kernel while the response
      // is pending, and observes EOF itself if the write side failed.
      continue;
    }

    HttpResponse response;
    if (!handler) {
      response = HttpResponse::not_found();
    } else {
      try {
        response = handler(request);
      } catch (const std::exception& e) {
        response =
            HttpResponse::text(std::string("internal error: ") + e.what(), 500);
      }
    }
    ++served_;
    bool wrote;
    {
      std::lock_guard<std::mutex> write(conn->write_mutex);
      wrote = write_response(conn->fd, response, keep_alive);
    }
    if (!wrote || !keep_alive) break;
  }
  untrack_and_close(conn);
}

// ---------------------------------------------------------------- client --

HttpClient::~HttpClient() { close(); }

HttpClient::HttpClient(HttpClient&& other) noexcept
    : port_(other.port_),
      fd_(other.fd_),
      reconnects_(other.reconnects_),
      buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

void HttpClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

void HttpClient::ensure_connected(double timeout_s) {
  if (fd_ >= 0) return;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("http client: socket() failed");
  set_recv_timeout(fd_, timeout_s);
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port_));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("http client: connect() failed");
  }
  ++reconnects_;
  buffer_.clear();
}

HttpClient::Response HttpClient::exchange(const std::string& request_text,
                                          double timeout_s,
                                          bool retry_on_stale) {
  ensure_connected(timeout_s);
  set_recv_timeout(fd_, timeout_s);
  if (!write_all(fd_, request_text.data(), request_text.size())) {
    // Server closed the idle keep-alive connection; retry on a fresh one.
    close();
    if (retry_on_stale) return exchange(request_text, timeout_s, false);
    throw std::runtime_error("http client: send failed");
  }

  char chunk[8192];
  std::size_t header_end;
  bool got_bytes = !buffer_.empty();
  while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      const bool stale = n == 0 || errno == ECONNRESET;
      close();
      if (!got_bytes && retry_on_stale && stale) {
        // EOF/reset before any response bytes: stale keep-alive connection.
        return exchange(request_text, timeout_s, false);
      }
      throw std::runtime_error("http client: no response");
    }
    got_bytes = true;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }

  Response out;
  {
    std::istringstream lines(buffer_.substr(0, header_end));
    std::string line;
    std::getline(lines, line);
    std::istringstream status_line(line);
    std::string version;
    status_line >> version >> out.status;
    while (std::getline(lines, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const auto colon = line.find(':');
      if (colon == std::string::npos) continue;
      out.headers[util::to_lower(util::trim(line.substr(0, colon)))] =
          std::string(util::trim(line.substr(colon + 1)));
    }
  }
  buffer_.erase(0, header_end + 4);

  std::size_t content_length = 0;
  if (out.headers.count("content-length") &&
      !parse_content_length(out.headers.at("content-length"),
                            content_length)) {
    close();
    throw std::runtime_error("http client: bad content-length");
  }
  while (buffer_.size() < content_length) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      close();
      throw std::runtime_error("http client: truncated response");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
  out.body = buffer_.substr(0, content_length);
  buffer_.erase(0, content_length);

  if (out.headers.count("connection") &&
      util::iequals(out.headers.at("connection"), "close")) {
    close();
  }
  return out;
}

HttpClient::Response HttpClient::get(const std::string& path_and_query,
                                     double timeout_s) {
  const std::string req =
      "GET " + path_and_query +
      " HTTP/1.1\r\nHost: localhost\r\nConnection: keep-alive\r\n\r\n";
  return exchange(req, timeout_s, true);
}

HttpClient::Response HttpClient::post(const std::string& path,
                                      const std::string& body,
                                      const std::string& content_type,
                                      double timeout_s) {
  const std::string req =
      util::strprintf(
          "POST %s HTTP/1.1\r\nHost: localhost\r\nConnection: keep-alive\r\n"
          "Content-Type: %s\r\nContent-Length: %zu\r\n\r\n",
          path.c_str(), content_type.c_str(), body.size()) +
      body;
  return exchange(req, timeout_s, true);
}

// ----------------------------------------------------- one-shot helpers --

namespace {
HttpClientResponse http_exchange(int port, const std::string& request_text,
                                 double timeout_s) {
  HttpClient client(port);
  const HttpClient::Response r = client.exchange(request_text, timeout_s, false);
  return HttpClientResponse{r.status, r.headers, r.body};
}
}  // namespace

HttpClientResponse http_get(int port, const std::string& path_and_query,
                            double timeout_s) {
  const std::string req = "GET " + path_and_query +
                          " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  return http_exchange(port, req, timeout_s);
}

HttpClientResponse http_post(int port, const std::string& path,
                             const std::string& body,
                             const std::string& content_type,
                             double timeout_s) {
  const std::string req = util::strprintf(
      "POST %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n"
      "Content-Type: %s\r\nContent-Length: %zu\r\n\r\n",
      path.c_str(), content_type.c_str(), body.size()) + body;
  return http_exchange(port, req, timeout_s);
}

}  // namespace ricsa::web
