// The Ajax front end (Sections 2 & 5.1): bridges the steering session to any
// number of web browsers.
//
// "Using Ajax, only user interface elements that contain new information are
// updated with data received from a server such as next update of a
// monitored computation. Such a non-interrupted data-driven model replaces
// the traditional click-wait-refresh page-driven model."
//
// Implementation: a background monitor loop produces frames from the
// SteeringSession; browsers long-poll /api/poll?since=N and receive only the
// delta (new frame sequence + state + PNG image) the moment it exists —
// the XMLHttpRequest object-exchange of the paper. Steering commands arrive
// as JSON POSTs and are applied on the next simulation cycle. Any number of
// clients can watch/steer concurrently (each keeps its own cursor).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>

#include "steering/session.hpp"
#include "util/json.hpp"
#include "web/http.hpp"

namespace ricsa::web {

struct FrontEndConfig {
  steering::SessionConfig session;
  /// Pacing of the background monitor loop (seconds between frames).
  double frame_interval_s = 0.2;
  /// TCP port (0 = ephemeral).
  int port = 0;
  /// Long-poll timeout ceiling.
  double poll_timeout_s = 15.0;
};

class AjaxFrontEnd {
 public:
  explicit AjaxFrontEnd(FrontEndConfig config);
  ~AjaxFrontEnd();

  /// Start the monitor loop and HTTP server; returns the bound port.
  int start();
  void stop();

  int port() const noexcept { return server_.port(); }
  std::uint64_t frame_seq() const;
  std::uint64_t steer_count() const noexcept { return steers_.load(); }

 private:
  void register_routes();
  void frame_loop();
  util::Json state_locked() const;  // requires state_mutex_

  HttpResponse handle_index(const HttpRequest& request);
  HttpResponse handle_state(const HttpRequest& request);
  HttpResponse handle_poll(const HttpRequest& request);
  HttpResponse handle_image(const HttpRequest& request);
  HttpResponse handle_steer(const HttpRequest& request);
  HttpResponse handle_view(const HttpRequest& request);

  FrontEndConfig config_;
  steering::SteeringSession session_;
  HttpServer server_;
  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> steers_{0};

  mutable std::mutex state_mutex_;
  mutable std::condition_variable state_cv_;
  std::uint64_t seq_ = 0;
  util::Json latest_state_;
  std::vector<std::uint8_t> latest_png_;

  /// View/viz changes posted by clients, applied by the loop thread.
  std::mutex pending_mutex_;
  std::deque<util::Json> pending_view_;
};

}  // namespace ricsa::web
