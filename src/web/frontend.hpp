// The Ajax front end (Sections 2 & 5.1): bridges the steering session to any
// number of web browsers.
//
// "Using Ajax, only user interface elements that contain new information are
// updated with data received from a server such as next update of a
// monitored computation. Such a non-interrupted data-driven model replaces
// the traditional click-wait-refresh page-driven model."
//
// Implementation: a background monitor loop produces frames from the
// SteeringSession and publishes each one exactly once into a FrameHub;
// browsers long-poll /api/poll?since=N (async route — no thread parks with
// the connection) and receive the shared pre-rendered delta the moment it
// exists — the XMLHttpRequest object-exchange of the paper. Steering
// commands arrive as JSON POSTs and are applied on the next simulation
// cycle. Hundreds of clients can watch/steer concurrently; each keeps its
// own cursor and the hub's sliding window bounds server memory.
//
// Beside the poll there is a push transport: /api/stream serves the same
// frame bodies as Server-Sent Events over one chunked response. The
// dashboard negotiates per client — EventSource when available, falling
// back to long-poll on any failure — and both transports share the
// SessionTable, so pacing tiers and per-view delta contracts are identical
// whichever channel a client rides.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>

#include "steering/session.hpp"
#include "util/json.hpp"
#include "web/http.hpp"
#include "web/hub.hpp"
#include "web/registry.hpp"
#include "web/session.hpp"

namespace ricsa::web {

/// One extra named view published each frame besides the default view:
/// the same simulation step re-rendered under a different request/camera
/// into its own FrameHub shard (variable × projection, e.g. "rho/iso").
struct ViewSpec {
  std::string name;
  cost::VizRequest viz;
  steering::ExecuteOptions camera;
};

struct FrontEndConfig {
  steering::SessionConfig session;
  /// Pacing of the background monitor loop (seconds between frames).
  double frame_interval_s = 0.2;
  /// TCP port (0 = ephemeral).
  int port = 0;
  /// Long-poll timeout ceiling.
  double poll_timeout_s = 15.0;
  /// Frames retained for catch-up replay (gap-free streams for clients that
  /// fall at most this many frames behind).
  std::size_t frame_window = 128;
  /// Frames that keep raw framebuffers for cursor-anchored tile deltas
  /// (0 = the whole window); see FrameHub::Config::raw_window.
  std::size_t raw_window = 0;
  /// Extra views rendered and published per frame, each into its own hub
  /// shard. The default view ("main") always exists and follows the
  /// steerable request/camera; these are fixed projections.
  std::vector<ViewSpec> views;
  /// Idle-shard reaping horizon for the registry (0 disables).
  double view_idle_reap_s = 300.0;
  /// Hub fan-out worker threads.
  std::size_t hub_workers = 4;
  /// HTTP route-handler worker threads. Together with hub_workers, the
  /// reactor threads, and the monitor loop this bounds *every* server-side
  /// thread — client count never adds threads.
  std::size_t http_workers = 4;
  /// Reactor (event-loop) threads; each owns its accepted connections
  /// outright. 1 reproduces the single-loop server.
  std::size_t reactors = 1;
  /// Accept strategy with reactors > 1: false = SO_REUSEPORT listener per
  /// reactor (kernel balances), true = one listener handing sockets off
  /// round-robin (for kernels/tests where REUSEPORT balancing is unwanted).
  bool accept_hand_off = false;
  /// Publish decimation for views nobody is watching (see
  /// HubRegistry::Config::idle_publish_divisor). 1 disables.
  std::size_t idle_publish_divisor = 1;
  /// Seconds without subscriber activity before a view counts as idle for
  /// publish decimation.
  double idle_publish_after_s = 10.0;
  /// Accepted-connection cap; connections beyond it get 503.
  std::size_t max_connections = 8192;
  /// Fixed SO_SNDBUF for accepted connections (0 = kernel autotuning).
  /// Bounding the kernel send backlog makes a slow consumer's
  /// backpressure reach the pacing meters after this many queued bytes
  /// instead of after megabytes of autotuned buffering.
  int sndbuf = 0;
  /// Tile edge (pixels) of the hub's dirty-rect image-delta grid.
  int tile_size = 64;
  /// Per-client adaptive pacing knobs (frame_interval_s is overridden with
  /// the front end's own cadence at construction). `pacing.controller`
  /// selects the per-session congestion-control law — the paper's
  /// Robbins-Monro Eq. 1 by default, or a delay-gradient/trendline law
  /// steering on measured per-delivery RTT
  /// (transport/congestion_controller.hpp).
  PacingConfig pacing;
};

class AjaxFrontEnd {
 public:
  explicit AjaxFrontEnd(FrontEndConfig config);
  ~AjaxFrontEnd();

  /// Start the monitor loop and HTTP server; returns the bound port.
  int start();
  void stop();

  int port() const noexcept { return server_.port(); }
  std::uint64_t frame_seq() const { return main_hub_->seq(); }
  std::uint64_t steer_count() const noexcept { return steers_.load(); }
  /// The default view's shard — the single-view API surface (back-compat
  /// for callers that predate sharding).
  const FrameHub& hub() const noexcept { return *main_hub_; }
  const HttpServer& server() const noexcept { return server_; }
  HubRegistry& registry() noexcept { return registry_; }
  const HubRegistry& registry() const noexcept { return registry_; }
  const SessionTable& sessions() const noexcept {
    return registry_.sessions();
  }

 private:
  void register_routes();
  void frame_loop();
  void handle_poll_async(const HttpRequest& request,
                         HttpServer::ResponseSink sink);
  void handle_stream(const HttpRequest& request, HttpServer::StreamSink sink);
  /// Shard lookup for a request's `view=` parameter: the default hub when
  /// absent, null (→ 404) for names the publisher never declared.
  /// `resolved` receives the canonical view name.
  std::shared_ptr<FrameHub> resolve_view(const HttpRequest& request,
                                         std::string* resolved);

  HttpResponse handle_index(const HttpRequest& request);
  HttpResponse handle_state(const HttpRequest& request);
  HttpResponse handle_stats(const HttpRequest& request);
  HttpResponse handle_image(const HttpRequest& request);
  HttpResponse handle_steer(const HttpRequest& request);
  HttpResponse handle_view(const HttpRequest& request);

  FrontEndConfig config_;
  steering::SteeringSession session_;
  /// Declared before registry_: the shards register their timeout/pacing
  /// sweeps on the server's reactor, so the server must be constructed
  /// first (and, symmetrically, destroyed last).
  HttpServer server_;
  HubRegistry registry_;
  /// The default view's shard, pinned for the front end's lifetime (the
  /// hub()/frame_seq() accessors and the unsharded routes ride on it).
  std::shared_ptr<FrameHub> main_hub_;
  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> steers_{0};
  /// Measured publish period (EWMA of the frame loop's real cycle time,
  /// sim+render included) — what pacing judges client promptness against.
  std::atomic<double> frame_period_s_{0.0};

  /// View/viz changes posted by clients, applied by the loop thread.
  std::mutex pending_mutex_;
  std::deque<util::Json> pending_view_;
};

}  // namespace ricsa::web
