#include "web/session.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <vector>

namespace ricsa::web {

double mono_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {

std::size_t index_of(Tier tier) { return static_cast<std::size_t>(tier); }

constexpr std::size_t kMaxClientIdBytes = 64;

bool client_id_char_ok(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
}

}  // namespace

std::string sanitize_client_id(const std::string& raw) {
  if (raw.empty() || raw.size() > kMaxClientIdBytes) return std::string();
  for (const char c : raw) {
    if (!client_id_char_ok(c)) return std::string();
  }
  return raw;
}

ClientSession::ClientSession(const PacingConfig& config, std::string id,
                             std::string peer, double now_s)
    : config_(config),
      id_(std::move(id)),
      peer_(std::move(peer)),
      interval_s_(config.frame_interval_s),
      meter_(config.meter_window_s),
      frame_meter_(config.meter_window_s),
      last_touch_s_(now_s) {
  meter_.start(now_s);
  frame_meter_.start(now_s);
  reset_controller_locked(config_.frame_interval_s);
}

void ClientSession::reset_meters_locked(double now_s) {
  // A tier change switches the regime being judged: stale history from the
  // old tier would instantly mis-tier the new one (e.g. an upgrade
  // immediately reverted because the window still holds the old pace).
  meter_ = transport::GoodputMeter(config_.meter_window_s);
  meter_.start(now_s);
  frame_meter_ = transport::GoodputMeter(config_.meter_window_s);
  frame_meter_.start(now_s);
}

void ClientSession::reset_controller_locked(double initial_interval_s) {
  // Restarting the control law whenever conditions changed (new tier,
  // upward probe) is part of every law's contract: for Robbins-Monro it
  // restarts the decaying gain schedule, for the delay laws it discards
  // gradient/trendline state measured under the old regime.
  if (!controller_) {
    transport::ControllerConfig cc = config_.controller;
    // The pacing-level Eq. 1 gain knobs predate the pluggable interface;
    // they keep winning so existing configs tune the default law unchanged.
    cc.rmsa_gain_a = config_.rmsa_gain_a;
    cc.rmsa_alpha = config_.rmsa_alpha;
    controller_ = transport::make_controller(cc);
  }
  controller_->reset(
      initial_interval_s, config_.frame_interval_s,
      std::max(config_.frame_interval_s, config_.max_interval_s));
}

ClientSession::ViewState& ClientSession::view_state_locked(
    const std::string& view, double now_s) {
  // Sweep view entries idle past the session expiry horizon: the map stays
  // bounded by the views this client *recently* polled even if a dashboard
  // cycles through every shard the publisher ever declared.
  for (auto it = views_.begin(); it != views_.end();) {
    if (now_s - it->second.last_touch_s > config_.idle_expiry_s &&
        it->first != view) {
      it = views_.erase(it);
    } else {
      ++it;
    }
  }
  ViewState& vs = views_[view];
  vs.last_touch_s = now_s;
  return vs;
}

std::size_t ClientSession::active_views_locked(double now_s) const {
  // A view counts as active while touched within the goodput horizon — the
  // same window the meters aggregate over, so the normalizer and the
  // measured rate describe the same stretch of time.
  std::size_t active = 0;
  for (const auto& [name, vs] : views_) {
    if (now_s - vs.last_touch_s <= config_.meter_window_s) ++active;
  }
  return std::max<std::size_t>(active, 1);
}

ClientSession::Decision ClientSession::decide(double now_s, double cadence_s,
                                              const std::string& view) {
  std::lock_guard<std::mutex> lock(mutex_);
  last_touch_s_ = now_s;
  const ViewState& vs = view_state_locked(view, now_s);
  const double cadence = std::max(config_.frame_interval_s, cadence_s);
  Decision d;
  d.tier = tier_;
  // A small slack keeps fast full-tier clients off the pacing path: their
  // natural poll cadence already matches the publisher.
  const bool paced = interval_s_ > cadence * 1.25;
  if (paced && vs.last_delivery_s >= 0.0) {
    // The interval anchors at this *view's* last delivery: one paced
    // browser on two views gets each stream at the interval instead of the
    // two alternately starving each other behind a shared anchor.
    d.not_before_s = vs.last_delivery_s + interval_s_;
  }
  // Downgraded or paced clients skip to the newest frame instead of
  // replaying every retained frame — stale frames are the bandwidth they
  // cannot afford.
  d.skip_to_latest = paced || tier_ != Tier::kFull;
  // A tier transition invalidates the delta contract: the delta omits an
  // unchanged image, but this client's previous frame *on this view* was
  // rendered at a different tier, so it must receive a full body once.
  d.allow_delta = vs.last_served_tier == tier_;
  return d;
}

void ClientSession::note_dispatch(double now_s, const std::string& view) {
  std::lock_guard<std::mutex> lock(mutex_);
  last_touch_s_ = now_s;
  ViewState& vs = view_state_locked(view, now_s);
  vs.last_dispatch_s = now_s;
}

void ClientSession::on_delivered(double now_s, std::size_t bytes,
                                 std::uint64_t skipped, Tier tier,
                                 double cadence_s, const std::string& view,
                                 double rtt_s, double drain_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  last_touch_s_ = now_s;
  ViewState& vs = view_state_locked(view, now_s);
  // RTT fallback: a dispatch stamped via note_dispatch and completed here
  // at kernel-drain time brackets the delivery even when the transport did
  // not measure the round trip itself.
  if (rtt_s < 0.0 && vs.last_dispatch_s >= 0.0) {
    rtt_s = std::max(0.0, now_s - vs.last_dispatch_s);
  }
  vs.last_dispatch_s = -1.0;
  vs.last_delivery_s = now_s;
  vs.last_served_tier = tier;
  meter_.record(now_s, bytes);
  goodput_Bps_ = meter_.rate(now_s);
  ++delivered_frames_;
  delivered_bytes_ += bytes;
  skipped_frames_ += skipped;

  frame_meter_.record(now_s, 1);
  const double achieved_fps = frame_meter_.rate(now_s);

  // Judge against the measured publish period (floored by the configured
  // cadence): frame production slower than configured must not make a
  // prompt client look like a slow consumer.
  const double cadence =
      std::max(1e-6, std::max(config_.frame_interval_s, cadence_s));
  // Offered: the frame rate our own pacing currently allows — utilization
  // is judged against what the client was actually given the chance to
  // drain. Judging in the frame-rate domain (not bytes) keeps delta-encoded
  // bodies, whose size swings with how much of the frame changed, from
  // masquerading as a slow consumer. The publisher offers one frame per
  // cadence *per active view*: a client on two views that drains only one
  // of them is at 50% utilization, which a single-stream denominator would
  // book as 100% (the double-counting the shared session exists to avoid).
  const double offered_fps =
      static_cast<double>(active_views_locked(now_s)) /
      std::max(cadence, interval_s_);

  // Feed the control law. For the default Robbins-Monro law this is Eq. 1
  // with the web-layer roles: the rate under our control is the offered
  // frame rate and the reference it must converge to is the client's
  // achieved frame rate — offering more than the client drains lengthens
  // the sleep, offering less shortens it, and the fixed point is offered ==
  // achieved (serve at the client's pace). The delay laws steer on the
  // per-delivery RTT instead and react to queue growth before utilization
  // collapses.
  transport::CongestionSample sample;
  sample.now_s = now_s;
  sample.offered_fps = offered_fps;
  sample.achieved_fps = achieved_fps;
  sample.rtt_s = rtt_s;
  sample.drain_s = drain_s;
  sample.bytes = bytes;
  const double proposed = controller_->update(sample);
  const bool paces_all = controller_->paces_all_tiers();
  if (paces_all) {
    // A delay law's interval applies at every tier: stretching the pace on
    // rising delay is exactly how it holds the tier steady instead of
    // riding utilization down into a downgrade.
    interval_s_ = std::clamp(proposed, cadence,
                             std::max(cadence, config_.max_interval_s));
  }

  const double util = achieved_fps / offered_fps;
  if (util >= config_.high_util) {
    low_streak_ = 0;
    ++prompt_streak_;
    if (probe_outstanding_ && prompt_streak_ >= config_.upgrade_streak) {
      // The last probe survived a full prompt streak at the richer
      // rate/tier: it stuck. Future probes need no extra caution.
      probe_outstanding_ = false;
      probe_backoff_ = 1;
    }
    if (prompt_streak_ >= config_.upgrade_streak * probe_backoff_ &&
        controller_->probe_ok()) {
      // Delay laws veto the probe while the network still shows rising
      // delay; prompt samples keep accruing and the probe fires the moment
      // the gradient clears.
      prompt_streak_ = 0;
      // The client drains everything offered: probe upward. Restore the
      // frame rate first, then climb a quality tier.
      if (!paces_all && interval_s_ > cadence * 1.01) {
        interval_s_ = std::max(cadence, interval_s_ * 0.5);
        reset_controller_locked(interval_s_);
        probe_outstanding_ = true;
      } else if (tier_ != Tier::kFull) {
        tier_ = static_cast<Tier>(index_of(tier_) - 1);
        tier_snapshot_.store(tier_, std::memory_order_relaxed);
        ++upgrades_;
        interval_s_ = cadence;
        reset_meters_locked(now_s);
        reset_controller_locked(cadence);
        probe_outstanding_ = true;
      }
    }
  } else if (util < config_.low_util) {
    prompt_streak_ = 0;
    if (++low_streak_ >= config_.downgrade_streak) {
      low_streak_ = 0;
      if (probe_outstanding_) {
        // This regression chased an upward probe: the client sits at its
        // capacity boundary. Double the wait before the next probe so it
        // is not bounced across the boundary every upgrade_streak samples.
        probe_outstanding_ = false;
        probe_backoff_ =
            std::min(probe_backoff_ * 2, std::max(1, config_.max_probe_backoff));
      }
      if (index_of(tier_) + 1 < kTierCount) {
        tier_ = static_cast<Tier>(index_of(tier_) + 1);
        tier_snapshot_.store(tier_, std::memory_order_relaxed);
        ++downgrades_;
        reset_meters_locked(now_s);
        reset_controller_locked(cadence);
      } else if (!paces_all) {
        // Already on the cheapest tier: throttle the frame rate itself with
        // the Robbins-Monro interval. (A delay law's interval was already
        // applied above, at every tier.)
        interval_s_ = std::clamp(
            proposed, cadence,
            std::max(cadence, config_.max_interval_s));
      }
    }
  } else {
    prompt_streak_ = 0;
    low_streak_ = 0;
  }
}

void ClientSession::on_timeout(double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  last_touch_s_ = now_s;
  ++timeouts_;
}

Tier ClientSession::tier() const {
  return tier_snapshot_.load(std::memory_order_relaxed);
}

double ClientSession::interval_s() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return interval_s_;
}

double ClientSession::goodput_Bps() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return goodput_Bps_;
}

double ClientSession::last_touch_s() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_touch_s_;
}

int ClientSession::probe_backoff() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return probe_backoff_;
}

std::size_t ClientSession::active_views(double now_s) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_views_locked(now_s);
}

util::Json ClientSession::stats_json(double now_s) const {
  std::lock_guard<std::mutex> lock(mutex_);
  util::Json out;
  out["client"] = id_;
  if (!peer_.empty()) out["peer"] = peer_;
  out["tier"] = tier_name(tier_);
  out["goodput_Bps"] = goodput_Bps_;
  out["interval_s"] = interval_s_;
  out["controller"] = controller_->name();
  {
    const transport::ControllerTelemetry t = controller_->telemetry();
    if (t.last_rtt_s >= 0.0) out["rtt_s"] = t.last_rtt_s;
    out["gradient"] = t.gradient;
  }
  out["delivered"] = static_cast<double>(delivered_frames_);
  out["bytes"] = static_cast<double>(delivered_bytes_);
  out["skipped"] = static_cast<double>(skipped_frames_);
  out["timeouts"] = static_cast<double>(timeouts_);
  out["downgrades"] = static_cast<double>(downgrades_);
  out["upgrades"] = static_cast<double>(upgrades_);
  out["probe_backoff"] = static_cast<double>(probe_backoff_);
  out["idle_s"] = std::max(0.0, now_s - last_touch_s_);
  out["active_views"] = static_cast<double>(active_views_locked(now_s));
  {
    util::JsonArray views;
    for (const auto& [name, vs] : views_) {
      if (!name.empty()) views.push_back(util::Json(name));
    }
    if (!views.empty()) out["views"] = util::Json(views);
  }
  return out;
}

SessionTable::SessionTable(PacingConfig config) : config_(config) {}

std::shared_ptr<ClientSession> SessionTable::acquire(const std::string& id,
                                                     const std::string& peer,
                                                     double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  sweep_locked(now_s);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    if (sessions_.size() >= config_.max_sessions) {
      // Possibly stale entries are holding the table at the cap: sweep
      // immediately (bypassing the throttle) before refusing.
      last_sweep_s_ = -1.0;
      sweep_locked(now_s);
      if (sessions_.size() >= config_.max_sessions) return nullptr;
    }
    it = sessions_
             .emplace(id, std::make_shared<ClientSession>(config_, id, peer,
                                                          now_s))
             .first;
  }
  return it->second;
}

void SessionTable::sweep_locked(double now_s) {
  // Expiry only needs second-granularity: sweeping every acquire would put
  // an O(sessions) walk (locking each session) on every poll's hot path.
  if (last_sweep_s_ >= 0.0 && now_s - last_sweep_s_ < 1.0) return;
  last_sweep_s_ = now_s;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now_s - it->second->last_touch_s() > config_.idle_expiry_s) {
      it = sessions_.erase(it);
      ++expired_;
    } else {
      ++it;
    }
  }
}

std::size_t SessionTable::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

std::uint64_t SessionTable::expired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return expired_;
}

bool SessionTable::wants_half_tier() const {
  // Once per published frame: a lock-free tier read per session keeps the
  // walk cheap and free of per-session mutex contention with live polls.
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [id, session] : sessions_) {
    if (session->tier() == Tier::kHalf) return true;
  }
  return false;
}

util::Json SessionTable::stats_json(double now_s) const {
  std::vector<std::shared_ptr<ClientSession>> snapshot;
  std::uint64_t expired;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) snapshot.push_back(session);
    expired = expired_;
  }

  util::Json out;
  out["sessions"] = static_cast<double>(snapshot.size());
  out["expired"] = static_cast<double>(expired);
  out["controller"] =
      transport::controller_kind_name(config_.controller.kind);
  std::array<std::uint64_t, kTierCount> by_tier{};
  util::JsonArray clients;
  // Cap the per-client detail: stats stay O(1)-ish for huge fan-outs while
  // the aggregate tier counts remain exact.
  constexpr std::size_t kMaxDetailed = 128;
  for (const auto& session : snapshot) {
    ++by_tier[static_cast<std::size_t>(session->tier())];
    if (clients.size() < kMaxDetailed) {
      clients.push_back(session->stats_json(now_s));
    }
  }
  util::Json tiers;
  for (std::size_t t = 0; t < kTierCount; ++t) {
    tiers[tier_name(static_cast<Tier>(t))] = static_cast<double>(by_tier[t]);
  }
  out["tiers"] = tiers;
  out["clients"] = util::Json(clients);
  return out;
}

}  // namespace ricsa::web
