#include "web/hub.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "net/reactor.hpp"
#include "util/base64.hpp"

namespace ricsa::web {

namespace {

/// Render a poll response body. `state` is embedded as-is; the image rides
/// along base64-encoded exactly once per frame per image tier (the
/// pre-encoded string is shared by full and delta bodies).
std::string render_body(std::uint64_t seq, Tier tier, const util::Json& state,
                        const std::string& image_b64, bool delta) {
  util::Json out;
  out["seq"] = static_cast<double>(seq);
  out["delta"] = delta;
  out["tier"] = tier_name(tier);
  out["state"] = state;
  if (!image_b64.empty()) out["image_b64"] = image_b64;
  return out.dump();
}

/// One dirty tile of an image delta: its rectangle plus a pointer to the
/// publish-time base64(PNG) encode (shared, never copied until the final
/// body render).
struct TileRef {
  viz::TileRect rect;
  const std::string* b64 = nullptr;
};

/// Render a tile-delta poll body: the state as given (key-delta for the
/// publish-time sequential body, full state for cursor-anchored skips — a
/// skipping client cannot merge key deltas across frames it never saw), the
/// base seq the tiles patch, the canvas dimensions, and the dirty tiles.
std::string render_tiles_body(std::uint64_t seq, Tier tier,
                              const util::Json& state, std::uint64_t base_seq,
                              int width, int height,
                              const std::vector<TileRef>& tiles) {
  util::Json out;
  out["seq"] = static_cast<double>(seq);
  out["delta"] = true;
  out["tier"] = tier_name(tier);
  out["state"] = state;
  out["base_seq"] = static_cast<double>(base_seq);
  out["img_w"] = width;
  out["img_h"] = height;
  util::JsonArray arr;
  arr.reserve(tiles.size());
  for (const TileRef& t : tiles) {
    util::Json tile;
    tile["x"] = t.rect.x;
    tile["y"] = t.rect.y;
    tile["w"] = t.rect.w;
    tile["h"] = t.rect.h;
    tile["png_b64"] = *t.b64;
    arr.push_back(std::move(tile));
  }
  out["tiles"] = util::Json(std::move(arr));
  return out.dump();
}

/// Timeouts from the network are untrusted input: NaN must not reach the
/// deadline arithmetic and a negative wait means "do not wait".
double sanitize_timeout(double timeout_s, double max_wait_s) {
  if (!std::isfinite(timeout_s) || timeout_s < 0.0) return 0.0;
  return std::min(timeout_s, max_wait_s);
}

}  // namespace

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kFull: return "full";
    case Tier::kHalf: return "half";
    case Tier::kStateOnly: return "state";
  }
  return "full";
}

FrameHub::FrameHub() : FrameHub(Config()) {}

FrameHub::FrameHub(Config config) : config_(config) {
  if (config_.window == 0) config_.window = 1;
  pool_ = std::make_unique<util::ThreadPool>(config_.workers);
  if (config_.reactor != nullptr) {
    link_ = std::make_shared<ReactorLink>();
    link_->hub = this;
  } else {
    timer_ = std::thread([this] { timer_loop(); });
  }
}

FrameHub::~FrameHub() { shutdown(); }

std::uint64_t FrameHub::publish(util::Json state, const viz::Image& image,
                                bool build_half) {
  if (image.width() == 0 || image.height() == 0) {
    return publish_impl(std::move(state), {}, {}, nullptr, nullptr);
  }
  auto raw_full = std::make_shared<const viz::Image>(image);
  std::shared_ptr<const viz::Image> raw_half;
  if (build_half) {
    raw_half = std::make_shared<const viz::Image>(viz::downsample(image, 2));
  }
  // Encode before the argument list: a moved-from shared_ptr must not be
  // dereferenced by a sibling argument (evaluation order is unspecified).
  std::vector<std::uint8_t> png = raw_full->encode_png();
  std::vector<std::uint8_t> png_half =
      raw_half ? raw_half->encode_png() : std::vector<std::uint8_t>{};
  return publish_impl(std::move(state), std::move(png), std::move(png_half),
                      std::move(raw_full), std::move(raw_half));
}

std::uint64_t FrameHub::publish(util::Json state,
                                std::vector<std::uint8_t> png) {
  // No raw pixels: no reduced image (half tier falls back to the full body)
  // and no tile deltas (image changes resend the whole image).
  return publish_impl(std::move(state), std::move(png), {}, nullptr, nullptr);
}

std::uint64_t FrameHub::publish_impl(util::Json state,
                                     std::vector<std::uint8_t> png,
                                     std::vector<std::uint8_t> png_half,
                                     std::shared_ptr<const viz::Image> raw_full,
                                     std::shared_ptr<const viz::Image> raw_half) {
  // Publishers serialize here, which lets the expensive work — delta
  // encoding, one base64 per image tier, rendering the per-tier response
  // bodies — happen without holding mutex_, so concurrent polls never stall
  // behind a frame build. Readers see seq_ and window_ change together below.
  std::lock_guard<std::mutex> publishing(publish_mutex_);
  FramePtr prev = latest();
  EncodeCost cost;

  auto frame = std::make_shared<Frame>();
  frame->seq = (prev ? prev->seq : 0) + 1;
  frame->state = std::move(state);
  frame->png = std::move(png);
  frame->png_half = std::move(png_half);
  frame->image_changed = !prev || frame->png != prev->png;

  util::Json delta_state;
  if (prev && frame->state.is_object() && prev->state.is_object()) {
    const util::JsonObject& now = frame->state.as_object();
    const util::JsonObject& before = prev->state.as_object();
    for (const auto& [key, value] : now) {
      const auto it = before.find(key);
      if (it == before.end() || !(it->second == value)) {
        delta_state[key] = value;
        ++frame->delta_keys;
      }
    }
  } else {
    delta_state = frame->state;
    frame->delta_keys =
        frame->state.is_object() ? frame->state.as_object().size() : 0;
  }

  // Tile-delta pass, per image tier: diff the raw framebuffer against the
  // predecessor's on a fixed tile grid and PNG-encode only the dirty tiles
  // — once per frame per tier, shared by every client whose delta includes
  // the tile (sequential *and* cursor-anchored skippers).
  frame->tiles[0].set_raw(raw_full);
  frame->tiles[1].set_raw(raw_half);
  const std::array<std::shared_ptr<const viz::Image>, kImageTierCount> raws = {
      raw_full, raw_half};
  for (std::size_t t = 0; t < kImageTierCount; ++t) {
    Frame::TileData& td = frame->tiles[t];
    const std::shared_ptr<const viz::Image>& raw = raws[t];
    if (!raw) continue;
    // The predecessor's raw may already have been dropped (raw_window):
    // then there is no diff reference and this frame stays full_change.
    const std::shared_ptr<const viz::Image> prev_raw =
        prev ? prev->tiles[t].raw() : nullptr;
    if (!prev_raw || prev_raw->width() != raw->width() ||
        prev_raw->height() != raw->height()) {
      continue;  // no reference: stays full_change
    }
    const viz::TileGrid grid(raw->width(), raw->height(), config_.tile_size);
    td.dirty = grid.diff(*prev_raw, *raw);
    if (grid.dirty_fraction(td.dirty) >= config_.full_tile_fraction) {
      td.dirty.clear();
      continue;  // most of the frame changed: full image is the delta
    }
    td.full_change = false;
    if (grid.dirty_count(td.dirty) == 0) {
      // Byte-identical pixels: share the predecessor's buffer so a
      // converged simulation retains one framebuffer, not window-many.
      td.set_raw(prev_raw);
      continue;
    }
    // Coalesce adjacent dirty tiles into maximal rectangles and encode
    // each rect once — fewer, larger PNGs amortize the per-payload
    // PNG/base64/JSON overhead and give DEFLATE longer runs to bite on.
    td.rects = grid.coalesce(td.dirty);
    td.rect_b64.resize(td.rects.size());
    td.tile_rect.assign(grid.count(), -1);
    for (std::size_t r = 0; r < td.rects.size(); ++r) {
      const viz::TileRect& rc = td.rects[r];
      const viz::Image patch = viz::TileGrid::extract(*raw, rc);
      const std::vector<std::uint8_t> png_bytes = patch.encode_png();
      cost.bytes_in += patch.bytes();
      cost.bytes_out += png_bytes.size();
      td.rect_b64[r] = util::base64_encode(png_bytes);
      ++cost.encodes;
      const int col0 = rc.x / config_.tile_size;
      const int col1 = (rc.x + rc.w - 1) / config_.tile_size;
      const int row0 = rc.y / config_.tile_size;
      const int row1 = (rc.y + rc.h - 1) / config_.tile_size;
      for (int row = row0; row <= row1; ++row) {
        for (int col = col0; col <= col1; ++col) {
          td.tile_rect[static_cast<std::size_t>(row) *
                           static_cast<std::size_t>(grid.cols()) +
                       static_cast<std::size_t>(col)] =
              static_cast<std::int32_t>(r);
        }
      }
    }
  }

  const std::string b64_full =
      frame->png.empty() ? std::string() : util::base64_encode(frame->png);
  const std::string b64_half =
      frame->png_half.empty() ? std::string()
                              : util::base64_encode(frame->png_half);
  cost.encodes += (b64_full.empty() ? 0 : 1) + (b64_half.empty() ? 0 : 1);
  if (raw_full && !frame->png.empty()) {
    cost.bytes_in += raw_full->bytes();
    cost.bytes_out += frame->png.size();
  }
  if (raw_half && !frame->png_half.empty()) {
    cost.bytes_in += raw_half->bytes();
    cost.bytes_out += frame->png_half.size();
  }
  const std::string none;
  for (std::size_t t = 0; t < kTierCount; ++t) {
    const Tier tier = static_cast<Tier>(t);
    if (tier == Tier::kHalf && frame->png_half.empty()) {
      // Half tier not built this frame: Frame::body() falls back to the
      // full tier's bodies, so rendering duplicates here buys nothing.
      continue;
    }
    const std::string& image_b64 = tier == Tier::kFull   ? b64_full
                                   : tier == Tier::kHalf ? b64_half
                                                         : none;
    frame->bodies[t].full =
        render_body(frame->seq, tier, frame->state, image_b64, false);
    // The sequential delta body (cursor exactly one frame behind): dirty
    // tiles when a tile delta exists, the whole image only as fallback.
    const bool tiled = t < kImageTierCount && !frame->tiles[t].full_change &&
                       frame->image_changed;
    if (tiled) {
      const Frame::TileData& td = frame->tiles[t];
      std::vector<TileRef> tiles;
      tiles.reserve(td.rects.size());
      for (std::size_t i = 0; i < td.rects.size(); ++i) {
        tiles.push_back({td.rects[i], &td.rect_b64[i]});
      }
      frame->bodies[t].delta =
          render_tiles_body(frame->seq, tier, delta_state, frame->seq - 1,
                            raws[t]->width(), raws[t]->height(), tiles);
    } else {
      frame->bodies[t].delta =
          render_body(frame->seq, tier, delta_state,
                      frame->image_changed ? image_b64 : none, true);
    }
  }

  return commit_frame(std::move(frame), cost, false);
}

std::uint64_t FrameHub::publish_encoded(PreEncoded pre) {
  // The relay's forwarding path: no pixels, no PNG, no base64 — the wire
  // bodies the caller received upstream become this frame's serve-time
  // bodies. The frame carries no raw framebuffers, so cursor-anchored
  // deltas decline (delta_body_for returns empty) and skipping clients
  // fall back to the full body — or, when this frame has none, to the
  // relay's resync-escalation path.
  std::lock_guard<std::mutex> publishing(publish_mutex_);
  FramePtr prev = latest();

  auto frame = std::make_shared<Frame>();
  frame->seq = (prev ? prev->seq : 0) + 1;
  frame->state = std::move(pre.state);
  frame->bodies[static_cast<std::size_t>(Tier::kFull)].full =
      std::move(pre.full_body);
  frame->bodies[static_cast<std::size_t>(Tier::kFull)].delta =
      std::move(pre.delta_body);
  return commit_frame(std::move(frame), {}, true);
}

std::uint64_t FrameHub::commit_frame(std::shared_ptr<Frame> frame,
                                     const EncodeCost& cost,
                                     bool preencoded) {
  bool waiters_remain = false;
  auto remain_hint = std::chrono::steady_clock::time_point::max();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return seq_;
    seq_ = frame->seq;
    window_.push_back(frame);
    while (window_.size() > config_.window) window_.pop_front();
    // Bounded raw retention: the frame that just crossed the raw window
    // loses its framebuffers (O(1): seq_ advances by one per publish, so
    // exactly one frame crosses the boundary — everything older was
    // dropped by earlier publishes, and frames trimmed off the window
    // free their raws with the Frame itself) while keeping its tile
    // encodes. delta_body_for then declines cursors older than the raw
    // window — full-frame fallback — but sequential clients keep tile
    // deltas from the prebuilt bodies.
    if (config_.raw_window > 0 && seq_ > config_.raw_window) {
      const std::uint64_t boundary = seq_ - config_.raw_window;
      const std::uint64_t oldest = window_.front()->seq;
      if (boundary >= oldest) {
        const Frame& aged =
            *window_[static_cast<std::size_t>(boundary - oldest)];
        for (std::size_t t = 0; t < kImageTierCount; ++t) {
          aged.tiles[t].drop_raw();
        }
      }
    }

    const auto now = std::chrono::steady_clock::now();
    std::vector<std::pair<std::function<void(FramePtr)>, FramePtr>> satisfied;
    auto it = waiters_.begin();
    while (it != waiters_.end()) {
      // A paced waiter whose inter-frame interval has not yet elapsed stays
      // parked; the timer sweeper serves it at not_before.
      if (it->since < frame->seq && now >= it->not_before) {
        // frame_for_locked, not `frame`: a sequential waiter that sat out
        // earlier publishes behind its not_before must resume at its own
        // cursor, not jump to the newest frame.
        satisfied.emplace_back(std::move(it->done), frame_for_locked(*it));
        it = waiters_.erase(it);
      } else {
        // Cursor from the future (stale client) or paced; keep waiting.
        // Its next actionable instant feeds the reschedule hint below.
        auto event = it->deadline;
        if (it->since < frame->seq) event = std::min(event, it->not_before);
        remain_hint = std::min(remain_hint, event);
        ++it;
      }
    }
    stats_.published++;
    stats_.image_encodes += cost.encodes;
    stats_.image_bytes_in += cost.bytes_in;
    stats_.image_bytes_out += cost.bytes_out;
    if (preencoded) stats_.preencoded_publishes++;
    stats_.served += satisfied.size();
    stats_.waiting = waiters_.size();

    // Fan out on the pool — the monitor thread returns to simulating
    // immediately instead of writing N responses. Dispatching under mutex_
    // keeps the shutdown_ check and the pool_ access atomic against
    // shutdown() destroying the pool.
    for (auto& [done, served] : satisfied) {
      pool_->submit([done = std::move(done), served = std::move(served)] {
        done(served);
      });
    }
    waiters_remain = !waiters_.empty();
  }
  sync_cv_.notify_all();
  timer_cv_.notify_all();
  // Waiters held back by pacing (not_before) now have a frame: the reactor
  // sweep timer must move up to the earliest such instant.
  if (link_ && waiters_remain) request_reschedule(remain_hint);
  return frame->seq;
}

FramePtr FrameHub::latest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return window_.empty() ? nullptr : window_.back();
}

FramePtr FrameHub::next_after_locked(std::uint64_t since) const {
  if (window_.empty() || seq_ <= since) return nullptr;
  // window_ holds consecutive seqs [seq_ - size + 1, seq_].
  const std::uint64_t oldest = window_.front()->seq;
  const std::uint64_t want = std::max(since + 1, oldest);
  return window_[static_cast<std::size_t>(want - oldest)];
}

FramePtr FrameHub::frame_for_locked(const Waiter& waiter) const {
  if (waiter.latest_only && !window_.empty() && seq_ > waiter.since) {
    return window_.back();
  }
  return next_after_locked(waiter.since);
}

FramePtr FrameHub::next_after(std::uint64_t since) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_after_locked(since);
}

std::string FrameHub::delta_body_for(const FramePtr& frame,
                                     std::uint64_t since, Tier tier) const {
  if (!frame || tier == Tier::kStateOnly || frame->seq <= since) return {};
  const std::size_t t = static_cast<std::size_t>(tier);
  // Snapshot the atomic raw pointers once: the publisher may drop them
  // concurrently (raw_window), and a diff must run against a stable buffer.
  const std::shared_ptr<const viz::Image> cur_raw = frame->tiles[t].raw();
  if (!cur_raw) return {};
  // Snapshot the frame chain [since, frame->seq] out of the window. The
  // window holds a contiguous seq range, so retaining the cursor frame
  // means every intermediate frame is retained too.
  std::vector<FramePtr> chain;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (window_.empty()) return {};
    const std::uint64_t oldest = window_.front()->seq;
    if (since < oldest || frame->seq > seq_) return {};  // cursor aged out
    chain.reserve(static_cast<std::size_t>(frame->seq - since) + 1);
    for (std::uint64_t s = since; s <= frame->seq; ++s) {
      chain.push_back(window_[static_cast<std::size_t>(s - oldest)]);
    }
  }
  const std::shared_ptr<const viz::Image> base_raw =
      chain.front()->tiles[t].raw();
  if (!base_raw || base_raw->width() != cur_raw->width() ||
      base_raw->height() != cur_raw->height()) {
    // The cursor frame never carried this tier's pixels (e.g. the half
    // image was not built then, the client's last body was actually a tier
    // fallback, or the cursor fell behind the raw window and the reference
    // buffer was dropped), or the canvas was resized since: no valid
    // reference.
    return {};
  }
  // A full-change frame anywhere in the skipped range means tiles changed
  // there are unaccounted for — the newest-dirty-wins lookup below would
  // hand out stale tile content.
  for (std::size_t i = 1; i < chain.size(); ++i) {
    if (chain[i]->tiles[t].full_change) return {};
  }
  const viz::TileGrid grid(cur_raw->width(), cur_raw->height(),
                           config_.tile_size);
  // The cursor-anchored dirty set: diff the client's actual cursor frame
  // against the served one. Tighter than the union of per-frame dirty sets
  // (a tile that changed and changed back drops out entirely).
  const viz::TileSet dirty = grid.diff(*base_raw, *cur_raw);
  if (grid.dirty_fraction(dirty) >= config_.full_tile_fraction) return {};

  // Per-tile newest changer across the skipped range: that frame's rect
  // holds the tile's current content (nothing newer touched it) — and its
  // publish-time encode.
  std::vector<std::size_t> newest(grid.count(), 0);  // 0 = no changer
  for (std::size_t j = 1; j < chain.size(); ++j) {
    const Frame::TileData& td = chain[j]->tiles[t];
    const std::size_t lim = std::min(td.dirty.size(), grid.count());
    for (std::size_t i = 0; i < lim; ++i) {
      if (td.dirty[i] != 0) newest[i] = j;
    }
  }

  // Coalesced rects cover whole groups of tiles, so shipping the newest
  // changer's rect for each cursor-dirty tile can drag in neighbor tiles
  // whose content moved on in a later frame. Close over coverage: whenever
  // an included rect covers a tile whose newest changer is a *newer*
  // frame, that frame's rect ships too — composited afterwards (ascending
  // frame order below), it overwrites the stale neighbor content, so every
  // covered tile ends at its current pixels.
  std::vector<std::vector<char>> included(chain.size());
  std::vector<std::pair<std::size_t, std::size_t>> work;
  const auto include = [&](std::size_t tile_idx) -> bool {
    const std::size_t j = newest[tile_idx];
    if (j == 0) return false;  // inconsistent bookkeeping: full fallback
    const Frame::TileData& td = chain[j]->tiles[t];
    if (tile_idx >= td.tile_rect.size() || td.tile_rect[tile_idx] < 0) {
      return false;
    }
    const std::size_t r = static_cast<std::size_t>(td.tile_rect[tile_idx]);
    if (r >= td.rect_b64.size() || td.rect_b64[r].empty()) return false;
    if (included[j].empty()) included[j].assign(td.rects.size(), 0);
    if (included[j][r] == 0) {
      included[j][r] = 1;
      work.emplace_back(j, r);
    }
    return true;
  };
  for (std::size_t i = 0; i < grid.count(); ++i) {
    if (dirty[i] != 0 && !include(i)) return {};
  }
  while (!work.empty()) {
    const auto [j, r] = work.back();
    work.pop_back();
    const viz::TileRect rc = chain[j]->tiles[t].rects[r];
    const int col0 = rc.x / config_.tile_size;
    const int col1 = (rc.x + rc.w - 1) / config_.tile_size;
    const int row0 = rc.y / config_.tile_size;
    const int row1 = (rc.y + rc.h - 1) / config_.tile_size;
    for (int row = row0; row <= row1; ++row) {
      for (int col = col0; col <= col1; ++col) {
        const std::size_t k = static_cast<std::size_t>(row) *
                                  static_cast<std::size_t>(grid.cols()) +
                              static_cast<std::size_t>(col);
        if (newest[k] > j && !include(k)) return {};
      }
    }
  }
  std::vector<TileRef> tiles;
  for (std::size_t j = 1; j < chain.size(); ++j) {
    if (included[j].empty()) continue;
    const Frame::TileData& td = chain[j]->tiles[t];
    for (std::size_t r = 0; r < included[j].size(); ++r) {
      if (included[j][r] != 0) tiles.push_back({td.rects[r], &td.rect_b64[r]});
    }
  }
  // Full state, not a key delta: the client skipped the intermediate frames
  // and has nothing valid to merge into.
  return render_tiles_body(frame->seq, tier, frame->state, since,
                           cur_raw->width(), cur_raw->height(), tiles);
}

std::uint64_t FrameHub::seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seq_;
}

std::uint64_t FrameHub::oldest_retained() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return window_.empty() ? 0 : window_.front()->seq;
}

FrameHub::Stats FrameHub::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

bool FrameHub::is_shutdown() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shutdown_;
}

void FrameHub::wait_async(std::uint64_t since, double timeout_s,
                          std::function<void(FramePtr)> done) {
  WaitOptions options;
  options.timeout_s = timeout_s;
  wait_async(since, options, std::move(done));
}

void FrameHub::wait_async(std::uint64_t since, const WaitOptions& options,
                          std::function<void(FramePtr)> done) {
  const double timeout_s =
      sanitize_timeout(options.timeout_s, config_.max_wait_s);
  const auto now = std::chrono::steady_clock::now();
  FramePtr ready;
  bool registered = false;
  auto new_event = std::chrono::steady_clock::time_point::max();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // A cursor ahead of the newest seq cannot be satisfied in this epoch —
    // a stale client whose server restarted (seq counting re-began at 1).
    // Clamp it to the head so the *next publish* serves it a full-frame
    // resync instead of parking forever against a seq that will never
    // arrive. Deliberately not served instantly: pre-resync dashboards
    // ignore frames with seq <= their cursor and re-poll immediately, so an
    // instant response would turn every such straggler into a wire-speed
    // poll loop — parking until the next frame rate-limits them to the
    // publish cadence.
    if (since > seq_) since = seq_;
    if (shutdown_) {
      // fall through; completed below without registering
    } else if (seq_ > since && now >= options.not_before) {
      Waiter probe;
      probe.since = since;
      probe.latest_only = options.latest_only;
      ready = frame_for_locked(probe);
      stats_.served++;
    } else {
      Waiter w;
      w.since = since;
      w.deadline = now +
                   std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(timeout_s));
      w.not_before = options.not_before;
      w.latest_only = options.latest_only;
      w.done = std::move(done);
      // This waiter's own next actionable instant — the reschedule hint.
      new_event = w.deadline;
      if (seq_ > since) new_event = std::min(new_event, w.not_before);
      waiters_.push_back(std::move(w));
      stats_.waiting = waiters_.size();
      stats_.waiting_peak = std::max(stats_.waiting_peak, stats_.waiting);
      registered = true;
    }
  }
  if (registered) {
    // The new waiter's deadline (or pacing instant) may be the nearest
    // event: wake whichever sweeper — timer thread or reactor timer — so
    // it can re-derive its wait.
    if (link_) {
      request_reschedule(new_event);
    } else {
      timer_cv_.notify_all();
    }
    return;
  }
  // Caller's thread completes immediately — no pool round-trip when the
  // frame already exists (the catch-up path).
  done(ready);
}

FramePtr FrameHub::wait(std::uint64_t since, double timeout_s) {
  timeout_s = sanitize_timeout(timeout_s, config_.max_wait_s);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  std::unique_lock<std::mutex> lock(mutex_);
  // Same stale-cursor resync as wait_async: never park against a seq from a
  // previous epoch.
  if (since > seq_) since = seq_;
  sync_cv_.wait_until(lock, deadline,
                      [&] { return shutdown_ || seq_ > since; });
  FramePtr out = next_after_locked(since);
  if (out) {
    stats_.served++;
  } else {
    stats_.timeouts++;
  }
  return out;
}

std::chrono::steady_clock::time_point FrameHub::next_event_locked() const {
  // Next actionable instant: a timeout deadline, or the not_before of a
  // paced waiter whose frame is already available.
  auto next = waiters_.front().deadline;
  for (const Waiter& w : waiters_) {
    next = std::min(next, w.deadline);
    if (seq_ > w.since) next = std::min(next, w.not_before);
  }
  return next;
}

void FrameHub::sweep_due_locked(std::chrono::steady_clock::time_point now) {
  std::vector<std::pair<std::function<void(FramePtr)>, FramePtr>> fire;
  auto it = waiters_.begin();
  while (it != waiters_.end()) {
    if (it->deadline <= now) {
      stats_.timeouts++;
      fire.emplace_back(std::move(it->done), nullptr);
      it = waiters_.erase(it);
    } else if (seq_ > it->since && it->not_before <= now) {
      // Paced waiter whose inter-frame interval elapsed after the frame
      // arrived: serve it now (newest frame for latest_only skippers).
      stats_.served++;
      fire.emplace_back(std::move(it->done), frame_for_locked(*it));
      it = waiters_.erase(it);
    } else {
      ++it;
    }
  }
  if (fire.empty()) return;
  stats_.waiting = waiters_.size();
  // Dispatch while still holding mutex_ (same shutdown-vs-pool atomicity
  // as publish); submit only queues a task, so the hold stays short.
  for (auto& [done, frame] : fire) {
    pool_->submit([done = std::move(done), frame = std::move(frame)] {
      done(frame);
    });
  }
}

void FrameHub::timer_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!shutdown_) {
    if (waiters_.empty()) {
      timer_cv_.wait(lock,
                     [this] { return shutdown_ || !waiters_.empty(); });
      continue;
    }
    const auto earliest = next_event_locked();
    timer_cv_.wait_until(lock, earliest, [this, earliest] {
      if (shutdown_ || waiters_.empty()) return true;
      // Re-check: publish drained the list, a publish made a paced waiter
      // actionable, or a nearer deadline arrived.
      if (next_event_locked() < earliest) return true;
      return std::chrono::steady_clock::now() >= earliest;
    });
    if (shutdown_) break;
    sweep_due_locked(std::chrono::steady_clock::now());
  }
}

void FrameHub::request_reschedule(std::chrono::steady_clock::time_point hint) {
  // Posted closures capture the link, never the hub: after shutdown() nulls
  // link_->hub, a straggler is a locked no-op instead of a dangling call.
  config_.reactor->post([link = link_, hint] {
    std::lock_guard<std::mutex> guard(link->mutex);
    if (link->hub != nullptr) link->hub->reschedule_on_reactor(hint);
  });
}

void FrameHub::reschedule_on_reactor(
    std::chrono::steady_clock::time_point hint) {
  // The armed timer already fires by the prompting event's instant: done.
  // This is the hot path — every new waiter whose deadline lies beyond
  // the earliest one (i.e. almost all of them) stops here instead of
  // paying an O(waiters) rescan.
  if (reactor_timer_ != 0 && armed_at_ <= hint) return;
  if (reactor_timer_ != 0) {
    config_.reactor->cancel(reactor_timer_);
    reactor_timer_ = 0;
  }
  std::chrono::steady_clock::time_point earliest;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_ || waiters_.empty()) return;
    earliest = next_event_locked();
  }
  // One timer registration covers the whole waiter list — pacing instants
  // and poll timeouts alike become wheel entries on the shared loop.
  reactor_timer_ = config_.reactor->run_at(earliest, [link = link_] {
    std::lock_guard<std::mutex> guard(link->mutex);
    if (link->hub == nullptr) return;
    link->hub->reactor_timer_ = 0;
    {
      std::lock_guard<std::mutex> lock(link->hub->mutex_);
      if (!link->hub->shutdown_) {
        link->hub->sweep_due_locked(std::chrono::steady_clock::now());
      }
    }
    link->hub->reschedule_on_reactor(
        std::chrono::steady_clock::time_point::min());
  });
  armed_at_ = earliest;
}

void FrameHub::shutdown() {
  std::vector<Waiter> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
    orphans.swap(waiters_);
    stats_.timeouts += orphans.size();
    stats_.waiting = 0;
  }
  timer_cv_.notify_all();
  sync_cv_.notify_all();
  if (timer_.joinable()) timer_.join();
  if (link_) {
    // Sever the reactor link: timers/tasks already queued find a null hub.
    std::lock_guard<std::mutex> guard(link_->mutex);
    link_->hub = nullptr;
  }
  for (auto& w : orphans) {
    pool_->submit([done = std::move(w.done)] { done(nullptr); });
  }
  // Drains queued fan-out tasks, then joins the workers: after shutdown()
  // returns, no hub thread will ever run another callback.
  pool_.reset();
}

}  // namespace ricsa::web
