#include "web/hub.hpp"

#include <algorithm>
#include <utility>

#include "util/base64.hpp"

namespace ricsa::web {

namespace {

/// Render a poll response body. `state` is embedded as-is; the image rides
/// along base64-encoded exactly once per frame (the pre-encoded string is
/// shared by full and delta bodies).
std::string render_body(std::uint64_t seq, const util::Json& state,
                        const std::string& image_b64, bool delta) {
  util::Json out;
  out["seq"] = static_cast<double>(seq);
  out["delta"] = delta;
  out["state"] = state;
  if (!image_b64.empty()) out["image_b64"] = image_b64;
  return out.dump();
}

}  // namespace

FrameHub::FrameHub() : FrameHub(Config()) {}

FrameHub::FrameHub(Config config) : config_(config) {
  if (config_.window == 0) config_.window = 1;
  pool_ = std::make_unique<util::ThreadPool>(config_.workers);
  timer_ = std::thread([this] { timer_loop(); });
}

FrameHub::~FrameHub() { shutdown(); }

std::uint64_t FrameHub::publish(util::Json state,
                                std::vector<std::uint8_t> png) {
  // Publishers serialize here, which lets the expensive work — delta
  // encoding, one base64 of the image, rendering both response bodies —
  // happen without holding mutex_, so concurrent polls never stall behind
  // a frame build. Readers see seq_ and window_ change together below.
  std::lock_guard<std::mutex> publishing(publish_mutex_);
  FramePtr prev = latest();

  auto frame = std::make_shared<Frame>();
  frame->seq = (prev ? prev->seq : 0) + 1;
  frame->state = std::move(state);
  frame->png = std::move(png);
  frame->image_changed = !prev || frame->png != prev->png;

  util::Json delta_state;
  if (prev && frame->state.is_object() && prev->state.is_object()) {
    const util::JsonObject& now = frame->state.as_object();
    const util::JsonObject& before = prev->state.as_object();
    for (const auto& [key, value] : now) {
      const auto it = before.find(key);
      if (it == before.end() || !(it->second == value)) {
        delta_state[key] = value;
        ++frame->delta_keys;
      }
    }
  } else {
    delta_state = frame->state;
    frame->delta_keys =
        frame->state.is_object() ? frame->state.as_object().size() : 0;
  }

  const std::string image_b64 =
      frame->png.empty() ? std::string() : util::base64_encode(frame->png);
  frame->body_full = render_body(frame->seq, frame->state, image_b64, false);
  frame->body_delta = render_body(
      frame->seq, delta_state, frame->image_changed ? image_b64 : "", true);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return seq_;
    seq_ = frame->seq;
    window_.push_back(frame);
    while (window_.size() > config_.window) window_.pop_front();

    std::vector<Waiter> satisfied;
    auto it = waiters_.begin();
    while (it != waiters_.end()) {
      if (it->since < frame->seq) {
        satisfied.push_back(std::move(*it));
        it = waiters_.erase(it);
      } else {
        ++it;  // cursor from the future (stale client); keep waiting
      }
    }
    stats_.published++;
    stats_.served += satisfied.size();
    stats_.waiting = waiters_.size();

    // Fan out on the pool — the monitor thread returns to simulating
    // immediately instead of writing N responses. Dispatching under mutex_
    // keeps the shutdown_ check and the pool_ access atomic against
    // shutdown() destroying the pool.
    for (auto& w : satisfied) {
      pool_->submit([done = std::move(w.done), frame] { done(frame); });
    }
  }
  sync_cv_.notify_all();
  timer_cv_.notify_all();
  return frame->seq;
}

FramePtr FrameHub::latest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return window_.empty() ? nullptr : window_.back();
}

FramePtr FrameHub::next_after_locked(std::uint64_t since) const {
  if (window_.empty() || seq_ <= since) return nullptr;
  // window_ holds consecutive seqs [seq_ - size + 1, seq_].
  const std::uint64_t oldest = window_.front()->seq;
  const std::uint64_t want = std::max(since + 1, oldest);
  return window_[static_cast<std::size_t>(want - oldest)];
}

FramePtr FrameHub::next_after(std::uint64_t since) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_after_locked(since);
}

std::uint64_t FrameHub::seq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seq_;
}

std::uint64_t FrameHub::oldest_retained() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return window_.empty() ? 0 : window_.front()->seq;
}

FrameHub::Stats FrameHub::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void FrameHub::wait_async(std::uint64_t since, double timeout_s,
                          std::function<void(FramePtr)> done) {
  timeout_s = std::clamp(timeout_s, 0.0, config_.max_wait_s);
  FramePtr ready;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) {
      // fall through; completed below without registering
    } else if (seq_ > since) {
      ready = next_after_locked(since);
      stats_.served++;
    } else {
      Waiter w;
      w.since = since;
      w.deadline = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(timeout_s));
      w.done = std::move(done);
      waiters_.push_back(std::move(w));
      stats_.waiting = waiters_.size();
      stats_.waiting_peak = std::max(stats_.waiting_peak, stats_.waiting);
      timer_cv_.notify_all();
      return;
    }
  }
  // Caller's thread completes immediately — no pool round-trip when the
  // frame already exists (the catch-up path).
  done(ready);
}

FramePtr FrameHub::wait(std::uint64_t since, double timeout_s) {
  timeout_s = std::clamp(timeout_s, 0.0, config_.max_wait_s);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  std::unique_lock<std::mutex> lock(mutex_);
  sync_cv_.wait_until(lock, deadline,
                      [&] { return shutdown_ || seq_ > since; });
  FramePtr out = next_after_locked(since);
  if (out) {
    stats_.served++;
  } else {
    stats_.timeouts++;
  }
  return out;
}

void FrameHub::timer_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!shutdown_) {
    if (waiters_.empty()) {
      timer_cv_.wait(lock,
                     [this] { return shutdown_ || !waiters_.empty(); });
      continue;
    }
    auto earliest = waiters_.front().deadline;
    for (const Waiter& w : waiters_) earliest = std::min(earliest, w.deadline);
    timer_cv_.wait_until(lock, earliest, [this, earliest] {
      if (shutdown_ || waiters_.empty()) return true;
      // Re-check: publish drained the list, or a nearer deadline arrived.
      for (const Waiter& w : waiters_) {
        if (w.deadline < earliest) return true;
      }
      return std::chrono::steady_clock::now() >= earliest;
    });
    if (shutdown_) break;

    const auto now = std::chrono::steady_clock::now();
    std::vector<Waiter> expired;
    auto it = waiters_.begin();
    while (it != waiters_.end()) {
      if (it->deadline <= now) {
        expired.push_back(std::move(*it));
        it = waiters_.erase(it);
      } else {
        ++it;
      }
    }
    if (expired.empty()) continue;
    stats_.timeouts += expired.size();
    stats_.waiting = waiters_.size();
    // Dispatch while still holding mutex_ (same shutdown-vs-pool atomicity
    // as publish); submit only queues a task, so the hold stays short.
    for (auto& w : expired) {
      pool_->submit([done = std::move(w.done)] { done(nullptr); });
    }
  }
}

void FrameHub::shutdown() {
  std::vector<Waiter> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
    orphans.swap(waiters_);
    stats_.timeouts += orphans.size();
    stats_.waiting = 0;
  }
  timer_cv_.notify_all();
  sync_cv_.notify_all();
  if (timer_.joinable()) timer_.join();
  for (auto& w : orphans) {
    pool_->submit([done = std::move(w.done)] { done(nullptr); });
  }
  // Drains queued fan-out tasks, then joins the workers: after shutdown()
  // returns, no hub thread will ever run another callback.
  pool_.reset();
}

}  // namespace ricsa::web
