#include "web/registry.hpp"

#include <algorithm>
#include <utility>

namespace ricsa::web {

HubRegistry::HubRegistry() : HubRegistry(Config()) {}

HubRegistry::HubRegistry(Config config)
    : config_(std::move(config)), sessions_(config_.pacing) {
  if (config_.max_views == 0) config_.max_views = 1;
}

HubRegistry::~HubRegistry() { shutdown(); }

std::shared_ptr<FrameHub> HubRegistry::revive_locked(Shard& shard) {
  if (!shard.hub) {
    shard.hub = std::make_shared<FrameHub>(config_.hub);
    ++stats_.created;
  }
  return shard.hub;
}

std::shared_ptr<FrameHub> HubRegistry::default_hub() {
  return pin(config_.default_view);
}

std::shared_ptr<FrameHub> HubRegistry::pin(const std::string& view) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (shutdown_) return nullptr;
  Shard& shard = shards_[view];
  shard.pinned = true;
  return revive_locked(shard);
}

std::shared_ptr<FrameHub> HubRegistry::hub_for_publish(const std::string& view,
                                                       double now_s,
                                                       bool* skipped) {
  *skipped = false;
  std::lock_guard<std::mutex> lock(mutex_);
  if (shutdown_) return nullptr;
  auto it = shards_.find(view);
  if (it == shards_.end()) {
    // First publish declares the view. The cap guards against a publisher
    // loop generating unbounded names (subscribers cannot reach this path).
    if (shards_.size() >= config_.max_views) return nullptr;
    it = shards_.emplace(view, Shard{}).first;
  }
  Shard& shard = it->second;
  // Idle decimation: with nobody consuming the view, build only every Nth
  // frame. The first publish into a fresh/revived shard is always real
  // (the shard needs a head frame), and last_publish_s is stamped even for
  // skips — the publisher is alive, so the reaper must not confuse a
  // decimated view with an abandoned one.
  if (config_.idle_publish_divisor > 1 && shard.hub && shard.hub->seq() > 0 &&
      now_s - shard.last_subscribe_s > config_.idle_publish_after_s) {
    if (++shard.idle_skips < config_.idle_publish_divisor) {
      *skipped = true;
      shard.last_publish_s = now_s;
      return shard.hub;
    }
  }
  shard.idle_skips = 0;
  shard.last_publish_s = now_s;
  return revive_locked(shard);
}

std::uint64_t HubRegistry::publish(const std::string& view, util::Json state,
                                   const viz::Image& image, bool build_half) {
  const double now_s = mono_now_s();
  bool skipped = false;
  const std::shared_ptr<FrameHub> hub = hub_for_publish(view, now_s, &skipped);
  if (!hub) return 0;
  if (skipped) return hub->seq();
  // Frame building happens outside the registry lock: concurrent publishes
  // into different shards encode in parallel, and subscribers of other
  // views never stall behind this one's render.
  const std::uint64_t seq = hub->publish(std::move(state), image, build_half);
  for (const auto& idle : sweep_locked_outside(now_s)) idle->shutdown();
  return seq;
}

std::uint64_t HubRegistry::publish(const std::string& view, util::Json state,
                                   std::vector<std::uint8_t> png) {
  const double now_s = mono_now_s();
  bool skipped = false;
  const std::shared_ptr<FrameHub> hub = hub_for_publish(view, now_s, &skipped);
  if (!hub) return 0;
  if (skipped) return hub->seq();
  const std::uint64_t seq = hub->publish(std::move(state), std::move(png));
  for (const auto& idle : sweep_locked_outside(now_s)) idle->shutdown();
  return seq;
}

std::uint64_t HubRegistry::publish_encoded(const std::string& view,
                                           FrameHub::PreEncoded pre) {
  const double now_s = mono_now_s();
  std::shared_ptr<FrameHub> hub;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return 0;
    auto it = shards_.find(view);
    if (it == shards_.end()) {
      if (shards_.size() >= config_.max_views) return 0;
      it = shards_.emplace(view, Shard{}).first;
    }
    // No decimation: the relayed body is already rebased against this
    // shard's seq space, so every received frame must land.
    it->second.idle_skips = 0;
    it->second.last_publish_s = now_s;
    hub = revive_locked(it->second);
  }
  const std::uint64_t seq = hub->publish_encoded(std::move(pre));
  for (const auto& idle : sweep_locked_outside(now_s)) idle->shutdown();
  return seq;
}

bool HubRegistry::wants_publish(const std::string& view) {
  const double now_s = mono_now_s();
  std::lock_guard<std::mutex> lock(mutex_);
  if (shutdown_) return false;
  const auto it = shards_.find(view);
  if (it == shards_.end()) return true;  // first publish declares the view
  Shard& shard = it->second;
  // Mirror of hub_for_publish's decimation test, with the counter advanced
  // only on the skip side: a declined render counts as one idle skip, and
  // the accepted render's publish() performs the increment that crosses the
  // divisor — so the cadence is identical whether or not the caller asks.
  if (config_.idle_publish_divisor > 1 && shard.hub && shard.hub->seq() > 0 &&
      now_s - shard.last_subscribe_s > config_.idle_publish_after_s &&
      shard.idle_skips + 1 < config_.idle_publish_divisor) {
    ++shard.idle_skips;
    // The publisher is alive; a decimated view is not an abandoned one.
    shard.last_publish_s = now_s;
    return false;
  }
  return true;
}

std::shared_ptr<FrameHub> HubRegistry::subscribe(const std::string& view) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (shutdown_) return nullptr;
  const auto it = shards_.find(view);
  if (it == shards_.end()) return nullptr;  // never declared: HTTP 404
  it->second.last_subscribe_s = mono_now_s();
  it->second.idle_skips = 0;  // full publish rate resumes immediately
  // A known name whose hub was reaped revives empty: the subscriber parks
  // against seq 0 (stale cursors clamp) and resyncs on the next publish.
  return revive_locked(it->second);
}

std::shared_ptr<FrameHub> HubRegistry::find(const std::string& view) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = shards_.find(view);
  return it == shards_.end() ? nullptr : it->second.hub;
}

void HubRegistry::touch(const std::string& view) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (shutdown_) return;
  const auto it = shards_.find(view);
  if (it != shards_.end() && it->second.hub) {
    it->second.last_subscribe_s = mono_now_s();
    it->second.idle_skips = 0;  // full publish rate resumes immediately
  }
}

bool HubRegistry::known(const std::string& view) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shards_.find(view) != shards_.end();
}

std::vector<std::string> HubRegistry::view_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(shards_.size());
  for (const auto& [name, shard] : shards_) names.push_back(name);
  return names;
}

std::vector<std::shared_ptr<FrameHub>> HubRegistry::sweep_locked(
    double now_s, bool force) {
  // Requires mutex_. Idle = no publish and no subscriber activity for
  // idle_reap_s. Parked long-polls do not refresh the shard after their
  // arrival, so a view whose publisher went away IS reaped from under
  // them: their waits complete with the timeout contract when the caller
  // shuts the collected hubs down, they re-poll, and subscribe() revives
  // an empty shard — the stale-cursor resync, not a stranded client.
  std::vector<std::shared_ptr<FrameHub>> idle;
  if (config_.idle_reap_s <= 0.0) return idle;
  if (!force && last_sweep_s_ >= 0.0 &&
      now_s - last_sweep_s_ < config_.sweep_period_s) {
    return idle;
  }
  last_sweep_s_ = now_s;
  for (auto& [name, shard] : shards_) {
    if (!shard.hub || shard.pinned) continue;
    const double last_activity =
        std::max(shard.last_publish_s, shard.last_subscribe_s);
    if (now_s - last_activity > config_.idle_reap_s) {
      idle.push_back(std::move(shard.hub));
      shard.hub = nullptr;
      ++stats_.reaped;
    }
  }
  return idle;
}

std::vector<std::shared_ptr<FrameHub>> HubRegistry::sweep_locked_outside(
    double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (shutdown_) return {};
  return sweep_locked(now_s, /*force=*/false);
}

std::size_t HubRegistry::reap_idle_now() {
  std::vector<std::shared_ptr<FrameHub>> idle;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return 0;
    idle = sweep_locked(mono_now_s(), /*force=*/true);
  }
  // shutdown() joins each hub's worker pool and fires parked waiters —
  // outside the registry lock so completions (which may subscribe again)
  // cannot deadlock against it.
  for (const auto& hub : idle) hub->shutdown();
  return idle.size();
}

HubRegistry::Stats HubRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.known = shards_.size();
  out.live = 0;
  for (const auto& [name, shard] : shards_) {
    if (shard.hub) ++out.live;
  }
  return out;
}

void HubRegistry::shutdown() {
  std::vector<std::shared_ptr<FrameHub>> hubs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
    for (auto& [name, shard] : shards_) {
      if (shard.hub) hubs.push_back(std::move(shard.hub));
      shard.hub = nullptr;
    }
  }
  for (const auto& hub : hubs) hub->shutdown();
}

}  // namespace ricsa::web
