// Multi-hub sharding: one FrameHub per named view.
//
// The paper's Ajax server serves a single visualization stream; the
// "millions of users" north star needs clients watching different
// variables/projections (e.g. "rho/iso" vs "pressure/slice") to stop
// sharing one retention window. The registry owns one FrameHub *shard* per
// view name: each shard keeps its own sliding window, tier rendering, and
// tile-delta state, so a slow consumer replaying one view's window never
// contends with — or paces — clients on another view. This keyed-shard
// decomposition is also the architectural prerequisite for relay fan-out
// trees (a relay subscribes to exactly the shards its downstream watches).
//
// Lifecycle: shards are created lazily on first publish (the publisher
// declares the view namespace) and *revived* lazily on subscribe — a
// subscriber can only name views the publisher has declared, so an unknown
// view is a 404 at the HTTP layer, never an attacker-driven allocation.
// Shards idle past `idle_reap_s` (no publish, no subscriber activity) are
// reaped: the heavy FrameHub (window, framebuffers, encodes) is shut down —
// which completes any parked pollers with the timeout contract — while the
// view *name* stays registered. A later poll revives an empty shard whose
// seq restarts at 1; parked clients that re-poll with their stale cursor
// are clamped to the head and resync with the next publish, exactly the
// stale-cursor path they already handle after a server restart.
//
// Pacing is NOT sharded: the registry owns the one SessionTable, keyed by
// client identity, so one browser polling two views feeds a single
// GoodputMeter/RmsaController (web/session.hpp has the normalization
// story) and a tier downgrade applies to every view the client watches.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "viz/image.hpp"
#include "web/hub.hpp"
#include "web/session.hpp"

namespace ricsa::web {

class HubRegistry {
 public:
  struct Config {
    /// Per-shard FrameHub template (every shard gets its own window/
    /// workers/tile grid; a reactor pointer is shared across shards).
    FrameHub::Config hub;
    /// Registry-level per-client pacing (shared across views).
    PacingConfig pacing;
    /// View served when a request carries no `view=` parameter.
    std::string default_view = "main";
    /// Shards with neither a publish nor subscriber activity for this long
    /// are reaped (FrameHub shut down, name retained). 0 disables reaping.
    double idle_reap_s = 300.0;
    /// Throttle for the publish-path reap sweep.
    double sweep_period_s = 5.0;
    /// Hard cap on distinct view names. Publisher-side only (subscribers
    /// cannot create names), so this guards a buggy publisher loop, not an
    /// attacker; publishes into new views beyond it are refused.
    std::size_t max_views = 256;
    /// Idle-view publish decimation: a view with no subscriber activity for
    /// idle_publish_after_s accepts only every Nth publish — the frame
    /// build/encode nobody would consume is skipped and publish() returns
    /// the shard's unchanged seq. 1 disables (every publish is real). Full
    /// rate resumes on the first subscribe/touch of the view.
    std::size_t idle_publish_divisor = 1;
    /// How long without subscriber activity before a view counts as idle
    /// for publish decimation.
    double idle_publish_after_s = 10.0;
  };

  struct Stats {
    std::size_t live = 0;       // shards currently backed by a FrameHub
    std::size_t known = 0;      // registered view names (live + reaped)
    std::uint64_t created = 0;  // hub constructions (creations + revivals)
    std::uint64_t reaped = 0;
  };

  HubRegistry();  // default Config
  explicit HubRegistry(Config config);
  ~HubRegistry();
  HubRegistry(const HubRegistry&) = delete;
  HubRegistry& operator=(const HubRegistry&) = delete;

  const std::string& default_view_name() const { return config_.default_view; }
  /// The default view's shard, created (and pinned against reaping) on
  /// first use: the stable hub the single-view API surface rides on.
  std::shared_ptr<FrameHub> default_hub();

  /// Publish a frame into `view`, creating or reviving its shard first.
  /// Returns the shard's new seq, or 0 when refused (shutdown, or a new
  /// name beyond max_views).
  std::uint64_t publish(const std::string& view, util::Json state,
                        const viz::Image& image, bool build_half = true);
  std::uint64_t publish(const std::string& view, util::Json state,
                        std::vector<std::uint8_t> png);
  /// Inject a pre-encoded frame (FrameHub::publish_encoded): the relay's
  /// forwarding path. Bypasses idle-publish decimation — a relay forwards
  /// exactly what it received, and skipping a frame would desynchronize its
  /// local seq space from the bodies it rebased against it.
  std::uint64_t publish_encoded(const std::string& view,
                                FrameHub::PreEncoded pre);

  /// Would a publish into `view` right now be a real one? The render-side
  /// twin of idle-publish decimation: the monitor loop asks this *before*
  /// rasterizing a view, so a decimated idle view skips the render itself,
  /// not just the hub snapshot/encode. Calling wants_publish() then, on
  /// true, publish() keeps the exact 1-in-N cadence of calling publish()
  /// alone: a false here advances the same idle_skips counter the publish
  /// path consults, and a true leaves it one short of the divisor so the
  /// following publish() is the real Nth. True for unknown views (the first
  /// publish declares the name) and after shutdown returns false.
  bool wants_publish(const std::string& view);

  /// Subscriber-side shard lookup: the live hub for `view`, reviving a
  /// reaped shard of a known name; null for names never published or
  /// pinned — the HTTP layer's 404.
  std::shared_ptr<FrameHub> subscribe(const std::string& view);
  /// Lookup without revival (monitoring): null when the shard has no live
  /// hub right now, even if the name is known.
  std::shared_ptr<FrameHub> find(const std::string& view) const;
  /// Record subscriber activity on `view` without looking anything up: a
  /// long-lived stream subscribes once but keeps consuming, so it refreshes
  /// the shard's idle-reap clock per delivery the way each long-poll's
  /// subscribe() does. No-op for unknown or reaped views.
  void touch(const std::string& view);
  /// Register `view` eagerly and exempt it from reaping.
  std::shared_ptr<FrameHub> pin(const std::string& view);

  bool known(const std::string& view) const;
  /// Registered view names, sorted (map order).
  std::vector<std::string> view_names() const;

  /// Reap every reapable idle shard now, bypassing the sweep throttle
  /// (tests, explicit maintenance). Returns the number reaped.
  std::size_t reap_idle_now();

  SessionTable& sessions() { return sessions_; }
  const SessionTable& sessions() const { return sessions_; }

  Stats stats() const;

  /// Shut down every shard (parked waiters complete with the timeout
  /// contract) and refuse further publishes/subscribes. Idempotent. The
  /// reactor driving the shards (if any) must outlive this call.
  void shutdown();

 private:
  struct Shard {
    std::shared_ptr<FrameHub> hub;  // null while reaped
    double last_publish_s = 0.0;
    double last_subscribe_s = 0.0;
    bool pinned = false;
    /// Consecutive publishes decimated while the view sat idle; a real
    /// publish or any subscriber activity resets it.
    std::size_t idle_skips = 0;
  };

  /// Create/revive the shard's hub. Requires mutex_.
  std::shared_ptr<FrameHub> revive_locked(Shard& shard);
  /// Collect idle shards' hubs for shutdown. Requires mutex_.
  std::vector<std::shared_ptr<FrameHub>> sweep_locked(double now_s,
                                                      bool force);
  /// Throttled sweep taking mutex_ itself; the caller shuts the returned
  /// hubs down outside any lock.
  std::vector<std::shared_ptr<FrameHub>> sweep_locked_outside(double now_s);
  /// Shard lookup/creation for a publish. Sets *skipped when the view is
  /// idle-decimated this round (caller returns the unchanged seq instead
  /// of building a frame).
  std::shared_ptr<FrameHub> hub_for_publish(const std::string& view,
                                            double now_s, bool* skipped);

  Config config_;
  mutable std::mutex mutex_;
  std::map<std::string, Shard> shards_;
  Stats stats_;
  bool shutdown_ = false;
  double last_sweep_s_ = -1.0;
  SessionTable sessions_;
};

}  // namespace ricsa::web
