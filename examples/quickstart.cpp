// Quickstart: the whole RICSA stack in ~80 lines.
//
//  1. generate a dataset,
//  2. extract + render an isosurface (the real visualization pipeline),
//  3. calibrate cost models and ask the CM-side optimizer where each
//     pipeline module should run on the six-site testbed,
//  4. save the rendered frame as PNG.
//
// Run:  ./quickstart [output.png]
#include <cstdio>

#include "core/mapper.hpp"
#include "cost/models.hpp"
#include "cost/network_profile.hpp"
#include "cost/pipeline_builder.hpp"
#include "data/generators.hpp"
#include "netsim/testbed.hpp"
#include "steering/executor.hpp"

using namespace ricsa;

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "quickstart.png";

  // 1. A dataset: the synthetic stand-in for the paper's Rage volume.
  std::printf("generating dataset...\n");
  const data::ScalarVolume volume = data::make_rage(64, 64, 64);

  // 2. Extract + render locally (what a CS node does).
  cost::VizRequest request;
  request.technique = cost::VizRequest::Technique::kIsosurface;
  request.isovalue = 0.6f;
  request.image_width = 512;
  request.image_height = 512;
  const auto result = steering::execute_pipeline(volume, request);
  std::printf("isosurface: %zu triangles in %.1f ms, rendered in %.1f ms\n",
              result.iso_stats->triangles, result.transform_s * 1e3,
              result.render_s * 1e3);

  // 3. Where should this pipeline run? Calibrate the Section 4.4 cost
  //    models, build the pipeline spec, and solve the Eq. 9/10 DP over the
  //    six-site testbed.
  std::printf("calibrating cost models...\n");
  cost::CalibrationOptions cal;
  cal.isovalue_samples = 3;
  const cost::CostModels models = cost::calibrate({&volume}, cal);

  const netsim::Testbed tb = netsim::make_testbed();
  const auto profile = cost::NetworkProfile::from_network(*tb.net);
  const auto props = cost::dataset_properties(volume, request.isovalue);
  // Pretend the dataset is the full 64 MB Rage output cached at GaTech.
  const auto paper_scale = cost::scale_properties(props, 64 * 1000 * 1000);
  const auto spec = cost::build_pipeline(request, paper_scale, models);
  const auto problem = core::MappingProblem::from_pipeline(
      spec, profile, tb.gatech, tb.ornl);
  const auto mapping = core::DpMapper().solve(profile, problem);

  std::printf("\noptimal visualization routing table:\n  %s\n",
              mapping.to_vrt(1).to_string().c_str());
  std::printf("  (nodes: 0=ORNL 1=LSU 2=UT 3=NCState 4=OSU 5=GaTech)\n");
  std::printf("  predicted end-to-end delay: %.2f s\n", mapping.delay_s);

  // 4. Save the frame a browser would receive.
  result.image.write_png(out_path);
  std::printf("\nwrote %s (%dx%d)\n", out_path, result.image.width(),
              result.image.height());
  return 0;
}
