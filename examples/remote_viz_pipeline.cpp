// A complete remote visualization round trip over the simulated WAN:
// client request -> central manager runs the DP -> VRT installed at the data
// source -> data flows through the chosen pipeline mapping under the
// Robbins-Monro transport -> image arrives at the client. Prints the VRT and
// the full stage timeline, then compares against the naive client/server
// mapping.
//
// Run:  ./remote_viz_pipeline [dataset]     (jet | rage | viswoman)
#include <cstdio>
#include <string>

#include "cost/models.hpp"
#include "cost/network_profile.hpp"
#include "cost/pipeline_builder.hpp"
#include "data/generators.hpp"
#include "netsim/testbed.hpp"
#include "steering/wan_session.hpp"

using namespace ricsa;

namespace {
steering::WanResult run(const std::string& dataset,
                        std::optional<std::vector<int>> fixed) {
  // Calibrate quickly and build the paper-scale pipeline for the dataset.
  static const cost::CostModels models = [] {
    const data::ScalarVolume jet = data::make_jet(32, 32, 32);
    cost::CalibrationOptions opt;
    opt.isovalue_samples = 3;
    return cost::calibrate({&jet}, opt);
  }();
  const data::DatasetSpec spec = data::dataset_spec(dataset);
  const data::ScalarVolume sample = data::make_dataset(dataset, 0.25);
  const auto props = cost::scale_properties(
      cost::dataset_properties(sample, spec.default_isovalue, 16), spec.bytes);
  cost::VizRequest request;
  request.isovalue = spec.default_isovalue;

  netsim::Testbed tb = netsim::make_testbed();
  steering::WanSessionConfig config;
  config.client = tb.ornl;
  config.central_manager = tb.lsu;
  config.data_source = tb.gatech;
  config.profile = cost::NetworkProfile::from_network(*tb.net);
  config.spec = cost::build_pipeline(request, props, models);
  config.fixed_assignment = std::move(fixed);
  return steering::run_wan_session(*tb.net, config);
}
}  // namespace

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "rage";
  std::printf("RICSA remote visualization session: dataset '%s' cached at "
              "GaTech, client at ORNL\n\n", dataset.c_str());

  const auto optimal = run(dataset, std::nullopt);
  if (!optimal.completed) {
    std::printf("session failed!\n");
    return 1;
  }
  std::printf("VRT computed by the CM: %s\n", optimal.vrt.to_string().c_str());
  std::printf("  (nodes: 0=ORNL 1=LSU 2=UT 3=NCState 4=OSU 5=GaTech)\n\n");
  std::printf("stage timeline (virtual time):\n");
  for (const auto& stage : optimal.timeline) {
    std::printf("  %8.2f .. %8.2f s  %s\n", stage.start_s, stage.end_s,
                stage.label.c_str());
  }
  std::printf("\ncontrol phase: %.3f s, data path: %.2f s, total: %.2f s\n",
              optimal.control_s, optimal.data_path_s, optimal.total_s);

  // The naive alternative: everything at the data source, render at client.
  const auto naive = run(dataset, std::vector<int>{5, 5, 5, 0, 0});
  if (naive.completed) {
    std::printf("\nnaive client/server mapping would have taken %.2f s "
                "(%.1fx slower)\n", naive.data_path_s,
                naive.data_path_s / optimal.data_path_s);
  }
  return 0;
}
