// Steering the Sod shock tube mid-run — the paper's Fig. 7 instrumentation
// pattern, written exactly like the VH1 main loop:
//
//   RICSA_StartupSimulationServer(); RICSA_WaitAcceptConnection();
//   do { sweepx; sweepy; sweepz;
//        RICSA_PushDataToVizNode();
//        RICSA_ReceiveHandleMessage();
//        if (new parameters) RICSA_UpdateSimulationParameters();
//   } while (cycle != end);
//
// A "client" thread watches the computation and, halfway through, steers the
// adiabatic index gamma — visibly changing the shock position. Frames are
// written as PPM images; the final density profile is compared against the
// exact Riemann solution for both the steered and unsteered runs.
//
// Run:  ./shock_tube_steering [frames_dir]
#include <cstdio>
#include <string>
#include <thread>

#include "hydro/riemann_exact.hpp"
#include "hydro/steerable.hpp"
#include "steering/executor.hpp"
#include "steering/server.hpp"

using namespace ricsa;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : ".";
  const int total_cycles = 120;

  hydro::HydroSimulation sim(hydro::HydroSimulation::Kind::kSod, 200);
  steering::SimulationServer* server =
      steering::RICSA_StartupSimulationServer(&sim);

  // --- Client thread: attach, watch, steer -------------------------------
  std::thread client([server] {
    server->post(steering::make_simulation_request(1, "sod_shock_tube",
                                                   "density"));
    // Steer gamma once the shock is established (applied by the simulation
    // loop at its next cycle boundary).
    server->post(steering::make_steering_params(1, {{"gamma", 1.67}}));
  });

  // --- Simulation main loop (Fig. 7) --------------------------------------
  steering::RICSA_WaitAcceptConnection(server);
  client.join();
  std::printf("client connected; running %d cycles...\n", total_cycles);

  int frames = 0;
  bool steered = false;
  bool params_pending = false;
  while (sim.cycle() < total_cycles) {
    sim.advance(1);  // sweepx; sweepy; sweepz

    if (sim.cycle() % 20 == 0) {
      steering::RICSA_PushDataToVizNode(server);
      const auto frame = server->take_frame();
      cost::VizRequest req;
      req.technique = cost::VizRequest::Technique::kRayCast;
      req.image_width = 256;
      req.image_height = 64;
      const auto exec = steering::execute_pipeline(frame->snapshot, req);
      const std::string path =
          dir + "/sod_" + std::to_string(sim.cycle()) + ".ppm";
      exec.image.write_ppm(path);
      ++frames;
      std::printf("cycle %3d  t=%.4f  gamma=%.2f  frame -> %s\n", sim.cycle(),
                  sim.time(), sim.parameters().at("gamma"), path.c_str());
    }

    if (steering::RICSA_ReceiveHandleMessage(server) == 1) {
      params_pending = true;  // queued; we choose when to fold them in
    }
    if (params_pending && sim.cycle() >= total_cycles / 2 && !steered) {
      steering::RICSA_UpdateSimulationParameters(server);
      steered = true;
      std::printf(">>> steering applied at cycle %d: gamma -> %.2f\n",
                  sim.cycle(), sim.parameters().at("gamma"));
    }
  }

  // --- Validation: the unsteered half obeys the gamma=1.4 exact solution --
  hydro::HydroSimulation reference(hydro::HydroSimulation::Kind::kSod, 200);
  while (reference.time() < 0.2) reference.advance(1);
  std::vector<double> exact(200);
  hydro::sod_exact_profile(reference.time(), 0.5, 200, 1.4, exact.data(),
                           nullptr, nullptr);
  const auto rho = reference.snapshot("density");
  double l1 = 0;
  for (int i = 0; i < 200; ++i) {
    l1 += std::abs(rho.at(i, 0, 0) - exact[static_cast<std::size_t>(i)]);
  }
  std::printf("\nunsteered solver vs exact Riemann solution at t=0.2: "
              "mean |error| = %.4f\n", l1 / 200.0);
  std::printf("wrote %d frames; steering %s\n", frames,
              steered ? "took effect mid-run" : "was not applied (!)");

  steering::RICSA_ShutdownSimulationServer(server);
  return steered ? 0 : 1;
}
