// Watch the Robbins-Monro control channel stabilize: a live goodput trace of
// the Section 3 transport against an AIMD (TCP-like) channel on the same
// lossy link, including a mid-stream target change (steering the control
// stream to a new rate).
//
// Run:  ./transport_stability [loss] [target_KBps]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "netsim/network.hpp"
#include "transport/datagram_transport.hpp"
#include "transport/rate_controller.hpp"

using namespace ricsa;

int main(int argc, char** argv) {
  const double loss = argc > 1 ? std::atof(argv[1]) : 0.02;
  const double target = (argc > 2 ? std::atof(argv[2]) : 500.0) * 1e3;

  netsim::Simulator sim;
  netsim::Network net(sim, 0xF00D);
  const auto a = net.add_node({.name = "sender"});
  const auto b = net.add_node({.name = "receiver"});
  netsim::LinkConfig link;
  link.bandwidth_Bps = 2e6;
  link.prop_delay_s = 0.02;
  link.random_loss = loss;
  net.add_duplex(a, b, link);

  transport::FlowConfig fc;
  const int d1 = transport::allocate_port(), a1 = transport::allocate_port();
  const int d2 = transport::allocate_port(), a2 = transport::allocate_port();
  transport::TransportReceiver rx_rmsa(net, b, d1, a, a1, fc);
  transport::TransportReceiver rx_aimd(net, b, d2, a, a2, fc);

  transport::RmsaConfig rc;
  rc.target_Bps = target;
  rc.gain_floor = 0.05;  // keep tracking after the mid-stream retarget
  auto rmsa_ctrl = std::make_unique<transport::RmsaController>(rc);
  transport::RmsaController* rmsa = rmsa_ctrl.get();
  transport::TransportSender tx_rmsa(net, a, b, d1, a1, fc, std::move(rmsa_ctrl));
  transport::TransportSender tx_aimd(
      net, a, b, d2, a2, fc,
      std::make_unique<transport::AimdController>(transport::AimdConfig{}));

  tx_rmsa.start_stream();
  tx_aimd.start_stream();

  std::printf("link: 2 MB/s, %.1f%% random loss; RMSA target g* = %.0f KB/s "
              "(doubles at t=30)\n\n", loss * 100, target / 1e3);
  std::printf("%6s %14s %14s %12s\n", "t (s)", "RMSA (KB/s)", "AIMD (KB/s)",
              "RMSA sleep");
  for (double t = 2.0; t <= 60.0; t += 2.0) {
    sim.run_until(t);
    if (t == 30.0) {
      rmsa->set_target(2.0 * target);
      std::printf("%6s %14s %14s %12s\n", "--", "-- g* doubled --", "", "");
    }
    std::printf("%6.0f %14.0f %14.0f %9.2f ms\n", t,
                rx_rmsa.goodput(sim.now()) / 1e3,
                rx_aimd.goodput(sim.now()) / 1e3,
                tx_rmsa.sleep_time() * 1e3);
  }
  tx_rmsa.stop();
  tx_aimd.stop();

  std::printf("\nsender stats: RMSA %llu datagrams (%llu retx), AIMD %llu "
              "datagrams (%llu retx)\n",
              static_cast<unsigned long long>(tx_rmsa.stats().datagrams_sent),
              static_cast<unsigned long long>(tx_rmsa.stats().retransmissions),
              static_cast<unsigned long long>(tx_aimd.stats().datagrams_sent),
              static_cast<unsigned long long>(tx_aimd.stats().retransmissions));
  return 0;
}
