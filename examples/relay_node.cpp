// Relay fan-out node: re-publishes an upstream RICSA origin (or another
// relay) so downstream browsers and relays subscribe here instead of
// loading the origin. Build depth-D trees by chaining relays:
//
//   ./web_dashboard 8000 600 &
//   ./relay_node --upstream-port 8000 --port 8001 --relay-id edge-a &
//   ./relay_node --upstream-port 8001 --port 8002 --relay-id leaf-a &
//
// Each tier multiplies capacity: the origin carries one connection per
// relay instead of one per browser, and frame bodies are forwarded
// pre-encoded — a relay never decodes a pixel. /api/stats shows the relay
// identity, its upstream chain, and the forwarding counters.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "relay/relay.hpp"
#include "util/strings.hpp"

using namespace ricsa;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

void usage(const char* argv0) {
  std::printf(
      "usage: %s --upstream-port N [options]\n"
      "  --upstream-port N   origin or upstream relay port (required)\n"
      "  --port N            local HTTP port (default: ephemeral)\n"
      "  --views a,b,c       views to relay (default: main)\n"
      "  --relay-id ID       identity in X-Relay-Path hop headers\n"
      "  --transport T       auto | sse | poll (default: auto)\n"
      "  --max-depth N       relay chain depth cap (default: 4)\n"
      "  --seconds S         run time; 0 = until SIGINT (default: 0)\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  relay::RelayNodeConfig config;
  config.subscriber.relay_id = "relay";
  double seconds = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (flag == "--help" || flag == "-h") {
      usage(argv[0]);
      return 0;
    }
    if (value == nullptr) {
      std::fprintf(stderr, "missing value for %s\n", flag.c_str());
      usage(argv[0]);
      return 2;
    }
    if (flag == "--upstream-port") {
      config.subscriber.upstream_port = std::atoi(value);
    } else if (flag == "--port") {
      config.port = std::atoi(value);
    } else if (flag == "--views") {
      config.subscriber.views.clear();
      for (const std::string& view : util::split(value, ',')) {
        if (!view.empty()) config.subscriber.views.push_back(view);
      }
    } else if (flag == "--relay-id") {
      config.subscriber.relay_id = value;
    } else if (flag == "--transport") {
      config.subscriber.transport = value;
    } else if (flag == "--max-depth") {
      config.subscriber.max_depth =
          static_cast<std::size_t>(std::atoi(value));
    } else if (flag == "--seconds") {
      seconds = std::atof(value);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      usage(argv[0]);
      return 2;
    }
    ++i;
  }
  if (config.subscriber.upstream_port <= 0) {
    usage(argv[0]);
    return 2;
  }
  if (config.subscriber.views.empty()) {
    config.subscriber.views.push_back("main");
  }

  relay::RelayNode node(config);
  const int bound = node.start();
  std::printf("ricsa relay '%s' on http://localhost:%d/ -> upstream :%d "
              "(transport %s, depth cap %zu)\n",
              config.subscriber.relay_id.c_str(), bound,
              config.subscriber.upstream_port,
              config.subscriber.transport.c_str(),
              config.subscriber.max_depth);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  const auto start = std::chrono::steady_clock::now();
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (node.subscriber().any_failed()) {
      std::fprintf(stderr, "relay subscription failed permanently "
                           "(cycle/depth/rejection); exiting\n");
      node.stop();
      return 1;
    }
    if (seconds > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                .count() >= seconds) {
      break;
    }
  }
  node.stop();
  return 0;
}
