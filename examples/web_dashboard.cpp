// The Ajax web dashboard (Sections 2 & 5.1): a live stellar-wind bowshock
// simulation monitored and steered from any browser.
//
// Run:  ./web_dashboard [port] [seconds]
//
// Open http://localhost:<port>/ — the image and status panel update over a
// Server-Sent Events push stream (/api/stream; the dashboard falls back to
// XHR long-polling when EventSource is unavailable), and only the elements
// with new information refresh; steering posts apply on the next simulation
// cycle. With no arguments the demo also drives itself for 10 seconds with
// an emulated browser, so it is CI-safe.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "util/json.hpp"
#include "web/frontend.hpp"

using namespace ricsa;

int main(int argc, char** argv) {
  const int port = argc > 1 ? std::atoi(argv[1]) : 0;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 10.0;

  web::FrontEndConfig config;
  config.session.simulation = hydro::HydroSimulation::Kind::kBowshock;
  config.session.resolution = 40;
  config.session.viz.technique = cost::VizRequest::Technique::kRayCast;
  config.session.viz.image_width = 192;
  config.session.viz.image_height = 192;
  config.session.cycles_per_frame = 1;
  config.frame_interval_s = 0.25;
  // Fine dirty-rect tiles for the 192x192 render: frame-to-frame changes
  // ship as a handful of tiles onto the dashboard's canvas instead of a
  // full PNG per frame.
  config.tile_size = 24;
  // Bound raw-framebuffer retention: tile encodes stay for the whole
  // window, the pixels only for the frames a live skipper can anchor on.
  config.raw_window = 32;
  config.port = port;
  // A second published view: the same simulation step rendered as an
  // isosurface from another camera, into its own hub shard. The dashboard's
  // view selector (or ?view=density/iso on the API) switches streams.
  {
    web::ViewSpec iso;
    iso.name = "density/iso";
    iso.viz = config.session.viz;
    iso.viz.technique = cost::VizRequest::Technique::kIsosurface;
    iso.viz.isovalue = 1.1f;
    iso.camera.azimuth = 2.2f;
    iso.camera.elevation = 0.5f;
    config.views.push_back(iso);
  }

  web::AjaxFrontEnd frontend(config);
  const int bound = frontend.start();
  std::printf("RICSA Ajax front end listening on http://localhost:%d/\n", bound);
  std::printf("monitoring a %d^3 stellar-wind bowshock; steerable: gamma, "
              "cfl, mach, source_density, source_pressure\n", 40);
  std::printf("published views: main (raycast), density/iso (isosurface) — "
              "each its own hub shard\n");
  std::printf("browsers ride the SSE push stream (/api/stream) and fall back "
              "to long-poll (/api/poll) automatically\n\n");

  // Emulated browser: long-poll a few frames and steer the wind density, so
  // running the example headless still demonstrates the loop end-to-end.
  std::uint64_t since = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(seconds);
  int polls = 0;
  bool steered = false;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto response = web::http_get(
        bound, "/api/poll?since=" + std::to_string(since) + "&timeout=2");
    const auto body = util::Json::parse(response.body);
    const auto seq = static_cast<std::uint64_t>(body.at("seq").as_int());
    if (seq > since) {
      since = seq;
      ++polls;
      const auto& state = body.at("state");
      std::printf("frame %3llu  cycle %3lld  t=%.4f  mach=%.2f  vrt=%s\n",
                  static_cast<unsigned long long>(seq),
                  static_cast<long long>(state.at("cycle").as_int()),
                  state.at("sim_time").as_number(),
                  state.at("parameters").at("mach").as_number(),
                  state.at("vrt").as_string().substr(0, 40).c_str());
      if (polls == 5 && !steered) {
        web::http_post(bound, "/api/steer", "{\"mach\": 3.5}");
        std::printf(">>> steered inflow Mach number to 3.5 from the "
                    "'browser'\n");
        steered = true;
      }
      if (polls == 3) {
        // Peek at the second shard the way a second browser tab would.
        const auto iso = web::http_get(
            bound, "/api/poll?since=0&timeout=2&view=density%2Fiso");
        const auto iso_body = util::Json::parse(iso.body);
        std::printf(">>> view density/iso at frame %lld (own seq space)\n",
                    static_cast<long long>(iso_body.at("seq").as_int()));
      }
    }
  }

  std::printf("\nserved %llu HTTP requests; %d frames observed; steering %s\n",
              static_cast<unsigned long long>(polls + 1),
              polls, steered ? "applied" : "not applied");
  frontend.stop();
  return 0;
}
