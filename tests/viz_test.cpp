// Visualization module tests: cube tables (topology, 15 classes, winding),
// isosurface extraction correctness (sphere/torus geometry, watertightness,
// block culling, parallel == serial), streamlines against analytic flows,
// ray casting, rasterization, image codecs and filters.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>

#include "data/generators.hpp"
#include "data/octree.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"
#include "viz/cube_tables.hpp"
#include "viz/filters.hpp"
#include "viz/image.hpp"
#include "viz/isosurface.hpp"
#include "viz/mesh.hpp"
#include "viz/rasterizer.hpp"
#include "viz/raycast.hpp"
#include "viz/streamline.hpp"
#include "viz/tiles.hpp"

namespace d = ricsa::data;
namespace v = ricsa::viz;

// ----------------------------------------------------------- CubeTables ----

TEST(CubeTables, FifteenMarchingCubesClasses) {
  const auto& t = v::cube_tables();
  // "each of 15 cases including the one with no isosurface" (Section 4.4.1).
  EXPECT_EQ(t.class_count, 15);
  EXPECT_EQ(t.class_representative.size(), 15u);
}

TEST(CubeTables, EmptyAndFullConfigsProduceNothing) {
  const auto& t = v::cube_tables();
  EXPECT_TRUE(t.triangles[0].empty());
  EXPECT_TRUE(t.triangles[255].empty());
  EXPECT_EQ(t.mc_class[0], t.mc_class[255]);  // complement symmetry
}

TEST(CubeTables, ComplementSymmetryOfClasses) {
  const auto& t = v::cube_tables();
  for (int c = 0; c < 256; ++c) {
    EXPECT_EQ(t.mc_class[static_cast<std::size_t>(c)],
              t.mc_class[static_cast<std::size_t>((~c) & 0xFF)]);
  }
}

TEST(CubeTables, EveryNonTrivialConfigHasTriangles) {
  const auto& t = v::cube_tables();
  for (int c = 1; c < 255; ++c) {
    EXPECT_FALSE(t.triangles[static_cast<std::size_t>(c)].empty())
        << "config " << c;
  }
}

TEST(CubeTables, NineteenSegments) {
  const auto& t = v::cube_tables();
  std::set<std::pair<int, int>> unique(t.segments.begin(), t.segments.end());
  EXPECT_EQ(unique.size(), 19u);
  for (const auto& [a, b] : t.segments) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 8);
    EXPECT_GE(b, 0);
    EXPECT_LT(b, 8);
    EXPECT_LT(a, b);
  }
}

TEST(CubeTables, TrianglesOnlyUseCutSegments) {
  // Every triangle vertex must sit on a segment whose endpoints straddle the
  // isosurface (one corner in, one out).
  const auto& t = v::cube_tables();
  for (int c = 0; c < 256; ++c) {
    for (const auto& tri : t.triangles[static_cast<std::size_t>(c)]) {
      for (const int s : tri) {
        const auto [a, b] = t.segments[static_cast<std::size_t>(s)];
        const bool a_in = (c >> a) & 1;
        const bool b_in = (c >> b) & 1;
        EXPECT_NE(a_in, b_in) << "config " << c << " uses uncut segment";
      }
    }
  }
}

// ----------------------------------------------------------------- Mesh ----

TEST(Mesh, AddAndAppend) {
  v::TriangleMesh m;
  m.add_triangle({0, 0, 0}, {1, 0, 0}, {0, 1, 0});
  EXPECT_EQ(m.triangle_count(), 1u);
  EXPECT_EQ(m.vertex_count(), 3u);
  EXPECT_NEAR(m.normals()[0].z, 1.0f, 1e-6f);
  v::TriangleMesh m2;
  m2.add_triangle({0, 0, 1}, {1, 0, 1}, {0, 1, 1});
  m.append(m2);
  EXPECT_EQ(m.triangle_count(), 2u);
  EXPECT_EQ(m.indices().back(), 5u);
  EXPECT_NEAR(m.surface_area(), 1.0, 1e-6);
}

TEST(Mesh, WeldMergesSharedVertices) {
  v::TriangleMesh m;
  m.add_triangle({0, 0, 0}, {1, 0, 0}, {0, 1, 0});
  m.add_triangle({1, 0, 0}, {1, 1, 0}, {0, 1, 0});
  const v::TriangleMesh w = m.welded();
  EXPECT_EQ(w.vertex_count(), 4u);  // 6 soup vertices -> 4 unique
  EXPECT_EQ(w.triangle_count(), 2u);
}

TEST(Mesh, BoundsAndEmpty) {
  v::TriangleMesh m;
  const auto [lo0, hi0] = m.bounds();
  EXPECT_FLOAT_EQ(lo0.x, 0);
  m.add_triangle({-1, 2, 0}, {3, 2, 0}, {0, 5, -2});
  const auto [lo, hi] = m.bounds();
  EXPECT_FLOAT_EQ(lo.x, -1);
  EXPECT_FLOAT_EQ(hi.y, 5);
  EXPECT_FLOAT_EQ(lo.z, -2);
}

// ------------------------------------------------------------ Isosurface ----

TEST(Isosurface, SphereVerticesLieOnSphere) {
  const float radius = 10.0f;
  const d::ScalarVolume vol = d::make_sphere(33, radius);
  const auto result = v::extract_isosurface(vol, 0.0f);
  ASSERT_GT(result.mesh.triangle_count(), 100u);
  const float c = 16.0f;
  for (const auto& p : result.mesh.positions()) {
    const float r = (p - d::Vec3{c, c, c}).norm();
    EXPECT_NEAR(r, radius, 0.35f);  // within sub-cell interpolation error
  }
}

TEST(Isosurface, SphereAreaApproximates4PiR2) {
  const float radius = 10.0f;
  const d::ScalarVolume vol = d::make_sphere(33, radius);
  const auto result = v::extract_isosurface(vol, 0.0f);
  const double expected = 4.0 * M_PI * radius * radius;
  EXPECT_NEAR(result.mesh.surface_area(), expected, 0.06 * expected);
}

TEST(Isosurface, SphereSurfaceIsClosed) {
  const d::ScalarVolume vol = d::make_sphere(21, 6.0f);
  const auto result = v::extract_isosurface(vol, 0.0f);
  EXPECT_TRUE(result.mesh.is_closed())
      << "tetrahedral decomposition must produce a watertight surface";
}

TEST(Isosurface, TorusSurfaceIsClosedAndAreaMatches) {
  const d::ScalarVolume vol = d::make_torus(41, 10.0f, 4.0f);
  const auto result = v::extract_isosurface(vol, 0.0f);
  EXPECT_TRUE(result.mesh.is_closed());
  const double expected = 4.0 * M_PI * M_PI * 10.0 * 4.0;  // 4 pi^2 R r
  EXPECT_NEAR(result.mesh.surface_area(), expected, 0.08 * expected);
}

TEST(Isosurface, NormalsPointOutwardOnSphere) {
  const d::ScalarVolume vol = d::make_sphere(25, 8.0f);
  const auto result = v::extract_isosurface(vol, 0.0f);
  const float c = 12.0f;
  std::size_t outward = 0;
  for (std::size_t i = 0; i < result.mesh.vertex_count(); ++i) {
    const d::Vec3 radial =
        (result.mesh.positions()[i] - d::Vec3{c, c, c}).normalized();
    if (result.mesh.normals()[i].dot(radial) > 0) ++outward;
  }
  // Field is R - |p|: gradient points inward, so normals = -gradient point
  // outward; all vertices must agree.
  EXPECT_EQ(outward, result.mesh.vertex_count());
}

TEST(Isosurface, EmptyWhenIsovalueOutsideRange) {
  const d::ScalarVolume vol = d::make_sphere(17, 5.0f);
  const auto result = v::extract_isosurface(vol, 1e6f);
  EXPECT_EQ(result.mesh.triangle_count(), 0u);
  EXPECT_EQ(result.stats.blocks_active, 0u);
  EXPECT_EQ(result.stats.cells_scanned, 0u);  // octree culls everything
}

TEST(Isosurface, BlockCullingScansOnlyActiveBlocks) {
  const d::ScalarVolume vol = d::make_sphere(33, 8.0f);
  v::IsosurfaceOptions opt;
  opt.block_size = 4;  // fine enough that corner blocks miss the sphere
  const auto result = v::extract_isosurface(vol, 0.0f, opt);
  EXPECT_GT(result.stats.blocks_active, 0u);
  EXPECT_LT(result.stats.blocks_active, result.stats.blocks_total);
  EXPECT_LT(result.stats.cells_scanned, 32u * 32 * 32);
}

TEST(Isosurface, ParallelMatchesSerial) {
  const d::ScalarVolume vol = d::make_jet(40, 40, 40);
  const auto serial = v::extract_isosurface(vol, 0.5f);
  ricsa::util::ThreadPool pool(4);
  v::IsosurfaceOptions opt;
  opt.pool = &pool;
  const auto parallel = v::extract_isosurface(vol, 0.5f, opt);
  EXPECT_EQ(parallel.mesh.triangle_count(), serial.mesh.triangle_count());
  EXPECT_EQ(parallel.stats.cells_scanned, serial.stats.cells_scanned);
  EXPECT_NEAR(parallel.mesh.surface_area(), serial.mesh.surface_area(), 1e-3);
}

TEST(Isosurface, ClassHistogramAccountsAllCells) {
  const d::ScalarVolume vol = d::make_sphere(17, 5.0f);
  const auto result = v::extract_isosurface(vol, 0.0f);
  std::uint64_t histo_cells = 0;
  for (const auto c : result.stats.class_cells) histo_cells += c;
  EXPECT_EQ(histo_cells, result.stats.cells_scanned);
  std::uint64_t histo_tris = 0;
  for (const auto c : result.stats.class_triangles) histo_tris += c;
  EXPECT_EQ(histo_tris, result.stats.triangles);
  EXPECT_EQ(result.stats.triangles, result.mesh.triangle_count());
}

TEST(Isosurface, RampProducesPlane) {
  const d::ScalarVolume vol = d::make_ramp(17, 9, 9);
  const auto result = v::extract_isosurface(vol, 7.5f);
  ASSERT_GT(result.mesh.triangle_count(), 0u);
  for (const auto& p : result.mesh.positions()) {
    EXPECT_NEAR(p.x, 7.5f, 1e-5f);  // plane x = 7.5
  }
  // Plane area = (ny-1) * (nz-1) cells.
  EXPECT_NEAR(result.mesh.surface_area(), 64.0, 1e-3);
}

TEST(Isosurface, ReusedDecompositionGivesSameResult) {
  const d::ScalarVolume vol = d::make_rage(24, 24, 24);
  const d::BlockDecomposition blocks(vol, 8);
  const auto a = v::extract_isosurface(vol, 0.6f);
  const auto b = v::extract_isosurface(vol, blocks, 0.6f);
  EXPECT_EQ(a.mesh.triangle_count(), b.mesh.triangle_count());
}

// ----------------------------------------------------------- Streamline ----

TEST(Streamline, UniformFlowTracesStraightLine) {
  const d::VectorVolume field = d::make_uniform_flow(32);
  v::StreamlineOptions opt;
  opt.step = 0.5f;
  const auto set = v::trace_streamlines(field, {{1, 16, 16}}, opt);
  ASSERT_EQ(set.lines.size(), 1u);
  const auto& line = set.lines[0];
  ASSERT_GT(line.size(), 10u);
  for (const auto& p : line) {
    EXPECT_NEAR(p.y, 16.0f, 1e-4f);
    EXPECT_NEAR(p.z, 16.0f, 1e-4f);
  }
  // Exits the +x face: final x close to the boundary.
  EXPECT_GT(line.back().x, 29.0f);
}

TEST(Streamline, RotationFieldKeepsRadius) {
  // RK4 on solid-body rotation preserves radius to high accuracy.
  const d::VectorVolume field = d::make_rotation(33);
  v::StreamlineOptions opt;
  opt.step = 0.02f;  // small angular step
  opt.max_steps = 2000;
  const auto set = v::trace_streamlines(field, {{26, 16, 16}}, opt);
  const float r0 = 10.0f;
  for (const auto& p : set.lines[0]) {
    const float r = std::hypot(p.x - 16.0f, p.y - 16.0f);
    EXPECT_NEAR(r, r0, 0.05f);
  }
}

TEST(Streamline, AdvectionCountMatchesOptions) {
  const d::VectorVolume field = d::make_rotation(33);
  v::StreamlineOptions opt;
  opt.max_steps = 50;
  opt.step = 0.01f;
  const auto set = v::trace_streamlines(field, v::grid_seeds(field, 2), opt);
  EXPECT_EQ(set.lines.size(), 8u);
  // Interior rotation seeds never exit: every seed runs max_steps.
  EXPECT_EQ(set.advection_steps, 8u * 50u);
}

TEST(Streamline, StopsAtStagnationPoint) {
  const d::VectorVolume field = d::make_rotation(17);  // center velocity = 0
  v::StreamlineOptions opt;
  opt.min_speed = 1e-3f;
  const auto set = v::trace_streamlines(field, {{8, 8, 8}}, opt);
  EXPECT_LE(set.lines[0].size(), 2u);
}

TEST(Streamline, GridSeedsInsideField) {
  const d::VectorVolume field = d::make_uniform_flow(16);
  const auto seeds = v::grid_seeds(field, 3);
  EXPECT_EQ(seeds.size(), 27u);
  for (const auto& s : seeds) {
    EXPECT_TRUE(field.inside(s.x, s.y, s.z));
  }
}

// -------------------------------------------------------------- RayCast ----

TEST(RayCast, ProducesNonEmptyImageAndCounts) {
  const d::ScalarVolume vol = d::make_rage(32, 32, 32);
  const auto tf = v::TransferFunction::preset(0.0f, 1.2f);
  v::RayCastOptions opt;
  opt.width = 64;
  opt.height = 64;
  const auto result = v::raycast(vol, tf, opt);
  EXPECT_GT(result.rays, 1000u);
  EXPECT_GT(result.samples, result.rays);  // multiple samples per ray
  // Center pixel must differ from the background (the blast shell shows).
  EXPECT_NE(result.image.at(32, 32), opt.background);
}

TEST(RayCast, EarlyTerminationReducesSamples) {
  const d::ScalarVolume vol = d::make_viswoman(32, 32, 32);
  v::TransferFunction tf({{0.0f, 1, 1, 1, 0.0f}, {0.9f, 1, 1, 1, 0.9f}});
  v::RayCastOptions opt;
  opt.width = 48;
  opt.height = 48;
  const auto full = v::raycast(vol, tf, opt);
  opt.early_termination = true;
  opt.opacity_cutoff = 0.5f;
  const auto early = v::raycast(vol, tf, opt);
  EXPECT_LT(early.samples, full.samples);
  EXPECT_EQ(early.rays, full.rays);
}

TEST(RayCast, ParallelMatchesSerial) {
  const d::ScalarVolume vol = d::make_jet(24, 24, 24);
  const auto tf = v::TransferFunction::preset(0.0f, 1.3f);
  v::RayCastOptions opt;
  opt.width = 40;
  opt.height = 40;
  const auto serial = v::raycast(vol, tf, opt);
  ricsa::util::ThreadPool pool(4);
  opt.pool = &pool;
  const auto parallel = v::raycast(vol, tf, opt);
  EXPECT_EQ(parallel.samples, serial.samples);
  EXPECT_EQ(parallel.image.pixels(), serial.image.pixels());
}

TEST(RayCast, TransferFunctionInterpolation) {
  v::TransferFunction tf({{0.0f, 0, 0, 0, 0.0f}, {1.0f, 1, 0.5f, 0, 1.0f}});
  const auto mid = tf.sample(0.5f);
  EXPECT_NEAR(mid.r, 0.5f, 1e-5f);
  EXPECT_NEAR(mid.g, 0.25f, 1e-5f);
  EXPECT_NEAR(mid.a, 0.5f, 1e-5f);
  EXPECT_NEAR(tf.sample(-5.0f).a, 0.0f, 1e-6f);  // clamped
  EXPECT_NEAR(tf.sample(5.0f).a, 1.0f, 1e-6f);
  EXPECT_THROW(v::TransferFunction({}), std::invalid_argument);
  EXPECT_THROW(
      v::TransferFunction({{1.0f, 0, 0, 0, 0}, {0.0f, 0, 0, 0, 0}}),
      std::invalid_argument);
}

// ------------------------------------------------------------ Rasterizer ----

TEST(Rasterizer, Mat4Basics) {
  const auto id = v::Mat4::identity();
  const d::Vec3 p{1, 2, 3};
  const d::Vec3 q = id.transform(p);
  EXPECT_FLOAT_EQ(q.x, 1);
  const auto t = v::Mat4::translation({10, 0, 0});
  EXPECT_FLOAT_EQ(t.transform(p).x, 11);
  const auto rz = v::Mat4::rotation_z(static_cast<float>(M_PI / 2));
  const d::Vec3 r = rz.transform({1, 0, 0});
  EXPECT_NEAR(r.x, 0, 1e-6f);
  EXPECT_NEAR(r.y, 1, 1e-6f);
  // Composition: translate then rotate vs rotate then translate differ.
  const auto tr = t * rz;
  const auto rt = rz * t;
  EXPECT_NEAR(tr.transform({1, 0, 0}).x, 10, 1e-5f);
  EXPECT_NEAR(rt.transform({1, 0, 0}).y, 11, 1e-5f);
}

TEST(Rasterizer, LookAtPutsTargetOnAxis) {
  const auto view = v::Mat4::look_at({5, 5, 5}, {0, 0, 0}, {0, 0, 1});
  const d::Vec3 target_view = view.transform({0, 0, 0});
  EXPECT_NEAR(target_view.x, 0, 1e-5f);
  EXPECT_NEAR(target_view.y, 0, 1e-5f);
  EXPECT_LT(target_view.z, 0);  // in front of the camera (-z)
}

TEST(Rasterizer, RendersSphereMeshToImage) {
  const d::ScalarVolume vol = d::make_sphere(25, 8.0f);
  const auto iso = v::extract_isosurface(vol, 0.0f);
  v::RenderOptions opt;
  opt.width = 64;
  opt.height = 64;
  const auto result = v::render_mesh(iso.mesh, opt);
  EXPECT_GT(result.triangles_drawn, 100u);
  EXPECT_GT(result.pixels_shaded, 200u);
  EXPECT_NE(result.image.at(32, 32), opt.background);  // sphere at center
  EXPECT_EQ(result.image.at(1, 1), opt.background);    // corner is empty
}

TEST(Rasterizer, EmptyMeshRendersBackground) {
  const v::TriangleMesh empty;
  const auto result = v::render_mesh(empty);
  EXPECT_EQ(result.triangles_drawn, 0u);
  EXPECT_EQ(result.image.at(0, 0), v::RenderOptions{}.background);
}

TEST(Rasterizer, ZBufferOcclusion) {
  // Two overlapping triangles; the nearer one must win the overlap pixels.
  v::TriangleMesh m;
  m.add_triangle({-1, -1, 0}, {1, -1, 0}, {0, 1, 0});   // far (z=0 plane)
  m.add_triangle({-1, -1, 1}, {1, -1, 1}, {0, 1, 1});   // near (z=1)
  v::RenderOptions opt;
  opt.width = 32;
  opt.height = 32;
  opt.azimuth = 0.0f;
  opt.elevation = 1.35f;  // look down z
  opt.base_color = {255, 0, 0, 255};
  const auto result = v::render_mesh(m, opt);
  EXPECT_EQ(result.triangles_drawn, 2u);
  EXPECT_GT(result.pixels_shaded, 0u);
}

// ----------------------------------------------------------------- Image ----

TEST(Image, PixelAccessAndBounds) {
  v::Image img(8, 4);
  img.at(7, 3) = {1, 2, 3, 4};
  EXPECT_EQ(img.at(7, 3), (v::Rgba{1, 2, 3, 4}));
  EXPECT_THROW(img.at(8, 0), std::out_of_range);
  EXPECT_THROW(v::Image(0, 5), std::invalid_argument);
  EXPECT_EQ(img.bytes(), 8u * 4u * 4u);
}

TEST(Image, Crc32KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (classic check value).
  const char* s = "123456789";
  EXPECT_EQ(v::crc32(reinterpret_cast<const std::uint8_t*>(s), 9), 0xCBF43926u);
}

TEST(Image, Adler32KnownVector) {
  // Adler-32("Wikipedia") = 0x11E60398.
  const char* s = "Wikipedia";
  EXPECT_EQ(v::adler32(reinterpret_cast<const std::uint8_t*>(s), 9),
            0x11E60398u);
}

TEST(Image, PngStructureValid) {
  v::Image img(16, 8, {200, 100, 50, 255});
  const auto png = img.encode_png();
  ASSERT_GT(png.size(), 50u);
  // Signature.
  EXPECT_EQ(png[0], 0x89);
  EXPECT_EQ(png[1], 'P');
  // IHDR dims big-endian at offset 16.
  EXPECT_EQ(png[16 + 3], 16);
  EXPECT_EQ(png[20 + 3], 8);
  // IEND trailer.
  const std::string tail(png.end() - 8, png.end() - 4);
  EXPECT_EQ(tail, "IEND");
}

TEST(Image, DownsampleBoxFilter) {
  v::Image img(4, 4, {0, 0, 0, 255});
  // One 2x2 block all-white: its output pixel averages to white, the rest
  // stay black.
  for (int y = 0; y < 2; ++y) {
    for (int x = 0; x < 2; ++x) img.at(x, y) = {255, 255, 255, 255};
  }
  const v::Image half = v::downsample(img, 2);
  EXPECT_EQ(half.width(), 2);
  EXPECT_EQ(half.height(), 2);
  EXPECT_EQ(half.at(0, 0), (v::Rgba{255, 255, 255, 255}));
  EXPECT_EQ(half.at(1, 1), (v::Rgba{0, 0, 0, 255}));

  // Non-divisible dims round up; edge blocks clamp.
  const v::Image odd = v::downsample(v::Image(5, 3, {10, 20, 30, 255}), 2);
  EXPECT_EQ(odd.width(), 3);
  EXPECT_EQ(odd.height(), 2);
  EXPECT_EQ(odd.at(2, 1), (v::Rgba{10, 20, 30, 255}));

  // Factor 1 is the identity; bad factors throw.
  EXPECT_EQ(v::downsample(img, 1).pixels(), img.pixels());
  EXPECT_THROW(v::downsample(img, 0), std::invalid_argument);
}

TEST(Image, PngDecodeRoundTrip) {
  v::Image img(13, 7);  // odd dims: scanline stride and edge handling
  ricsa::util::Xoshiro256 rng(7);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      img.at(x, y) = {static_cast<std::uint8_t>(rng() & 0xFF),
                      static_cast<std::uint8_t>(rng() & 0xFF),
                      static_cast<std::uint8_t>(rng() & 0xFF),
                      static_cast<std::uint8_t>(rng() & 0xFF)};
    }
  }
  const v::Image back = v::Image::decode_png(img.encode_png());
  ASSERT_EQ(back.width(), img.width());
  ASSERT_EQ(back.height(), img.height());
  EXPECT_EQ(back.pixels(), img.pixels());

  // A frame-sized image spans multiple deflate blocks (>64 KB raw input).
  v::Image big(200, 120, {9, 8, 7, 255});
  big.at(199, 119) = {1, 2, 3, 4};
  EXPECT_EQ(v::Image::decode_png(big.encode_png()).pixels(), big.pixels());

  // Corruption is an error, not garbage pixels.
  auto bytes = img.encode_png();
  bytes[bytes.size() / 2] ^= 0xFF;
  EXPECT_THROW(v::Image::decode_png(bytes), std::runtime_error);
  EXPECT_THROW(v::Image::decode_png({1, 2, 3}), std::runtime_error);
}

TEST(Image, RleRoundTrip) {
  v::Image img(32, 16, {7, 7, 7, 255});
  img.at(5, 5) = {1, 2, 3, 255};
  img.at(31, 15) = {9, 9, 9, 9};
  const auto enc = v::rle_encode(img);
  EXPECT_LT(enc.size(), img.bytes());  // mostly-constant image compresses
  const v::Image back = v::rle_decode(enc, 32, 16);
  EXPECT_EQ(back.pixels(), img.pixels());
}

TEST(Image, RleRejectsBadInput) {
  EXPECT_THROW(v::rle_decode({1, 2, 3}, 4, 4), std::runtime_error);
  // Valid structure but wrong pixel count.
  v::Image img(4, 4);
  auto enc = v::rle_encode(img);
  EXPECT_THROW(v::rle_decode(enc, 8, 8), std::runtime_error);
}

// -------------------------------------------------------------- TileGrid ----

TEST(TileGrid, GridGeometryClampsEdgeTiles) {
  // 100x70 at tile 32: 4x3 grid, right column 4 px wide, bottom row 6 px
  // tall, corner tile 4x6 — partial edge tiles exactly cover the image.
  const v::TileGrid grid(100, 70, 32);
  EXPECT_EQ(grid.cols(), 4);
  EXPECT_EQ(grid.rows(), 3);
  EXPECT_EQ(grid.count(), 12u);
  EXPECT_EQ(grid.rect(0), (v::TileRect{0, 0, 32, 32}));
  EXPECT_EQ(grid.rect(3), (v::TileRect{96, 0, 4, 32}));
  EXPECT_EQ(grid.rect(8), (v::TileRect{0, 64, 32, 6}));
  EXPECT_EQ(grid.rect(11), (v::TileRect{96, 64, 4, 6}));
  std::size_t pixels = 0;
  for (std::size_t i = 0; i < grid.count(); ++i) {
    const v::TileRect r = grid.rect(i);
    pixels += static_cast<std::size_t>(r.w) * static_cast<std::size_t>(r.h);
  }
  EXPECT_EQ(pixels, 100u * 70u);
  EXPECT_THROW(grid.rect(12), std::out_of_range);
  EXPECT_THROW(v::TileGrid(0, 4, 8), std::invalid_argument);
  EXPECT_THROW(v::TileGrid(4, 4, 0), std::invalid_argument);
}

TEST(TileGrid, DiffGolden) {
  const v::TileGrid grid(100, 70, 32);
  v::Image a(100, 70, {1, 2, 3, 255});
  v::Image b = a;

  // No change => zero dirty tiles.
  EXPECT_EQ(grid.dirty_count(grid.diff(a, b)), 0u);
  EXPECT_EQ(grid.dirty_fraction(grid.diff(a, b)), 0.0);

  // A single changed pixel dirties exactly its one tile.
  b.at(40, 40) = {9, 9, 9, 255};
  auto dirty = grid.diff(a, b);
  EXPECT_EQ(grid.dirty_count(dirty), 1u);
  EXPECT_EQ(dirty[grid.cols() * 1 + 1], 1);  // tile (col 1, row 1)

  // A pixel in the clamped bottom-right corner tile dirties only it.
  v::Image c = a;
  c.at(99, 69) = {7, 7, 7, 255};
  dirty = grid.diff(a, c);
  EXPECT_EQ(grid.dirty_count(dirty), 1u);
  EXPECT_EQ(dirty[grid.count() - 1], 1);

  // Full change => every tile dirty, fraction 1 (the hub's full-frame
  // fallback trigger).
  const v::Image d(100, 70, {200, 200, 200, 255});
  dirty = grid.diff(a, d);
  EXPECT_EQ(grid.dirty_count(dirty), grid.count());
  EXPECT_DOUBLE_EQ(grid.dirty_fraction(dirty), 1.0);

  // Dimension mismatch is an error, not a bogus diff.
  EXPECT_THROW(grid.diff(a, v::Image(64, 64)), std::invalid_argument);
}

TEST(TileGrid, ExtractCompositeRoundTrip) {
  const v::TileGrid grid(100, 70, 32);
  v::Image src(100, 70);
  ricsa::util::Xoshiro256 rng(21);
  for (auto y = 0; y < src.height(); ++y) {
    for (auto x = 0; x < src.width(); ++x) {
      src.at(x, y) = {static_cast<std::uint8_t>(rng() & 0xFF),
                      static_cast<std::uint8_t>(rng() & 0xFF),
                      static_cast<std::uint8_t>(rng() & 0xFF), 255};
    }
  }
  // Extracting every tile and compositing onto a blank canvas reproduces
  // the source exactly — including the partial edge tiles.
  v::Image canvas(100, 70);
  for (std::size_t i = 0; i < grid.count(); ++i) {
    const v::TileRect r = grid.rect(i);
    const v::Image tile = v::TileGrid::extract(src, r);
    EXPECT_EQ(tile.width(), r.w);
    EXPECT_EQ(tile.height(), r.h);
    v::TileGrid::composite(canvas, tile, r.x, r.y);
  }
  EXPECT_EQ(canvas.pixels(), src.pixels());
  EXPECT_THROW(v::TileGrid::extract(src, {90, 0, 32, 32}),
               std::invalid_argument);
  EXPECT_THROW(v::TileGrid::composite(canvas, src, 1, 0),
               std::invalid_argument);
}

TEST(TileGrid, DirtyCountClampsOversizedSet) {
  // dirty_count must apply the same bounds clamp as dirty_fraction: set
  // entries beyond count() (a stale or mismatched TileSet) must not
  // overcount. Regression: the old static dirty_count summed every entry.
  const v::TileGrid grid(64, 64, 32);  // 2x2 = 4 tiles
  v::TileSet oversized(16, 1);         // 16 entries, all set
  EXPECT_EQ(grid.dirty_count(oversized), 4u);
  EXPECT_DOUBLE_EQ(grid.dirty_fraction(oversized), 1.0);
  // Undersized sets count only what exists, identically in both.
  v::TileSet undersized(2, 1);
  EXPECT_EQ(grid.dirty_count(undersized), 2u);
  EXPECT_DOUBLE_EQ(grid.dirty_fraction(undersized), 0.5);
}

TEST(TileGrid, ExtractCompositeOddSizeEdgeTiles) {
  // 37x23 at tile 8: right column 5 px wide, bottom row 7 px tall — the
  // memcpy row copies must handle strides that are not multiples of the
  // tile size. Round-trip through a canvas must be bit-identical.
  const v::TileGrid grid(37, 23, 8);
  v::Image src(37, 23);
  ricsa::util::Xoshiro256 rng(99);
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      src.at(x, y) = {static_cast<std::uint8_t>(rng() & 0xFF),
                      static_cast<std::uint8_t>(rng() & 0xFF),
                      static_cast<std::uint8_t>(rng() & 0xFF),
                      static_cast<std::uint8_t>(rng() & 0xFF)};
    }
  }
  v::Image canvas(37, 23);
  for (std::size_t i = 0; i < grid.count(); ++i) {
    const v::TileRect r = grid.rect(i);
    const v::Image tile = v::TileGrid::extract(src, r);
    // Spot-check the corner tile dimensions (5x7) really are partial.
    if (i == grid.count() - 1) {
      EXPECT_EQ(tile.width(), 5);
      EXPECT_EQ(tile.height(), 7);
    }
    v::TileGrid::composite(canvas, tile, r.x, r.y);
  }
  EXPECT_EQ(canvas.pixels(), src.pixels());
}

TEST(TileGrid, CoalesceMergesAdjacentDirtyTiles) {
  // 4x3 grid (100x70 at 32). Dirty an L-shape:
  //   X X . .
  //   X . . .
  //   . . . .
  // Greedy row-major: first rect spans tiles (0,0)-(1,0) (down-extension
  // fails because (1,1) is clean), second covers (0,1).
  const v::TileGrid grid(100, 70, 32);
  v::TileSet dirty(grid.count(), 0);
  dirty[0] = dirty[1] = 1;            // row 0, cols 0-1
  dirty[grid.cols() * 1 + 0] = 1;     // row 1, col 0
  const auto rects = grid.coalesce(dirty);
  ASSERT_EQ(rects.size(), 2u);
  EXPECT_EQ(rects[0], (v::TileRect{0, 0, 64, 32}));
  EXPECT_EQ(rects[1], (v::TileRect{0, 32, 32, 32}));

  // A full 2x2 block coalesces into one rectangle.
  v::TileSet block(grid.count(), 0);
  block[0] = block[1] = 1;
  block[grid.cols() + 0] = block[grid.cols() + 1] = 1;
  const auto merged = grid.coalesce(block);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], (v::TileRect{0, 0, 64, 64}));

  // Nothing dirty -> nothing emitted.
  EXPECT_TRUE(grid.coalesce(v::TileSet(grid.count(), 0)).empty());
}

TEST(TileGrid, CoalesceCoversExactlyTheDirtyTilesClampedAtEdges) {
  // Random dirty sets: the emitted rectangles must tile-align, stay
  // disjoint, and cover each dirty tile exactly once and no clean tile —
  // the invariant the hub's cursor-anchored rect closure depends on.
  const v::TileGrid grid(100, 70, 32);
  ricsa::util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    v::TileSet dirty(grid.count(), 0);
    for (auto& d : dirty) d = (rng() & 1) != 0 ? 1 : 0;
    std::vector<int> covered(grid.count(), 0);
    for (const v::TileRect& r : grid.coalesce(dirty)) {
      EXPECT_EQ(r.x % 32, 0);
      EXPECT_EQ(r.y % 32, 0);
      EXPECT_LE(r.x + r.w, 100);
      EXPECT_LE(r.y + r.h, 70);
      for (int row = r.y / 32; row <= (r.y + r.h - 1) / 32; ++row) {
        for (int col = r.x / 32; col <= (r.x + r.w - 1) / 32; ++col) {
          covered[static_cast<std::size_t>(row * grid.cols() + col)]++;
        }
      }
    }
    for (std::size_t i = 0; i < grid.count(); ++i) {
      EXPECT_EQ(covered[i], dirty[i] != 0 ? 1 : 0) << "tile " << i;
    }
  }
}

// --------------------------------------------------------------- Filters ----

TEST(Filters, DownsampleAveragesBlocks) {
  d::ScalarVolume vol(4, 4, 4);
  for (auto& x : vol.raw()) x = 2.0f;
  vol.at(0, 0, 0) = 10.0f;
  const auto down = v::downsample(vol, 2);
  EXPECT_EQ(down.nx(), 2);
  EXPECT_NEAR(down.at(0, 0, 0), 3.0f, 1e-5f);  // (10 + 7*2)/8
  EXPECT_NEAR(down.at(1, 1, 1), 2.0f, 1e-5f);
  EXPECT_THROW(v::downsample(vol, 0), std::invalid_argument);
}

TEST(Filters, DownsampleOddExtentsKeepLastSlab) {
  // 5x3x1 by 2: the old floor division dropped the last column/row; ceil
  // keeps them as clamped partial blocks averaged over the voxels present.
  d::ScalarVolume vol(5, 3, 1);
  for (auto& x : vol.raw()) x = 1.0f;
  vol.at(4, 2, 0) = 9.0f;  // corner voxel that floor division discarded
  const auto down = v::downsample(vol, 2);
  EXPECT_EQ(down.nx(), 3);
  EXPECT_EQ(down.ny(), 2);
  EXPECT_EQ(down.nz(), 1);
  // Corner output block covers exactly voxel (4,2,0).
  EXPECT_NEAR(down.at(2, 1, 0), 9.0f, 1e-5f);
  // Interior block still averages a full 2x2 neighbourhood.
  EXPECT_NEAR(down.at(0, 0, 0), 1.0f, 1e-5f);
}

TEST(Filters, DownsampleByEightReducesBytes) {
  const d::ScalarVolume vol = d::make_viswoman(32, 32, 32);
  const auto down = v::downsample(vol, 2);
  EXPECT_EQ(down.bytes() * 8, vol.bytes());
}

TEST(Filters, CropMatchesSource) {
  const d::ScalarVolume vol = d::make_jet(16, 16, 16);
  const auto sub = v::crop(vol, 4, 4, 4, 12, 12, 12);
  EXPECT_EQ(sub.nx(), 8);
  EXPECT_FLOAT_EQ(sub.at(0, 0, 0), vol.at(4, 4, 4));
  EXPECT_FLOAT_EQ(sub.at(7, 7, 7), vol.at(11, 11, 11));
  EXPECT_THROW(v::crop(vol, 0, 0, 0, 20, 8, 8), std::invalid_argument);
  EXPECT_THROW(v::crop(vol, 5, 0, 0, 5, 8, 8), std::invalid_argument);
}

TEST(Filters, NormalizeRange) {
  d::ScalarVolume vol(4, 4, 4);
  vol.at(0, 0, 0) = -5.0f;
  vol.at(3, 3, 3) = 15.0f;
  const auto norm = v::normalize(vol);
  const auto [lo, hi] = norm.min_max();
  EXPECT_FLOAT_EQ(lo, 0.0f);
  EXPECT_FLOAT_EQ(hi, 1.0f);
  // Constant volume -> all zeros, no division by zero.
  d::ScalarVolume flat(4, 4, 4);
  for (auto& x : flat.raw()) x = 3.0f;
  const auto nflat = v::normalize(flat);
  EXPECT_FLOAT_EQ(nflat.at(2, 2, 2), 0.0f);
}

TEST(Filters, SmoothReducesVariance) {
  d::ScalarVolume vol(16, 16, 16);
  ricsa::util::Xoshiro256 rng(9);
  for (auto& x : vol.raw()) x = static_cast<float>(rng.uniform());
  const auto smoothed = v::smooth(vol);
  double var_before = 0, var_after = 0, mean_b = 0, mean_a = 0;
  for (const float x : vol.raw()) mean_b += x;
  for (const float x : smoothed.raw()) mean_a += x;
  mean_b /= static_cast<double>(vol.voxels());
  mean_a /= static_cast<double>(vol.voxels());
  for (const float x : vol.raw()) var_before += (x - mean_b) * (x - mean_b);
  for (const float x : smoothed.raw()) var_after += (x - mean_a) * (x - mean_a);
  EXPECT_LT(var_after, 0.5 * var_before);
  EXPECT_NEAR(mean_a, mean_b, 0.01);  // mean preserved
}

TEST(Filters, BandPassZeroesOutOfRange) {
  d::ScalarVolume vol(2, 2, 2);
  vol.at(0, 0, 0) = 0.5f;
  vol.at(1, 0, 0) = 2.0f;
  vol.at(0, 1, 0) = -1.0f;
  const auto bp = v::band_pass(vol, 0.0f, 1.0f);
  EXPECT_FLOAT_EQ(bp.at(0, 0, 0), 0.5f);
  EXPECT_FLOAT_EQ(bp.at(1, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(bp.at(0, 1, 0), 0.0f);
}

TEST(TileGrid, RowsEqualMatchesMemcmpAtEverySizeAndFlipPosition) {
  // The vectorized row comparison must be bit-identical to memcmp == 0 for
  // every length across the 16-byte block boundaries and for a difference
  // planted at every byte position — including the scalar tail.
  std::vector<std::uint8_t> a(67);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  for (std::size_t n = 0; n <= a.size(); ++n) {
    std::vector<std::uint8_t> b = a;
    EXPECT_TRUE(v::detail::rows_equal(a.data(), b.data(), n)) << "len " << n;
    for (std::size_t flip = 0; flip < n; ++flip) {
      b = a;
      b[flip] ^= 0x80;
      EXPECT_EQ(v::detail::rows_equal(a.data(), b.data(), n),
                std::memcmp(a.data(), b.data(), n) == 0)
          << "len " << n << " flip " << flip;
      EXPECT_FALSE(v::detail::rows_equal(a.data(), b.data(), n));
      // A compare that stops before the planted difference sees equality.
      EXPECT_TRUE(v::detail::rows_equal(a.data(), b.data(), flip));
    }
  }
}

TEST(TileGrid, VectorizedDiffMatchesMemcmpReferenceOnRandomFrames) {
  // Randomized end-to-end check: diff() (vectorized rows) against a
  // straight per-row memcmp reference over odd dimensions that force
  // partial edge tiles and non-multiple-of-16 row segments.
  ricsa::util::Xoshiro256 rng(20260808u);
  const int width = 53;
  const int height = 37;
  const v::TileGrid grid(width, height, 16);
  for (int round = 0; round < 8; ++round) {
    v::Image before(width, height, {10, 20, 30, 255});
    v::Image after = before;
    const int changes = static_cast<int>(rng.uniform(0.0, 12.0));
    for (int c = 0; c < changes; ++c) {
      const int x = static_cast<int>(rng.uniform(0.0, width - 1.0));
      const int y = static_cast<int>(rng.uniform(0.0, height - 1.0));
      after.at(x, y).r = static_cast<std::uint8_t>(rng.uniform(0.0, 255.0));
    }
    const v::TileSet dirty = grid.diff(before, after);
    v::TileSet expected(grid.count(), 0);
    const v::Rgba* a = before.pixels().data();
    const v::Rgba* b = after.pixels().data();
    for (std::size_t i = 0; i < grid.count(); ++i) {
      const v::TileRect r = grid.rect(i);
      for (int y = r.y; y < r.y + r.h; ++y) {
        const std::size_t off = static_cast<std::size_t>(y) * width + r.x;
        if (std::memcmp(a + off, b + off, r.w * sizeof(v::Rgba)) != 0) {
          expected[i] = 1;
          break;
        }
      }
    }
    EXPECT_EQ(dirty, expected) << "round " << round;
  }
}
