// Cost-model tests (Section 4.4): calibration invariants, prediction
// accuracy against real module runs, ray-geometry estimation, network
// profiles (ground truth + active measurement), and the pipeline builder.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "cost/models.hpp"
#include "cost/network_profile.hpp"
#include "cost/pipeline_builder.hpp"
#include "data/generators.hpp"
#include "netsim/testbed.hpp"
#include "util/stopwatch.hpp"
#include "viz/isosurface.hpp"

namespace c = ricsa::cost;
namespace d = ricsa::data;
namespace v = ricsa::viz;
namespace ns = ricsa::netsim;

namespace {
/// Shared calibration fixture: calibrate once on two small volumes.
const c::CostModels& shared_models() {
  static const c::CostModels models = [] {
    static const d::ScalarVolume jet = d::make_jet(40, 40, 40);
    static const d::ScalarVolume rage = d::make_rage(40, 40, 40);
    c::CalibrationOptions opt;
    opt.isovalue_samples = 5;
    opt.raycast_size = 64;
    opt.host_power = 1.0;  // validate predictions against THIS machine
    return c::calibrate({&jet, &rage}, opt);
  }();
  return models;
}
}  // namespace

// ------------------------------------------------------ IsosurfaceModel ----

TEST(IsosurfaceModel, CalibrationProbabilitiesSumToOne) {
  const auto& m = shared_models().isosurface;
  double sum = 0;
  for (const double p : m.p_case) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Class 0 (empty/full) dominates typical volumes.
  EXPECT_GT(m.p_case[0], 0.5);
  // Per-class times are nonnegative and increase with triangle yield.
  for (int i = 0; i < c::kMcClasses; ++i) {
    EXPECT_GE(m.t_case[static_cast<std::size_t>(i)], 0.0);
  }
  EXPECT_GT(m.triangles_per_second, 1e3);
}

TEST(IsosurfaceModel, TriangleCountPredictionMatchesActual) {
  const d::ScalarVolume vol = d::make_jet(40, 40, 40);
  const auto& m = shared_models().isosurface;
  const float iso = 0.5f;
  const d::BlockDecomposition blocks(vol, 16);
  const auto props = c::dataset_properties(vol, iso, 16);
  const double predicted =
      m.predict_triangles(props.active_blocks, props.cells_per_block);
  const auto actual = v::extract_isosurface(vol, iso);
  // Statistical model: correct within ~50% (the class mix shifts with the
  // chosen isovalue; the paper reports the same kind of approximation).
  EXPECT_GT(predicted, 0.5 * static_cast<double>(actual.stats.triangles));
  EXPECT_LT(predicted, 2.0 * static_cast<double>(actual.stats.triangles));
}

TEST(IsosurfaceModel, ExtractionTimePredictionWithinFactor) {
  const d::ScalarVolume vol = d::make_rage(48, 48, 48);
  const auto& m = shared_models().isosurface;
  const float iso = 0.6f;
  const auto props = c::dataset_properties(vol, iso, 16);
  const double predicted =
      m.predict_extraction_s(props.active_blocks, props.cells_per_block);
  ricsa::util::Stopwatch timer;
  const auto result = v::extract_isosurface(vol, iso);
  const double measured = timer.elapsed();
  ASSERT_GT(result.stats.triangles, 0u);
  EXPECT_GT(predicted, measured / 4.0);
  EXPECT_LT(predicted, measured * 4.0);
}

TEST(IsosurfaceModel, PredictionsScaleLinearlyInBlocks) {
  const auto& m = shared_models().isosurface;
  const double one = m.predict_extraction_s(10, 4096);
  const double two = m.predict_extraction_s(20, 4096);
  EXPECT_NEAR(two, 2.0 * one, 1e-12);
  EXPECT_GT(one, 0.0);
}

TEST(IsosurfaceModel, GpuSpeedsUpRendering) {
  const auto& m = shared_models().isosurface;
  const double cpu = m.predict_render_s(1e6, false);
  const double gpu = m.predict_render_s(1e6, true);
  EXPECT_NEAR(cpu / gpu, m.gpu_speedup, 1e-6);
}

// --------------------------------------------------------- RayCastModel ----

TEST(RayCastModel, GeometryEstimateMatchesActualCounts) {
  const d::ScalarVolume vol = d::make_jet(32, 32, 32);
  v::RayCastOptions opt;
  opt.width = 64;
  opt.height = 64;
  const auto estimate = v::estimate_raycast_counts(32, 32, 32, opt);
  const auto tf = v::TransferFunction::preset(0.0f, 1.3f);
  const auto actual = v::raycast(vol, tf, opt);
  EXPECT_EQ(estimate.rays, actual.rays);
  // Float accumulation can shift per-ray sample counts by 1.
  const double rel =
      std::abs(static_cast<double>(estimate.samples) -
               static_cast<double>(actual.samples)) /
      static_cast<double>(actual.samples);
  EXPECT_LT(rel, 0.02);
}

TEST(RayCastModel, TimePredictionWithinFactor) {
  const d::ScalarVolume vol = d::make_viswoman(48, 48, 48);
  const auto& m = shared_models().raycast;
  v::RayCastOptions opt;
  opt.width = 96;
  opt.height = 96;
  const auto geom = v::estimate_raycast_counts(48, 48, 48, opt);
  const double predicted = m.predict_s(geom);
  const auto tf = v::TransferFunction::preset(0.0f, 1.0f);
  // Running minimum with early exit: the model predicts the render's
  // *compute* cost, and under a parallelized test suite a single
  // wall-clock sample can be inflated severalfold by descheduling. The
  // fastest sample is the one with the least scheduler noise in it; more
  // attempts only run while the bound is still missed.
  double measured = std::numeric_limits<double>::infinity();
  bool within = false;
  for (int run = 0; run < 8 && !within; ++run) {
    ricsa::util::Stopwatch timer;
    v::raycast(vol, tf, opt);
    measured = std::min(measured, timer.elapsed());
    within = predicted > measured / 4.0 && predicted < measured * 4.0;
  }
  EXPECT_TRUE(within) << "predicted " << predicted << " s vs best measured "
                      << measured << " s";
}

// ------------------------------------------------------ StreamlineModel ----

TEST(StreamlineModel, PredictionFormula) {
  const auto& m = shared_models().streamline;
  EXPECT_GT(m.t_advection_s, 0.0);
  EXPECT_NEAR(m.predict_s(100, 50), 100.0 * 50.0 * m.t_advection_s, 1e-15);
}

// ------------------------------------------------------- NetworkProfile ----

TEST(NetworkProfile, FromNetworkMirrorsTopology) {
  const ns::Testbed tb = ns::make_testbed();
  const auto profile = c::NetworkProfile::from_network(*tb.net, 0.8);
  EXPECT_EQ(profile.node_count(), 6);
  EXPECT_EQ(profile.name(tb.ornl), "ORNL");
  EXPECT_TRUE(profile.has_gpu(tb.ornl));
  EXPECT_FALSE(profile.has_gpu(tb.gatech));
  EXPECT_TRUE(profile.has_link(tb.gatech, tb.ut));
  EXPECT_FALSE(profile.has_link(tb.lsu, tb.ut));
  // Efficiency derating applies.
  const double raw = tb.net->link(tb.ut, tb.ornl).config().bandwidth_Bps;
  EXPECT_NEAR(profile.link(tb.ut, tb.ornl).epb_Bps, 0.8 * raw, 1e-6);
  EXPECT_THROW(profile.link(tb.lsu, tb.ut), std::out_of_range);
}

TEST(NetworkProfile, TransferSecondsUsesEpbPlusDelay) {
  c::NetworkProfile p;
  p.add_node("a", 1.0, false);
  p.add_node("b", 1.0, false);
  p.set_link(0, 1, {1e6, 0.05});
  EXPECT_NEAR(p.transfer_seconds(0, 1, 1000000), 1.05, 1e-9);
}

TEST(NetworkProfile, ActiveMeasurementApproximatesGroundTruth) {
  // Two-node network; measured EPB should land within a factor of ~2 of the
  // configured bandwidth and rank-order a fast vs slow link correctly.
  ns::Simulator sim;
  ns::Network net(sim, 3);
  const auto a = net.add_node({.name = "A", .power = 1.0});
  const auto b = net.add_node({.name = "B", .power = 1.0});
  ns::LinkConfig fast;
  fast.bandwidth_Bps = 6e6;
  fast.prop_delay_s = 0.01;
  ns::LinkConfig slow = fast;
  slow.bandwidth_Bps = 1.5e6;
  net.add_duplex(a, b, fast);
  // Overwrite the return direction with the slow link; A->B stays fast.
  net.add_link(b, a, slow);

  ricsa::transport::EpbOptions epb;
  epb.probe_sizes = {100 * 1024, 400 * 1024, 1000 * 1024};
  epb.repeats = 1;
  const auto profile = c::NetworkProfile::measure(net, epb);
  const double measured = profile.link(a, b).epb_Bps;
  EXPECT_GT(measured, 6e6 / 2.5);
  EXPECT_LT(measured, 6e6 * 1.5);
}

// ------------------------------------------------------ PipelineBuilder ----

TEST(PipelineBuilder, DatasetPropertiesFromVolume) {
  const d::ScalarVolume vol = d::make_sphere(33, 10.0f);
  const auto props = c::dataset_properties(vol, 0.0f, 8);
  EXPECT_EQ(props.bytes, vol.bytes());
  EXPECT_EQ(props.nx, 33);
  EXPECT_GT(props.active_blocks, 0u);
  EXPECT_EQ(props.cells_per_block, 512u);
}

TEST(PipelineBuilder, ScalePropertiesExtrapolates) {
  c::DatasetProperties small;
  small.bytes = 1000000;
  small.nx = small.ny = small.nz = 63;
  small.active_blocks = 100;
  small.cells_per_block = 4096;
  const auto big = c::scale_properties(small, 8000000);
  EXPECT_EQ(big.bytes, 8000000u);
  EXPECT_NEAR(big.nx, 126, 2);
  // Area scaling: active blocks grow ~4x when linear size doubles
  // (smooth large-scale surfaces; see pipeline_builder.cpp).
  EXPECT_NEAR(static_cast<double>(big.active_blocks), 400.0, 40.0);
}

TEST(PipelineBuilder, IsosurfacePipelineShape) {
  const d::ScalarVolume vol = d::make_jet(40, 40, 40);
  const auto props = c::dataset_properties(vol, 0.5f, 16);
  c::VizRequest req;
  req.technique = c::VizRequest::Technique::kIsosurface;
  req.isovalue = 0.5f;
  req.image_width = 512;
  req.image_height = 512;
  const auto spec = c::build_pipeline(req, props, shared_models());
  ASSERT_EQ(spec.module_count(), 5u);
  const auto msgs = spec.message_bytes();
  EXPECT_EQ(msgs[0], vol.bytes());
  EXPECT_EQ(msgs[3], 512u * 512u * 4u);  // framebuffer
  // Geometry message equals the wire size of the predicted triangle count.
  // (For a tiny 40^3 test volume the surface can outweigh the raw bytes —
  // only at paper scale does geometry << raw hold.)
  const double tris = shared_models().isosurface.predict_triangles(
      props.active_blocks, props.cells_per_block);
  EXPECT_EQ(msgs[2], c::geometry_bytes(tris));
  const auto compute = spec.unit_compute_seconds();
  for (std::size_t j = 1; j < compute.size(); ++j) {
    EXPECT_GE(compute[j], 0.0) << "module " << j;
  }
  // Extraction dominates filter cost.
  EXPECT_GT(compute[2], compute[1]);
  // The render module requires a GPU; others don't.
  EXPECT_TRUE(spec.modules()[3].requires_gpu);
  EXPECT_FALSE(spec.modules()[2].requires_gpu);
}

TEST(PipelineBuilder, RayCastPipelineEmitsPixelsDirectly) {
  const d::ScalarVolume vol = d::make_jet(32, 32, 32);
  const auto props = c::dataset_properties(vol, 0.5f, 16);
  c::VizRequest req;
  req.technique = c::VizRequest::Technique::kRayCast;
  req.image_width = 256;
  req.image_height = 256;
  const auto spec = c::build_pipeline(req, props, shared_models());
  ASSERT_EQ(spec.module_count(), 4u);
  const auto msgs = spec.message_bytes();
  EXPECT_EQ(msgs.back(), 256u * 256u * 4u);
}

TEST(PipelineBuilder, GeometryBytesFormula) {
  EXPECT_EQ(c::geometry_bytes(100.0), 8400u);  // 84 B/tri soup wire format
  EXPECT_EQ(c::geometry_bytes(-5.0), 0u);
  EXPECT_EQ(c::framebuffer_bytes(512, 512), 1048576u);
}

TEST(PipelineBuilder, FilterKeepShrinksDownstreamWork) {
  const d::ScalarVolume vol = d::make_jet(32, 32, 32);
  const auto props = c::dataset_properties(vol, 0.5f, 16);
  c::VizRequest full, eighth;
  eighth.filter_keep = 0.125;
  const auto spec_full = c::build_pipeline(full, props, shared_models());
  const auto spec_8 = c::build_pipeline(eighth, props, shared_models());
  EXPECT_LT(spec_8.message_bytes()[1], spec_full.message_bytes()[1]);
}
