// Pipeline spec and visualization routing table tests.
#include <gtest/gtest.h>

#include "pipeline/pipeline.hpp"
#include "pipeline/vrt.hpp"

namespace p = ricsa::pipeline;

TEST(PipelineSpec, MessageSizesFollowFactorsAndFixedOutputs) {
  const auto spec = p::make_isosurface_pipeline(
      /*raw_bytes=*/1000000, /*filter_keep=*/0.5, /*geometry_bytes=*/200000,
      /*framebuffer_bytes=*/4096);
  // Modules: source, filter, isosurface, render, display -> 4 messages.
  const auto msgs = spec.message_bytes();
  ASSERT_EQ(msgs.size(), 4u);
  EXPECT_EQ(msgs[0], 1000000u);  // source output (raw)
  EXPECT_EQ(msgs[1], 500000u);   // after filter (keep 0.5)
  EXPECT_EQ(msgs[2], 200000u);   // geometry (fixed)
  EXPECT_EQ(msgs[3], 4096u);     // framebuffer (fixed)
}

TEST(PipelineSpec, UnitComputeProportionalToInput) {
  const auto spec = p::make_isosurface_pipeline(1000000, 0.5, 200000, 4096);
  const auto compute = spec.unit_compute_seconds();
  ASSERT_EQ(compute.size(), 5u);
  EXPECT_DOUBLE_EQ(compute[0], 0.0);  // source does no work
  // filter complexity (2e-9 s/B) * raw input.
  EXPECT_NEAR(compute[1], 2e-9 * 1e6, 1e-12);
  // isosurface works on the filtered 0.5 MB.
  EXPECT_NEAR(compute[2], 2e-8 * 5e5, 1e-12);
  // render works on the geometry.
  EXPECT_NEAR(compute[3], 1e-8 * 2e5, 1e-12);
}

TEST(PipelineSpec, ValidationRejectsBadShapes) {
  std::vector<p::ModuleSpec> too_few = {
      {p::ModuleKind::kSource, "s", 0, 1, 0, false}};
  EXPECT_THROW(p::PipelineSpec("x", 10, too_few), std::invalid_argument);

  std::vector<p::ModuleSpec> no_source = {
      {p::ModuleKind::kFilter, "f", 0, 1, 0, false},
      {p::ModuleKind::kDisplay, "d", 0, 1, 0, false}};
  EXPECT_THROW(p::PipelineSpec("x", 10, no_source), std::invalid_argument);

  std::vector<p::ModuleSpec> no_display = {
      {p::ModuleKind::kSource, "s", 0, 1, 0, false},
      {p::ModuleKind::kFilter, "f", 0, 1, 0, false}};
  EXPECT_THROW(p::PipelineSpec("x", 10, no_display), std::invalid_argument);
}

TEST(PipelineSpec, VariantsHaveExpectedModuleKinds) {
  const auto ray = p::make_raycast_pipeline(1000, 1.0, 256);
  EXPECT_EQ(ray.modules()[2].kind, p::ModuleKind::kRayCast);
  EXPECT_EQ(ray.module_count(), 4u);
  const auto stream = p::make_streamline_pipeline(1000, 1.0, 500, 256);
  EXPECT_EQ(stream.modules()[2].kind, p::ModuleKind::kStreamline);
  EXPECT_TRUE(stream.modules()[3].requires_gpu);  // render wants a GPU
  EXPECT_STREQ(p::to_string(p::ModuleKind::kIsosurface), "isosurface");
}

// ------------------------------------------------------------------ VRT ----

TEST(Vrt, FromAssignmentGroupsConsecutiveModules) {
  const auto vrt = p::vrt_from_assignment({0, 0, 2, 2, 5}, 1.25, 3);
  ASSERT_EQ(vrt.groups.size(), 3u);
  EXPECT_EQ(vrt.groups[0].node, 0);
  EXPECT_EQ(vrt.groups[0].first_module, 0);
  EXPECT_EQ(vrt.groups[0].last_module, 1);
  EXPECT_EQ(vrt.groups[1].node, 2);
  EXPECT_EQ(vrt.groups[2].node, 5);
  EXPECT_EQ(vrt.version, 3u);
  EXPECT_TRUE(vrt.valid());
  EXPECT_EQ(vrt.node_of_module(), (std::vector<int>{0, 0, 2, 2, 5}));
  EXPECT_EQ(vrt.path(), (std::vector<int>{0, 2, 5}));
}

TEST(Vrt, SerializeRoundTrip) {
  const auto vrt = p::vrt_from_assignment({1, 3, 3, 4}, 0.75, 9);
  const auto bytes = vrt.serialize();
  const auto back = p::VisualizationRoutingTable::deserialize(bytes);
  EXPECT_EQ(back, vrt);
  EXPECT_EQ(back.version, 9u);
  EXPECT_DOUBLE_EQ(back.predicted_delay_s, 0.75);
}

TEST(Vrt, DeserializeRejectsGarbage) {
  EXPECT_THROW(p::VisualizationRoutingTable::deserialize({1, 2, 3}),
               std::runtime_error);
  auto bytes = p::vrt_from_assignment({0, 1}, 0.5).serialize();
  bytes[0] ^= 0xFF;
  EXPECT_THROW(p::VisualizationRoutingTable::deserialize(bytes),
               std::runtime_error);
}

TEST(Vrt, ValidityChecks) {
  p::VisualizationRoutingTable empty;
  EXPECT_FALSE(empty.valid());
  p::VisualizationRoutingTable gap;
  gap.groups = {{0, 0, 1}, {1, 3, 4}};  // module 2 missing
  EXPECT_FALSE(gap.valid());
  p::VisualizationRoutingTable bad_node;
  bad_node.groups = {{-2, 0, 1}};
  EXPECT_FALSE(bad_node.valid());
}

TEST(Vrt, ToStringMentionsNodesAndDelay) {
  const auto vrt = p::vrt_from_assignment({0, 7}, 2.5, 1);
  const std::string s = vrt.to_string();
  EXPECT_NE(s.find("node7"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
}
