// Cross-module integration tests and parameterized property sweeps:
// invariants that must hold across randomized inputs and the full-system
// paths that tie the library together (mini Fig. 9, session + reconfigure,
// codec round-trips, conservation laws, watertight extraction).
#include <gtest/gtest.h>

#include <cmath>

#include "core/mapper.hpp"
#include "core/reconfigure.hpp"
#include "cost/models.hpp"
#include "cost/network_profile.hpp"
#include "cost/pipeline_builder.hpp"
#include "data/generators.hpp"
#include "hydro/setups.hpp"
#include "netsim/testbed.hpp"
#include "pipeline/vrt.hpp"
#include "steering/message.hpp"
#include "steering/session.hpp"
#include "steering/wan_session.hpp"
#include "transport/datagram_transport.hpp"
#include "util/prng.hpp"
#include "viz/image.hpp"
#include "viz/isosurface.hpp"

namespace core = ricsa::core;
namespace c = ricsa::cost;
namespace d = ricsa::data;
namespace h = ricsa::hydro;
namespace ns = ricsa::netsim;
namespace st = ricsa::steering;
namespace tp = ricsa::transport;
namespace u = ricsa::util;
namespace v = ricsa::viz;

// ---------------------------------------------- Watertightness property ----

struct ShapeCase {
  const char* name;
  int size;
  float param_a, param_b;
};

class WatertightSurfaces : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(WatertightSurfaces, ClosedManifoldAtEveryInteriorIsovalue) {
  const ShapeCase& sc = GetParam();
  d::ScalarVolume vol =
      std::string(sc.name) == "sphere"
          ? d::make_sphere(sc.size, sc.param_a)
          : d::make_torus(sc.size, sc.param_a, sc.param_b);
  for (const float iso : {-1.0f, 0.0f, 1.0f}) {
    const auto result = v::extract_isosurface(vol, iso);
    ASSERT_GT(result.mesh.triangle_count(), 0u)
        << sc.name << " iso=" << iso;
    EXPECT_TRUE(result.mesh.is_closed()) << sc.name << " iso=" << iso;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WatertightSurfaces,
    ::testing::Values(ShapeCase{"sphere", 21, 6.0f, 0},
                      ShapeCase{"sphere", 27, 9.5f, 0},
                      ShapeCase{"sphere", 33, 11.0f, 0},
                      ShapeCase{"torus", 41, 10.0f, 4.0f},
                      ShapeCase{"torus", 33, 8.0f, 3.0f}));

// ----------------------------------------- Message round-trip property ----

class MessageRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(MessageRoundTrip, RandomMessagesSurviveSerialization) {
  u::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 1337);
  for (int i = 0; i < 50; ++i) {
    st::Message m;
    m.type = static_cast<st::MessageType>(rng.uniform_int(1, 11));
    m.session = static_cast<std::uint32_t>(rng());
    m.sequence = static_cast<std::uint32_t>(rng());
    m.header["k" + std::to_string(i)] = rng.uniform(-1e6, 1e6);
    m.header["s"] = std::string("value-\n\"quoted\"-") + std::to_string(i);
    m.payload.resize(static_cast<std::size_t>(rng.uniform_int(0, 4096)));
    for (auto& b : m.payload) b = static_cast<std::uint8_t>(rng() & 0xFF);

    const st::Message back = st::Message::deserialize(m.serialize());
    EXPECT_EQ(back.type, m.type);
    EXPECT_EQ(back.session, m.session);
    EXPECT_EQ(back.sequence, m.sequence);
    EXPECT_EQ(back.payload, m.payload);
    EXPECT_EQ(back.header.dump(), m.header.dump());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageRoundTrip, ::testing::Range(1, 6));

// ------------------------------------------------- VRT codec property ----

class VrtRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(VrtRoundTrip, RandomAssignmentsSurviveSerialization) {
  u::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 271828);
  for (int i = 0; i < 100; ++i) {
    const int modules = static_cast<int>(rng.uniform_int(2, 12));
    std::vector<int> assignment;
    int node = static_cast<int>(rng.uniform_int(0, 5));
    for (int m = 0; m < modules; ++m) {
      if (rng.bernoulli(0.4)) node = static_cast<int>(rng.uniform_int(0, 5));
      assignment.push_back(node);
    }
    const auto vrt = ricsa::pipeline::vrt_from_assignment(
        assignment, rng.uniform(0, 100), static_cast<std::uint32_t>(i));
    EXPECT_TRUE(vrt.valid());
    EXPECT_EQ(vrt.node_of_module(), assignment);
    const auto back =
        ricsa::pipeline::VisualizationRoutingTable::deserialize(vrt.serialize());
    EXPECT_EQ(back, vrt);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VrtRoundTrip, ::testing::Range(1, 5));

// -------------------------------------- Transport reliability property ----

class TransportLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(TransportLossSweep, MessageAlwaysDeliveredExactlyOnce) {
  const double loss = GetParam();
  ns::Simulator sim;
  ns::Network net(sim, static_cast<std::uint64_t>(loss * 1e6) + 17);
  const auto a = net.add_node({.name = "A"});
  const auto b = net.add_node({.name = "B"});
  ns::LinkConfig link;
  link.bandwidth_Bps = 3e6;
  link.prop_delay_s = 0.01;
  link.random_loss = loss;
  net.add_duplex(a, b, link);

  tp::RmsaConfig rc;
  rc.target_Bps = 2e6;
  rc.initial_sleep_s = 0.02;
  double completed_at = -1;
  const std::size_t bytes = 300 * 1000;
  auto flow = tp::make_message_flow(net, a, b, bytes,
                                    std::make_unique<tp::RmsaController>(rc),
                                    [&](ns::SimTime t) { completed_at = t; });
  sim.run();
  ASSERT_GT(completed_at, 0.0) << "loss=" << loss;
  // Exactly-once: unique payload bytes == message bytes.
  const auto expected = flow.sender->datagram_count(bytes);
  EXPECT_EQ(flow.receiver->stats().datagrams_received -
                flow.receiver->stats().duplicates,
            expected);
  // Higher loss should never corrupt, only slow down.
  EXPECT_LT(completed_at, 60.0);
}

INSTANTIATE_TEST_SUITE_P(LossRates, TransportLossSweep,
                         ::testing::Values(0.0, 0.005, 0.02, 0.08, 0.15));

// ------------------------------------------ Image codec property sweep ----

class ImageCodecs : public ::testing::TestWithParam<int> {};

TEST_P(ImageCodecs, RleAndPngHandleRandomImages) {
  u::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 31415);
  const int w = static_cast<int>(rng.uniform_int(1, 64));
  const int hgt = static_cast<int>(rng.uniform_int(1, 64));
  v::Image img(w, hgt);
  for (int y = 0; y < hgt; ++y) {
    for (int x = 0; x < w; ++x) {
      // Mix of runs and noise.
      if (rng.bernoulli(0.7)) continue;  // leave default (run)
      img.at(x, y) = {static_cast<std::uint8_t>(rng() & 0xFF),
                      static_cast<std::uint8_t>(rng() & 0xFF),
                      static_cast<std::uint8_t>(rng() & 0xFF), 255};
    }
  }
  const auto rle = v::rle_encode(img);
  EXPECT_EQ(v::rle_decode(rle, w, hgt).pixels(), img.pixels());

  const auto png = img.encode_png();
  // PNG structural sanity: signature + IHDR dims.
  ASSERT_GT(png.size(), 45u);
  EXPECT_EQ(png[0], 0x89);
  const int png_w = (png[16] << 24) | (png[17] << 16) | (png[18] << 8) | png[19];
  const int png_h = (png[20] << 24) | (png[21] << 16) | (png[22] << 8) | png[23];
  EXPECT_EQ(png_w, w);
  EXPECT_EQ(png_h, hgt);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImageCodecs, ::testing::Range(1, 13));

// --------------------------------------- Hydro conservation property ----

class HydroConservation : public ::testing::TestWithParam<int> {};

TEST_P(HydroConservation, ClosedBoxConservesMassEnergy) {
  u::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 97);
  h::EulerConfig config;
  config.dx = 1.0 / 16;
  config.boundaries = {h::Boundary::kReflect, h::Boundary::kReflect,
                       h::Boundary::kReflect, h::Boundary::kReflect,
                       h::Boundary::kReflect, h::Boundary::kReflect};
  h::EulerSolver3D solver(16, 16, 16, config);
  for (int k = 0; k < 16; ++k) {
    for (int j = 0; j < 16; ++j) {
      for (int i = 0; i < 16; ++i) {
        solver.set_primitive(i, j, k,
                             {rng.uniform(0.2, 2.0), rng.uniform(-0.5, 0.5),
                              rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5),
                              rng.uniform(0.2, 2.0)});
      }
    }
  }
  const double m0 = solver.total_mass();
  const double e0 = solver.total_energy();
  for (int s = 0; s < 20; ++s) solver.step();
  EXPECT_NEAR(solver.total_mass(), m0, 1e-9 * m0);
  EXPECT_NEAR(solver.total_energy(), e0, 1e-9 * e0);
  // Positivity is maintained from random initial data.
  for (int k = 0; k < 16; ++k) {
    for (int j = 0; j < 16; ++j) {
      for (int i = 0; i < 16; ++i) {
        EXPECT_GT(solver.primitive(i, j, k).rho, 0.0);
        EXPECT_GT(solver.primitive(i, j, k).p, 0.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HydroConservation, ::testing::Range(1, 7));

// ----------------------------------------------- Mini Fig. 9 integration ----

TEST(Integration, OptimalLoopBeatsAllFixedAlternatives) {
  // Small-payload version of the Fig. 9 comparison: the DP's choice must be
  // at least as fast as every hand-pinned loop, measured (not predicted).
  const std::size_t bytes = 4 * 1000 * 1000;
  const auto spec = ricsa::pipeline::make_isosurface_pipeline(
      bytes, 1.0, bytes / 4, 1 << 20);

  const auto run_one = [&](std::optional<std::vector<int>> fixed) {
    ns::Testbed tb = ns::make_testbed();
    st::WanSessionConfig config;
    config.client = tb.ornl;
    config.central_manager = tb.lsu;
    config.data_source = tb.gatech;
    config.profile = c::NetworkProfile::from_network(*tb.net);
    config.spec = spec;
    config.fixed_assignment = std::move(fixed);
    return st::run_wan_session(*tb.net, config);
  };

  const auto optimal = run_one(std::nullopt);
  ASSERT_TRUE(optimal.completed);

  const std::vector<std::vector<int>> alternatives = {
      {5, 5, 3, 3, 0},  // via NCState
      {5, 5, 2, 2, 0},  // via UT
      {5, 5, 5, 0, 0},  // PC-PC, render at client
  };
  for (const auto& alt : alternatives) {
    const auto result = run_one(alt);
    ASSERT_TRUE(result.completed);
    EXPECT_LE(optimal.data_path_s, result.data_path_s * 1.05)
        << "fixed " << alt[2];
  }
}

TEST(Integration, SessionVrtTracksDegradedNetwork) {
  // End-to-end: a steering session's CM re-solves per frame; if we rebuild
  // the problem on a profile with the optimal link degraded, the VRT path
  // changes. (Profile-level check of the reconfiguration path.)
  ns::Testbed tb = ns::make_testbed();
  const d::ScalarVolume vol = d::make_rage(32, 32, 32);
  c::CalibrationOptions cal;
  cal.isovalue_samples = 2;
  const auto models = c::calibrate({&vol}, cal);
  const auto props = c::scale_properties(
      c::dataset_properties(vol, 0.6f), 64 * 1000 * 1000);
  c::VizRequest req;
  req.isovalue = 0.6f;
  const auto spec = c::build_pipeline(req, props, models);
  auto problem = core::MappingProblem::from_pipeline(
      spec, c::NetworkProfile::from_network(*tb.net), tb.gatech, tb.ornl);

  core::Reconfigurator reconf(problem);
  const auto healthy = reconf.update(c::NetworkProfile::from_network(*tb.net));
  ASSERT_TRUE(healthy.mapping.feasible);

  tb.net->link(tb.gatech, tb.ut).set_bandwidth(5e5);
  const auto degraded = reconf.update(c::NetworkProfile::from_network(*tb.net));
  EXPECT_TRUE(degraded.changed);
  EXPECT_NE(degraded.mapping.node_of_module, healthy.mapping.node_of_module);
  EXPECT_LT(degraded.mapping.delay_s, degraded.stale_delay_s);
}

TEST(Integration, CostCalibrationFeedsDpConsistently) {
  // The delay the DP reports must equal the Eq. 2 evaluation of its own
  // assignment for a fully calibrated, realistic pipeline.
  const d::ScalarVolume vol = d::make_jet(32, 32, 32);
  c::CalibrationOptions cal;
  cal.isovalue_samples = 2;
  const auto models = c::calibrate({&vol}, cal);
  ns::Testbed tb = ns::make_testbed();
  const auto profile = c::NetworkProfile::from_network(*tb.net);
  for (const double mb : {1.0, 16.0, 108.0}) {
    const auto props = c::scale_properties(
        c::dataset_properties(vol, 0.5f),
        static_cast<std::size_t>(mb * 1e6));
    c::VizRequest req;
    req.isovalue = 0.5f;
    const auto spec = c::build_pipeline(req, props, models);
    const auto problem = core::MappingProblem::from_pipeline(
        spec, profile, tb.gatech, tb.ornl);
    const auto mapping = core::DpMapper().solve(profile, problem);
    ASSERT_TRUE(mapping.feasible) << mb << " MB";
    EXPECT_NEAR(core::predict_delay(profile, problem, mapping.node_of_module),
                mapping.delay_s, 1e-9);
    // Source pinned at GaTech, display at ORNL, render on a GPU node.
    EXPECT_EQ(mapping.node_of_module.front(), tb.gatech);
    EXPECT_EQ(mapping.node_of_module.back(), tb.ornl);
    EXPECT_TRUE(profile.has_gpu(mapping.node_of_module[3])) << mb << " MB";
  }
}
