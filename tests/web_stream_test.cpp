// Chunked-transfer streaming and the /api/stream SSE push transport:
//  * chunk-encoder framing (hex size lines, CRLF placement, the dropped
//    empty payload, the exact "0\r\n\r\n" terminator)
//  * decoder-side seam independence: the encoded wire split at every
//    possible byte boundary still reassembles
//  * a multi-megabyte chunk against a tiny receive buffer: the server's
//    partial-write EPOLLOUT resume delivers every byte, then the terminal
//    chunk, then EOF
//  * HEAD to a stream route answers the headers and closes — it never
//    converts the connection or parks
//  * bytes pipelined behind a stream-converting request are discarded, so
//    exactly one response ever leaves the connection
//  * end-to-end SSE beside long-poll: gap-free strictly-increasing frame
//    streams for both transports off the same hub shard while steering
//    POSTs land, slow-consumer tier downgrade over SSE, stale-cursor and
//    full=1 resync, keepalive comments, and clean stream end on registry
//    shutdown.
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "time_scale.hpp"

#include "util/json.hpp"
#include "web/frontend.hpp"
#include "web/http.hpp"
#include "web/hub.hpp"

namespace w = ricsa::web;
using ricsa::util::Json;

namespace {

w::FrontEndConfig fast_config() {
  w::FrontEndConfig config;
  config.session.resolution = 12;
  config.session.cycles_per_frame = 1;
  config.frame_interval_s = 0.02;
  config.frame_window = 256;
  config.hub_workers = 4;
  return config;
}

w::FrontEndConfig paced_config() {
  w::FrontEndConfig config;
  config.session.resolution = 16;
  config.session.cycles_per_frame = 1;
  config.session.viz.image_width = 32;
  config.session.viz.image_height = 32;
  config.frame_interval_s = 0.02;
  config.pacing.downgrade_streak = 2;
  config.pacing.upgrade_streak = 3;
  config.pacing.meter_window_s = 0.5;
  return config;
}

int connect_to(int port, int rcvbuf = 0) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (rcvbuf > 0) {
    // Must be set before connect so the window scale is negotiated small:
    // this is what forces the server through many partial writes.
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void set_recv_timeout(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<long>(seconds);
  tv.tv_usec = static_cast<long>((seconds - tv.tv_sec) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/// Incremental HTTP/1.1 chunked-transfer decoder. Feed arbitrary slices;
/// `payload` accumulates de-chunked bytes, `terminated` flips on the
/// zero-length final chunk.
struct ChunkDecoder {
  std::string raw;
  std::string payload;
  bool terminated = false;
  bool error = false;

  void feed(const char* data, std::size_t n) {
    raw.append(data, n);
    parse();
  }

  void parse() {
    while (!terminated && !error) {
      const auto line_end = raw.find("\r\n");
      if (line_end == std::string::npos) return;
      std::size_t size = 0;
      try {
        size = static_cast<std::size_t>(
            std::stoull(raw.substr(0, line_end), nullptr, 16));
      } catch (const std::exception&) {
        error = true;
        return;
      }
      // size line + payload + trailing CRLF must be complete.
      if (raw.size() < line_end + 2 + size + 2) return;
      if (raw.compare(line_end + 2 + size, 2, "\r\n") != 0) {
        error = true;
        return;
      }
      if (size == 0) {
        terminated = true;
      } else {
        payload.append(raw, line_end + 2, size);
      }
      raw.erase(0, line_end + 2 + size + 2);
    }
  }
};

/// One SSE event as parsed off the wire.
struct SseEvent {
  std::uint64_t id = 0;
  std::string data;
};

/// Splits a de-chunked SSE payload into events (blank-line separated);
/// keepalive comment lines (": ...") yield no event but are counted.
struct SseParser {
  std::string buf;
  std::vector<SseEvent> events;
  int keepalives = 0;

  void feed(const std::string& payload) {
    buf += payload;
    std::size_t pos;
    while ((pos = buf.find("\n\n")) != std::string::npos) {
      const std::string block = buf.substr(0, pos);
      buf.erase(0, pos + 2);
      SseEvent ev;
      bool has_data = false;
      std::size_t start = 0;
      while (start <= block.size()) {
        const auto nl = block.find('\n', start);
        const std::string line = block.substr(
            start, nl == std::string::npos ? std::string::npos : nl - start);
        if (line.rfind("id: ", 0) == 0) {
          ev.id = std::stoull(line.substr(4));
        } else if (line.rfind("data: ", 0) == 0) {
          ev.data = line.substr(6);
          has_data = true;
        } else if (!line.empty() && line[0] == ':') {
          ++keepalives;
        }
        if (nl == std::string::npos) break;
        start = nl + 1;
      }
      if (has_data) events.push_back(std::move(ev));
    }
  }
};

/// A raw-socket SSE subscriber: sends the request, then reads and decodes
/// the chunked event stream until the deadline (or EOF). HttpClient cannot
/// be used — it has no chunked-transfer support, by design.
struct SseClient {
  int fd = -1;
  std::string headers;
  ChunkDecoder decoder;
  SseParser sse;
  bool eof = false;

  bool open(int port, const std::string& path_and_query, int rcvbuf = 0) {
    fd = connect_to(port, rcvbuf);
    if (fd < 0) return false;
    set_recv_timeout(fd, 0.25);
    const std::string request =
        "GET " + path_and_query + " HTTP/1.1\r\nHost: x\r\n\r\n";
    return w::detail::write_all(fd, request.data(), request.size());
  }

  /// One recv; returns false on EOF/error, true on progress or timeout.
  bool pump(std::size_t cap = 4096) {
    char chunk[4096];
    const ssize_t got =
        ::recv(fd, chunk, std::min(cap, sizeof(chunk)), 0);
    if (got == 0) {
      eof = true;
      return false;
    }
    if (got < 0) return errno == EAGAIN || errno == EWOULDBLOCK ||
                        errno == EINTR;
    std::size_t off = 0;
    if (headers.find("\r\n\r\n") == std::string::npos) {
      headers.append(chunk, static_cast<std::size_t>(got));
      const auto end = headers.find("\r\n\r\n");
      if (end == std::string::npos) return true;
      const std::string rest = headers.substr(end + 4);
      headers.resize(end + 4);
      if (!rest.empty()) decoder.feed(rest.data(), rest.size());
      off = static_cast<std::size_t>(got);  // already consumed via headers
    }
    if (off == 0) decoder.feed(chunk, static_cast<std::size_t>(got));
    const std::size_t before = sse.events.size();
    sse.feed(decoder.payload.substr(sse_consumed));
    sse_consumed = decoder.payload.size();
    (void)before;
    return true;
  }

  void run_until(std::chrono::steady_clock::time_point deadline,
                 double inter_read_delay_s = 0.0, std::size_t read_cap = 4096) {
    while (std::chrono::steady_clock::now() < deadline) {
      if (!pump(read_cap)) break;
      if (inter_read_delay_s > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(inter_read_delay_s));
      }
    }
  }

  ~SseClient() {
    if (fd >= 0) ::close(fd);
  }

 private:
  std::size_t sse_consumed = 0;
};

std::string read_to_eof(int fd, double timeout_s = 5.0) {
  set_recv_timeout(fd, timeout_s);
  std::string wire;
  char chunk[4096];
  ssize_t got;
  while ((got = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    wire.append(chunk, static_cast<std::size_t>(got));
  }
  return wire;
}

int count_status_lines(const std::string& wire) {
  int n = 0;
  std::size_t pos = 0;
  while ((pos = wire.find("HTTP/1.1 ", pos)) != std::string::npos) {
    ++n;
    pos += 9;
  }
  return n;
}

}  // namespace

// ------------------------------------------------- chunk encoder units ----

TEST(ChunkEncoding, FramesPayloadsWithHexSizes) {
  std::string out;
  w::detail::append_chunk(out, "hello");
  EXPECT_EQ(out, "5\r\nhello\r\n");
  // A payload crossing the single-hex-digit boundary: 255 bytes -> "ff".
  out.clear();
  w::detail::append_chunk(out, std::string(255, 'x'));
  EXPECT_EQ(out.substr(0, 4), "ff\r\n");
  EXPECT_EQ(out.size(), 4 + 255 + 2);
  EXPECT_EQ(out.substr(out.size() - 2), "\r\n");
  // Payload bytes are opaque — embedded CRLFs are framed, not parsed.
  out.clear();
  w::detail::append_chunk(out, "a\r\nb");
  EXPECT_EQ(out, "4\r\na\r\nb\r\n");
}

TEST(ChunkEncoding, EmptyPayloadDroppedAndTerminatorExact) {
  std::string out;
  w::detail::append_chunk(out, "");
  // "0\r\n" is the wire terminator; an empty producer chunk must not
  // accidentally end the stream.
  EXPECT_TRUE(out.empty());
  w::detail::append_last_chunk(out);
  EXPECT_EQ(out, "0\r\n\r\n");
}

TEST(ChunkEncoding, DecoderReassemblesAcrossEveryByteSeam) {
  // Encode a small stream, then re-feed it split at every byte boundary:
  // framing must never depend on chunk boundaries aligning with reads —
  // exactly the situation after a partial write resumes on EPOLLOUT.
  std::string wire;
  const std::vector<std::string> payloads = {
      "id: 1\ndata: {\"seq\":1}\n\n", std::string(300, 'q'), ": keepalive\n\n"};
  std::string want;
  for (const auto& p : payloads) {
    w::detail::append_chunk(wire, p);
    want += p;
  }
  w::detail::append_last_chunk(wire);
  for (std::size_t split = 1; split < wire.size(); ++split) {
    ChunkDecoder decoder;
    decoder.feed(wire.data(), split);
    decoder.feed(wire.data() + split, wire.size() - split);
    ASSERT_FALSE(decoder.error) << "split at " << split;
    EXPECT_TRUE(decoder.terminated) << "split at " << split;
    EXPECT_EQ(decoder.payload, want) << "split at " << split;
  }
}

// ------------------------------------------- server-level stream routes ----

TEST(HttpStream, MultiMegabyteChunkResumesAcrossPartialWrites) {
  // One 2 MiB chunk against an 8 KiB client receive buffer: the reactor
  // write path hits EAGAIN hundreds of times and must resume on EPOLLOUT
  // without losing or reordering a byte, then emit the terminal chunk.
  std::string big(2u << 20, '\0');
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + (i % 26));
  }
  w::HttpServer server;
  server.route_stream(
      "GET", "/big", [&big](const w::HttpRequest&, w::HttpServer::StreamSink sink) {
        sink.begin({{"Content-Type", "application/octet-stream"}});
        if (sink.head_only()) return;
        sink.chunk(big, [sink] { sink.end(); });
      });
  const int port = server.start();

  const int fd = connect_to(port, /*rcvbuf=*/8192);
  ASSERT_GE(fd, 0);
  const std::string request = "GET /big HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_TRUE(w::detail::write_all(fd, request.data(), request.size()));
  set_recv_timeout(fd, 5.0);
  std::string wire;
  char chunk[4096];
  ssize_t got;
  while ((got = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    wire.append(chunk, static_cast<std::size_t>(got));
    // A deliberately slow consumer: keeps the server buffer full so the
    // EPOLLOUT-resume path is exercised for real, not just once.
    if (wire.size() < (1u << 20)) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  ::close(fd);

  const auto header_end = wire.find("\r\n\r\n");
  ASSERT_NE(header_end, std::string::npos);
  const std::string head = wire.substr(0, header_end + 4);
  EXPECT_NE(head.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(head.find("Transfer-Encoding: chunked"), std::string::npos);
  EXPECT_NE(head.find("Connection: close"), std::string::npos);
  EXPECT_EQ(head.find("Content-Length"), std::string::npos);
  ChunkDecoder decoder;
  decoder.feed(wire.data() + header_end + 4, wire.size() - header_end - 4);
  EXPECT_FALSE(decoder.error);
  EXPECT_TRUE(decoder.terminated);
  EXPECT_EQ(decoder.payload.size(), big.size());
  EXPECT_EQ(decoder.payload, big);
  server.stop();
}

TEST(HttpStream, BeginThenEndYieldsEmptyTerminatedStream) {
  w::HttpServer server;
  server.route_stream("GET", "/empty",
                      [](const w::HttpRequest&, w::HttpServer::StreamSink sink) {
                        sink.begin();
                        sink.end();
                      });
  const int port = server.start();
  const int fd = connect_to(port);
  ASSERT_GE(fd, 0);
  const std::string request = "GET /empty HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_TRUE(w::detail::write_all(fd, request.data(), request.size()));
  const std::string wire = read_to_eof(fd);
  ::close(fd);
  const auto header_end = wire.find("\r\n\r\n");
  ASSERT_NE(header_end, std::string::npos);
  // Nothing but the terminator after the headers, then EOF.
  EXPECT_EQ(wire.substr(header_end + 4), "0\r\n\r\n");
  server.stop();
}

TEST(HttpStream, HeadAnswersHeadersAndClosesWithoutConverting) {
  w::HttpServer server;
  std::atomic<int> chunks_attempted{0};
  server.route_stream(
      "GET", "/s",
      [&](const w::HttpRequest&, w::HttpServer::StreamSink sink) {
        sink.begin({{"Content-Type", "text/event-stream"}});
        if (sink.head_only()) return;
        ++chunks_attempted;
        sink.chunk("data: x\n\n", [sink] { sink.end(); });
      });
  const int port = server.start();
  const int fd = connect_to(port);
  ASSERT_GE(fd, 0);
  const std::string request = "HEAD /s HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_TRUE(w::detail::write_all(fd, request.data(), request.size()));
  const std::string wire = read_to_eof(fd);
  ::close(fd);
  EXPECT_NE(wire.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(wire.find("Content-Type: text/event-stream"), std::string::npos);
  // Headers only: the connection closed instead of parking a suppressed
  // infinite body, and the handler produced no chunks.
  EXPECT_EQ(wire.substr(wire.size() - 4), "\r\n\r\n");
  EXPECT_EQ(wire.find("data:"), std::string::npos);
  EXPECT_EQ(chunks_attempted.load(), 0);
  server.stop();
}

TEST(HttpStream, PipelinedBytesBehindStreamAreDiscarded) {
  w::HttpServer server;
  server.route("GET", "/plain", [](const w::HttpRequest&) {
    return w::HttpResponse::text("plain");
  });
  server.route_stream(
      "GET", "/s", [](const w::HttpRequest&, w::HttpServer::StreamSink sink) {
        sink.begin({{"Content-Type", "text/event-stream"}});
        if (sink.head_only()) return;
        sink.chunk("data: one\n\n", [sink] {
          sink.chunk("data: two\n\n", [sink] { sink.end(); });
        });
      });
  const int port = server.start();
  const int fd = connect_to(port);
  ASSERT_GE(fd, 0);
  // The stream-converting request and a pipelined request for a normal
  // route arrive in one segment. The second request's bytes must be
  // drained and dropped — never parsed, never answered.
  const std::string request =
      "GET /s HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /plain HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_TRUE(w::detail::write_all(fd, request.data(), request.size()));
  const std::string wire = read_to_eof(fd);
  ::close(fd);
  EXPECT_EQ(count_status_lines(wire), 1);
  EXPECT_EQ(wire.find("Content-Length"), std::string::npos);
  EXPECT_EQ(wire.find("plain"), std::string::npos);
  const auto header_end = wire.find("\r\n\r\n");
  ASSERT_NE(header_end, std::string::npos);
  ChunkDecoder decoder;
  decoder.feed(wire.data() + header_end + 4, wire.size() - header_end - 4);
  EXPECT_TRUE(decoder.terminated);
  EXPECT_EQ(decoder.payload, "data: one\n\ndata: two\n\n");
  EXPECT_EQ(server.requests_served(), 1u);
  server.stop();
}

// --------------------------------------------------- /api/stream (SSE) ----

TEST(SseStream, HeadAnswersEventStreamHeadersAndWrongMethodIs405) {
  w::AjaxFrontEnd fe(fast_config());
  const int port = fe.start();

  const int fd = connect_to(port);
  ASSERT_GE(fd, 0);
  const std::string request = "HEAD /api/stream HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_TRUE(w::detail::write_all(fd, request.data(), request.size()));
  const std::string wire = read_to_eof(fd, 2.0);
  ::close(fd);
  EXPECT_NE(wire.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(wire.find("Content-Type: text/event-stream"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 4), "\r\n\r\n");

  const auto post = w::http_post(port, "/api/stream", "{}");
  EXPECT_EQ(post.status, 405);
  EXPECT_NE(post.headers.at("allow").find("GET"), std::string::npos);
  fe.stop();
}

TEST(SseStream, BadParametersRejectedBeforeConverting) {
  w::AjaxFrontEnd fe(fast_config());
  const int port = fe.start();
  for (const std::string query :
       {"?view=nope", "?since=abc", "?timeout=nan"}) {
    const int fd = connect_to(port);
    ASSERT_GE(fd, 0);
    const std::string request =
        "GET /api/stream" + query + " HTTP/1.1\r\nHost: x\r\n\r\n";
    ASSERT_TRUE(w::detail::write_all(fd, request.data(), request.size()));
    const std::string wire = read_to_eof(fd, 2.0);
    ::close(fd);
    const int status = std::stoi(wire.substr(9, 3));
    EXPECT_TRUE(status == 400 || status == 404) << query << " -> " << wire;
    // Error replies are still well-formed terminated streams.
    EXPECT_NE(wire.find("0\r\n\r\n"), std::string::npos) << query;
  }
  fe.stop();
}

TEST(SseStream, PushesGapFreeFramesBesidePollersWhileSteering) {
  w::AjaxFrontEnd fe(fast_config());
  const int port = fe.start();
  while (fe.frame_seq() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  constexpr int kSse = 4;
  constexpr int kPollers = 4;
  // Goal-seeking, not wall-clock-bound: each client reads until it holds
  // enough frames for the assertions below, under a generous cap — a
  // loaded machine slows delivery without failing a fixed-window count.
  const auto deadline =
      std::chrono::steady_clock::now() + ricsa_test::scaled_ms(8000);

  std::vector<SseClient> streams(kSse);
  std::vector<std::vector<std::uint64_t>> poll_seqs(kPollers);
  std::vector<std::thread> threads;
  for (int i = 0; i < kSse; ++i) {
    threads.emplace_back([&, i] {
      ASSERT_TRUE(
          streams[i].open(port, "/api/stream?since=0&delta=1&timeout=1"));
      while (streams[i].sse.events.size() < 12 &&
             std::chrono::steady_clock::now() < deadline) {
        if (!streams[i].pump()) break;
      }
    });
  }
  for (int i = 0; i < kPollers; ++i) {
    threads.emplace_back([&, i] {
      w::HttpClient http(port);
      std::uint64_t since = 0;
      while (poll_seqs[i].size() < 8 &&
             std::chrono::steady_clock::now() < deadline) {
        Json body;
        try {
          body = Json::parse(http.get("/api/poll?since=" +
                                          std::to_string(since) +
                                          "&delta=1&timeout=1",
                                      5.0)
                                 .body);
        } catch (const std::exception&) {
          continue;
        }
        if (body.contains("timeout")) continue;
        const auto seq = static_cast<std::uint64_t>(body.at("seq").as_number());
        ASSERT_GT(seq, since);
        poll_seqs[i].push_back(seq);
        since = seq;
      }
    });
  }
  // Early enough that every client is still mid-stream when the steering
  // write lands (12 events at the 20 ms cadence is ~240 ms of reading).
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  w::http_post(port, "/api/steer", "{\"mach\": 3.25}");
  for (auto& t : threads) t.join();

  EXPECT_GE(fe.steer_count(), 1u);
  for (int i = 0; i < kSse; ++i) {
    const auto& events = streams[i].sse.events;
    ASSERT_GE(events.size(), 10u) << "sse client " << i;
    bool saw_delta = false;
    for (std::size_t k = 0; k < events.size(); ++k) {
      const Json body = Json::parse(events[k].data);
      const auto seq = static_cast<std::uint64_t>(body.at("seq").as_number());
      EXPECT_EQ(seq, events[k].id);
      if (k > 0) {
        // The same gap-free contract as long-poll: an unpaced subscriber
        // inside the replay window never skips a frame.
        ASSERT_EQ(seq, static_cast<std::uint64_t>(events[k - 1].id) + 1)
            << "sse client " << i << " event " << k;
        if (body.at("delta").as_bool()) saw_delta = true;
      }
    }
    EXPECT_TRUE(saw_delta) << "sse client " << i;
  }
  for (int i = 0; i < kPollers; ++i) {
    ASSERT_GE(poll_seqs[i].size(), 5u) << "poller " << i;
    for (std::size_t k = 1; k < poll_seqs[i].size(); ++k) {
      ASSERT_GT(poll_seqs[i][k], poll_seqs[i][k - 1]);
    }
  }
  fe.stop();
}

TEST(SseStream, StaleCursorAndFullParamResyncWithFullFrame) {
  w::AjaxFrontEnd fe(fast_config());
  const int port = fe.start();
  while (fe.frame_seq() < 4) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // A cursor far beyond the head clamps and resyncs: the first event is a
  // full frame (not a delta against a frame the client never had) with a
  // real sequence number, and the stream continues gap-free from there.
  {
    SseClient c;
    ASSERT_TRUE(c.open(port, "/api/stream?since=999999&delta=1&timeout=1"));
    const auto deadline =
        std::chrono::steady_clock::now() + ricsa_test::scaled_ms(800);
    while (c.sse.events.size() < 3 &&
           std::chrono::steady_clock::now() < deadline) {
      if (!c.pump()) break;
    }
    ASSERT_GE(c.sse.events.size(), 2u);
    const Json first = Json::parse(c.sse.events[0].data);
    EXPECT_LT(first.at("seq").as_number(), 999999.0);
    EXPECT_FALSE(first.at("delta").as_bool());
    EXPECT_TRUE(first.contains("image_b64"));
    EXPECT_EQ(c.sse.events[1].id, c.sse.events[0].id + 1);
  }

  // full=1 forces the first event to a full frame even with a live cursor —
  // the dashboard's explicit resync after a transport switch.
  {
    const std::uint64_t head = fe.frame_seq();
    SseClient c;
    ASSERT_TRUE(c.open(port, "/api/stream?since=" + std::to_string(head) +
                                 "&delta=1&full=1&timeout=1"));
    const auto deadline =
        std::chrono::steady_clock::now() + ricsa_test::scaled_ms(800);
    while (c.sse.events.size() < 2 &&
           std::chrono::steady_clock::now() < deadline) {
      if (!c.pump()) break;
    }
    ASSERT_GE(c.sse.events.size(), 2u);
    const Json first = Json::parse(c.sse.events[0].data);
    EXPECT_FALSE(first.at("delta").as_bool());
    EXPECT_TRUE(first.contains("image_b64"));
    // Consumed once: the second event reverts to the delta contract.
    const Json second = Json::parse(c.sse.events[1].data);
    EXPECT_TRUE(second.at("delta").as_bool());
  }
  fe.stop();
}

TEST(SseStream, KeepaliveCommentsFlowDuringQuietPeriods) {
  // Publisher at 0.4 s, stream timeout at 0.1 s: between frames the wait
  // times out and the server emits comment keepalives instead of silence —
  // what keeps proxies and the client's liveness check happy.
  w::FrontEndConfig config = fast_config();
  config.frame_interval_s = 0.4;
  w::AjaxFrontEnd fe(config);
  const int port = fe.start();
  while (fe.frame_seq() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  SseClient c;
  ASSERT_TRUE(c.open(port, "/api/stream?delta=1&timeout=0.1"));
  c.run_until(std::chrono::steady_clock::now() +
              ricsa_test::scaled_ms(1000));
  EXPECT_GE(c.sse.keepalives, 1);
  EXPECT_GE(c.sse.events.size(), 1u);
  fe.stop();
}

TEST(SseStream, SlowConsumerDowngradedMidStream) {
  // 160x160 frames so the stream moves real bytes, and a fixed 16 KiB
  // server sndbuf so the byte backlog reaches the drain-timed goodput
  // meter after tens of kilobytes instead of after megabytes of autotuned
  // kernel buffering. With the PNG encoder doing real compression, bodies
  // are a few KB (~100 KB/s of production); the slow phase reads 256 B
  // per 10 ms (~25 KB/s) so utilization sits well under the downgrade
  // threshold once the buffers fill.
  w::FrontEndConfig config = paced_config();
  config.session.viz.image_width = 160;
  config.session.viz.image_height = 160;
  config.sndbuf = 16384;
  w::AjaxFrontEnd fe(config);
  const int port = fe.start();
  while (fe.frame_seq() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Phase one: read slowly until the drained callbacks stall behind the
  // full socket buffers and the drain-timed goodput meter downgrades the
  // session — the same session a long-poller would get — *inside* the open
  // stream, no reconnect needed. Phase two: drain the backlog at full
  // speed and find the cheap-tier events the downgrade produced.
  SseClient c;
  ASSERT_TRUE(c.open(port, "/api/stream?since=0&timeout=1&client=slow-sse",
                     /*rcvbuf=*/4096));
  std::atomic<bool> fast{false};
  std::atomic<bool> saw_cheap_tier{false};
  std::thread reader([&] {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    std::size_t scanned = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      if (!c.pump(fast ? 65536 : 256)) break;
      for (; scanned < c.sse.events.size(); ++scanned) {
        const Json body = Json::parse(c.sse.events[scanned].data);
        const std::string tier = body.at("tier").as_string();
        if (tier == "half" || tier == "state") saw_cheap_tier = true;
      }
      if (saw_cheap_tier) break;
      if (!fast) std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  bool downgraded = false;
  double delivered = 0.0;
  Json pacing;
  const auto stats_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!downgraded && std::chrono::steady_clock::now() < stats_deadline) {
    pacing = Json::parse(w::http_get(port, "/api/stats").body).at("pacing");
    for (const Json& client : pacing.at("clients").as_array()) {
      if (client.at("client").as_string() != "slow-sse") continue;
      delivered = client.at("delivered").as_number();
      if (client.at("downgrades").as_number() >= 1.0) downgraded = true;
    }
    if (!downgraded) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  }
  fast = true;
  reader.join();
  if (ricsa_test::kTimeScale > 1.0) {
    // The downgrade keys on the ratio of drain-timed goodput to frame
    // cadence — and the kernel's socket-buffer autotuning does not slow
    // down with an instrumented build, so that ratio is warped under
    // TSAN. There, this test is race coverage for concurrent stream
    // backpressure (reader, stats poller, hub workers, drain callbacks),
    // not a pacing-outcome check.
    fe.stop();
    GTEST_SKIP() << "pacing outcome requires native-speed timing";
  }
  EXPECT_TRUE(downgraded) << pacing.dump();
  // The shared session table reports the stream client like any poller
  // would appear: sessions created by a stream, samples from its drains.
  EXPECT_GT(delivered, 0.0);
  EXPECT_TRUE(saw_cheap_tier.load()) << c.sse.events.size() << " events";
  fe.stop();
}

TEST(SseStream, RegistryShutdownEndsStreamCleanly) {
  w::AjaxFrontEnd fe(fast_config());
  const int port = fe.start();
  while (fe.frame_seq() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  SseClient c;
  ASSERT_TRUE(c.open(port, "/api/stream?since=0&delta=1&timeout=1"));
  const auto deadline =
      std::chrono::steady_clock::now() + ricsa_test::scaled_ms(800);
  while (c.sse.events.empty() &&
         std::chrono::steady_clock::now() < deadline) {
    ASSERT_TRUE(c.pump());
  }
  ASSERT_GE(c.sse.events.size(), 1u);

  // Shutting the registry down completes the parked hub wait with the
  // shutdown verdict; the stream must end with the terminal chunk and EOF
  // — a clean close, not a stalled or reset connection.
  fe.registry().shutdown();
  const auto end_deadline =
      std::chrono::steady_clock::now() + ricsa_test::scaled_ms(3000);
  while (!c.eof && std::chrono::steady_clock::now() < end_deadline) {
    c.pump();
  }
  EXPECT_TRUE(c.eof);
  EXPECT_TRUE(c.decoder.terminated);
  EXPECT_FALSE(c.decoder.error);
  fe.stop();
}

// Satellite regression: a producer still holding a StreamSink while the
// server (and with it the connection's home reactor) shuts down. chunk()
// must flip to a clean refusal — never post into a stopped loop, never
// crash — and the sink stays permanently dead afterwards.
TEST(HttpStream, ChunkRacingServerStopRefusesCleanly) {
  auto server = std::make_unique<w::HttpServer>();
  std::promise<w::HttpServer::StreamSink> captured;
  server->route_stream(
      "GET", "/s", [&](const w::HttpRequest&, w::HttpServer::StreamSink sink) {
        sink.begin({{"Content-Type", "text/event-stream"}});
        if (sink.head_only()) return;
        captured.set_value(sink);  // producer continues outside the handler
      });
  const int port = server->start();
  const int fd = connect_to(port);
  ASSERT_GE(fd, 0);
  const std::string request = "GET /s HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_TRUE(w::detail::write_all(fd, request.data(), request.size()));
  w::HttpServer::StreamSink sink = captured.get_future().get();
  ASSERT_TRUE(sink.alive());

  // The producer pushes chunks for as long as the sink accepts them while
  // stop() tears the reactors down underneath it. Whichever side of the
  // race each call lands on — dead flag observed, or the post into an
  // already-drained loop refused — chunk() returns false and sets dead.
  std::atomic<bool> refused{false};
  std::thread producer([&] {
    while (sink.chunk("data: x\n\n")) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    refused.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server->stop();
  producer.join();
  EXPECT_TRUE(refused.load());
  EXPECT_FALSE(sink.alive());
  EXPECT_FALSE(sink.chunk("data: late\n\n"));  // permanently dead
  sink.end();                                  // safe no-op on a dead sink
  ::close(fd);
  server.reset();
}

// The frontend-level version of the same race: the full stop() sequence
// (server first, then registry) runs while an SSE pump has a wait parked
// and chunks in flight. The registry shutdown completes the parked waiter,
// whose completion fires a chunk into the now-dead sink — that in-flight
// chunk must be refused, not delivered to a stopped reactor.
TEST(SseStream, StopDuringActiveStreamWithInFlightChunksIsClean) {
  auto fe = std::make_unique<w::AjaxFrontEnd>(fast_config());
  const int port = fe->start();
  while (fe->frame_seq() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  SseClient c;
  ASSERT_TRUE(c.open(port, "/api/stream?since=0&delta=1&timeout=1"));
  const auto deadline =
      std::chrono::steady_clock::now() + ricsa_test::scaled_ms(3000);
  while (c.sse.events.empty() &&
         std::chrono::steady_clock::now() < deadline) {
    ASSERT_TRUE(c.pump());
  }
  ASSERT_GE(c.sse.events.size(), 1u);  // the stream is live mid-teardown

  fe->stop();
  fe.reset();  // destruction directly behind stop: the harshest ordering

  // The connection closed out from under the client; reading to EOF must
  // terminate promptly (no stalled fd, no leaked parked completion).
  const auto end_deadline =
      std::chrono::steady_clock::now() + ricsa_test::scaled_ms(3000);
  while (!c.eof && std::chrono::steady_clock::now() < end_deadline) {
    c.pump();
  }
  EXPECT_TRUE(c.eof);
  EXPECT_FALSE(c.decoder.error);
}
