// Reactor subsystem tests: the timer wheel and event loop in isolation,
// then the reactor-driven HTTP server's connection state machine at its
// edges —
//  * slow-loris partial request lines die at the idle deadline while a
//    slow-but-steady sender inside the per-byte window survives,
//  * a response bigger than the socket buffers drains correctly across
//    EAGAIN / EPOLLOUT cycles,
//  * a timer-driven poll timeout fires while an earlier pipelined
//    response's write is still pending, and both leave in request order,
//  * the connection cap answers 503 instead of crashing or hanging, and
//    frees capacity when a connection leaves.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/reactor.hpp"
#include "net/socket.hpp"
#include "net/timer_wheel.hpp"
#include "web/http.hpp"
#include "web/hub.hpp"

namespace n = ricsa::net;
namespace w = ricsa::web;

using Clock = std::chrono::steady_clock;

namespace {

/// Blocking loopback connect for driving the server with raw bytes.
/// `rcvbuf` > 0 shrinks SO_RCVBUF before connecting (it must be set
/// pre-connect to bound the advertised window).
int raw_connect(int port, int rcvbuf = 0, double recv_timeout_s = 5.0) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  if (rcvbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  }
  timeval tv{static_cast<time_t>(recv_timeout_s),
             static_cast<suseconds_t>(
                 (recv_timeout_s - static_cast<time_t>(recv_timeout_s)) * 1e6)};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

struct RawResponse {
  int status = 0;
  std::map<std::string, std::string> headers;
  std::string body;
};

/// Read one complete HTTP response off a blocking fd; `carry` holds bytes
/// already read past previous responses (pipelining).
bool read_response(int fd, std::string& carry, RawResponse& out) {
  char chunk[16384];
  std::size_t header_end;
  while ((header_end = carry.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) return false;
    carry.append(chunk, static_cast<std::size_t>(got));
  }
  {
    std::istringstream lines(carry.substr(0, header_end));
    std::string line;
    std::getline(lines, line);
    std::istringstream status_line(line);
    std::string version;
    status_line >> version >> out.status;
    while (std::getline(lines, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const auto colon = line.find(':');
      if (colon == std::string::npos) continue;
      std::string key = line.substr(0, colon);
      for (char& c : key) c = static_cast<char>(::tolower(c));
      std::string value = line.substr(colon + 1);
      while (!value.empty() && value.front() == ' ') value.erase(0, 1);
      out.headers[key] = value;
    }
  }
  carry.erase(0, header_end + 4);
  std::size_t content_length = 0;
  if (out.headers.count("content-length")) {
    content_length = static_cast<std::size_t>(
        std::stoull(out.headers.at("content-length")));
  }
  while (carry.size() < content_length) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) return false;
    carry.append(chunk, static_cast<std::size_t>(got));
  }
  out.body = carry.substr(0, content_length);
  carry.erase(0, content_length);
  return true;
}

bool send_all(int fd, const std::string& text) {
  return w::detail::write_all(fd, text.data(), text.size());
}

}  // namespace

// ------------------------------------------------------------ TimerWheel --

TEST(TimerWheel, FiresAtDeadlineGranularityAndHonorsCancel) {
  n::TimerWheel wheel(std::chrono::milliseconds(1), 8);
  const auto t0 = Clock::now();
  int fired = 0;
  wheel.schedule(t0 + std::chrono::milliseconds(2), [&] { fired += 1; });
  const std::uint64_t id =
      wheel.schedule(t0 + std::chrono::milliseconds(3), [&] { fired += 10; });
  EXPECT_EQ(wheel.pending(), 2u);

  // Nothing due yet (deadline + one tick of slack).
  wheel.advance(t0 + std::chrono::milliseconds(1));
  EXPECT_EQ(fired, 0);

  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.cancel(id));  // already gone

  wheel.advance(t0 + std::chrono::milliseconds(4));
  EXPECT_EQ(fired, 1);  // the cancelled entry stayed silent
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, EntryBeyondOneRevolutionWaitsItsRound) {
  // 8 slots x 1 ms: a 20 ms deadline shares a bucket with earlier ticks
  // and must not fire until its own revolution comes around.
  n::TimerWheel wheel(std::chrono::milliseconds(1), 8);
  const auto t0 = Clock::now();
  bool fired = false;
  wheel.schedule(t0 + std::chrono::milliseconds(20), [&] { fired = true; });
  for (int ms = 1; ms <= 12; ++ms) {
    wheel.advance(t0 + std::chrono::milliseconds(ms));
  }
  EXPECT_FALSE(fired);
  wheel.advance(t0 + std::chrono::milliseconds(22));
  EXPECT_TRUE(fired);
}

TEST(TimerWheel, LateAdvanceStillFiresEverySkippedEntry) {
  // A stalled driver (one big jump past many ticks) must fire everything
  // due, not just the entries in the last few slots.
  n::TimerWheel wheel(std::chrono::milliseconds(1), 8);
  const auto t0 = Clock::now();
  int fired = 0;
  for (int ms = 1; ms <= 30; ++ms) {
    wheel.schedule(t0 + std::chrono::milliseconds(ms), [&] { ++fired; });
  }
  wheel.advance(t0 + std::chrono::milliseconds(200));
  EXPECT_EQ(fired, 30);
  EXPECT_EQ(wheel.pending(), 0u);
}

// --------------------------------------------------------------- Reactor --

TEST(Reactor, RunsPostedTasksAndTimersOnTheLoopThread) {
  n::Reactor reactor;
  std::thread loop([&] { reactor.run(); });

  std::atomic<bool> posted_ran{false};
  std::atomic<bool> on_loop{false};
  reactor.post([&] {
    posted_ran = true;
    on_loop = reactor.in_loop_thread();
  });

  std::atomic<bool> timer_fired{false};
  // Timer registration is loop-thread-only; bounce through post().
  reactor.post(
      [&] { reactor.run_after(0.02, [&] { timer_fired = true; }); });

  const auto deadline = Clock::now() + std::chrono::seconds(2);
  while (!timer_fired.load() && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(posted_ran.load());
  EXPECT_TRUE(on_loop.load());
  EXPECT_TRUE(timer_fired.load());

  std::atomic<bool> cancelled{false};
  std::atomic<bool> never{false};
  reactor.post([&] {
    const std::uint64_t id = reactor.run_after(30.0, [&] { never = true; });
    cancelled = reactor.cancel(id);
  });

  // A task posted before stop() is guaranteed to run (shutdown sequences
  // depend on it).
  std::atomic<bool> last_task{false};
  reactor.post([&] { last_task = true; });
  reactor.stop();
  loop.join();
  EXPECT_TRUE(last_task.load());
  EXPECT_TRUE(cancelled.load());
  EXPECT_FALSE(never.load());
  // After the loop exits, post() refuses instead of queueing forever.
  EXPECT_FALSE(reactor.post([] {}));
}

// ------------------------------------------------------------ slow loris --

TEST(ReactorHttp, SlowLorisPartialRequestDiesAtIdleDeadline) {
  w::HttpServer server;
  server.set_idle_read_timeout(0.3);
  server.route("GET", "/hello",
               [](const w::HttpRequest&) { return w::HttpResponse::text("hi"); });
  const int port = server.start();

  const int fd = raw_connect(port, 0, 3.0);
  ASSERT_TRUE(send_all(fd, "GET /hel"));  // a request line that never ends
  const auto t0 = Clock::now();
  char buf[64];
  const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);  // blocks until close
  const double waited =
      std::chrono::duration<double>(Clock::now() - t0).count();
  EXPECT_EQ(got, 0);  // orderly close from the server, not a timeout
  EXPECT_GE(waited, 0.15);
  EXPECT_LT(waited, 2.0);
  ::close(fd);
  server.stop();
}

TEST(ReactorHttp, SlowButSteadySenderSurvivesThePerByteWindow) {
  w::HttpServer server;
  server.set_idle_read_timeout(0.3);
  server.route("GET", "/hello",
               [](const w::HttpRequest&) { return w::HttpResponse::text("hi"); });
  const int port = server.start();

  // Total request time (~0.45 s) exceeds the deadline, but every byte
  // arrives within it: the deadline is idle time, not request time.
  const int fd = raw_connect(port);
  for (const char* piece : {"GET /hello", " HTTP/1.1\r\nHost: x\r\n",
                            "Connection: close\r\n\r\n"}) {
    ASSERT_TRUE(send_all(fd, piece));
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  }
  std::string carry;
  RawResponse response;
  ASSERT_TRUE(read_response(fd, carry, response));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "hi");
  ::close(fd);
  server.stop();
}

TEST(ReactorHttp, RequestThenFinClientIsStillServed) {
  // A legal HTTP client may send its request and immediately shut down its
  // write side; the FIN must not make the server drop the request.
  w::HttpServer server;
  server.route("GET", "/hello",
               [](const w::HttpRequest&) { return w::HttpResponse::text("hi"); });
  const int port = server.start();

  const int fd = raw_connect(port);
  ASSERT_TRUE(send_all(
      fd, "GET /hello HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"));
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
  std::string carry;
  RawResponse response;
  ASSERT_TRUE(read_response(fd, carry, response));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "hi");
  // ...and the connection closes afterwards instead of lingering.
  char buf[16];
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);
  ::close(fd);
  server.stop();
}

// ------------------------------------------- EAGAIN mid-response writes --

TEST(ReactorHttp, ResponseLargerThanSocketBuffersDrainsAcrossEagain) {
  std::string big(12u << 20, '\0');
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + (i % 26));
  }
  w::HttpServer server;
  server.route("GET", "/big", [&big](const w::HttpRequest&) {
    return w::HttpResponse::text(big);
  });
  const int port = server.start();

  // A tiny receive buffer plus a read delay forces the server deep into
  // EAGAIN territory: the response must park on EPOLLOUT and resume.
  const int fd = raw_connect(port, 4096, 10.0);
  ASSERT_TRUE(send_all(
      fd, "GET /big HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  std::string carry;
  RawResponse response;
  ASSERT_TRUE(read_response(fd, carry, response));
  EXPECT_EQ(response.status, 200);
  ASSERT_EQ(response.body.size(), big.size());
  EXPECT_EQ(response.body, big);  // no bytes lost or reordered at any seam
  ::close(fd);
  server.stop();
}

// ----------------------- poll timeout firing while a write is pending --

TEST(ReactorHttp, HubPollTimeoutFiresWhileEarlierWriteIsPending) {
  std::string big(8u << 20, 'x');
  w::HttpServer server;
  w::FrameHub::Config hub_config;
  hub_config.workers = 2;
  hub_config.reactor = &server.reactor();  // hub deadlines on the same loop
  w::FrameHub hub(hub_config);

  server.route("GET", "/big", [&big](const w::HttpRequest&) {
    return w::HttpResponse::text(big);
  });
  server.route_async(
      "GET", "/park",
      [&hub](const w::HttpRequest&, w::HttpServer::ResponseSink sink) {
        // Nothing is ever published: this waiter can only complete through
        // the reactor-registered timeout sweep.
        hub.wait_async(1000, 0.25, [sink](w::FramePtr frame) {
          sink(w::HttpResponse::json(frame ? "{\"frame\":true}"
                                           : "{\"timeout\":true}"));
        });
      });
  const int port = server.start();

  // Pipeline both requests, then refuse to read long enough that the /big
  // response is parked on a full socket buffer when the /park timeout
  // timer fires. Responses must still arrive complete and in order.
  const int fd = raw_connect(port, 4096, 10.0);
  ASSERT_TRUE(send_all(fd,
                       "GET /big HTTP/1.1\r\nHost: x\r\n\r\n"
                       "GET /park HTTP/1.1\r\nHost: x\r\n\r\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(600));

  std::string carry;
  RawResponse first, second;
  ASSERT_TRUE(read_response(fd, carry, first));
  EXPECT_EQ(first.status, 200);
  EXPECT_EQ(first.body.size(), big.size());
  ASSERT_TRUE(read_response(fd, carry, second));
  EXPECT_EQ(second.status, 200);
  EXPECT_NE(second.body.find("timeout"), std::string::npos);

  const auto stats = hub.stats();
  EXPECT_EQ(stats.timeouts, 1u);
  ::close(fd);
  hub.shutdown();
  server.stop();
}

// ------------------------------------------------- connection cap / 503 --

TEST(ReactorHttp, ConnectionCapAnswers503AndRecoversWhenSlotsFree) {
  w::HttpServer server;
  server.set_max_connections(2);
  server.route("GET", "/hello",
               [](const w::HttpRequest&) { return w::HttpResponse::text("hi"); });
  const int port = server.start();

  // Two keep-alive clients occupy the cap.
  w::HttpClient a(port), b(port);
  EXPECT_EQ(a.get("/hello").body, "hi");
  EXPECT_EQ(b.get("/hello").body, "hi");

  // The third connection is told 503 instead of hanging or crashing.
  const auto rejected = w::http_get(port, "/hello");
  EXPECT_EQ(rejected.status, 503);
  EXPECT_GE(server.connections_rejected(), 1u);

  // Freeing a slot restores service for new connections.
  a.close();
  const auto deadline = Clock::now() + std::chrono::seconds(2);
  int status = 0;
  while (Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    status = w::http_get(port, "/hello").status;
    if (status == 200) break;
  }
  EXPECT_EQ(status, 200);
  EXPECT_EQ(b.get("/hello").body, "hi");  // survivor unaffected
  server.stop();
}

// ------------------------------------------------------- thread budget --

TEST(ReactorHttp, ParkedConnectionsDoNotGrowServerThreads) {
  // 64 parked long-polls on a 2-worker server: with thread-per-connection
  // this needed 64 threads; the reactor needs its loop plus the pool.
  w::HttpServer server;
  server.set_workers(2);
  std::atomic<int> parked{0};
  std::vector<w::HttpServer::ResponseSink> sinks;
  std::mutex sinks_mutex;
  server.route_async("GET", "/park",
                     [&](const w::HttpRequest&, w::HttpServer::ResponseSink s) {
                       std::lock_guard<std::mutex> lock(sinks_mutex);
                       sinks.push_back(std::move(s));
                       ++parked;
                     });
  const int port = server.start();

  std::vector<std::unique_ptr<w::HttpClient>> clients;
  std::vector<std::thread> pollers;
  for (int i = 0; i < 64; ++i) {
    clients.push_back(std::make_unique<w::HttpClient>(port));
  }
  for (int i = 0; i < 64; ++i) {
    pollers.emplace_back([&, i] {
      try {
        clients[static_cast<std::size_t>(i)]->get("/park", 10.0);
      } catch (const std::exception&) {
      }
    });
  }
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (parked.load() < 64 && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(parked.load(), 64);
  EXPECT_EQ(server.connections_open(), 64u);

  // Release everyone and let the clients finish.
  {
    std::lock_guard<std::mutex> lock(sinks_mutex);
    for (const auto& sink : sinks) sink(w::HttpResponse::text("go"));
  }
  for (auto& t : pollers) t.join();
  server.stop();
}
