// BufferChain: the zero-copy scatter-gather output queue under every
// connection. The suite pins down the three properties the wire path
// depends on: (1) shared payloads are referenced, never copied, and their
// refcounts release exactly at kernel-drain time; (2) consume() resumes a
// partial writev at any byte seam, including mid-segment; (3) response
// assembly (append_response_chain) emits headers and bodies as separate
// segments — no header+body concatenation anywhere on the write path.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/uio.h>

#include <memory>
#include <string>

#include "net/buffer_chain.hpp"
#include "net/socket.hpp"
#include "web/http.hpp"

namespace n = ricsa::net;
namespace w = ricsa::web;

namespace {

/// Flatten the chain's live segments through the same fill_iov the writer
/// uses — what the next writev would gather.
std::string gathered(const n::BufferChain& chain) {
  std::string out;
  for (std::size_t i = 0; i < chain.segments(); ++i) {
    out.append(chain.segment_data(i), chain.segment_size(i));
  }
  return out;
}

}  // namespace

TEST(BufferChain, StartsEmpty) {
  n::BufferChain chain;
  EXPECT_TRUE(chain.empty());
  EXPECT_EQ(chain.size(), 0u);
  EXPECT_EQ(chain.segments(), 0u);
  struct iovec iov[4];
  EXPECT_EQ(chain.fill_iov(iov, 4), 0);
}

TEST(BufferChain, ConsecutiveCopiesCoalesceIntoOneSegment) {
  n::BufferChain chain;
  chain.append_copy("HTTP/1.1 200 OK\r\n");
  chain.append_copy("Content-Length: 2\r\n");
  chain.append_copy("\r\n");
  EXPECT_EQ(chain.segments(), 1u);
  EXPECT_EQ(gathered(chain), "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\n");
}

TEST(BufferChain, SharedBodyIsReferencedNotCopied) {
  auto body = std::make_shared<const std::string>("the frame body");
  n::BufferChain chain;
  chain.append_copy("head:");
  chain.append_shared(body);
  ASSERT_EQ(chain.segments(), 2u);
  // The segment points INTO the shared string — the zero-copy contract.
  EXPECT_EQ(chain.segment_data(1), body->data());
  EXPECT_EQ(chain.size(), 5u + body->size());
}

TEST(BufferChain, SharedSliceRespectsOffsetAndLength) {
  auto buf = std::make_shared<const std::string>("0123456789");
  n::BufferChain chain;
  chain.append_shared(buf, 2, 5);
  EXPECT_EQ(gathered(chain), "23456");
  EXPECT_EQ(chain.segment_data(0), buf->data() + 2);

  // Out-of-range or empty slices append nothing.
  chain.append_shared(buf, 10, 4);
  chain.append_shared(buf, 3, 0);
  EXPECT_EQ(chain.size(), 5u);
}

TEST(BufferChain, AppendChainSplicesAndEmptiesSource) {
  auto body = std::make_shared<const std::string>("payload");
  n::BufferChain inner;
  inner.append_shared(body);
  n::BufferChain outer;
  outer.append_copy("7\r\n");
  outer.append_chain(std::move(inner));
  outer.append_copy("\r\n");
  EXPECT_EQ(inner.size(), 0u);
  EXPECT_EQ(gathered(outer), "7\r\npayload\r\n");
  // The spliced body is still the shared buffer, not a copy.
  EXPECT_EQ(outer.segment_data(1), body->data());
}

TEST(BufferChain, ConsumeResumesAtEveryByteSeam) {
  // Mixed copied/shared/copied chain; consuming k bytes must leave exactly
  // the wire suffix for every k, including seams inside each segment.
  const auto body = std::make_shared<const std::string>("0123456789");
  const std::string wire = "HDR:0123456789TAIL";
  for (std::size_t k = 0; k <= wire.size(); ++k) {
    n::BufferChain chain;
    chain.append_copy("HDR:");
    chain.append_shared(body);
    chain.append_copy("TAIL");
    chain.consume(k);
    EXPECT_EQ(chain.size(), wire.size() - k) << "seam " << k;
    EXPECT_EQ(gathered(chain), wire.substr(k)) << "seam " << k;
  }
}

TEST(BufferChain, ConsumePastEndClampsAndClears) {
  n::BufferChain chain;
  chain.append_copy("abc");
  chain.consume(100);
  EXPECT_TRUE(chain.empty());
  EXPECT_EQ(chain.segments(), 0u);
}

TEST(BufferChain, DrainReleasesSharedReferenceAtLastByte) {
  auto body = std::make_shared<const std::string>(std::string(64, 'x'));
  n::BufferChain chain;
  chain.append_copy("head");
  chain.append_shared(body);
  EXPECT_EQ(body.use_count(), 2);
  // Everything but the body's last byte: the reference must still be held.
  chain.consume(4 + 63);
  EXPECT_EQ(body.use_count(), 2);
  // The final byte drains: the chain drops its reference immediately —
  // kernel-drain time, not chain-destruction time.
  chain.consume(1);
  EXPECT_EQ(body.use_count(), 1);
  EXPECT_TRUE(chain.empty());
}

TEST(BufferChain, FillIovCapsAtMaxAndSkipsNothing) {
  n::BufferChain chain;
  // Shared segments never coalesce, so this builds 6 segments.
  for (int i = 0; i < 6; ++i) {
    chain.append_shared(
        std::make_shared<const std::string>(std::string(1, 'a' + i)));
  }
  struct iovec iov[4];
  const int count = chain.fill_iov(iov, 4);
  ASSERT_EQ(count, 4);
  std::string head;
  for (int i = 0; i < count; ++i) {
    head.append(static_cast<const char*>(iov[i].iov_base), iov[i].iov_len);
  }
  EXPECT_EQ(head, "abcd");
}

// The writer's actual loop against a socket whose send buffer is far
// smaller than the payload: writev stalls partway through the shared
// segment, consume() records the seam, and the resumed writes deliver a
// byte-exact stream.
TEST(BufferChain, PartialWritevResumesMidSegmentOverTinySendBuffer) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, fds), 0);
  n::Socket writer(fds[0]);
  n::Socket reader(fds[1]);
  const int tiny = 4096;
  ASSERT_EQ(::setsockopt(writer.fd(), SOL_SOCKET, SO_SNDBUF, &tiny,
                         sizeof(tiny)),
            0);

  std::string pattern(512 * 1024, '\0');
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<char>('a' + (i % 26));
  }
  auto body = std::make_shared<const std::string>(std::move(pattern));
  n::BufferChain chain;
  chain.append_copy("80000\r\n");
  chain.append_shared(body);
  chain.append_copy("\r\n");
  const std::string expected = "80000\r\n" + *body + "\r\n";

  std::string received;
  bool saw_partial = false;
  while (!chain.empty()) {
    struct iovec iov[16];
    const int iovcnt = chain.fill_iov(iov, 16);
    const std::size_t before = chain.size();
    std::size_t written = 0;
    const n::IoStatus status = writer.writev(iov, iovcnt, written);
    ASSERT_NE(status, n::IoStatus::kError);
    chain.consume(written);
    if (written > 0 && written < before) saw_partial = true;
    if (status == n::IoStatus::kWouldBlock || !chain.empty()) {
      // Drain the reader so the next writev can make progress.
      while (reader.read_some(received) == n::IoStatus::kOk) {
      }
    }
  }
  while (reader.read_some(received) == n::IoStatus::kOk) {
  }
  EXPECT_TRUE(saw_partial) << "payload never stalled; shrink SO_SNDBUF";
  ASSERT_EQ(received.size(), expected.size());
  EXPECT_EQ(received, expected);  // byte-exact across every resume seam
  // Fully drained: the chain released its body reference.
  EXPECT_EQ(body.use_count(), 1);
}

// ------------------------------------------------- response assembly ----

TEST(ResponseChain, SharedBodyRidesAsItsOwnSegment) {
  auto body = std::make_shared<const std::string>("{\"seq\":7}");
  const char* payload = body->data();
  n::BufferChain chain;
  w::detail::append_response_chain(
      chain, w::HttpResponse::json_shared(std::move(body)),
      /*keep_alive=*/true, /*suppress_body=*/false);
  ASSERT_EQ(chain.segments(), 2u);
  // Acceptance check for the refactor: the body was never concatenated
  // into a response string — segment 1 aliases the caller's buffer.
  EXPECT_EQ(chain.segment_data(1), payload);
  const std::string head(chain.segment_data(0), chain.segment_size(0));
  EXPECT_NE(head.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(head.find("Content-Length: 9"), std::string::npos);
}

TEST(ResponseChain, PlainBodyIsMovedNotConcatenated) {
  w::HttpResponse response = w::HttpResponse::text("hello world");
  n::BufferChain chain;
  w::detail::append_response_chain(chain, std::move(response),
                                   /*keep_alive=*/true,
                                   /*suppress_body=*/false);
  // Header block and body are separate segments: assembling the response
  // did not splice the body into a header string.
  ASSERT_EQ(chain.segments(), 2u);
  EXPECT_EQ(std::string(chain.segment_data(1), chain.segment_size(1)),
            "hello world");
}

TEST(ResponseChain, HeadResponseCarriesZeroBodySegments) {
  auto body = std::make_shared<const std::string>("{\"big\":\"body\"}");
  n::BufferChain chain;
  w::detail::append_response_chain(
      chain, w::HttpResponse::json_shared(body), /*keep_alive=*/true,
      /*suppress_body=*/true);
  // One header segment, nothing else: HEAD promises the length without
  // shipping a byte of body.
  ASSERT_EQ(chain.segments(), 1u);
  const std::string head(chain.segment_data(0), chain.segment_size(0));
  EXPECT_NE(head.find("Content-Length: 14"), std::string::npos);
  EXPECT_EQ(chain.size(), head.size());
}

TEST(ResponseChain, PipelinedResponsesQueueInOrder) {
  auto a = std::make_shared<const std::string>("AAAA");
  auto b = std::make_shared<const std::string>("BB");
  n::BufferChain chain;
  w::detail::append_response_chain(chain, w::HttpResponse::json_shared(a),
                                   true, false);
  w::detail::append_response_chain(chain, w::HttpResponse::json_shared(b),
                                   true, false);
  const std::string wire = gathered(chain);
  const auto first = wire.find("AAAA");
  const auto second = wire.find("BB");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
  // Both bodies still shared, not copied.
  EXPECT_EQ(a.use_count(), 2);
  EXPECT_EQ(b.use_count(), 2);
}
