// Pluggable congestion-controller tests:
//  * RMSA parity — RmsaPacingController behind the CongestionController
//    interface reproduces the raw RmsaController's sleep sequence
//    sample-for-sample (the refactor seam must be bit-identical)
//  * DelayGradientController on synthetic RTT series: additive increase
//    below T_low, gradient-weighted MD on a ramp, level MD above T_high,
//    HAI after a falling run, the achieved-rate tether, loss handling,
//    and the queue-empty probe gate (including min-RTT survival across
//    reset, which tier changes rely on)
//  * TrendlineController on synthetic delay series: overuse MD against
//    the incoming-rate estimate, one MD per excursion, hold on drain,
//    additive increase with the incoming-rate ceiling
//  * controller name parsing and the `client=` id sanitizer that keys the
//    session table.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "transport/congestion_controller.hpp"
#include "transport/rate_controller.hpp"
#include "web/session.hpp"

namespace t = ricsa::transport;
namespace w = ricsa::web;

namespace {

constexpr double kCadence = 0.05;  // 20 fps
constexpr double kMaxInterval = 1.0;

t::CongestionSample sample(double now_s, double offered_fps,
                           double achieved_fps, double rtt_s,
                           bool loss = false) {
  t::CongestionSample s;
  s.now_s = now_s;
  s.offered_fps = offered_fps;
  s.achieved_fps = achieved_fps;
  s.rtt_s = rtt_s;
  s.loss = loss;
  return s;
}

// ------------------------------------------------------------- RMSA parity

// The exact trace the pacing layer produces: offered/achieved frame rates
// with occasional losses, covering convergence, overshoot, and recovery.
struct TraceStep {
  double offered_fps;
  double achieved_fps;
  bool loss;
};

std::vector<TraceStep> recorded_trace() {
  std::vector<TraceStep> trace;
  for (int i = 0; i < 10; ++i) trace.push_back({20.0, 20.0, false});
  for (int i = 0; i < 15; ++i) trace.push_back({20.0, 6.0 + 0.3 * i, false});
  trace.push_back({12.0, 5.0, true});
  for (int i = 0; i < 20; ++i) trace.push_back({10.0, 9.5, false});
  trace.push_back({10.0, 2.0, true});
  for (int i = 0; i < 10; ++i) trace.push_back({5.0, 4.9, false});
  return trace;
}

TEST(RmsaParity, InterfaceReproducesRawControllerSleepForSleep) {
  t::ControllerConfig config;
  t::RmsaPacingController wrapped(config);
  wrapped.reset(kCadence, kCadence, kMaxInterval);

  // The raw controller exactly as web/session.hpp historically drove it:
  // frame-rate domain, one frame per burst, achieved rate as the target.
  t::RmsaConfig raw_config;
  raw_config.gain_a = config.rmsa_gain_a;
  raw_config.alpha = config.rmsa_alpha;
  raw_config.window = 1;
  raw_config.datagram_bytes = 1;
  raw_config.initial_sleep_s = kCadence;
  raw_config.min_sleep_s = kCadence;
  raw_config.max_sleep_s = kMaxInterval;
  t::RmsaController raw(raw_config);

  double now = 0.0;
  for (const TraceStep& step : recorded_trace()) {
    now += kCadence;
    raw.set_target(step.achieved_fps);
    const double raw_sleep =
        raw.update(t::RateFeedback{step.offered_fps, step.loss});
    const double wrapped_sleep = wrapped.update(
        sample(now, step.offered_fps, step.achieved_fps, 0.08, step.loss));
    ASSERT_DOUBLE_EQ(raw_sleep, wrapped_sleep);
    ASSERT_DOUBLE_EQ(raw.sleep_time(), wrapped.interval_s());
  }
}

TEST(RmsaParity, ResetRestartsTheGainScheduleIdentically) {
  t::ControllerConfig config;
  t::RmsaPacingController wrapped(config);
  wrapped.reset(kCadence, kCadence, kMaxInterval);
  for (int i = 0; i < 7; ++i) {
    wrapped.update(sample(i * kCadence, 20.0, 5.0, 0.1));
  }
  wrapped.reset(0.2, kCadence, kMaxInterval);

  t::RmsaConfig raw_config;
  raw_config.gain_a = config.rmsa_gain_a;
  raw_config.alpha = config.rmsa_alpha;
  raw_config.window = 1;
  raw_config.datagram_bytes = 1;
  raw_config.initial_sleep_s = 0.2;
  raw_config.min_sleep_s = kCadence;
  raw_config.max_sleep_s = kMaxInterval;
  t::RmsaController raw(raw_config);

  for (int i = 0; i < 12; ++i) {
    raw.set_target(8.0);
    const double raw_sleep = raw.update(t::RateFeedback{10.0, false});
    const double wrapped_sleep =
        wrapped.update(sample(1.0 + i * kCadence, 10.0, 8.0, 0.1));
    ASSERT_DOUBLE_EQ(raw_sleep, wrapped_sleep);
  }
}

TEST(RmsaParity, LegacyPlacementFlagsMatchTheHardWiredBehavior) {
  t::ControllerConfig config;
  t::RmsaPacingController rmsa(config);
  // The hard-wired controller stretched the interval only on the cheapest
  // tier and never vetoed a probe; the wrapped one must report the same.
  EXPECT_FALSE(rmsa.paces_all_tiers());
  EXPECT_TRUE(rmsa.probe_ok());
  EXPECT_EQ(rmsa.name(), "rmsa");
}

// --------------------------------------------------- delay gradient (TIMELY)

t::DelayGradientController gradient_controller(t::ControllerConfig config =
                                                   t::ControllerConfig{}) {
  config.kind = t::ControllerKind::kDelayGradient;
  t::DelayGradientController c(config);
  c.reset(kCadence, kCadence, kMaxInterval);
  return c;
}

TEST(DelayGradient, LowRttRampsAdditively) {
  auto c = gradient_controller();
  // RTT pinned under T_low: AI every sample regardless of gradient sign.
  // Start from a stretched interval so there is room to ramp.
  c.reset(0.5, kCadence, kMaxInterval);
  c.update(sample(0.0, 2.0, 50.0, 0.01));  // prime prev_rtt
  double prev_rate = 1.0 / c.interval_s();
  for (int i = 1; i <= 6; ++i) {
    c.update(sample(i * kCadence, 2.0, 50.0, 0.01));
    const double rate = 1.0 / c.interval_s();
    EXPECT_NEAR(rate, prev_rate + 0.5, 1e-9);
    prev_rate = rate;
  }
}

TEST(DelayGradient, RisingRttRampTriggersGradientWeightedDecrease) {
  auto c = gradient_controller();
  // Ramp inside the guard band (T_low .. T_high): only the gradient can
  // see it. Achieved stays high so the tether never binds.
  double rtt = 0.05;
  c.update(sample(0.0, 20.0, 50.0, rtt));  // prime prev_rtt
  double prev_rate = 1.0 / c.interval_s();
  for (int i = 1; i <= 8; ++i) {
    rtt += 0.015;
    c.update(sample(i * kCadence, 20.0, 50.0, rtt));
  }
  EXPECT_GT(c.gradient(), 0.0);
  EXPECT_LT(1.0 / c.interval_s(), prev_rate);
  EXPECT_FALSE(c.probe_ok());
}

TEST(DelayGradient, RttAboveHighBandDecreasesEvenWhileFalling) {
  auto c = gradient_controller();
  // Falling series, but the level sits above T_high: the level emergency
  // must win over the falling gradient.
  c.update(sample(0.0, 20.0, 50.0, 0.6));
  const double before = 1.0 / c.interval_s();
  c.update(sample(kCadence, 20.0, 50.0, 0.5));
  EXPECT_LT(1.0 / c.interval_s(), before);
}

TEST(DelayGradient, HyperactiveIncreaseAfterFallingRun) {
  t::ControllerConfig config;
  auto c = gradient_controller(config);
  c.reset(0.5, kCadence, kMaxInterval);
  // A long falling run inside the band: the first dg_hai_after samples use
  // the plain step, afterwards the HAI-multiplied step.
  double rtt = 0.2;
  c.update(sample(0.0, 2.0, 50.0, rtt));  // prime
  std::vector<double> steps;
  double prev_rate = 1.0 / c.interval_s();
  for (int i = 1; i <= config.dg_hai_after + 2; ++i) {
    rtt -= 0.005;
    c.update(sample(i * kCadence, 2.0, 50.0, rtt));
    const double rate = 1.0 / c.interval_s();
    steps.push_back(rate - prev_rate);
    prev_rate = rate;
  }
  EXPECT_NEAR(steps.front(), config.dg_addstep_fps, 1e-9);
  EXPECT_NEAR(steps.back(), config.dg_addstep_fps * config.dg_hai_factor,
              1e-9);
}

TEST(DelayGradient, RateIsTetheredToTheAchievedRate) {
  t::ControllerConfig config;
  auto c = gradient_controller(config);
  // Flat low RTT wants AI back to the cadence rate, but the client only
  // drains 4 fps: the rate must stop at achieved * headroom.
  for (int i = 0; i < 200; ++i) {
    c.update(sample(i * kCadence, 20.0, 4.0, 0.01));
  }
  EXPECT_NEAR(1.0 / c.interval_s(), 4.0 * config.dg_headroom, 1e-9);
}

TEST(DelayGradient, LossIsAFullWeightDecrease) {
  auto c = gradient_controller();
  const double before = 1.0 / c.interval_s();
  c.update(sample(0.0, 20.0, 50.0, 0.05, /*loss=*/true));
  EXPECT_LT(1.0 / c.interval_s(), before);
}

TEST(DelayGradient, ProbeGateRequiresAnEmptyQueue) {
  t::ControllerConfig config;
  auto c = gradient_controller(config);
  // Learn the path minimum, then hold a flat elevated RTT: the gradient is
  // ~0 (flat) but the standing queue keeps last_rtt far above min — the
  // probe must stay vetoed until the RTT returns to the minimum.
  c.update(sample(0.0, 20.0, 50.0, 0.06));
  for (int i = 1; i <= 20; ++i) {
    c.update(sample(i * kCadence, 20.0, 50.0, 0.15));
  }
  EXPECT_FALSE(c.probe_ok());
  for (int i = 21; i <= 40; ++i) {
    c.update(sample(i * kCadence, 20.0, 50.0, 0.06));
  }
  EXPECT_TRUE(c.probe_ok());
}

TEST(DelayGradient, MinRttSurvivesResetSoTheProbeGateStaysArmed) {
  auto c = gradient_controller();
  c.update(sample(0.0, 20.0, 50.0, 0.06));  // path minimum learned
  c.reset(kCadence, kCadence, kMaxInterval);  // tier change
  // Post-reset samples arrive at a congested level. If reset had dropped
  // the learned minimum, 0.15 would *become* the minimum and the queue
  // would look empty.
  for (int i = 0; i < 10; ++i) {
    c.update(sample(1.0 + i * kCadence, 20.0, 50.0, 0.15));
  }
  EXPECT_FALSE(c.probe_ok());
}

// ------------------------------------------------------------ trendline (GCC)

t::TrendlineController trendline_controller(t::ControllerConfig config =
                                                t::ControllerConfig{}) {
  config.kind = t::ControllerKind::kTrendline;
  t::TrendlineController c(config);
  c.reset(kCadence, kCadence, kMaxInterval);
  return c;
}

TEST(Trendline, RampTriggersOveruseAgainstTheIncomingRate) {
  t::ControllerConfig config;
  auto c = trendline_controller(config);
  double delay = 0.05;
  int i = 0;
  while (c.probe_ok() && i < 50) {
    delay += 0.02;
    c.update(sample(++i * kCadence, 20.0, 8.0, delay));
  }
  ASSERT_FALSE(c.probe_ok()) << "ramp never tripped the overuse detector";
  // The decrease invalidated the fitted trend along with the window.
  EXPECT_DOUBLE_EQ(c.slope(), 0.0);
  // The decrease lands at beta * incoming (8 fps), not beta * target.
  EXPECT_NEAR(1.0 / c.interval_s(), config.tl_beta * 8.0, 1e-9);
}

TEST(Trendline, OneExcursionCostsOneDecrease) {
  t::ControllerConfig config;
  auto c = trendline_controller(config);
  double delay = 0.05;
  int i = 0;
  while (c.probe_ok() && i < 50) {
    delay += 0.02;
    c.update(sample(++i * kCadence, 20.0, 8.0, delay));
  }
  ASSERT_FALSE(c.probe_ok());
  const double after_md = 1.0 / c.interval_s();
  // The regression window was invalidated: the next two samples cannot
  // re-fit a slope, so the rate must not take a second decrease.
  c.update(sample(++i * kCadence, 20.0, 8.0, delay + 0.02));
  c.update(sample(++i * kCadence, 20.0, 8.0, delay + 0.04));
  EXPECT_GE(1.0 / c.interval_s(), after_md);
}

TEST(Trendline, DrainingQueueHoldsTheRate) {
  auto c = trendline_controller();
  c.reset(0.2, kCadence, kMaxInterval);
  // Steeply falling delay: underuse. The regression needs three samples
  // before a slope exists; from then on the law holds — neither AI nor MD.
  double delay = 0.5;
  for (int i = 0; i < 3; ++i) {
    delay -= 0.03;
    c.update(sample(i * kCadence, 5.0, 50.0, delay));
  }
  const double before = 1.0 / c.interval_s();
  for (int i = 3; i < 12; ++i) {
    delay -= 0.03;
    c.update(sample(i * kCadence, 5.0, 50.0, delay));
  }
  EXPECT_DOUBLE_EQ(1.0 / c.interval_s(), before);
}

TEST(Trendline, FlatDelayRampsAdditivelyUnderTheIncomingCeiling) {
  t::ControllerConfig config;
  auto c = trendline_controller(config);
  c.reset(0.5, kCadence, kMaxInterval);
  // Flat delay = AI every sample, but never past achieved * headroom.
  for (int i = 0; i < 200; ++i) {
    c.update(sample(i * kCadence, 2.0, 6.0, 0.08));
  }
  EXPECT_NEAR(1.0 / c.interval_s(), 6.0 * config.tl_headroom, 1e-9);
}

// ------------------------------------------------------ knob parsing & ids

TEST(ControllerKnob, ParsesEveryAliasAndRejectsUnknown) {
  t::ControllerKind kind;
  EXPECT_TRUE(t::parse_controller_kind("rmsa", &kind));
  EXPECT_EQ(kind, t::ControllerKind::kRmsa);
  EXPECT_TRUE(t::parse_controller_kind("gradient", &kind));
  EXPECT_EQ(kind, t::ControllerKind::kDelayGradient);
  EXPECT_TRUE(t::parse_controller_kind("timely", &kind));
  EXPECT_EQ(kind, t::ControllerKind::kDelayGradient);
  EXPECT_TRUE(t::parse_controller_kind("trendline", &kind));
  EXPECT_EQ(kind, t::ControllerKind::kTrendline);
  EXPECT_TRUE(t::parse_controller_kind("gcc", &kind));
  EXPECT_EQ(kind, t::ControllerKind::kTrendline);
  EXPECT_FALSE(t::parse_controller_kind("vegas", &kind));
  EXPECT_FALSE(t::parse_controller_kind("", &kind));
  EXPECT_STREQ(t::controller_kind_name(t::ControllerKind::kDelayGradient),
               "gradient");
}

TEST(ClientId, SanitizerAcceptsTokenCharactersOnly) {
  EXPECT_EQ(w::sanitize_client_id("tab-7_b.2-X"), "tab-7_b.2-X");
  // Anything outside [A-Za-z0-9._-], the empty id, and oversized ids all
  // collapse to "" (anonymous: no session is keyed).
  EXPECT_EQ(w::sanitize_client_id(""), "");
  EXPECT_EQ(w::sanitize_client_id("a b"), "");
  EXPECT_EQ(w::sanitize_client_id("x/../y"), "");
  EXPECT_EQ(w::sanitize_client_id("id\"</script>"), "");
  EXPECT_EQ(w::sanitize_client_id("a\r\nSet-Cookie:x"), "");
  EXPECT_EQ(w::sanitize_client_id(std::string(65, 'a')), "");
  EXPECT_EQ(w::sanitize_client_id(std::string(64, 'a')), std::string(64, 'a'));
}

}  // namespace
